file(REMOVE_RECURSE
  "CMakeFiles/extra_arguments.dir/extra_arguments.cpp.o"
  "CMakeFiles/extra_arguments.dir/extra_arguments.cpp.o.d"
  "extra_arguments"
  "extra_arguments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_arguments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
