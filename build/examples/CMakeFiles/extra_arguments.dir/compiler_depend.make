# Empty compiler generated dependencies file for extra_arguments.
# This may be replaced when dependencies are built.
