file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_example.dir/mandelbrot.cpp.o"
  "CMakeFiles/mandelbrot_example.dir/mandelbrot.cpp.o.d"
  "mandelbrot_example"
  "mandelbrot_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
