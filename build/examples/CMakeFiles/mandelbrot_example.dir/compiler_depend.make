# Empty compiler generated dependencies file for mandelbrot_example.
# This may be replaced when dependencies are built.
