
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/osem_reconstruction.cpp" "examples/CMakeFiles/osem_reconstruction.dir/osem_reconstruction.cpp.o" "gcc" "examples/CMakeFiles/osem_reconstruction.dir/osem_reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osem/CMakeFiles/skelcl_osem.dir/DependInfo.cmake"
  "/root/repo/build/src/skelcl/CMakeFiles/skelcl.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/skelcl_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
