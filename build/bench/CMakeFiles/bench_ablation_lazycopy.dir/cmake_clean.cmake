file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lazycopy.dir/bench_ablation_lazycopy.cpp.o"
  "CMakeFiles/bench_ablation_lazycopy.dir/bench_ablation_lazycopy.cpp.o.d"
  "bench_ablation_lazycopy"
  "bench_ablation_lazycopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lazycopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
