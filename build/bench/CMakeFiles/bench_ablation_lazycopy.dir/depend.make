# Empty dependencies file for bench_ablation_lazycopy.
# This may be replaced when dependencies are built.
