# Empty compiler generated dependencies file for bench_kernel_cache.
# This may be replaced when dependencies are built.
