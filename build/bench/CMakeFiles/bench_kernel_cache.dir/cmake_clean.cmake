file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_cache.dir/bench_kernel_cache.cpp.o"
  "CMakeFiles/bench_kernel_cache.dir/bench_kernel_cache.cpp.o.d"
  "bench_kernel_cache"
  "bench_kernel_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
