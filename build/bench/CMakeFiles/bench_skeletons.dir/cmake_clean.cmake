file(REMOVE_RECURSE
  "CMakeFiles/bench_skeletons.dir/bench_skeletons.cpp.o"
  "CMakeFiles/bench_skeletons.dir/bench_skeletons.cpp.o.d"
  "bench_skeletons"
  "bench_skeletons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeletons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
