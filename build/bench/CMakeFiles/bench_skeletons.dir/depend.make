# Empty dependencies file for bench_skeletons.
# This may be replaced when dependencies are built.
