# Empty compiler generated dependencies file for bench_dotproduct.
# This may be replaced when dependencies are built.
