file(REMOVE_RECURSE
  "CMakeFiles/bench_dotproduct.dir/baselines/dotproduct_opencl.cpp.o"
  "CMakeFiles/bench_dotproduct.dir/baselines/dotproduct_opencl.cpp.o.d"
  "CMakeFiles/bench_dotproduct.dir/bench_dotproduct.cpp.o"
  "CMakeFiles/bench_dotproduct.dir/bench_dotproduct.cpp.o.d"
  "bench_dotproduct"
  "bench_dotproduct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dotproduct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
