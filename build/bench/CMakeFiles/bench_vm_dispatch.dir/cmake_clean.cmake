file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_dispatch.dir/bench_vm_dispatch.cpp.o"
  "CMakeFiles/bench_vm_dispatch.dir/bench_vm_dispatch.cpp.o.d"
  "bench_vm_dispatch"
  "bench_vm_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
