
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_vm_dispatch.cpp" "bench/CMakeFiles/bench_vm_dispatch.dir/bench_vm_dispatch.cpp.o" "gcc" "bench/CMakeFiles/bench_vm_dispatch.dir/bench_vm_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skelcl/CMakeFiles/skelcl.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
