# Empty dependencies file for bench_vm_dispatch.
# This may be replaced when dependencies are built.
