file(REMOVE_RECURSE
  "CMakeFiles/bench_osem.dir/bench_osem.cpp.o"
  "CMakeFiles/bench_osem.dir/bench_osem.cpp.o.d"
  "bench_osem"
  "bench_osem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_osem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
