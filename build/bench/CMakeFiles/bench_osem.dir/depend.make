# Empty dependencies file for bench_osem.
# This may be replaced when dependencies are built.
