file(REMOVE_RECURSE
  "CMakeFiles/bench_mandelbrot.dir/bench_mandelbrot.cpp.o"
  "CMakeFiles/bench_mandelbrot.dir/bench_mandelbrot.cpp.o.d"
  "bench_mandelbrot"
  "bench_mandelbrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
