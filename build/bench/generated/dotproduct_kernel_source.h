// Generated from /root/repo/bench/baselines/dotproduct_kernel.cl - do not edit.
#pragma once

inline constexpr char kDotProductKernelSource[] = R"CLCSRC(
/* Element-wise product kernel of the plain OpenCL dot product (the
 * NVIDIA SDK sample computes the products on the device and sums on the
 * host). */
__kernel void dotProduct(__global const float* a,
                         __global const float* b,
                         __global float* products,
                         int n) {
  int i = (int)get_global_id(0);
  if (i < n) {
    products[i] = a[i] * b[i];
  }
}
)CLCSRC";
