# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(perf_smoke_vm_dispatch "/root/repo/build/bench/bench_vm_dispatch" "--smoke")
set_tests_properties(perf_smoke_vm_dispatch PROPERTIES  LABELS "perf-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
