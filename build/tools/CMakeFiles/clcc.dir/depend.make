# Empty dependencies file for clcc.
# This may be replaced when dependencies are built.
