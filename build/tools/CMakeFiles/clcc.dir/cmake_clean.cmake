file(REMOVE_RECURSE
  "CMakeFiles/clcc.dir/clcc.cpp.o"
  "CMakeFiles/clcc.dir/clcc.cpp.o.d"
  "clcc"
  "clcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
