file(REMOVE_RECURSE
  "CMakeFiles/clinfo_sim.dir/clinfo_sim.cpp.o"
  "CMakeFiles/clinfo_sim.dir/clinfo_sim.cpp.o.d"
  "clinfo_sim"
  "clinfo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinfo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
