# Empty dependencies file for clinfo_sim.
# This may be replaced when dependencies are built.
