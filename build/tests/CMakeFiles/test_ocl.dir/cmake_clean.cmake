file(REMOVE_RECURSE
  "CMakeFiles/test_ocl.dir/ocl/runtime_test.cpp.o"
  "CMakeFiles/test_ocl.dir/ocl/runtime_test.cpp.o.d"
  "CMakeFiles/test_ocl.dir/ocl/timing_test.cpp.o"
  "CMakeFiles/test_ocl.dir/ocl/timing_test.cpp.o.d"
  "test_ocl"
  "test_ocl.pdb"
  "test_ocl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
