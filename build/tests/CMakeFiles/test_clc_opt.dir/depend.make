# Empty dependencies file for test_clc_opt.
# This may be replaced when dependencies are built.
