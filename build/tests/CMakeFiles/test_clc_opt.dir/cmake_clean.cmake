file(REMOVE_RECURSE
  "CMakeFiles/test_clc_opt.dir/clc/opt_test.cpp.o"
  "CMakeFiles/test_clc_opt.dir/clc/opt_test.cpp.o.d"
  "test_clc_opt"
  "test_clc_opt.pdb"
  "test_clc_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
