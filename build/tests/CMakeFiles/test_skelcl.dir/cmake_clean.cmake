file(REMOVE_RECURSE
  "CMakeFiles/test_skelcl.dir/skelcl/cache_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/cache_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/edge_cases_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/edge_cases_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/map_reduce_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/map_reduce_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/misc_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/misc_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/multi_device_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/multi_device_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/skeleton_property_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/skeleton_property_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/skeleton_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/skeleton_test.cpp.o.d"
  "CMakeFiles/test_skelcl.dir/skelcl/vector_test.cpp.o"
  "CMakeFiles/test_skelcl.dir/skelcl/vector_test.cpp.o.d"
  "test_skelcl"
  "test_skelcl.pdb"
  "test_skelcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skelcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
