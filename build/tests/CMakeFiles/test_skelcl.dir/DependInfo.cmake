
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/skelcl/cache_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/cache_test.cpp.o.d"
  "/root/repo/tests/skelcl/edge_cases_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/edge_cases_test.cpp.o.d"
  "/root/repo/tests/skelcl/map_reduce_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/map_reduce_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/map_reduce_test.cpp.o.d"
  "/root/repo/tests/skelcl/misc_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/misc_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/misc_test.cpp.o.d"
  "/root/repo/tests/skelcl/multi_device_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/multi_device_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/multi_device_test.cpp.o.d"
  "/root/repo/tests/skelcl/skeleton_property_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/skeleton_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/skeleton_property_test.cpp.o.d"
  "/root/repo/tests/skelcl/skeleton_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/skeleton_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/skeleton_test.cpp.o.d"
  "/root/repo/tests/skelcl/vector_test.cpp" "tests/CMakeFiles/test_skelcl.dir/skelcl/vector_test.cpp.o" "gcc" "tests/CMakeFiles/test_skelcl.dir/skelcl/vector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/skelcl/CMakeFiles/skelcl.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
