# Empty dependencies file for test_skelcl.
# This may be replaced when dependencies are built.
