# Empty compiler generated dependencies file for test_cuda.
# This may be replaced when dependencies are built.
