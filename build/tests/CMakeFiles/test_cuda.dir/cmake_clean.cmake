file(REMOVE_RECURSE
  "CMakeFiles/test_cuda.dir/cuda/cuda_runtime_test.cpp.o"
  "CMakeFiles/test_cuda.dir/cuda/cuda_runtime_test.cpp.o.d"
  "test_cuda"
  "test_cuda.pdb"
  "test_cuda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
