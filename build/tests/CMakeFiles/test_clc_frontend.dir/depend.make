# Empty dependencies file for test_clc_frontend.
# This may be replaced when dependencies are built.
