file(REMOVE_RECURSE
  "CMakeFiles/test_clc_frontend.dir/clc/codegen_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/codegen_test.cpp.o.d"
  "CMakeFiles/test_clc_frontend.dir/clc/lexer_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/lexer_test.cpp.o.d"
  "CMakeFiles/test_clc_frontend.dir/clc/parser_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/parser_test.cpp.o.d"
  "CMakeFiles/test_clc_frontend.dir/clc/preprocessor_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/preprocessor_test.cpp.o.d"
  "CMakeFiles/test_clc_frontend.dir/clc/sema_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/sema_test.cpp.o.d"
  "CMakeFiles/test_clc_frontend.dir/clc/types_test.cpp.o"
  "CMakeFiles/test_clc_frontend.dir/clc/types_test.cpp.o.d"
  "test_clc_frontend"
  "test_clc_frontend.pdb"
  "test_clc_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
