file(REMOVE_RECURSE
  "CMakeFiles/test_mandelbrot.dir/apps/mandelbrot_test.cpp.o"
  "CMakeFiles/test_mandelbrot.dir/apps/mandelbrot_test.cpp.o.d"
  "test_mandelbrot"
  "test_mandelbrot.pdb"
  "test_mandelbrot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
