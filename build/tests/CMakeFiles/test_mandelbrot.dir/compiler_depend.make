# Empty compiler generated dependencies file for test_mandelbrot.
# This may be replaced when dependencies are built.
