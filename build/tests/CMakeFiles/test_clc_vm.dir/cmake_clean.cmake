file(REMOVE_RECURSE
  "CMakeFiles/test_clc_vm.dir/clc/serialize_test.cpp.o"
  "CMakeFiles/test_clc_vm.dir/clc/serialize_test.cpp.o.d"
  "CMakeFiles/test_clc_vm.dir/clc/vm_control_flow_test.cpp.o"
  "CMakeFiles/test_clc_vm.dir/clc/vm_control_flow_test.cpp.o.d"
  "CMakeFiles/test_clc_vm.dir/clc/vm_math_test.cpp.o"
  "CMakeFiles/test_clc_vm.dir/clc/vm_math_test.cpp.o.d"
  "CMakeFiles/test_clc_vm.dir/clc/vm_memory_test.cpp.o"
  "CMakeFiles/test_clc_vm.dir/clc/vm_memory_test.cpp.o.d"
  "CMakeFiles/test_clc_vm.dir/clc/vm_test.cpp.o"
  "CMakeFiles/test_clc_vm.dir/clc/vm_test.cpp.o.d"
  "test_clc_vm"
  "test_clc_vm.pdb"
  "test_clc_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
