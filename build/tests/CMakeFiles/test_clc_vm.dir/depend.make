# Empty dependencies file for test_clc_vm.
# This may be replaced when dependencies are built.
