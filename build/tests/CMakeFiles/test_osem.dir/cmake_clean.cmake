file(REMOVE_RECURSE
  "CMakeFiles/test_osem.dir/apps/osem_test.cpp.o"
  "CMakeFiles/test_osem.dir/apps/osem_test.cpp.o.d"
  "test_osem"
  "test_osem.pdb"
  "test_osem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
