# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_clc_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_clc_vm[1]_include.cmake")
include("/root/repo/build/tests/test_clc_opt[1]_include.cmake")
include("/root/repo/build/tests/test_ocl[1]_include.cmake")
include("/root/repo/build/tests/test_cuda[1]_include.cmake")
include("/root/repo/build/tests/test_skelcl[1]_include.cmake")
include("/root/repo/build/tests/test_mandelbrot[1]_include.cmake")
include("/root/repo/build/tests/test_osem[1]_include.cmake")
