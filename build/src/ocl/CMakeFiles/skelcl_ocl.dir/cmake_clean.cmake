file(REMOVE_RECURSE
  "CMakeFiles/skelcl_ocl.dir/context.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/context.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/device.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/device.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/program.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/program.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/queue.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/queue.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/timing_model.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/timing_model.cpp.o.d"
  "libskelcl_ocl.a"
  "libskelcl_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
