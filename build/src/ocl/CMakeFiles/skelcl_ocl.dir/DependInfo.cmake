
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/context.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/context.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/context.cpp.o.d"
  "/root/repo/src/ocl/device.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/device.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/device.cpp.o.d"
  "/root/repo/src/ocl/program.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/program.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/program.cpp.o.d"
  "/root/repo/src/ocl/queue.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/queue.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/queue.cpp.o.d"
  "/root/repo/src/ocl/timing_model.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/timing_model.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/timing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
