file(REMOVE_RECURSE
  "CMakeFiles/skelcl_common.dir/byte_stream.cpp.o"
  "CMakeFiles/skelcl_common.dir/byte_stream.cpp.o.d"
  "CMakeFiles/skelcl_common.dir/error.cpp.o"
  "CMakeFiles/skelcl_common.dir/error.cpp.o.d"
  "CMakeFiles/skelcl_common.dir/hash.cpp.o"
  "CMakeFiles/skelcl_common.dir/hash.cpp.o.d"
  "CMakeFiles/skelcl_common.dir/logging.cpp.o"
  "CMakeFiles/skelcl_common.dir/logging.cpp.o.d"
  "CMakeFiles/skelcl_common.dir/string_util.cpp.o"
  "CMakeFiles/skelcl_common.dir/string_util.cpp.o.d"
  "CMakeFiles/skelcl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/skelcl_common.dir/thread_pool.cpp.o.d"
  "libskelcl_common.a"
  "libskelcl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
