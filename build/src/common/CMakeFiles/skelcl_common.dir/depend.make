# Empty dependencies file for skelcl_common.
# This may be replaced when dependencies are built.
