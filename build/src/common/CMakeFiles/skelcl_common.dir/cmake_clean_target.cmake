file(REMOVE_RECURSE
  "libskelcl_common.a"
)
