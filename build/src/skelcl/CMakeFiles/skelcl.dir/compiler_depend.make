# Empty compiler generated dependencies file for skelcl.
# This may be replaced when dependencies are built.
