
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skelcl/detail/runtime.cpp" "src/skelcl/CMakeFiles/skelcl.dir/detail/runtime.cpp.o" "gcc" "src/skelcl/CMakeFiles/skelcl.dir/detail/runtime.cpp.o.d"
  "/root/repo/src/skelcl/detail/source_utils.cpp" "src/skelcl/CMakeFiles/skelcl.dir/detail/source_utils.cpp.o" "gcc" "src/skelcl/CMakeFiles/skelcl.dir/detail/source_utils.cpp.o.d"
  "/root/repo/src/skelcl/kernel_cache.cpp" "src/skelcl/CMakeFiles/skelcl.dir/kernel_cache.cpp.o" "gcc" "src/skelcl/CMakeFiles/skelcl.dir/kernel_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
