file(REMOVE_RECURSE
  "CMakeFiles/skelcl.dir/detail/runtime.cpp.o"
  "CMakeFiles/skelcl.dir/detail/runtime.cpp.o.d"
  "CMakeFiles/skelcl.dir/detail/source_utils.cpp.o"
  "CMakeFiles/skelcl.dir/detail/source_utils.cpp.o.d"
  "CMakeFiles/skelcl.dir/kernel_cache.cpp.o"
  "CMakeFiles/skelcl.dir/kernel_cache.cpp.o.d"
  "libskelcl.a"
  "libskelcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
