file(REMOVE_RECURSE
  "libskelcl.a"
)
