
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osem/events.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/events.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/events.cpp.o.d"
  "/root/repo/src/osem/osem_common.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_common.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_common.cpp.o.d"
  "/root/repo/src/osem/osem_cuda.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o.d"
  "/root/repo/src/osem/osem_opencl.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_opencl.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_opencl.cpp.o.d"
  "/root/repo/src/osem/osem_skelcl.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o.d"
  "/root/repo/src/osem/phantom.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/phantom.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/phantom.cpp.o.d"
  "/root/repo/src/osem/sequential.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/sequential.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/sequential.cpp.o.d"
  "/root/repo/src/osem/siddon.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/siddon.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/siddon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skelcl/CMakeFiles/skelcl.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/skelcl_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
