# Empty dependencies file for skelcl_osem.
# This may be replaced when dependencies are built.
