// Generated from /root/repo/src/osem/kernels/osem_skelcl.cl - do not edit.
#pragma once

inline constexpr char kOsemSkelClSource[] = R"CLCSRC(
/* List-mode OSEM customizing function for the SkelCL Map skeleton.
 *
 * The skeleton maps over a vector of indices; each index names a
 * disjoint sub-subset of the device's events (paper Sec. IV-B: "the
 * input of the Map skeleton is not a subset, but rather a vector of 512
 * indices"). Events, both images, and the volume descriptor arrive as
 * additional arguments. The Event and OsemDims types are registered with
 * SkelCL on the host side and prepended by the code generator. */

void atomic_add_f(volatile __global float* addr, float value) {
  __global int* iaddr = (__global int*)addr;
  int oldBits = *iaddr;
  for (;;) {
    int assumed = oldBits;
    float sum = as_float(assumed) + value;
    oldBits = atomic_cmpxchg(iaddr, assumed, as_int(sum));
    if (oldBits == assumed) {
      return;
    }
  }
}

float trace_event(Event ev, __global const float* f, __global float* c,
                  OsemDims dims, int pass, float fp) {
  float ox = ev.x1;
  float oy = ev.y1;
  float oz = ev.z1;
  float dx = ev.x2 - ev.x1;
  float dy = ev.y2 - ev.y1;
  float dz = ev.z2 - ev.z1;
  float len = sqrt(dx * dx + dy * dy + dz * dz);
  if (len == 0.0f) {
    return 0.0f;
  }
  float vs = dims.voxelSize;
  float lox = -(float)dims.nx * vs * 0.5f;
  float loy = -(float)dims.ny * vs * 0.5f;
  float loz = -(float)dims.nz * vs * 0.5f;

  float tmin = 0.0f;
  float tmax = 1.0f;
  if (dx != 0.0f) {
    float t1 = (lox - ox) / dx;
    float t2 = (-lox - ox) / dx;
    tmin = fmax(tmin, fmin(t1, t2));
    tmax = fmin(tmax, fmax(t1, t2));
  } else if (ox < lox || ox > -lox) {
    return 0.0f;
  }
  if (dy != 0.0f) {
    float t1 = (loy - oy) / dy;
    float t2 = (-loy - oy) / dy;
    tmin = fmax(tmin, fmin(t1, t2));
    tmax = fmin(tmax, fmax(t1, t2));
  } else if (oy < loy || oy > -loy) {
    return 0.0f;
  }
  if (dz != 0.0f) {
    float t1 = (loz - oz) / dz;
    float t2 = (-loz - oz) / dz;
    tmin = fmax(tmin, fmin(t1, t2));
    tmax = fmin(tmax, fmax(t1, t2));
  } else if (oz < loz || oz > -loz) {
    return 0.0f;
  }
  if (tmin >= tmax) {
    return 0.0f;
  }

  float tEnter = tmin + 1e-6f;
  int ix = clamp((int)floor((ox + tEnter * dx - lox) / vs), 0, dims.nx - 1);
  int iy = clamp((int)floor((oy + tEnter * dy - loy) / vs), 0, dims.ny - 1);
  int iz = clamp((int)floor((oz + tEnter * dz - loz) / vs), 0, dims.nz - 1);

  float big = 1e30f;
  int sx = 0; int sy = 0; int sz = 0;
  float tx = big; float ty = big; float tz = big;
  float dtx = big; float dty = big; float dtz = big;
  if (dx > 0.0f) {
    sx = 1; dtx = vs / dx; tx = (lox + (float)(ix + 1) * vs - ox) / dx;
  } else if (dx < 0.0f) {
    sx = -1; dtx = -vs / dx; tx = (lox + (float)ix * vs - ox) / dx;
  }
  if (dy > 0.0f) {
    sy = 1; dty = vs / dy; ty = (loy + (float)(iy + 1) * vs - oy) / dy;
  } else if (dy < 0.0f) {
    sy = -1; dty = -vs / dy; ty = (loy + (float)iy * vs - oy) / dy;
  }
  if (dz > 0.0f) {
    sz = 1; dtz = vs / dz; tz = (loz + (float)(iz + 1) * vs - oz) / dz;
  } else if (dz < 0.0f) {
    sz = -1; dtz = -vs / dz; tz = (loz + (float)iz * vs - oz) / dz;
  }

  float t = tmin;
  float acc = 0.0f;
  for (;;) {
    if (t >= tmax) {
      break;
    }
    float tn = fmin(fmin(tx, ty), fmin(tz, tmax));
    float seg = (tn - t) * len;
    if (seg > 0.0f) {
      int voxel = ix + dims.nx * (iy + dims.ny * iz);
      if (pass == 0) {
        acc += f[voxel] * seg;
      } else {
        atomic_add_f(&c[voxel], seg / fp);
      }
    }
    if (tn >= tmax) {
      break;
    }
    if (tx <= ty && tx <= tz) {
      ix += sx;
      tx += dtx;
      if (ix < 0 || ix >= dims.nx) break;
    } else if (ty <= tz) {
      iy += sy;
      ty += dty;
      if (iy < 0 || iy >= dims.ny) break;
    } else {
      iz += sz;
      tz += dtz;
      if (iz < 0 || iz >= dims.nz) break;
    }
    t = tn;
  }
  return acc;
}

/* The Map customizing function: one call per index. The index is global
 * across all devices; modulo the per-device worker count it selects this
 * device's sub-subset of events. */
void compute_c(int index, __global const Event* events, uint numEvents,
               int workersPerDevice, __global const float* f,
               __global float* c, OsemDims dims) {
  uint w = (uint)(index % workersPerDevice);
  uint workers = (uint)workersPerDevice;
  uint chunk = (numEvents + workers - 1) / workers;
  uint start = w * chunk;
  uint end = min(start + chunk, numEvents);
  for (uint i = start; i < end; ++i) {
    Event ev = events[i];
    float fp = trace_event(ev, f, c, dims, 0, 0.0f);
    if (fp > 0.0f) {
      trace_event(ev, f, c, dims, 1, fp);
    }
  }
}
)CLCSRC";
