# Empty compiler generated dependencies file for skelcl_cuda.
# This may be replaced when dependencies are built.
