file(REMOVE_RECURSE
  "CMakeFiles/skelcl_cuda.dir/runtime.cpp.o"
  "CMakeFiles/skelcl_cuda.dir/runtime.cpp.o.d"
  "libskelcl_cuda.a"
  "libskelcl_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
