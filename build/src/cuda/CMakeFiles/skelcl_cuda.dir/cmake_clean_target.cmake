file(REMOVE_RECURSE
  "libskelcl_cuda.a"
)
