// Generated from /root/repo/src/mandelbrot/kernels/mandelbrot_opencl.cl - do not edit.
#pragma once

inline constexpr char kMandelbrotOpenClSource[] = R"CLCSRC(
/* Mandelbrot kernel, OpenCL C. The kernel derives each pixel's complex
 * coordinate from its global id. */
__kernel void mandelbrot(__global int* out,
                         int width,
                         int height,
                         float x0,
                         float y0,
                         float dx,
                         float dy,
                         int maxIter) {
  int px = (int)get_global_id(0);
  int py = (int)get_global_id(1);
  if (px >= width || py >= height) {
    return;
  }
  float cx = x0 + px * dx;
  float cy = y0 + py * dy;
  float zx = 0.0f;
  float zy = 0.0f;
  int n = 0;
  while (zx * zx + zy * zy <= 4.0f && n < maxIter) {
    float t = zx * zx - zy * zy + cx;
    zy = 2.0f * zx * zy + cy;
    zx = t;
    n = n + 1;
  }
  out[py * width + px] = n;
}
)CLCSRC";
