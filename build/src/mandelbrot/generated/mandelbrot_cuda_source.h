// Generated from /root/repo/src/mandelbrot/kernels/mandelbrot_cuda.cl - do not edit.
#pragma once

inline constexpr char kMandelbrotCudaSource[] = R"CLCSRC(
/* Mandelbrot kernel, CUDA dialect. The kernel derives each pixel's
 * complex coordinate from its thread index. */
__global__ void mandelbrot(int* out,
                           int width,
                           int height,
                           float x0,
                           float y0,
                           float dx,
                           float dy,
                           int maxIter) {
  int px = blockIdx.x * blockDim.x + threadIdx.x;
  int py = blockIdx.y * blockDim.y + threadIdx.y;
  if (px >= width || py >= height) {
    return;
  }
  float cx = x0 + px * dx;
  float cy = y0 + py * dy;
  float zx = 0.0f;
  float zy = 0.0f;
  int n = 0;
  while (zx * zx + zy * zy <= 4.0f && n < maxIter) {
    float t = zx * zx - zy * zy + cx;
    zy = 2.0f * zx * zy + cy;
    zx = t;
    n = n + 1;
  }
  out[py * width + px] = n;
}
)CLCSRC";
