// Generated from /root/repo/src/mandelbrot/kernels/mandelbrot_skelcl.cl - do not edit.
#pragma once

inline constexpr char kMandelbrotSkelClSource[] = R"CLCSRC(
/* Mandelbrot customizing function for the SkelCL Map skeleton. Unlike
 * the CUDA/OpenCL kernels, the pixel's complex coordinate arrives as the
 * element itself (paper Sec. IV-A: "the input positions have to be given
 * explicitly when using the Map skeleton"); the iteration budget is an
 * additional argument. */
int mandelbrot(PixelPos pos, int maxIter) {
  float cx = pos.re;
  float cy = pos.im;
  float zx = 0.0f;
  float zy = 0.0f;
  int n = 0;
  while (zx * zx + zy * zy <= 4.0f && n < maxIter) {
    float t = zx * zx - zy * zy + cx;
    zy = 2.0f * zx * zy + cy;
    zx = t;
    n = n + 1;
  }
  return n;
}
)CLCSRC";
