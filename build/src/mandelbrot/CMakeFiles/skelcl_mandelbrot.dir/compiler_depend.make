# Empty compiler generated dependencies file for skelcl_mandelbrot.
# This may be replaced when dependencies are built.
