file(REMOVE_RECURSE
  "libskelcl_mandelbrot.a"
)
