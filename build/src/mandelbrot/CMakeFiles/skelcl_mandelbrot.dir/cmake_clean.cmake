file(REMOVE_RECURSE
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_common.cpp.o"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_common.cpp.o.d"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_cuda.cpp.o"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_cuda.cpp.o.d"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_opencl.cpp.o"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_opencl.cpp.o.d"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_skelcl.cpp.o"
  "CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_skelcl.cpp.o.d"
  "libskelcl_mandelbrot.a"
  "libskelcl_mandelbrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
