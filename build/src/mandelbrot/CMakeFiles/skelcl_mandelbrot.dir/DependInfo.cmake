
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mandelbrot/mandelbrot_common.cpp" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_common.cpp.o" "gcc" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_common.cpp.o.d"
  "/root/repo/src/mandelbrot/mandelbrot_cuda.cpp" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_cuda.cpp.o" "gcc" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_cuda.cpp.o.d"
  "/root/repo/src/mandelbrot/mandelbrot_opencl.cpp" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_opencl.cpp.o" "gcc" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_opencl.cpp.o.d"
  "/root/repo/src/mandelbrot/mandelbrot_skelcl.cpp" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_skelcl.cpp.o" "gcc" "src/mandelbrot/CMakeFiles/skelcl_mandelbrot.dir/mandelbrot_skelcl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skelcl/CMakeFiles/skelcl.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/skelcl_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/skelcl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
