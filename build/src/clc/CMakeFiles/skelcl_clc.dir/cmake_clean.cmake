file(REMOVE_RECURSE
  "CMakeFiles/skelcl_clc.dir/builtins.cpp.o"
  "CMakeFiles/skelcl_clc.dir/builtins.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/bytecode.cpp.o"
  "CMakeFiles/skelcl_clc.dir/bytecode.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/codegen.cpp.o"
  "CMakeFiles/skelcl_clc.dir/codegen.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/diag.cpp.o"
  "CMakeFiles/skelcl_clc.dir/diag.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/lexer.cpp.o"
  "CMakeFiles/skelcl_clc.dir/lexer.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/opt.cpp.o"
  "CMakeFiles/skelcl_clc.dir/opt.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/parser.cpp.o"
  "CMakeFiles/skelcl_clc.dir/parser.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/sema.cpp.o"
  "CMakeFiles/skelcl_clc.dir/sema.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/serialize.cpp.o"
  "CMakeFiles/skelcl_clc.dir/serialize.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/types.cpp.o"
  "CMakeFiles/skelcl_clc.dir/types.cpp.o.d"
  "CMakeFiles/skelcl_clc.dir/vm.cpp.o"
  "CMakeFiles/skelcl_clc.dir/vm.cpp.o.d"
  "libskelcl_clc.a"
  "libskelcl_clc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
