
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clc/builtins.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/builtins.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/builtins.cpp.o.d"
  "/root/repo/src/clc/bytecode.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/bytecode.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/bytecode.cpp.o.d"
  "/root/repo/src/clc/codegen.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/codegen.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/codegen.cpp.o.d"
  "/root/repo/src/clc/diag.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/diag.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/diag.cpp.o.d"
  "/root/repo/src/clc/lexer.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/lexer.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/lexer.cpp.o.d"
  "/root/repo/src/clc/opt.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/opt.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/opt.cpp.o.d"
  "/root/repo/src/clc/parser.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/parser.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/parser.cpp.o.d"
  "/root/repo/src/clc/sema.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/sema.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/sema.cpp.o.d"
  "/root/repo/src/clc/serialize.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/serialize.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/serialize.cpp.o.d"
  "/root/repo/src/clc/types.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/types.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/types.cpp.o.d"
  "/root/repo/src/clc/vm.cpp" "src/clc/CMakeFiles/skelcl_clc.dir/vm.cpp.o" "gcc" "src/clc/CMakeFiles/skelcl_clc.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skelcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
