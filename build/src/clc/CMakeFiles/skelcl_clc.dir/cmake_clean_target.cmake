file(REMOVE_RECURSE
  "libskelcl_clc.a"
)
