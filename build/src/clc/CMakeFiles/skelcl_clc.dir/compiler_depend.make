# Empty compiler generated dependencies file for skelcl_clc.
# This may be replaced when dependencies are built.
