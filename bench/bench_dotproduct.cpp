// Reproduces the Sec. III program-size comparison: the SkelCL dot
// product (paper Listing 1 = examples/quickstart.cpp) versus the plain
// OpenCL implementation structured like the NVIDIA SDK sample
// ("approximately 68 lines of code: kernel 9, host 59").
// Also times both, supporting the claim that the abstraction does not
// cost much performance on this memory-bound kernel.
#include "bench_util.h"

#include "baselines/dotproduct_opencl.h"

int main() {
  bench::setupCacheDir("dotproduct");
  bench::setupSystem(1);

  const int n = int(262144 * bench::scale());
  const std::size_t un = std::size_t(n);
  std::vector<float> a(un);
  std::vector<float> b(un);
  for (int i = 0; i < n; ++i) {
    a[std::size_t(i)] = float(i % 17) * 0.25f;
    b[std::size_t(i)] = float((i + 3) % 23) * 0.5f;
  }

  bench::heading("Sec. III: dot product, SkelCL vs plain OpenCL (n = " +
                 std::to_string(n) + ")");

  // SkelCL version (paper Listing 1).
  skelcl::Reduce<float> sum("float sum (float x,float y){return x+y;}");
  skelcl::Zip<float> mult("float mult(float x,float y){return x*y;}");
  skelcl::Vector<float> A(a.data(), std::size_t(n));
  skelcl::Vector<float> B(b.data(), std::size_t(n));
  const auto skelclStart = ocl::hostTimeNs();
  skelcl::Scalar<float> C = sum(mult(A, B));
  const float skelclValue = C.getValue();
  const double skelclMs =
      double(ocl::hostTimeNs() - skelclStart) * 1e-6;

  // Plain OpenCL version.
  const auto oclStart = ocl::hostTimeNs();
  const float oclValue =
      baselines::dotProductOpenCl(a.data(), b.data(), n);
  const double oclMs = double(ocl::hostTimeNs() - oclStart) * 1e-6;

  double expected = 0;
  for (int i = 0; i < n; ++i) {
    expected += double(a[std::size_t(i)]) * double(b[std::size_t(i)]);
  }

  bench::subheading("correctness");
  std::printf("host %.6g  skelcl %.6g  opencl %.6g\n", expected,
              double(skelclValue), double(oclValue));
  const bool ok =
      std::abs(double(skelclValue) - expected) < 1e-3 * expected &&
      std::abs(double(oclValue) - expected) < 1e-3 * expected;

  bench::subheading("runtime (virtual)");
  std::printf("%-8s %12s\n", "impl", "time[ms]");
  std::printf("%-8s %12.3f\n", "SkelCL", skelclMs);
  std::printf("%-8s %12.3f\n", "OpenCL", oclMs);

  bench::subheading("program size (lines of code)");
  const std::string root = SKELCL_REPRO_SOURCE_DIR;
  const std::size_t skelclLoc =
      bench::fileLoc(root + "/examples/quickstart.cpp");
  const std::size_t oclKernel =
      bench::fileLoc(root + "/bench/baselines/dotproduct_kernel.cl");
  const std::size_t oclHost =
      bench::fileLoc(root + "/bench/baselines/dotproduct_opencl.cpp");
  std::printf("%-8s %8s %22s\n", "impl", "total", "paper");
  std::printf("%-8s %8zu %22s\n", "SkelCL", skelclLoc,
              "~Listing 1 (short)");
  std::printf("%-8s %8zu %22s\n", "OpenCL", oclKernel + oclHost,
              "~68 (9+59)");
  std::printf("OpenCL/SkelCL LoC ratio: %.2f\n",
              double(oclKernel + oclHost) / double(skelclLoc));

  skelcl::terminate();
  return ok ? 0 : 1;
}
