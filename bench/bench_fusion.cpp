// Ablation: expression-DAG kernel fusion vs staged execution.
//
// The runtime change under test is the rewrite pass over the lazy
// expression DAG: map f . map g -> map (f . g), zip absorption of map
// operands, and reduce . map -> mapreduce, all spliced at OpenCL-C
// source level before codegen. SKELCL_FUSION=0 is the differential
// control — the same DAG evaluates stage by stage, each stage compiling
// its own kernel and materializing its intermediate vector.
//
// Two scenarios:
//  * dot-product chain: K dot products sum(mult(a, b)) — the paper's
//    Listing 1 composition. Fused, each collapses to one mapreduce
//    first pass plus one combine pass, never writing the n-element
//    product vector.
//  * saxpy-style map chain: four stacked element-wise stages fused into
//    a single kernel, eliminating three intermediate vectors.
//
// Fusion must strictly win in virtual time and launch fewer kernels,
// with bit-identical outputs (the rewrite splices sources; it never
// reassociates arithmetic). Output: human-readable table plus `BENCH
// {...}` JSON with launch and intermediate-byte counters. `--smoke`
// shrinks sizes; ctest runs it under `perf-smoke` and the binary exits
// non-zero on any violation.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct RunResult {
  std::uint64_t virtualNs = 0;
  std::uint64_t kernelLaunches = 0; // summed over every device queue
  skelcl::detail::Runtime::FusionStats stats;
  std::vector<std::vector<float>> outputs;
};

std::uint64_t sumQueueLaunches() {
  auto& runtime = skelcl::detail::Runtime::instance();
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    total += runtime.queue(d).cumulativeKernelLaunches();
  }
  return total;
}

void setFusion(bool fused) {
  ::setenv("SKELCL_FUSION", fused ? "1" : "0", 1);
}

/// K dot products with fresh host data per pair; the host only blocks
/// when the K scalars are read at the end.
RunResult runDotChain(bool fused, bool smoke,
                      const std::string& traceTag) {
  setFusion(fused);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(1);

  const std::size_t n = smoke ? std::size_t(1) << 16
                              : std::size_t(1) << 20; // 4 MiB per vector
  const std::size_t pairs = smoke ? 2 : 4;

  RunResult out;
  {
    skelcl::Zip<float> mult(
        "float mult(float x, float y) { return x*y; }");
    skelcl::Reduce<float> sum(
        "float sum(float x, float y) { return x+y; }");

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    std::vector<skelcl::Scalar<float>> results;
    for (std::size_t p = 0; p < pairs; ++p) {
      std::vector<float> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = float((i + p) % 31) * 0.25f;
        b[i] = float((i * 7 + p) % 29) * 0.5f;
      }
      skelcl::Vector<float> va(std::move(a));
      skelcl::Vector<float> vb(std::move(b));
      results.push_back(sum(mult(va, vb)));
    }
    std::vector<float> values;
    for (auto& r : results) {
      values.push_back(r.getValue());
    }
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelLaunches = sumQueueLaunches();
    out.stats = skelcl::detail::Runtime::instance().fusionStats();
    out.outputs.push_back(std::move(values));
  }
  skelcl::terminate();
  return out;
}

/// Four stacked element-wise stages over one vector: fused, a single
/// kernel; staged, four kernels and three n-element intermediates.
RunResult runMapChain(bool fused, bool smoke,
                      const std::string& traceTag) {
  setFusion(fused);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(1);

  const std::size_t n = smoke ? std::size_t(1) << 16
                              : std::size_t(1) << 20;

  RunResult out;
  {
    skelcl::Map<float> scale("float scale(float x) { return 2.0f*x; }");
    skelcl::Map<float> shift("float shift(float x) { return x+3.0f; }");
    skelcl::Map<float> damp("float damp(float x) { return x*0.875f; }");
    skelcl::Map<float> bias("float bias(float x) { return x-1.0f; }");

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = float(i % 113) * 0.125f;
    }
    skelcl::Vector<float> v(std::move(data));
    skelcl::Vector<float> result = bias(damp(shift(scale(v))));
    out.outputs.push_back(result.hostData());
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelLaunches = sumQueueLaunches();
    out.stats = skelcl::detail::Runtime::instance().fusionStats();
  }
  skelcl::terminate();
  return out;
}

struct Scenario {
  const char* name;
  RunResult (*run)(bool fused, bool smoke, const std::string& traceTag);
};

bool compare(const Scenario& s, bool smoke) {
  const RunResult staged =
      s.run(/*fused=*/false, smoke, std::string(s.name) + ".staged");
  const RunResult fused =
      s.run(/*fused=*/true, smoke, std::string(s.name) + ".fused");

  const bool identical = staged.outputs == fused.outputs;
  const bool fewerLaunches = fused.kernelLaunches < staged.kernelLaunches;
  const bool lessIntermediate =
      fused.stats.intermediateBytes < staged.stats.intermediateBytes;
  const bool timeWin = fused.virtualNs < staged.virtualNs;
  const double ratio =
      double(fused.virtualNs) / double(staged.virtualNs);

  std::printf("%-12s %12.3f ms %12.3f ms   %.3fx   %3llu -> %3llu "
              "launches   %s\n",
              s.name, double(staged.virtualNs) * 1e-6,
              double(fused.virtualNs) * 1e-6, ratio,
              (unsigned long long)staged.kernelLaunches,
              (unsigned long long)fused.kernelLaunches,
              identical ? "identical" : "DIFFER");
  bench::BenchJson("ablation_fusion")
      .field("scenario", s.name)
      .field("staged_ms", double(staged.virtualNs) * 1e-6)
      .field("fused_ms", double(fused.virtualNs) * 1e-6)
      .field("ratio", ratio)
      .field("staged_launches", staged.kernelLaunches)
      .field("fused_launches", fused.kernelLaunches)
      .field("fused_stages", fused.stats.fusedStages)
      .field("staged_intermediate_bytes", staged.stats.intermediateBytes)
      .field("fused_intermediate_bytes", fused.stats.intermediateBytes)
      .field("outputs_identical", identical)
      .print();

  return identical && fewerLaunches && lessIntermediate && timeWin;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("ablation-fusion");
  bench::traceSpec();

  const Scenario scenarios[] = {
      {"dot_chain", runDotChain},
      {"map_chain", runMapChain},
  };

  bench::heading("Ablation: fused vs staged DAG execution "
                 "(virtual time)");
  std::printf("%-12s %15s %15s %8s\n", "scenario", "staged", "fused",
              "ratio");
  bool ok = true;
  for (const Scenario& s : scenarios) {
    ok = compare(s, smoke) && ok;
  }
  ::unsetenv("SKELCL_FUSION");

  if (!ok) {
    std::fprintf(stderr,
                 "\nfusion ablation violation: output mismatch, launch "
                 "regression, or virtual-time regression\n");
    return 1;
  }
  return 0;
}
