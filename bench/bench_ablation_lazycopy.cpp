// Ablation A-lazy: Sec. III-A — "This lazy copying minimizes costly data
// transfers between host and device", in particular when "an output
// vector is used as the input to another skeleton".
//
// Compares a chain of skeleton calls with SkelCL's lazy vectors against
// the same chain with forced host round-trips between stages (what a
// naive implementation without device-residency tracking would do).
#include "bench_util.h"

int main() {
  bench::setupCacheDir("lazycopy");
  bench::setupSystem(1);

  const auto n = std::size_t(double(1 << 18) * bench::scale());
  std::vector<float> data(n, 1.0f);

  skelcl::Map<float> inc("float i(float x) { return x + 1.0f; }");
  skelcl::Zip<float> add("float a(float x, float y) { return x + y; }");
  skelcl::Reduce<float> sum("float s(float x, float y) { return x + y; }");
  const int chainLength = 6;

  bench::heading("Ablation: lazy copying on a " +
                 std::to_string(chainLength) + "-stage skeleton chain (n=" +
                 std::to_string(n) + ")");

  // Lazy (SkelCL semantics): intermediate vectors stay on the device.
  float lazyResult = 0;
  const auto lazyStart = ocl::hostTimeNs();
  {
    skelcl::Vector<float> v(data.data(), n);
    for (int i = 0; i < chainLength; ++i) {
      v = inc(v);
    }
    skelcl::Vector<float> doubled = add(v, v);
    lazyResult = sum(doubled).getValue();
  }
  const double lazyMs = double(ocl::hostTimeNs() - lazyStart) * 1e-6;

  // Eager: force a download + fresh upload between stages.
  float eagerResult = 0;
  const auto eagerStart = ocl::hostTimeNs();
  {
    std::vector<float> host = data;
    for (int i = 0; i < chainLength; ++i) {
      skelcl::Vector<float> v(host.data(), n); // upload
      skelcl::Vector<float> out = inc(v);
      host = out.hostData(); // download
    }
    skelcl::Vector<float> v(host.data(), n);
    skelcl::Vector<float> doubled = add(v, v);
    eagerResult = sum(doubled).getValue();
  }
  const double eagerMs = double(ocl::hostTimeNs() - eagerStart) * 1e-6;

  std::printf("%-24s %14s\n", "variant", "virtual[ms]");
  std::printf("%-24s %14.3f\n", "lazy (SkelCL)", lazyMs);
  std::printf("%-24s %14.3f\n", "eager round-trips", eagerMs);
  std::printf("lazy speedup: %.2fx\n", eagerMs / lazyMs);
  const bool ok = lazyResult == eagerResult && lazyMs < eagerMs;
  std::printf("results agree: %s\n",
              lazyResult == eagerResult ? "yes" : "NO (BUG)");
  skelcl::terminate();
  return ok ? 0 : 1;
}
