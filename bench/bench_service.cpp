// Multi-tenant job service: saturation, fair-share, cross-tenant
// batching, and fault isolation — the service-level counterparts of the
// paper's single-program benchmarks, measured in virtual time on the
// simulated four-GPU Tesla S1070 (two GPUs for the fault scenario).
//
// Four properties are asserted (the binary exits non-zero otherwise):
//
//  1. Saturation curve. Four tenants offer map/zip jobs at load factors
//     {0.25, 0.5, 1, 2, 4} of the measured service capacity, with
//     Job::arrivalNs spacing the arrivals on the virtual clock (pump
//     mode idles the host between arrivals, so the open-loop arrival
//     process is exact). Throughput must scale in the subcritical
//     region and flatten past the knee, and p99 latency must blow up
//     under overload — the textbook saturation shape.
//
//  2. Fair share. A heavy tenant floods the server before a light
//     tenant submits a handful of jobs. Under FIFO the light tenant
//     drains behind the whole backlog; weighted fair-share (least
//     accumulated device-cycles / weight first) must cut the light
//     tenant's average latency by >= 2x. A second cycle checks 2:1
//     weights converge to a 2:1 device-cycle split while both tenants
//     stay backlogged.
//
//  3. Cross-tenant batching. The same 4-tenant workload runs once
//     through a shared batching server and once as per-tenant isolated
//     cycles (program memo cleared per tenant, batching off — the
//     "every tenant links its own SkelCL" baseline). The shared server
//     must win >= 1.3x in virtual makespan and resolve the program
//     fewer times (kernel-cache hits: one shared load vs one per
//     tenant).
//
//  4. Fault isolation. Tenants alpha (Map jobs, GPU 0) and beta (Zip
//     jobs, GPU 1) share a server while SKELCL_FAULT_PLAN kills beta's
//     device on its second kernel launch. Beta's affected jobs must
//     fail with typed ocl::DeviceLost on their own JobHandles only;
//     alpha's outputs must be byte-identical to its solo run.
//
// Output: human-readable tables plus one `BENCH {...}` JSON line per
// measurement. `--smoke` shrinks sizes; ctest runs it under
// `perf-smoke` (and `service`).
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

#include "ocl/fault.h"
#include "service/service.h"

namespace {

namespace svc = skelcl::service;

struct JobSink {
  std::vector<float> data;
};

/// Map(Zip) chain over fresh seeded data, pinned to one GPU — the
/// standard tenant job of the saturation and batching scenarios.
svc::Job chainJob(const std::string& key, std::size_t seed, std::size_t n,
                  std::size_t gpu, const std::shared_ptr<JobSink>& sink,
                  std::uint64_t arrivalNs = 0) {
  svc::Job job;
  job.programKey = key;
  job.arrivalNs = arrivalNs;
  auto out = std::make_shared<skelcl::Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    skelcl::Zip<float> mult(
        "float svb_mul(float x, float y) { return x * y; }");
    skelcl::Map<float> scale(
        "float svb_scale(float x) { return 0.5f * x + 1.0f; }");
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = float((i + 3 * seed) % 31) * 0.25f;
      b[i] = float((i * 7 + seed) % 29) * 0.5f;
    }
    skelcl::Vector<float> va(std::move(a));
    skelcl::Vector<float> vb(std::move(b));
    va.setDistribution(skelcl::Distribution::Single, gpu);
    vb.setDistribution(skelcl::Distribution::Single, gpu);
    *out = scale(mult(va, vb));
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

/// Single-Map job ("skelcl_map" launches) — tenant alpha of the fault
/// scenario.
svc::Job mapJob(std::size_t seed, std::size_t n, std::size_t gpu,
                const std::shared_ptr<JobSink>& sink) {
  svc::Job job;
  job.programKey = "svc-map";
  auto out = std::make_shared<skelcl::Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    skelcl::Map<float> twist(
        "float svb_twist(float x) { return 2.0f * x + 1.0f; }");
    std::vector<float> a(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = float((i + 11 * seed) % 37) * 0.125f;
    }
    skelcl::Vector<float> va(std::move(a));
    va.setDistribution(skelcl::Distribution::Single, gpu);
    *out = twist(va);
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

/// Single-Zip job ("skelcl_zip" launches) — tenant beta of the fault
/// scenario; the fault plan's `~skelcl_zip` pattern targets only these.
svc::Job zipJob(std::size_t seed, std::size_t n, std::size_t gpu,
                const std::shared_ptr<JobSink>& sink) {
  svc::Job job;
  job.programKey = "svc-zip";
  auto out = std::make_shared<skelcl::Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    skelcl::Zip<float> pair(
        "float svb_pair(float x, float y) { return x + y; }");
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = float((i + 5 * seed) % 23) * 0.5f;
      b[i] = float((i * 3 + seed) % 19) * 0.25f;
    }
    skelcl::Vector<float> va(std::move(a));
    skelcl::Vector<float> vb(std::move(b));
    va.setDistribution(skelcl::Distribution::Single, gpu);
    vb.setDistribution(skelcl::Distribution::Single, gpu);
    *out = pair(va, vb);
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

double percentile(std::vector<std::uint64_t> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t rank = std::min(
      values.size() - 1,
      std::size_t(q * double(values.size())));
  return double(values[rank]);
}

// --- 1. Saturation ---------------------------------------------------------

struct SatPoint {
  double load = 0;          // offered load / measured capacity
  double throughput = 0;    // completed jobs per virtual second
  double p50Ms = 0;
  double p99Ms = 0;
};

/// One open-loop run: `tenants` tenants jointly offer jobs with
/// aggregate interarrival serviceNs/load (load 0 = all arrive at once,
/// the capacity calibration).
SatPoint runSaturation(double load, std::uint64_t serviceNs,
                       std::size_t tenants, std::size_t jobsPerTenant,
                       std::size_t n, std::uint64_t* makespanNs) {
  bench::setupSystem(4);
  SatPoint out;
  out.load = load;
  {
    svc::ServiceConfig config;
    config.policy = svc::Policy::Fifo;
    config.batching = true;
    config.batchLimit = 8;
    config.queueCap = jobsPerTenant;
    svc::JobServer server(config);
    std::vector<svc::Session*> sessions;
    for (std::size_t t = 0; t < tenants; ++t) {
      sessions.push_back(
          &server.openSession("sat-" + std::to_string(t)));
    }

    const std::uint64_t t0 = ocl::hostTimeNs();
    const std::uint64_t interNs =
        load > 0 ? std::uint64_t(double(serviceNs) / load) : 0;
    std::vector<svc::JobHandle> handles;
    std::vector<std::shared_ptr<JobSink>> sinks;
    for (std::size_t j = 0; j < jobsPerTenant; ++j) {
      for (std::size_t t = 0; t < tenants; ++t) {
        const std::size_t k = j * tenants + t;
        auto sink = std::make_shared<JobSink>();
        sinks.push_back(sink);
        handles.push_back(sessions[t]->submit(
            chainJob("svc-sat", k, n, k % 4, sink, t0 + k * interNs)));
      }
    }
    server.pump();

    *makespanNs = ocl::hostTimeNs() - t0;
    std::vector<std::uint64_t> latencies;
    for (const svc::JobHandle& handle : handles) {
      handle.rethrow();
      latencies.push_back(handle.stats().latencyNs());
    }
    for (const auto& sink : sinks) {
      if (sink->data.size() != n) {
        throw common::Error("saturation job lost its output");
      }
    }
    out.throughput =
        double(handles.size()) / (double(*makespanNs) * 1e-9);
    out.p50Ms = percentile(latencies, 0.50) * 1e-6;
    out.p99Ms = percentile(latencies, 0.99) * 1e-6;
  }
  skelcl::terminate();
  return out;
}

bool benchSaturation(bool smoke) {
  const std::size_t tenants = 4;
  const std::size_t jobsPerTenant = smoke ? 4 : 10;
  const std::size_t n = smoke ? (std::size_t(1) << 12)
                              : (std::size_t(1) << 13);

  bench::subheading("saturation curve (open-loop arrivals, pump mode)");
  // Capacity calibration: every job available at once.
  std::uint64_t makespanNs = 0;
  runSaturation(0, 1, tenants, jobsPerTenant, n, &makespanNs);
  const std::uint64_t serviceNs =
      makespanNs / (tenants * jobsPerTenant);
  std::printf("capacity: %.3f ms per job (batched, 4 GPUs)\n",
              double(serviceNs) * 1e-6);

  const double loads[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<SatPoint> curve;
  std::printf("%8s %16s %12s %12s\n", "load", "jobs/s (virt)", "p50 ms",
              "p99 ms");
  for (const double load : loads) {
    curve.push_back(runSaturation(load, serviceNs, tenants,
                                  jobsPerTenant, n, &makespanNs));
    const SatPoint& p = curve.back();
    std::printf("%8.2f %16.1f %12.3f %12.3f\n", p.load, p.throughput,
                p.p50Ms, p.p99Ms);
    bench::BenchJson("service_saturation")
        .field("load", p.load)
        .field("tenants", std::uint64_t(tenants))
        .field("jobs", std::uint64_t(tenants * jobsPerTenant))
        .field("throughput_jobs_per_s", p.throughput)
        .field("p50_ms", p.p50Ms)
        .field("p99_ms", p.p99Ms)
        .print();
  }

  const double growth = curve[1].throughput / curve[0].throughput;
  const double flattening = curve[4].throughput / curve[3].throughput;
  const double blowup = curve[4].p99Ms / curve[0].p99Ms;
  const bool ok = growth >= 1.4 && flattening <= 1.3 && blowup >= 2.0;
  std::printf("subcritical growth %.2fx (>= 1.4), saturated growth "
              "%.2fx (<= 1.3), p99 blow-up %.1fx (>= 2)  %s\n",
              growth, flattening, blowup, ok ? "ok" : "VIOLATION");
  return ok;
}

// --- 2. Fair share ---------------------------------------------------------

struct HeavyLight {
  double lightAvgMs = 0;
  double heavyAvgMs = 0;
};

HeavyLight runHeavyLight(svc::Policy policy, std::size_t heavyJobs,
                         std::size_t lightJobs, std::size_t n) {
  bench::setupSystem(4);
  HeavyLight out;
  {
    svc::ServiceConfig config;
    config.policy = policy;
    config.batching = false; // job-granularity scheduling under test
    config.queueCap = heavyJobs + lightJobs;
    svc::JobServer server(config);
    svc::Session& heavy = server.openSession("heavy");
    svc::Session& light = server.openSession("light");

    std::vector<svc::JobHandle> heavyHandles, lightHandles;
    std::vector<std::shared_ptr<JobSink>> sinks;
    for (std::size_t j = 0; j < heavyJobs; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      heavyHandles.push_back(
          heavy.submit(chainJob("svc-heavy", j, n, j % 4, sink)));
    }
    for (std::size_t j = 0; j < lightJobs; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      lightHandles.push_back(
          light.submit(chainJob("svc-light", 100 + j, n, j % 4, sink)));
    }
    server.pump();

    std::uint64_t lightNs = 0, heavyNs = 0;
    for (const auto& handle : lightHandles) {
      handle.rethrow();
      lightNs += handle.stats().latencyNs();
    }
    for (const auto& handle : heavyHandles) {
      handle.rethrow();
      heavyNs += handle.stats().latencyNs();
    }
    out.lightAvgMs = double(lightNs) / double(lightJobs) * 1e-6;
    out.heavyAvgMs = double(heavyNs) / double(heavyJobs) * 1e-6;
  }
  skelcl::terminate();
  return out;
}

/// 2:1 weights, both tenants backlogged with equal jobs: counts how many
/// of the first half of dispatches went to the weight-2 tenant.
std::size_t runWeightedSplit(std::size_t jobsEach, std::size_t n) {
  bench::setupSystem(4);
  std::size_t firstHalfA = 0;
  {
    svc::ServiceConfig config;
    config.policy = svc::Policy::FairShare;
    config.batching = false;
    config.queueCap = jobsEach;
    svc::JobServer server(config);
    svc::Session& a = server.openSession("w2", /*weight=*/2.0);
    svc::Session& b = server.openSession("w1", /*weight=*/1.0);

    std::vector<std::pair<svc::JobHandle, bool>> handles; // (handle, isA)
    std::vector<std::shared_ptr<JobSink>> sinks;
    for (std::size_t j = 0; j < jobsEach; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      handles.emplace_back(
          a.submit(chainJob("svc-w", j, n, 0, sink)), true);
    }
    for (std::size_t j = 0; j < jobsEach; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      handles.emplace_back(
          b.submit(chainJob("svc-w", 50 + j, n, 0, sink)), false);
    }
    server.pump();

    std::vector<std::pair<std::uint64_t, bool>> order;
    for (const auto& [handle, isA] : handles) {
      handle.rethrow();
      order.emplace_back(handle.stats().dispatchNs, isA);
    }
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < jobsEach; ++i) {
      firstHalfA += order[i].second ? 1 : 0;
    }
  }
  skelcl::terminate();
  return firstHalfA;
}

bool benchFairShare(bool smoke) {
  const std::size_t heavyJobs = smoke ? 12 : 24;
  const std::size_t lightJobs = smoke ? 3 : 4;
  const std::size_t n = smoke ? (std::size_t(1) << 12)
                              : (std::size_t(1) << 13);

  bench::subheading("fair share: heavy flood vs light tenant");
  const HeavyLight fifo =
      runHeavyLight(svc::Policy::Fifo, heavyJobs, lightJobs, n);
  const HeavyLight fair =
      runHeavyLight(svc::Policy::FairShare, heavyJobs, lightJobs, n);
  const double ratio = fifo.lightAvgMs / fair.lightAvgMs;
  std::printf("light tenant avg latency: fifo %.3f ms, fair %.3f ms "
              "(%.1fx better), heavy under fair %.3f ms\n",
              fifo.lightAvgMs, fair.lightAvgMs, ratio, fair.heavyAvgMs);

  const std::size_t jobsEach = smoke ? 9 : 12;
  const std::size_t firstHalfA = runWeightedSplit(jobsEach, n);
  // While both stay backlogged, a 2.0-weight tenant should take ~2/3 of
  // dispatches: 2/3 * jobsEach of the first jobsEach slots.
  const double share = double(firstHalfA) / double(jobsEach);
  std::printf("2:1 weights: weight-2 tenant took %zu of the first %zu "
              "dispatches (%.0f%%)\n",
              firstHalfA, jobsEach, share * 100.0);

  const bool ok = ratio >= 2.0 && share >= 0.55 && share <= 0.8;
  bench::BenchJson("service_fair_share")
      .field("heavy_jobs", std::uint64_t(heavyJobs))
      .field("light_jobs", std::uint64_t(lightJobs))
      .field("light_fifo_ms", fifo.lightAvgMs)
      .field("light_fair_ms", fair.lightAvgMs)
      .field("light_latency_ratio", ratio)
      .field("weighted_first_half_share", share)
      .field("ok", ok)
      .print();
  if (!ok) {
    std::printf("fair-share VIOLATION\n");
  }
  return ok;
}

// --- 3. Cross-tenant batching ---------------------------------------------

struct BatchRun {
  std::uint64_t makespanNs = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t coalescedJobs = 0;
  std::uint64_t maxBatch = 0;
};

BatchRun runShared(std::size_t tenants, std::size_t jobsPerTenant,
                   std::size_t n) {
  bench::setupSystem(4);
  skelcl::detail::Runtime::instance().clearProgramMemo();
  BatchRun out;
  skelcl::detail::StatsScope stats;
  {
    svc::ServiceConfig config;
    config.policy = svc::Policy::Fifo;
    config.batching = true;
    config.batchLimit = 8;
    config.queueCap = jobsPerTenant;
    svc::JobServer server(config);
    std::vector<svc::Session*> sessions;
    for (std::size_t t = 0; t < tenants; ++t) {
      sessions.push_back(
          &server.openSession("batch-" + std::to_string(t)));
    }
    std::vector<std::shared_ptr<JobSink>> sinks;
    std::vector<svc::JobHandle> handles;
    const std::uint64_t t0 = ocl::hostTimeNs();
    for (std::size_t t = 0; t < tenants; ++t) {
      for (std::size_t j = 0; j < jobsPerTenant; ++j) {
        const std::size_t k = t * jobsPerTenant + j;
        auto sink = std::make_shared<JobSink>();
        sinks.push_back(sink);
        handles.push_back(
            sessions[t]->submit(chainJob("svc-batch", k, n, k % 4, sink)));
      }
    }
    server.pump();
    out.makespanNs = ocl::hostTimeNs() - t0;
    for (const auto& handle : handles) {
      handle.rethrow();
    }
    const auto serverStats = server.serverStats();
    out.coalescedJobs = serverStats.coalescedJobs;
    out.maxBatch = serverStats.maxBatch;
  }
  const auto cache = stats.cacheDelta();
  out.cacheHits = cache.hits;
  out.cacheMisses = cache.misses;
  skelcl::terminate();
  return out;
}

/// The isolation baseline: each tenant gets its own init cycle with a
/// cleared program memo (its "own process"; the disk cache stays warm),
/// no batching, jobs back to back. Makespans add up.
BatchRun runIsolated(std::size_t tenants, std::size_t jobsPerTenant,
                     std::size_t n) {
  BatchRun out;
  for (std::size_t t = 0; t < tenants; ++t) {
    bench::setupSystem(4);
    skelcl::detail::Runtime::instance().clearProgramMemo();
    skelcl::detail::StatsScope stats;
    {
      svc::ServiceConfig config;
      config.policy = svc::Policy::Fifo;
      config.batching = false;
      config.queueCap = jobsPerTenant;
      svc::JobServer server(config);
      svc::Session& session =
          server.openSession("iso-" + std::to_string(t));
      std::vector<std::shared_ptr<JobSink>> sinks;
      std::vector<svc::JobHandle> handles;
      const std::uint64_t t0 = ocl::hostTimeNs();
      for (std::size_t j = 0; j < jobsPerTenant; ++j) {
        const std::size_t k = t * jobsPerTenant + j;
        auto sink = std::make_shared<JobSink>();
        sinks.push_back(sink);
        handles.push_back(
            session.submit(chainJob("svc-batch", k, n, k % 4, sink)));
      }
      server.pump();
      out.makespanNs += ocl::hostTimeNs() - t0;
      for (const auto& handle : handles) {
        handle.rethrow();
      }
    }
    const auto cache = stats.cacheDelta();
    out.cacheHits += cache.hits;
    out.cacheMisses += cache.misses;
    skelcl::terminate();
  }
  return out;
}

bool benchBatching(bool smoke) {
  const std::size_t tenants = 4;
  const std::size_t jobsPerTenant = smoke ? 4 : 6;
  const std::size_t n = smoke ? (std::size_t(1) << 12)
                              : (std::size_t(1) << 13);

  bench::subheading("cross-tenant batching vs per-tenant isolation");
  // Warm the on-disk kernel cache so both modes measure resolution, not
  // first-ever compilation.
  runShared(tenants, 1, n);

  const BatchRun shared = runShared(tenants, jobsPerTenant, n);
  const BatchRun isolated = runIsolated(tenants, jobsPerTenant, n);
  const double speedup =
      double(isolated.makespanNs) / double(shared.makespanNs);
  std::printf("shared   %10.3f ms, %llu cache hits + %llu misses, "
              "max batch %llu, %llu coalesced\n",
              double(shared.makespanNs) * 1e-6,
              (unsigned long long)shared.cacheHits,
              (unsigned long long)shared.cacheMisses,
              (unsigned long long)shared.maxBatch,
              (unsigned long long)shared.coalescedJobs);
  std::printf("isolated %10.3f ms, %llu cache hits + %llu misses\n",
              double(isolated.makespanNs) * 1e-6,
              (unsigned long long)isolated.cacheHits,
              (unsigned long long)isolated.cacheMisses);

  const std::uint64_t sharedLoads = shared.cacheHits + shared.cacheMisses;
  const std::uint64_t isolatedLoads =
      isolated.cacheHits + isolated.cacheMisses;
  const bool ok = speedup >= 1.3 && shared.maxBatch >= 2 &&
                  isolatedLoads > sharedLoads;
  std::printf("amortization %.2fx (>= 1.3), program resolutions %llu vs "
              "%llu  %s\n",
              speedup, (unsigned long long)sharedLoads,
              (unsigned long long)isolatedLoads,
              ok ? "ok" : "VIOLATION");
  bench::BenchJson("service_batching")
      .field("tenants", std::uint64_t(tenants))
      .field("jobs_per_tenant", std::uint64_t(jobsPerTenant))
      .field("shared_ms", double(shared.makespanNs) * 1e-6)
      .field("isolated_ms", double(isolated.makespanNs) * 1e-6)
      .field("speedup", speedup)
      .field("shared_program_loads", sharedLoads)
      .field("isolated_program_loads", isolatedLoads)
      .field("max_batch", shared.maxBatch)
      .field("coalesced_jobs", shared.coalescedJobs)
      .field("ok", ok)
      .print();
  return ok;
}

// --- 4. Fault isolation ----------------------------------------------------

/// Tenant alpha alone on the same two-GPU system — the reference outputs
/// the shared faulted run must reproduce byte-identically.
std::vector<std::vector<float>> runAlphaSolo(std::size_t jobs,
                                             std::size_t n) {
  bench::setupSystem(2);
  std::vector<std::vector<float>> outputs;
  {
    svc::ServiceConfig config;
    config.policy = svc::Policy::Fifo;
    config.batching = false;
    config.queueCap = jobs;
    svc::JobServer server(config);
    svc::Session& alpha = server.openSession("alpha");
    std::vector<std::shared_ptr<JobSink>> sinks;
    std::vector<svc::JobHandle> handles;
    for (std::size_t j = 0; j < jobs; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      handles.push_back(alpha.submit(mapJob(j, n, /*gpu=*/0, sink)));
    }
    server.pump();
    for (const auto& handle : handles) {
      handle.rethrow();
    }
    for (const auto& sink : sinks) {
      outputs.push_back(sink->data);
    }
  }
  skelcl::terminate();
  return outputs;
}

bool benchFaultIsolation(bool smoke) {
  const std::size_t jobs = smoke ? 4 : 6;
  const std::size_t n = smoke ? (std::size_t(1) << 12)
                              : (std::size_t(1) << 13);

  bench::subheading("tenant fault isolation (injected device loss)");
  const auto solo = runAlphaSolo(jobs, n);

  // Beta's second Zip launch kills its device (GPU 1); alpha's Map jobs
  // run on GPU 0 and must not notice.
  ::setenv("SKELCL_FAULT_PLAN", "kernel~skelcl_zip@2=lost", 1);
  bench::setupSystem(2);
  ::unsetenv("SKELCL_FAULT_PLAN");

  bool alphaIdentical = true;
  std::size_t betaFailed = 0;
  bool betaTyped = true;
  {
    svc::ServiceConfig config;
    config.policy = svc::Policy::Fifo;
    config.batching = false;
    config.queueCap = jobs;
    svc::JobServer server(config);
    svc::Session& alpha = server.openSession("alpha");
    svc::Session& beta = server.openSession("beta");

    std::vector<std::shared_ptr<JobSink>> alphaSinks;
    std::vector<svc::JobHandle> alphaHandles, betaHandles;
    for (std::size_t j = 0; j < jobs; ++j) {
      auto sinkA = std::make_shared<JobSink>();
      alphaSinks.push_back(sinkA);
      alphaHandles.push_back(alpha.submit(mapJob(j, n, /*gpu=*/0, sinkA)));
      auto sinkB = std::make_shared<JobSink>();
      betaHandles.push_back(beta.submit(zipJob(j, n, /*gpu=*/1, sinkB)));
    }
    server.pump();

    for (std::size_t j = 0; j < jobs; ++j) {
      alphaHandles[j].rethrow();
      if (alphaSinks[j]->data.size() != solo[j].size() ||
          std::memcmp(alphaSinks[j]->data.data(), solo[j].data(),
                      solo[j].size() * sizeof(float)) != 0) {
        alphaIdentical = false;
      }
      if (betaHandles[j].failed()) {
        ++betaFailed;
        try {
          betaHandles[j].rethrow();
        } catch (const ocl::DeviceLost&) {
          // the expected typed error
        } catch (...) {
          betaTyped = false;
        }
      }
    }
  }
  ocl::FaultInjector::instance().reset();
  skelcl::terminate();

  // Beta's first job precedes the fault; every later one hits the lost
  // device.
  const bool ok = alphaIdentical && betaTyped && betaFailed == jobs - 1;
  std::printf("alpha outputs %s, beta %zu/%zu jobs failed (typed "
              "DeviceLost: %s)  %s\n",
              alphaIdentical ? "byte-identical to solo" : "DIVERGED",
              betaFailed, jobs, betaTyped ? "yes" : "NO",
              ok ? "ok" : "VIOLATION");
  bench::BenchJson("service_fault_isolation")
      .field("jobs_per_tenant", std::uint64_t(jobs))
      .field("alpha_identical", alphaIdentical)
      .field("beta_failed", std::uint64_t(betaFailed))
      .field("beta_typed_device_lost", betaTyped)
      .field("ok", ok)
      .print();
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("service");
  bench::traceSpec();

  bench::heading("Multi-tenant job service (virtual time)");
  bool ok = true;
  try {
    ok = benchSaturation(smoke) && ok;
    ok = benchFairShare(smoke) && ok;
    ok = benchBatching(smoke) && ok;
    ok = benchFaultIsolation(smoke) && ok;
  } catch (const common::Error& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    ok = false;
  }

  if (!ok) {
    std::fprintf(stderr, "\nservice bench violation: saturation shape, "
                         "fair-share bound, batching amortization, or "
                         "fault isolation failed\n");
    return 1;
  }
  return 0;
}
