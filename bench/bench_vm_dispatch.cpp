// Interpreter dispatch throughput: O0 vs O2 bytecode on the same launches.
//
// The optimizer's contract is "host-side speedup only": per-launch
// simulated cycles must be identical across levels while the dynamic
// instruction count (and with it wall-clock time) drops. This bench
// measures instructions/second for a barrier-free hot kernel (the
// mandelbrot inner loop, which takes the VM's straight-line fast path)
// and a barrier-heavy tree reduction (round-robin scheduled), verifies
// the invariants, and reports the O2 speedup.
//
// Output: human-readable lines plus machine-readable `BENCH {...}` JSON
// lines, one object per measurement.
//
// `--smoke` shrinks the workload to seconds-free sizes; ctest runs that
// mode under the `perf-smoke` label.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clc/codegen.h"
#include "clc/opt.h"
#include "clc/vm.h"
#include "common/stopwatch.h"

namespace {

std::string readRepoFile(const std::string& relative) {
  const std::string path =
      std::string(SKELCL_REPRO_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const char* kReduceSource = R"(
__kernel void reduce(__global float* out, __global const float* in,
                     __local float* tmp) {
  int lid = (int)get_local_id(0);
  int gid = (int)get_global_id(0);
  int lsz = (int)get_local_size(0);
  tmp[lid] = in[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = lsz / 2; s > 0; s /= 2) {
    if (lid < s) {
      tmp[lid] = tmp[lid] + tmp[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    out[gid / lsz] = tmp[0];
  }
}
)";

struct Workload {
  std::string name;
  std::string kernel;
  std::string source;
  clc::NDRange range;
  std::vector<clc::KernelArgValue> args;
  std::vector<std::vector<std::uint8_t>> buffers; // pristine inputs
  int repetitions = 1;
};

struct Measurement {
  double seconds = 0;
  clc::LaunchStats stats;                         // of one launch
  std::vector<std::vector<std::uint8_t>> buffers; // after the last launch
};

Measurement run(const Workload& w, clc::OptLevel level) {
  clc::Program program = clc::compile(w.source);
  clc::optimize(program, level);

  Measurement m;
  // Warm-up launch (also produces the buffers used for the output check).
  m.buffers = w.buffers;
  {
    std::vector<clc::Segment> segments;
    for (auto& b : m.buffers) {
      segments.push_back(clc::Segment{b.data(), b.size()});
    }
    m.stats = clc::executeKernel(program, w.kernel, w.range, w.args,
                                 segments, nullptr);
  }

  common::Stopwatch timer;
  for (int rep = 0; rep < w.repetitions; ++rep) {
    auto buffers = w.buffers;
    std::vector<clc::Segment> segments;
    for (auto& b : buffers) {
      segments.push_back(clc::Segment{b.data(), b.size()});
    }
    (void)clc::executeKernel(program, w.kernel, w.range, w.args, segments,
                             nullptr);
  }
  m.seconds = timer.elapsedSeconds();
  return m;
}

clc::KernelArgValue bufferArg(std::uint32_t segmentIndex) {
  clc::KernelArgValue arg;
  arg.kind = clc::KernelArgValue::Kind::Buffer;
  arg.segmentIndex = segmentIndex;
  return arg;
}

clc::KernelArgValue scalarI32(std::int32_t v) {
  clc::KernelArgValue arg;
  arg.scalar = std::uint64_t(std::int64_t(v));
  return arg;
}

clc::KernelArgValue scalarF32(float v) {
  clc::KernelArgValue arg;
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  arg.scalar = bits;
  return arg;
}

Workload mandelbrotWorkload(bool smoke) {
  Workload w;
  w.name = "mandelbrot (barrier-free)";
  w.kernel = "mandelbrot";
  w.source = readRepoFile("src/mandelbrot/kernels/mandelbrot_opencl.cl");
  const int width = smoke ? 32 : 192;
  const int height = smoke ? 16 : 128;
  const int maxIter = smoke ? 32 : 256;
  w.range.dims = 2;
  w.range.globalSize[0] = std::size_t(width);
  w.range.globalSize[1] = std::size_t(height);
  w.range.localSize[0] = 16;
  w.range.localSize[1] = 8;
  w.buffers.emplace_back(std::size_t(width) * height * 4, 0xff);
  w.args = {bufferArg(0),
            scalarI32(width),
            scalarI32(height),
            scalarF32(-2.0f),
            scalarF32(-1.0f),
            scalarF32(3.0f / float(width)),
            scalarF32(2.0f / float(height)),
            scalarI32(maxIter)};
  w.repetitions = smoke ? 1 : 3;
  return w;
}

Workload reduceWorkload(bool smoke) {
  Workload w;
  w.name = "tree reduction (barrier-heavy)";
  w.kernel = "reduce";
  w.source = kReduceSource;
  const std::size_t n = smoke ? 1024 : 1 << 16;
  const std::size_t local = 64;
  w.range.dims = 1;
  w.range.globalSize[0] = n;
  w.range.localSize[0] = local;
  std::vector<float> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = float(i % 97) * 0.5f - 10.0f;
  }
  std::vector<std::uint8_t> inBytes(n * 4);
  std::memcpy(inBytes.data(), in.data(), inBytes.size());
  w.buffers.emplace_back(n / local * 4, 0);
  w.buffers.push_back(std::move(inBytes));
  clc::KernelArgValue localArg;
  localArg.kind = clc::KernelArgValue::Kind::Local;
  localArg.localSize = std::uint32_t(local * 4);
  w.args = {bufferArg(0), bufferArg(1), localArg};
  w.repetitions = smoke ? 1 : 3;
  return w;
}

/// Runs one workload at O0 and O2, checks the invariants, and prints the
/// comparison. Returns false on an invariant violation.
bool compare(const Workload& w) {
  const Measurement o0 = run(w, clc::OptLevel::O0);
  const Measurement o2 = run(w, clc::OptLevel::O2);

  const bool sameOutput = o0.buffers == o2.buffers;
  const bool sameCycles =
      o0.stats.totalCycles == o2.stats.totalCycles &&
      o0.stats.globalBytesRead == o2.stats.globalBytesRead &&
      o0.stats.globalBytesWritten == o2.stats.globalBytesWritten &&
      o0.stats.barrierWaits == o2.stats.barrierWaits;

  const double launches = double(w.repetitions);
  const double ips0 = double(o0.stats.instructions) * launches / o0.seconds;
  const double ips2 = double(o2.stats.instructions) * launches / o2.seconds;
  const double speedup = o0.seconds / o2.seconds;

  std::printf("\n=== %s ===\n", w.name.c_str());
  std::printf("  O0: %10llu instr/launch  %8.3f s  %12.0f instr/s\n",
              (unsigned long long)o0.stats.instructions, o0.seconds, ips0);
  std::printf("  O2: %10llu instr/launch  %8.3f s  %12.0f instr/s\n",
              (unsigned long long)o2.stats.instructions, o2.seconds, ips2);
  std::printf("  wall-clock speedup O2/O0: %.2fx\n", speedup);
  std::printf("  simulated cycles: %llu (O0) vs %llu (O2) -> %s\n",
              (unsigned long long)o0.stats.totalCycles,
              (unsigned long long)o2.stats.totalCycles,
              sameCycles ? "invariant" : "VIOLATION");
  std::printf("  outputs bit-identical: %s\n", sameOutput ? "yes" : "NO");

  for (int level = 0; level <= 2; level += 2) {
    const Measurement& m = level == 0 ? o0 : o2;
    const double ips = level == 0 ? ips0 : ips2;
    bench::BenchJson("vm_dispatch")
        .field("kernel", w.kernel)
        .field("opt", level)
        .field("instructions_per_launch",
               std::uint64_t(m.stats.instructions))
        .field("seconds", m.seconds)
        .field("instr_per_sec", ips)
        .field("total_cycles", std::uint64_t(m.stats.totalCycles))
        .print();
  }
  bench::BenchJson("vm_dispatch")
      .field("kernel", w.kernel)
      .field("speedup_o2", speedup)
      .field("cycles_invariant", sameCycles)
      .field("outputs_identical", sameOutput)
      .print();

  return sameOutput && sameCycles;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  bool ok = true;
  ok = compare(mandelbrotWorkload(smoke)) && ok;
  ok = compare(reduceWorkload(smoke)) && ok;

  if (!ok) {
    std::fprintf(stderr, "\ninvariant violation: O0 and O2 disagree\n");
    return 1;
  }
  return 0;
}
