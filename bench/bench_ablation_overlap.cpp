// Ablation: transfer/compute overlap (dual DMA engines + event-graph
// scheduling + double-buffered transfers) vs fully serialized queues.
//
// The runtime change under test is pure *scheduling*: the same commands
// are enqueued either onto out-of-order queues that order only through
// the event DAG and the device's three engine timelines (compute, H2D
// DMA, D2H DMA), or — with SKELCL_SERIALIZE=1 — onto classic in-order
// queues that serialize every command behind the previous one. Outputs
// must be bit-identical and the summed simulated kernel cycles invariant
// across the two modes; only virtual time may differ.
//
// Three scenarios:
//  * dot-product chain (transfer-bound): K independent dot products,
//    each uploading two fresh vectors — uploads split into pieces that
//    double-buffer against the Zip, reductions chain through events, and
//    the host only waits when the scalars are read at the end.
//  * OSEM-style copy->block merge (4 GPUs): per-device cross-device
//    copies overlap the combine kernels through the double-buffered
//    temporaries in Vector::setDistributionCombine.
//  * compute-bound control: a heavy Map on one GPU with a strictly
//    sequential upload -> kernel -> download chain — there is nothing to
//    overlap, so both modes must produce the same virtual time.
//
// Output: human-readable table plus machine-readable `BENCH {...}` JSON
// lines. `--smoke` shrinks sizes; ctest runs it under `perf-smoke` and
// the binary exits non-zero if overlap regresses, outputs differ, or
// cycles drift.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct RunResult {
  std::uint64_t virtualNs = 0;
  std::uint64_t kernelCycles = 0;        // summed over every device queue
  std::vector<std::vector<float>> outputs; // downloaded results
};

std::uint64_t sumQueueCycles() {
  auto& runtime = skelcl::detail::Runtime::instance();
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    total += runtime.queue(d).cumulativeKernelCycles();
  }
  return total;
}

void setSerialized(bool serialized) {
  if (serialized) {
    ::setenv("SKELCL_SERIALIZE", "1", 1);
  } else {
    ::unsetenv("SKELCL_SERIALIZE");
  }
}

/// K independent dot products a.b with fresh host data per pair: the
/// workload the paper's Listing 1 composes from Zip and Reduce. Memory-
/// bound kernels + large uploads => transfer dominated; the overlap run
/// pipelines upload pieces into the Zip and keeps every reduction on the
/// device until the final getValue().
RunResult runDotChain(bool serialized, bool smoke,
                      const std::string& traceTag) {
  setSerialized(serialized);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(1);

  const std::size_t n = smoke ? std::size_t(1) << 16
                              : std::size_t(1) << 20; // 4 MiB per vector
  const std::size_t pairs = smoke ? 2 : 4;

  RunResult out;
  {
    skelcl::Zip<float> mult(
        "float mult(float x, float y) { return x*y; }");
    skelcl::Reduce<float> sum(
        "float sum(float x, float y) { return x+y; }");

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    std::vector<skelcl::Scalar<float>> results;
    for (std::size_t p = 0; p < pairs; ++p) {
      std::vector<float> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = float((i + p) % 31) * 0.25f;
        b[i] = float((i * 7 + p) % 29) * 0.5f;
      }
      skelcl::Vector<float> va(std::move(a));
      skelcl::Vector<float> vb(std::move(b));
      results.push_back(sum(mult(va, vb)));
    }
    // The only host-blocking point: reading the K scalars.
    std::vector<float> values;
    for (auto& r : results) {
      values.push_back(r.getValue());
    }
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelCycles = sumQueueCycles();
    out.outputs.push_back(std::move(values));
  }
  skelcl::terminate();
  return out;
}

/// The list-mode OSEM redistribution: a copy-distributed error image is
/// updated on every device, then collapsed copy->block with a user
/// combine function. The overlap run streams each foreign portion into
/// one temporary while the combine kernel folds the other (double
/// buffering), and the four devices' merges proceed concurrently.
RunResult runOsemMerge(bool serialized, bool smoke,
                       const std::string& traceTag) {
  setSerialized(serialized);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(4);

  const std::size_t n =
      smoke ? std::size_t(1) << 14 : std::size_t(1) << 19;
  const std::size_t iterations = smoke ? 2 : 3;

  RunResult out;
  {
    skelcl::Map<float> touch("float touch(float x) { return x + 1.0f; }");
    const char* addSource =
        "float add(float x, float y) { return x + y; }";

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    for (std::size_t it = 0; it < iterations; ++it) {
      skelcl::Vector<float> c(n, float(it));
      c.setDistribution(skelcl::Distribution::Copy);
      // Update every device's copy on-device (stand-in for computeC).
      touch(c, skelcl::Arguments{}, c);
      // The measured redistribution: copy -> block with combine.
      c.setDistribution(skelcl::Distribution::Block, addSource);
      out.outputs.push_back(c.hostData());
    }
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelCycles = sumQueueCycles();
  }
  skelcl::terminate();
  return out;
}

/// Control: a compute-bound Map (long dependent arithmetic chain per
/// element) on a strictly sequential upload -> kernel -> download chain.
/// Every command depends on the previous one, so the event-graph
/// scheduler has nothing to overlap and both modes must coincide.
RunResult runComputeBound(bool serialized, bool smoke,
                          const std::string& traceTag) {
  setSerialized(serialized);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(1);

  const std::size_t n = smoke ? std::size_t(1) << 14
                              : std::size_t(1) << 18; // 1 MiB: one piece
  RunResult out;
  {
    skelcl::Map<float> heavy(
        "float heavy(float x) {\n"
        "  float acc = x;\n"
        "  for (int i = 0; i < 200; ++i) {\n"
        "    acc = acc * 1.000001f + 0.5f;\n"
        "  }\n"
        "  return acc;\n"
        "}\n");

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = float(i % 101) * 0.125f;
    }
    skelcl::Vector<float> input(std::move(data));
    skelcl::Vector<float> output = heavy(input);
    out.outputs.push_back(output.hostData());
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelCycles = sumQueueCycles();
  }
  skelcl::terminate();
  return out;
}

struct Scenario {
  const char* name;
  RunResult (*run)(bool serialized, bool smoke,
                   const std::string& traceTag);
  bool expectStrictWin; // overlapped must be strictly below serialized
};

bool compare(const Scenario& s, bool smoke) {
  const RunResult serialized =
      s.run(/*serialized=*/true, smoke, std::string(s.name) + ".ser");
  const RunResult overlapped =
      s.run(/*serialized=*/false, smoke, std::string(s.name) + ".ooo");

  const bool identical = serialized.outputs == overlapped.outputs;
  const bool cyclesInvariant =
      serialized.kernelCycles == overlapped.kernelCycles;
  const double ratio =
      double(overlapped.virtualNs) / double(serialized.virtualNs);
  // Strict win where the workload is transfer-bound; never a regression
  // anywhere (identical command stream, weaker ordering constraints).
  const bool timeOk = s.expectStrictWin
                          ? overlapped.virtualNs < serialized.virtualNs
                          : overlapped.virtualNs <= serialized.virtualNs;

  std::printf("%-16s %12.3f ms %12.3f ms   %.3fx   %-9s %s\n", s.name,
              double(serialized.virtualNs) * 1e-6,
              double(overlapped.virtualNs) * 1e-6, ratio,
              identical ? "identical" : "DIFFER",
              cyclesInvariant ? "cycles-invariant" : "CYCLES-DRIFT");
  bench::BenchJson("ablation_overlap")
      .field("scenario", s.name)
      .field("serialized_ms", double(serialized.virtualNs) * 1e-6)
      .field("overlapped_ms", double(overlapped.virtualNs) * 1e-6)
      .field("ratio", ratio)
      .field("kernel_cycles", overlapped.kernelCycles)
      .field("outputs_identical", identical)
      .field("cycles_invariant", cyclesInvariant)
      .print();

  return identical && cyclesInvariant && timeOk;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("ablation-overlap");
  // Claim SKELCL_TRACE before the first init(): each scenario run writes
  // its own <base>.<scenario>.<ser|ooo>.sktrace instead of the runtime
  // overwriting one file per init()/terminate() cycle.
  bench::traceSpec();

  const Scenario scenarios[] = {
      {"dot_chain", runDotChain, true},
      {"osem_merge", runOsemMerge, true},
      {"compute_bound", runComputeBound, false},
  };

  bench::heading("Ablation: overlapped vs serialized transfers "
                 "(virtual time)");
  std::printf("%-16s %15s %15s %8s\n", "scenario", "serialized",
              "overlapped", "ratio");
  bool ok = true;
  for (const Scenario& s : scenarios) {
    ok = compare(s, smoke) && ok;
  }
  // Leave the environment the way a following bench expects it.
  ::unsetenv("SKELCL_SERIALIZE");

  if (!ok) {
    std::fprintf(stderr,
                 "\noverlap ablation violation: regression, output "
                 "mismatch, or cycle drift\n");
    return 1;
  }
  return 0;
}
