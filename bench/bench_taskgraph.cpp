// Ablation: asynchronous task-graph scheduling vs consumption-ordered
// evaluation.
//
// The runtime change under test is the drain-based scheduler: the first
// consumption point dispatches every outstanding independent job before
// issuing its own blocking wait, so the commands of N independent
// skeleton chains sit in the per-device command queues together and
// pipeline. SKELCL_ASYNC=0 is the differential control: the same lazy
// DAG, but each job's commands are enqueued only when its own value is
// read, so every device drains between jobs.
//
// Scenario: N independent dot products sum(mult(a, b)) — the paper's
// Listing 1 composition, N times over fresh data — each pinned to GPU
// p % 4 of the paper's four-GPU Tesla S1070. Synchronous evaluation
// leaves three GPUs idle while the consumed job's GPU finishes; the
// scheduler dispatches all N jobs at the first read, so the four GPUs
// crunch concurrently. The bench asserts, at N=4, >= 1.3x virtual-time
// throughput for async with bit-identical scalars; at N=1 it asserts
// *exactly* equal virtual time (a single-job drain degenerates to the
// synchronous force). Output: human-readable table plus `BENCH {...}`
// JSON. `--smoke` shrinks sizes; ctest runs it under `perf-smoke` and
// the binary exits non-zero on any violation.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

#include "skelcl/detail/scheduler.h"

namespace {

struct RunResult {
  std::uint64_t virtualNs = 0;
  std::uint64_t jobsDispatched = 0;
  std::uint64_t maxConcurrent = 0;
  std::vector<float> values;
};

/// N independent dot products with fresh host data per pair, job p
/// pinned to GPU p % deviceCount; every job is registered before the
/// first scalar is read.
RunResult runDotJobs(bool async, std::size_t jobs, std::size_t n,
                     const std::string& traceTag) {
  ::setenv("SKELCL_ASYNC", async ? "1" : "0", 1);
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(4);

  RunResult out;
  {
    skelcl::Zip<float> mult(
        "float tg_mult(float x, float y) { return x*y; }");
    skelcl::Reduce<float> sum(
        "float tg_sum(float x, float y) { return x+y; }");

    bench::syncAllDevices();
    const std::uint64_t t0 = ocl::hostTimeNs();

    std::vector<skelcl::Scalar<float>> results;
    for (std::size_t p = 0; p < jobs; ++p) {
      std::vector<float> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = float((i + p) % 31) * 0.25f;
        b[i] = float((i * 7 + p) % 29) * 0.5f;
      }
      skelcl::Vector<float> va(std::move(a));
      skelcl::Vector<float> vb(std::move(b));
      const std::size_t gpu =
          p % skelcl::detail::Runtime::instance().deviceCount();
      va.setDistribution(skelcl::Distribution::Single, gpu);
      vb.setDistribution(skelcl::Distribution::Single, gpu);
      results.push_back(sum(mult(va, vb)));
    }
    for (auto& r : results) {
      out.values.push_back(r.getValue());
    }
    bench::syncAllDevices();

    out.virtualNs = ocl::hostTimeNs() - t0;
    const auto stats = skelcl::detail::Scheduler::instance().stats();
    out.jobsDispatched = stats.jobsDispatched;
    out.maxConcurrent = stats.maxConcurrent;
  }
  skelcl::terminate();
  return out;
}

bool compare(std::size_t jobs, std::size_t n, double minSpeedup,
             bool mustMatchExactly) {
  const std::string tag = "taskgraph_n" + std::to_string(jobs);
  const RunResult sync =
      runDotJobs(/*async=*/false, jobs, n, tag + ".sync");
  const RunResult async =
      runDotJobs(/*async=*/true, jobs, n, tag + ".async");

  const bool identical =
      sync.values.size() == async.values.size() &&
      std::memcmp(sync.values.data(), async.values.data(),
                  sync.values.size() * sizeof(float)) == 0;
  const double speedup = double(sync.virtualNs) / double(async.virtualNs);
  const bool timeOk = mustMatchExactly
                          ? sync.virtualNs == async.virtualNs
                          : speedup >= minSpeedup;

  std::printf("N=%-4zu %12.3f ms %12.3f ms   %.3fx   %llu dispatched, "
              "%llu concurrent   %s\n",
              jobs, double(sync.virtualNs) * 1e-6,
              double(async.virtualNs) * 1e-6, speedup,
              (unsigned long long)async.jobsDispatched,
              (unsigned long long)async.maxConcurrent,
              identical ? "identical" : "DIFFER");
  bench::BenchJson("ablation_taskgraph")
      .field("jobs", jobs)
      .field("elements", n)
      .field("sync_ms", double(sync.virtualNs) * 1e-6)
      .field("async_ms", double(async.virtualNs) * 1e-6)
      .field("speedup", speedup)
      .field("jobs_dispatched", async.jobsDispatched)
      .field("max_concurrent", async.maxConcurrent)
      .field("outputs_identical", identical)
      .print();

  return identical && timeOk;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("ablation-taskgraph");
  bench::traceSpec();

  const std::size_t n =
      smoke ? std::size_t(1) << 14 : std::size_t(1) << 17;

  bench::heading("Ablation: async task graph vs consumption-ordered "
                 "evaluation (virtual time)");
  std::printf("%-6s %15s %15s %9s\n", "", "sync", "async", "speedup");

  bool ok = true;
  // A single job must be *exactly* the synchronous schedule.
  ok = compare(/*jobs=*/1, n, 1.0, /*mustMatchExactly=*/true) && ok;
  // Four independent jobs must pipeline: >= 1.3x throughput.
  ok = compare(/*jobs=*/4, n, 1.3, /*mustMatchExactly=*/false) && ok;
  if (!smoke) {
    ok = compare(/*jobs=*/8, n, 1.3, /*mustMatchExactly=*/false) && ok;
  }
  ::unsetenv("SKELCL_ASYNC");

  if (!ok) {
    std::fprintf(stderr,
                 "\ntaskgraph ablation violation: output mismatch, lost "
                 "single-job invariance, or speedup below threshold\n");
    return 1;
  }
  return 0;
}
