// Multi-node cluster simulation: node scaling, interconnect tiers, and
// the energy/cost ledger (DESIGN.md §6j).
//
// Scaling runs R rounds of upload + compute-heavy Map + download over
// `node(t10*2)*N@ib` for N = 1, 2, 4. The two-level block distribution
// splits work across nodes, then across each node's devices; outputs
// must be bit-identical to the single-node run (distribution moves
// chunk boundaries, never results) and 2 nodes must beat 1 by >= 1.3x
// virtual time (the binary exits non-zero otherwise). Each config also
// reports joules (idle power over the makespan, busy-idle power over
// compute time, nJ per DMA byte — live from the load monitor),
// perf-per-watt, and the $-cost of the run (cloud-style: a fixed rate
// per node-hour plus metered energy).
//
// The interconnect comparison runs the same 2-device stencil halo
// exchange on one node (PCIe peer copies), split across two nodes over
// QDR InfiniBand (@ib), and over 10GbE (@eth). Outputs are bit-identical
// in all three; the wire shows up as strictly ordered virtual time
// local <= ib < eth.
//
// Output: human-readable tables plus `BENCH {...}` JSON lines. ctest
// runs `--smoke` under the `perf-smoke;cluster` labels with SKELCL_TRACE
// set; `skeltrace --check-cluster` then audits the 2-node ib trace
// (cross-node bytes flowed, energy ledger reconciles).
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "trace/load_monitor.h"

namespace {

constexpr double kMinTwoNodeSpeedup = 1.3;
// Cloud-style pricing for the $-cost column: metered energy plus a flat
// per-node rental rate. The absolute numbers are arbitrary; the point is
// that more nodes trade rental dollars for energy-and-time dollars.
constexpr double kUsdPerKwh = 0.12;
constexpr double kUsdPerNodeHour = 2.50;

struct EnergyLedger {
  double joules = 0.0;
  double perfPerWatt = 0.0; // kernel cycles per joule
  double costUsd = 0.0;
};

/// Live energy over one measured region: per device, idle watts over the
/// whole makespan plus (busy - idle) watts over its compute-busy time
/// plus nJ per DMA byte, from load-monitor deltas (1 W = 1 nJ/ns).
EnergyLedger ledger(const std::vector<trace::DeviceLoad>& before,
                    const std::vector<trace::DeviceLoad>& after,
                    std::uint64_t makespanNs, std::uint32_t nodes) {
  auto& runtime = skelcl::detail::Runtime::instance();
  double nj = 0.0;
  double cycles = 0.0;
  const auto& devices = runtime.devices();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const ocl::DeviceSpec& spec = devices[d].spec();
    const std::uint64_t busyNs =
        after[d].computeBusyNs - before[d].computeBusyNs;
    const std::uint64_t bytes = after[d].bytesMoved - before[d].bytesMoved;
    nj += spec.idlePowerW * double(makespanNs) +
          (spec.busyPowerW - spec.idlePowerW) * double(busyNs) +
          spec.transferNjPerByte * double(bytes);
    cycles += double(after[d].kernelCycles - before[d].kernelCycles);
  }
  EnergyLedger out;
  out.joules = nj * 1e-9;
  out.perfPerWatt = out.joules > 0.0 ? cycles / out.joules : 0.0;
  const double hours = double(makespanNs) * 1e-9 / 3600.0;
  out.costUsd = out.joules / 3.6e6 * kUsdPerKwh +
                double(nodes) * hours * kUsdPerNodeHour;
  return out;
}

struct ScaleResult {
  std::uint64_t virtualNs = 0;
  std::vector<std::vector<float>> outputs; // one per timed round
  EnergyLedger energy;
};

struct ScaleWorkload {
  std::size_t n = 0;
  std::size_t launches = 0; // in-place Map launches per round
  std::size_t rounds = 0;   // timed rounds (one calibration round extra)
};

std::vector<float> runRound(skelcl::Map<float>& heavy,
                            const ScaleWorkload& w, std::size_t round) {
  std::vector<float> data(w.n);
  for (std::size_t i = 0; i < w.n; ++i) {
    data[i] = float((i * 31 + round * 11) % 89) * 0.03125f;
  }
  skelcl::Vector<float> v(std::move(data));
  v.setDistribution(skelcl::Distribution::Block);
  for (std::size_t l = 0; l < w.launches; ++l) {
    heavy(v, skelcl::Arguments{}, v);
  }
  return v.hostData();
}

ScaleResult runScale(std::uint32_t nodes, const ScaleWorkload& w,
                     const std::string& traceTag) {
  bench::ScopedTrace trace(traceTag);
  const std::string spec =
      "node(t10*2)*" + std::to_string(nodes) + "@ib";
  ocl::configureSystem(ocl::SystemConfig::parse(spec));
  skelcl::init(skelcl::DeviceSelection::allDevices());

  ScaleResult out;
  {
    skelcl::Map<float> heavy(
        "float cheavy(float x) {\n"
        "  float acc = x;\n"
        "  for (int i = 0; i < 64; ++i) {\n"
        "    acc = acc * 1.000001f + 0.5f;\n"
        "  }\n"
        "  return acc;\n"
        "}\n");

    // Calibration round, untimed: builds the kernel.
    runRound(heavy, w, /*round=*/w.rounds);
    bench::syncAllDevices();

    const auto loads0 = trace::LoadMonitor::instance().snapshot();
    const std::uint64_t t0 = ocl::hostTimeNs();
    for (std::size_t r = 0; r < w.rounds; ++r) {
      out.outputs.push_back(runRound(heavy, w, r));
    }
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
    out.energy = ledger(loads0, trace::LoadMonitor::instance().snapshot(),
                        out.virtualNs, nodes);
  }
  skelcl::terminate();
  return out;
}

struct HaloResult {
  std::uint64_t virtualNs = 0;
  std::vector<float> output;
};

struct HaloWorkload {
  std::size_t rows = 0;
  std::size_t width = 0;
  std::size_t iterations = 0;
};

/// Heat-style 5-point stencil on two devices; every iteration ships one
/// halo row per chunk boundary between them — over PCIe when they share
/// a node, over the simulated interconnect when they do not. The grid
/// is wide and shallow on purpose: a fat halo row and a light kernel
/// put the wire on the critical path, so the tier differences are
/// visible in the makespan instead of hiding behind interior compute.
HaloResult runHalo(const std::string& spec, const HaloWorkload& w,
                   const std::string& traceTag) {
  bench::ScopedTrace trace(traceTag);
  ocl::configureSystem(ocl::SystemConfig::parse(spec));
  skelcl::init(skelcl::DeviceSelection::allDevices());

  HaloResult out;
  {
    skelcl::Stencil<float> heat(
        "float cheat(__global const float* w, uint st) {\n"
        "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]\n"
        "                  + w[2 * (int)st + 1]);\n"
        "}\n",
        skelcl::StencilShape{1, skelcl::Boundary::Clamp,
                             std::uint32_t(w.width)});

    std::vector<float> grid(w.rows * w.width);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = float((i * 2654435761u) % 1000) / 997.0f;
    }

    { // calibration, untimed
      skelcl::Vector<float> warm(grid);
      warm = heat(warm);
      (void)warm.hostData();
    }
    bench::syncAllDevices();

    const std::uint64_t t0 = ocl::hostTimeNs();
    skelcl::Vector<float> v(grid);
    for (std::size_t it = 0; it < w.iterations; ++it) {
      v = heat(v);
    }
    out.output = v.hostData();
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
  }
  skelcl::terminate();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("cluster");
  bench::traceSpec();

  ScaleWorkload w;
  w.n = std::size_t(double(smoke ? std::size_t(1) << 17
                                 : std::size_t(1) << 18) *
                    bench::scale());
  w.launches = smoke ? 2 : 4;
  w.rounds = smoke ? 2 : 3;

  bench::heading("Cluster scaling: node(t10*2)*N@ib, heavy map rounds");
  const std::uint32_t nodeCounts[] = {1, 2, 4};
  ScaleResult scale[3];
  std::printf("%-8s %14s %9s %10s %14s %12s\n", "nodes", "virtual",
              "speedup", "joules", "cycles/joule", "cost u$");
  for (std::size_t i = 0; i < 3; ++i) {
    scale[i] = runScale(nodeCounts[i], w,
                        "map." + std::to_string(nodeCounts[i]) + "node");
    const double speedup =
        double(scale[0].virtualNs) / double(scale[i].virtualNs);
    std::printf("%-8u %11.3f ms %8.3fx %10.3f %14.3e %12.3f\n",
                nodeCounts[i], double(scale[i].virtualNs) * 1e-6, speedup,
                scale[i].energy.joules, scale[i].energy.perfPerWatt,
                scale[i].energy.costUsd * 1e6);
    bench::BenchJson("cluster_scale")
        .field("nodes", int(nodeCounts[i]))
        .field("elements", std::uint64_t(w.n))
        .field("virtual_ms", double(scale[i].virtualNs) * 1e-6)
        .field("speedup_vs_1node", speedup)
        .field("joules", scale[i].energy.joules)
        .field("perf_per_watt", scale[i].energy.perfPerWatt)
        .field("cost_usd", scale[i].energy.costUsd)
        .print();
  }

  // Shallow grid on purpose: the out-of-order compute engine backfills
  // halo-independent work while a copy is in flight, so the tier only
  // shows once the halo delay exceeds the whole per-iteration backlog.
  // At 8 rows that backlog is ~launch overheads, which 10GbE's 50 us
  // latency clears and InfiniBand's 2 us does not.
  HaloWorkload hw;
  hw.rows = std::size_t(double(smoke ? 8 : 16) * bench::scale());
  hw.width = 8192;
  hw.iterations = smoke ? 4 : 8;

  bench::heading("Interconnect tiers: 2-device stencil halo exchange");
  struct Tier {
    const char* spec;
    const char* name;
  };
  const Tier tiers[] = {
      {"t10*2", "local"},
      {"node(t10)*2@ib", "ib"},
      {"node(t10)*2@eth", "eth"},
  };
  HaloResult halo[3];
  std::printf("%-8s %-18s %14s %12s\n", "tier", "spec", "virtual",
              "vs local");
  for (std::size_t i = 0; i < 3; ++i) {
    halo[i] = runHalo(tiers[i].spec, hw,
                      "halo." + std::string(tiers[i].name));
    const double slowdown =
        double(halo[i].virtualNs) / double(halo[0].virtualNs);
    std::printf("%-8s %-18s %11.3f ms %11.3fx\n", tiers[i].name,
                tiers[i].spec, double(halo[i].virtualNs) * 1e-6,
                slowdown);
    bench::BenchJson("cluster_interconnect")
        .field("tier", tiers[i].name)
        .field("spec", tiers[i].spec)
        .field("rows", std::uint64_t(hw.rows))
        .field("iterations", std::uint64_t(hw.iterations))
        .field("virtual_ms", double(halo[i].virtualNs) * 1e-6)
        .field("slowdown_vs_local", slowdown)
        .print();
  }

  const bool scaleIdentical = scale[0].outputs == scale[1].outputs &&
                              scale[0].outputs == scale[2].outputs;
  const bool haloIdentical = halo[0].output == halo[1].output &&
                             halo[0].output == halo[2].output;
  const double speedup2 =
      double(scale[0].virtualNs) / double(scale[1].virtualNs);

  bench::BenchJson("cluster_scale")
      .field("mode", "summary")
      .field("speedup_2node", speedup2)
      .field("outputs_identical", scaleIdentical && haloIdentical)
      .print();

  bool ok = true;
  if (!scaleIdentical) {
    std::fprintf(stderr,
                 "\nFAIL: map outputs differ across node counts\n");
    ok = false;
  }
  if (!haloIdentical) {
    std::fprintf(stderr,
                 "\nFAIL: stencil outputs differ across interconnect "
                 "tiers\n");
    ok = false;
  }
  if (speedup2 < kMinTwoNodeSpeedup) {
    std::fprintf(stderr,
                 "\nFAIL: 2-node speedup %.3fx below the %.1fx floor\n",
                 speedup2, kMinTwoNodeSpeedup);
    ok = false;
  }
  if (!(halo[2].virtualNs > halo[1].virtualNs)) {
    std::fprintf(stderr,
                 "\nFAIL: 10GbE halo exchange (%.3f ms) not slower than "
                 "InfiniBand (%.3f ms)\n",
                 double(halo[2].virtualNs) * 1e-6,
                 double(halo[1].virtualNs) * 1e-6);
    ok = false;
  }
  if (halo[1].virtualNs < halo[0].virtualNs) {
    std::fprintf(stderr,
                 "\nFAIL: cross-node halo exchange (%.3f ms) beat the "
                 "single-node run (%.3f ms)\n",
                 double(halo[1].virtualNs) * 1e-6,
                 double(halo[0].virtualNs) * 1e-6);
    ok = false;
  }
  if (!(scale[1].energy.joules > 0.0 &&
        scale[1].energy.perfPerWatt > 0.0 &&
        scale[1].energy.costUsd > 0.0)) {
    std::fprintf(stderr, "\nFAIL: energy ledger recorded no activity\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
