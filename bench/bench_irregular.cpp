// Irregular workloads on the new skeletons: multi-GPU stencil scaling
// and sparse-gather throughput (DESIGN.md §6i).
//
// Heat diffusion iterates a 2D 5-point stencil over a block-distributed
// grid on 1, 2, and 4 GPUs. Each iteration exchanges one halo row per
// chunk boundary over the DMA engines while the interior — packed and
// launched independently of the exchange — runs on the compute engine,
// so the exchange cost hides behind interior compute and the virtual
// time scales with the per-device share. Outputs must be bit-identical
// across device counts, and 4 GPUs must beat 1 by >= 1.3x virtual time
// (the binary exits non-zero otherwise).
//
// SpMV and PageRank run the SparseGather skeleton over a random CSR
// matrix and report nonzeros processed per virtual second.
//
// Output: human-readable table plus `BENCH {...}` JSON lines. ctest
// runs `--smoke` under the `perf-smoke` label with SKELCL_TRACE set;
// the skeltrace --check entries then assert that the out-of-order heat
// trace overlaps transfers with compute and the SKELCL_SERIALIZE=1
// control does not.
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "trace/analysis.h"

namespace {

constexpr double kMinScalingSpeedup = 1.3;

struct HeatResult {
  std::uint64_t virtualNs = 0;
  std::vector<float> output;
};

struct HeatWorkload {
  std::size_t rows = 0;
  std::size_t width = 0;
  std::size_t iterations = 0;
};

HeatResult runHeat(std::uint32_t gpus, const HeatWorkload& w,
                   const std::string& traceTag) {
  bench::ScopedTrace trace(traceTag);
  bench::setupSystem(gpus);

  HeatResult out;
  {
    skelcl::Stencil<float> heat(
        "float heat(__global const float* w, uint st) {\n"
        "  float acc = 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]\n"
        "                       + w[2 * (int)st + 1]);\n"
        "  for (int k = 0; k < 8; ++k) {\n"
        "    acc = acc * 1.000001f + 0.0000001f;\n"
        "  }\n"
        "  return acc;\n"
        "}\n",
        skelcl::StencilShape{1, skelcl::Boundary::Clamp,
                             std::uint32_t(w.width)});

    std::vector<float> grid(w.rows * w.width);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = float((i * 2654435761u) % 1000) / 997.0f;
    }

    // Calibration pass, untimed: builds the kernels.
    {
      skelcl::Vector<float> warm(grid);
      warm = heat(warm);
      (void)warm.hostData();
    }
    bench::syncAllDevices();

    const std::uint64_t t0 = ocl::hostTimeNs();
    skelcl::Vector<float> v(grid);
    for (std::size_t it = 0; it < w.iterations; ++it) {
      v = heat(v); // fresh output mirrors the layout; data stays on-device
    }
    out.output = v.hostData();
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
  }
  skelcl::terminate();
  return out;
}

/// Random square CSR matrix with ~`avgDegree` nonzeros per row.
struct Csr {
  std::vector<std::uint32_t> rowPtr;
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
};

Csr randomCsr(std::size_t n, int avgDegree, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> degree(0, 2 * avgDegree);
  std::uniform_int_distribution<std::uint32_t> col(0, std::uint32_t(n - 1));
  std::uniform_real_distribution<float> val(-1.0f, 1.0f);
  Csr m;
  m.rowPtr.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    const int deg = degree(rng);
    for (int k = 0; k < deg; ++k) {
      m.colIdx.push_back(col(rng));
      m.values.push_back(val(rng));
    }
    m.rowPtr.push_back(std::uint32_t(m.colIdx.size()));
  }
  return m;
}

struct SparseResult {
  std::uint64_t virtualNs = 0;
  std::uint64_t nnzProcessed = 0;
  float checksum = 0.0f;
};

SparseResult runSpmv(std::uint32_t gpus, std::size_t n, int avgDegree,
                     std::size_t iterations) {
  bench::setupSystem(gpus);
  SparseResult out;
  {
    const Csr c = randomCsr(n, avgDegree, 11);
    skelcl::CsrMatrix<float> m(n, n, c.rowPtr, c.colIdx, c.values);
    skelcl::SparseGather<float> spmv(
        "float bspg(float a, float xj) { return a * xj; }",
        "float bspc(float a, float b) { return a + b; }", "0.0f");

    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = float((i * 97 + 13) % 101) * 0.03125f - 1.5f;
    }

    { // calibration
      skelcl::Vector<float> warm(x);
      (void)spmv(m, warm).hostData();
    }
    bench::syncAllDevices();

    const std::uint64_t t0 = ocl::hostTimeNs();
    skelcl::Vector<float> v(x);
    for (std::size_t it = 0; it < iterations; ++it) {
      v = spmv(m, v);
    }
    const std::vector<float> y = v.hostData();
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
    out.nnzProcessed = std::uint64_t(c.values.size()) * iterations;
    for (float f : y) {
      out.checksum += f;
    }
  }
  skelcl::terminate();
  return out;
}

SparseResult runPagerank(std::uint32_t gpus, std::size_t n, int avgDegree,
                         std::size_t iterations) {
  bench::setupSystem(gpus);
  SparseResult out;
  {
    Csr c = randomCsr(n, avgDegree, 17);
    // Guarantee no empty columns feed a division by zero: treat the
    // value as the pre-scaled edge weight directly.
    for (float& v : c.values) {
      v = 1.0f / float(avgDegree);
    }
    skelcl::CsrMatrix<float> m(n, n, c.rowPtr, c.colIdx, c.values);
    skelcl::SparseGather<float> gather(
        "float bprg(float w, float r) { return w * r; }",
        "float bprs(float a, float b) { return a + b; }", "0.0f");
    skelcl::Map<float> damp(
        "float bprd(float y, float base, float d) {"
        " return base + d * y; }");
    const float d = 0.85f;
    const float base = (1.0f - d) / float(n);

    { // calibration
      skelcl::Vector<float> warm(std::vector<float>(n, 1.0f / float(n)));
      skelcl::Arguments args;
      args.push(base);
      args.push(d);
      (void)damp(gather(m, warm), args).hostData();
    }
    bench::syncAllDevices();

    const std::uint64_t t0 = ocl::hostTimeNs();
    skelcl::Vector<float> rank(std::vector<float>(n, 1.0f / float(n)));
    for (std::size_t it = 0; it < iterations; ++it) {
      skelcl::Arguments args;
      args.push(base);
      args.push(d);
      rank = damp(gather(m, rank), args);
    }
    const std::vector<float> r = rank.hostData();
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
    out.nnzProcessed = std::uint64_t(c.values.size()) * iterations;
    for (float f : r) {
      out.checksum += f;
    }
  }
  skelcl::terminate();
  return out;
}

double gnzPerS(const SparseResult& r) {
  return r.virtualNs == 0
             ? 0.0
             : double(r.nnzProcessed) / double(r.virtualNs);
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("irregular");
  bench::traceSpec();

  HeatWorkload w;
  w.rows = std::size_t(double(smoke ? 2048 : 4096) * bench::scale());
  w.width = 256;
  w.iterations = smoke ? 4 : 8;

  bench::heading("Heat diffusion: 2D 5-point stencil, halo exchange");
  const std::uint32_t counts[] = {1, 2, 4};
  HeatResult heat[3];
  std::printf("%-8s %14s %9s\n", "gpus", "virtual", "speedup");
  for (std::size_t i = 0; i < 3; ++i) {
    heat[i] = runHeat(counts[i], w,
                      "heat." + std::to_string(counts[i]) + "gpu");
    const double speedup =
        double(heat[0].virtualNs) / double(heat[i].virtualNs);
    std::printf("%-8u %11.3f ms %8.3fx\n", counts[i],
                double(heat[i].virtualNs) * 1e-6, speedup);
    bench::BenchJson("irregular_heat")
        .field("gpus", int(counts[i]))
        .field("rows", std::uint64_t(w.rows))
        .field("width", std::uint64_t(w.width))
        .field("iterations", std::uint64_t(w.iterations))
        .field("virtual_ms", double(heat[i].virtualNs) * 1e-6)
        .field("speedup_vs_1gpu", speedup)
        .print();
  }

  // The serialized control for the trace check: in-order queues cannot
  // hide the halo exchange (or anything else) behind compute.
  if (!bench::traceSpec().empty()) {
    ::setenv("SKELCL_SERIALIZE", "1", 1);
    const HeatResult ser = runHeat(4, w, "heat.ser");
    ::unsetenv("SKELCL_SERIALIZE");
    bench::BenchJson("irregular_heat")
        .field("gpus", 4)
        .field("mode", "serialized")
        .field("virtual_ms", double(ser.virtualNs) * 1e-6)
        .field("outputs_identical", ser.output == heat[2].output)
        .print();
    // Second opinion from the 4-GPU trace itself: halo bytes moved, and
    // some DMA time hid behind compute.
    const trace::Report report = trace::analyze(trace::readTraceFile(
        bench::traceSpec() + ".heat.4gpu.sktrace"));
    std::printf("halo bytes   = %llu   overlap ratio = %.3f\n",
                (unsigned long long)report.haloBytes,
                report.overlapRatio);
    bench::BenchJson("irregular_heat")
        .field("gpus", 4)
        .field("halo_bytes", report.haloBytes)
        .field("overlap_ratio", report.overlapRatio)
        .print();
  }

  bench::heading("Sparse gather: SpMV and PageRank throughput (4 GPUs)");
  const std::size_t n = std::size_t(double(smoke ? 16384 : 65536) *
                                    bench::scale());
  const SparseResult spmv = runSpmv(4, n, 16, smoke ? 4 : 8);
  const SparseResult pr = runPagerank(4, n, 16, smoke ? 4 : 20);
  std::printf("%-10s %14s %12s\n", "workload", "virtual", "Gnz/s");
  std::printf("%-10s %11.3f ms %12.3f\n", "spmv",
              double(spmv.virtualNs) * 1e-6, gnzPerS(spmv));
  std::printf("%-10s %11.3f ms %12.3f\n", "pagerank",
              double(pr.virtualNs) * 1e-6, gnzPerS(pr));
  bench::BenchJson("irregular_spmv")
      .field("rows", std::uint64_t(n))
      .field("nnz_processed", spmv.nnzProcessed)
      .field("virtual_ms", double(spmv.virtualNs) * 1e-6)
      .field("gnz_per_s", gnzPerS(spmv))
      .print();
  bench::BenchJson("irregular_pagerank")
      .field("rows", std::uint64_t(n))
      .field("nnz_processed", pr.nnzProcessed)
      .field("virtual_ms", double(pr.virtualNs) * 1e-6)
      .field("gnz_per_s", gnzPerS(pr))
      .print();

  bool ok = true;
  if (heat[0].output != heat[1].output ||
      heat[0].output != heat[2].output) {
    std::fprintf(stderr,
                 "\nFAIL: heat outputs differ across device counts\n");
    ok = false;
  }
  const double speedup4 =
      double(heat[0].virtualNs) / double(heat[2].virtualNs);
  if (speedup4 < kMinScalingSpeedup) {
    std::fprintf(stderr,
                 "\nFAIL: 4-GPU stencil speedup %.3fx below the %.1fx "
                 "floor\n",
                 speedup4, kMinScalingSpeedup);
    ok = false;
  }
  if (spmv.virtualNs == 0 || pr.virtualNs == 0) {
    std::fprintf(stderr, "\nFAIL: sparse workloads recorded no time\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
