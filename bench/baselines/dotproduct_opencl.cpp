// Plain OpenCL dot product, written the way the NVIDIA SDK sample the
// paper cites is structured (Sec. III: "an OpenCL-based implementation
// of a dot product computation provided by NVIDIA requires approximately
// 68 lines of code (kernel function: 9 lines, host program: 59 lines)").
// Every step a real OpenCL host program performs is spelled out.
#include "baselines/dotproduct_opencl.h"

#include <iostream>

#include "dotproduct_kernel_source.h"
#include "ocl/ocl.h"

namespace baselines {

float dotProductOpenCl(const float* a, const float* b, int n) {
  // Discover a platform.
  const auto platforms = ocl::getPlatforms();
  if (platforms.empty()) {
    throw common::Error("no OpenCL platform");
  }
  // Pick the first GPU device.
  const auto devices = platforms.front().devices(ocl::DeviceType::GPU);
  if (devices.empty()) {
    throw common::Error("no GPU device");
  }
  const ocl::Device device = devices.front();

  // Create the context and a command queue.
  ocl::Context context({device});
  ocl::CommandQueue queue(device, ocl::Backend::OpenCL);

  // Create and build the program from source.
  ocl::Program program = context.createProgram(kDotProductKernelSource);
  try {
    program.build();
  } catch (const ocl::BuildError& e) {
    std::cerr << "build log:\n" << e.log() << std::endl;
    throw;
  }
  ocl::Kernel kernel = program.createKernel("dotProduct");

  // Allocate device buffers.
  const std::size_t bytes = std::size_t(n) * sizeof(float);
  ocl::Buffer bufA = context.createBuffer(device, bytes);
  ocl::Buffer bufB = context.createBuffer(device, bytes);
  ocl::Buffer bufProducts = context.createBuffer(device, bytes);

  // Upload the inputs.
  queue.enqueueWriteBuffer(bufA, 0, bytes, a);
  queue.enqueueWriteBuffer(bufB, 0, bytes, b);

  // Bind the kernel arguments.
  kernel.setArg(0, bufA);
  kernel.setArg(1, bufB);
  kernel.setArg(2, bufProducts);
  kernel.setArg(3, n);

  // Launch over the padded global range.
  const std::size_t local = 256;
  const std::size_t global = (std::size_t(n) + local - 1) / local * local;
  queue.enqueueNDRange(kernel, ocl::NDRange1D{global, local});
  queue.finish();

  // Download the products and finish the reduction on the host.
  std::vector<float> products(static_cast<std::size_t>(n));
  queue.enqueueReadBuffer(bufProducts, 0, bytes, products.data(),
                          /*blocking=*/true);
  float result = 0.0f;
  for (int i = 0; i < n; ++i) {
    result += products[std::size_t(i)];
  }
  return result;
}

} // namespace baselines
