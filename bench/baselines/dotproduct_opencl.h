// Plain OpenCL dot-product baseline (see dotproduct_opencl.cpp).
#pragma once

namespace baselines {

/// Computes the dot product of a and b (n elements) on one simulated
/// GPU, with all OpenCL host boilerplate written out.
float dotProductOpenCl(const float* a, const float* b, int n);

} // namespace baselines
