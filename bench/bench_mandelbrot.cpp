// Reproduces Figure 1 of the paper: runtime and program size of the
// Mandelbrot application in CUDA, OpenCL, and SkelCL.
//
// Paper (Tesla T10, 4096x3072): CUDA 18 s, OpenCL 25 s, SkelCL 26 s;
// program sizes CUDA 49 LoC (28 kernel + 21 host), OpenCL 118 (28 + 90),
// SkelCL 57 (26 + 31).
//
// The simulated runtimes are virtual seconds at a reduced image size
// (SKELCL_BENCH_SCALE enlarges it); the comparison of interest is the
// *shape*: who wins and by roughly what factor.
#include "bench_util.h"

#include "cuda/runtime.h"
#include "mandelbrot/mandelbrot.h"

int main() {
  bench::setupCacheDir("mandelbrot");
  bench::setupSystem(1);
  cuda::reset();

  mandelbrot::FractalParams params = mandelbrot::FractalParams::benchSize();
  const double s = bench::scale();
  params.width = std::uint32_t(double(params.width) * s);
  params.height = std::uint32_t(double(params.height) * s);

  bench::heading("Figure 1: Mandelbrot (" + std::to_string(params.width) +
                 "x" + std::to_string(params.height) + ", " +
                 std::to_string(params.maxIterations) + " iterations)");

  // Verify all implementations agree before timing them.
  const auto reference = mandelbrot::computeReference(params);

  struct Row {
    const char* label;
    mandelbrot::FractalResult result;
    double paperSeconds;
  };
  std::vector<Row> rows;
  rows.push_back({"CUDA", mandelbrot::computeCuda(params), 18.0});
  rows.push_back({"OpenCL", mandelbrot::computeOpenCl(params), 25.0});
  rows.push_back({"SkelCL", mandelbrot::computeSkelCl(params), 26.0});

  bench::subheading("runtime");
  std::printf("%-8s %14s %14s %12s %12s\n", "impl", "virtual[ms]",
              "wall[ms]", "vs CUDA", "paper[s]");
  const double cudaVirtual = rows[0].result.virtualSeconds;
  bool allMatch = true;
  for (const auto& row : rows) {
    allMatch &= row.result.iterations == reference.iterations;
    std::printf("%-8s %14.3f %14.3f %11.2fx %12.1f\n", row.label,
                row.result.virtualSeconds * 1e3,
                row.result.wallSeconds * 1e3,
                row.result.virtualSeconds / cudaVirtual, row.paperSeconds);
  }
  std::printf("results identical across implementations: %s\n",
              allMatch ? "yes" : "NO (BUG)");
  const double overhead =
      rows[2].result.virtualSeconds / rows[1].result.virtualSeconds - 1.0;
  std::printf("SkelCL overhead vs OpenCL: %+.1f%% (paper: +4%%, claimed "
              "< 5%%)\n",
              overhead * 100.0);

  bench::subheading("program size (lines of code)");
  std::printf("%-8s %8s %8s %8s %22s\n", "impl", "kernel", "host", "total",
              "paper (kernel+host)");
  const char* paperLoc[] = {"49 (28+21)", "118 (28+90)", "57 (26+31)"};
  int i = 0;
  for (const auto& entry : mandelbrot::locEntries()) {
    const std::size_t kernel = bench::fileLoc(entry.kernelFile);
    const std::size_t host = bench::fileLoc(entry.hostFile);
    std::printf("%-8s %8zu %8zu %8zu %22s\n", entry.label.c_str(), kernel,
                host, kernel + host, paperLoc[i++]);
  }

  skelcl::terminate();
  return allMatch ? 0 : 1;
}
