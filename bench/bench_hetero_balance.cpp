// Heterogeneous load balancing: even vs static vs measured block
// weights on a skewed machine (DESIGN.md §6e).
//
// The platform is `t10*3,t10@0.5x` — three full-speed Tesla T10s plus
// one running at half clock and half memory bandwidth. The workload is
// R rounds of: upload a fresh block-distributed vector, run a compute-
// heavy Map k times in place, download the result. Under `even`
// weights every device gets n/4 elements and each round waits for the
// half-speed straggler; `static` splits by DeviceSpec peak throughput
// (2:2:2:1) up front; `measured` starts from the even fallback and
// converges to the same split from the load monitor's observed
// cycles-per-busy-ns.
//
// Every mode gets one untimed calibration round first: it builds the
// kernel, and under `measured` it gives the monitor one sample per
// device (the convergence the hetero test suite pins). The timed
// rounds then compare steady-state behaviour. Outputs must be bit-
// identical across modes — weights move chunk boundaries, never
// results.
//
// Output: human-readable table plus `BENCH {...}` JSON lines. ctest
// runs `--smoke` under the `perf-smoke` label; the binary exits
// non-zero if measured fails to beat even by the 1.3x acceptance
// floor, or outputs differ across modes.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using skelcl::WeightMode;

constexpr const char* kPlatformSpec = "t10*3,t10@0.5x";
constexpr double kMinMeasuredSpeedup = 1.3;

struct ModeResult {
  std::uint64_t virtualNs = 0;
  std::vector<std::vector<float>> outputs;   // one per timed round
  std::vector<std::size_t> steadyPartition;  // chunk sizes, last round
};

struct Workload {
  std::size_t n = 0;
  std::size_t launches = 0; // in-place Map launches per round
  std::size_t rounds = 0;   // timed rounds (one calibration round extra)
};

/// One round: fresh host data (deterministic per round index), block
/// distribution, `launches` in-place heavy maps, download.
std::vector<float> runRound(skelcl::Map<float>& heavy, const Workload& w,
                            std::size_t round,
                            std::vector<std::size_t>* partitionOut) {
  std::vector<float> data(w.n);
  for (std::size_t i = 0; i < w.n; ++i) {
    data[i] = float((i * 13 + round * 7) % 97) * 0.0625f;
  }
  skelcl::Vector<float> v(std::move(data));
  v.setDistribution(skelcl::Distribution::Block);
  for (std::size_t l = 0; l < w.launches; ++l) {
    heavy(v, skelcl::Arguments{}, v);
  }
  if (partitionOut) {
    partitionOut->clear();
    for (const auto& chunk : v.state().chunks()) {
      partitionOut->push_back(chunk.count);
    }
  }
  return v.hostData();
}

ModeResult runMode(WeightMode mode, const Workload& w,
                   const std::string& traceTag) {
  bench::ScopedTrace trace(traceTag);
  ocl::configureSystem(ocl::SystemConfig::parse(kPlatformSpec));
  skelcl::init(skelcl::DeviceSelection::allDevices());
  skelcl::detail::Runtime::instance().setWeightMode(mode);

  ModeResult out;
  {
    skelcl::Map<float> heavy(
        "float heavy(float x) {\n"
        "  float acc = x;\n"
        "  for (int i = 0; i < 64; ++i) {\n"
        "    acc = acc * 1.000001f + 0.5f;\n"
        "  }\n"
        "  return acc;\n"
        "}\n");

    // Calibration round, untimed: kernel build plus (under measured)
    // one load-monitor sample per device.
    runRound(heavy, w, /*round=*/w.rounds, nullptr);
    bench::syncAllDevices();

    const std::uint64_t t0 = ocl::hostTimeNs();
    for (std::size_t r = 0; r < w.rounds; ++r) {
      out.outputs.push_back(runRound(
          heavy, w, r, r + 1 == w.rounds ? &out.steadyPartition : nullptr));
    }
    bench::syncAllDevices();
    out.virtualNs = ocl::hostTimeNs() - t0;
  }
  skelcl::terminate();
  return out;
}

std::string partitionString(const std::vector<std::size_t>& counts) {
  std::string s;
  for (std::size_t c : counts) {
    if (!s.empty()) {
      s += "/";
    }
    s += std::to_string(c);
  }
  return s;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::setupCacheDir("hetero-balance");
  bench::traceSpec();

  // Chunks must oversubscribe the 30 compute units (30 CUs x 256-item
  // work-groups = 7680 elements) by a few x, or kernel duration stops
  // depending on chunk size and no split can help the straggler.
  Workload w;
  w.n = smoke ? std::size_t(1) << 17 : std::size_t(1) << 18;
  w.launches = smoke ? 1 : 4;
  w.rounds = smoke ? 2 : 4;

  bench::heading("Heterogeneous balance: block weight modes on " +
                 std::string(kPlatformSpec));

  struct Mode {
    WeightMode mode;
    const char* name;
  };
  const Mode modes[] = {
      {WeightMode::Even, "even"},
      {WeightMode::Static, "static"},
      {WeightMode::Measured, "measured"},
  };

  std::printf("%-10s %14s %9s   %s\n", "mode", "virtual", "vs even",
              "steady partition");
  ModeResult results[3];
  for (std::size_t m = 0; m < 3; ++m) {
    results[m] = runMode(modes[m].mode, w, modes[m].name);
    const double speedup =
        double(results[0].virtualNs) / double(results[m].virtualNs);
    std::printf("%-10s %11.3f ms %8.3fx   %s\n", modes[m].name,
                double(results[m].virtualNs) * 1e-6, speedup,
                partitionString(results[m].steadyPartition).c_str());
    bench::BenchJson("hetero_balance")
        .field("mode", modes[m].name)
        .field("virtual_ms", double(results[m].virtualNs) * 1e-6)
        .field("speedup_vs_even", speedup)
        .field("partition", partitionString(results[m].steadyPartition))
        .print();
  }

  const bool identical = results[0].outputs == results[1].outputs &&
                         results[0].outputs == results[2].outputs;
  const double staticSpeedup =
      double(results[0].virtualNs) / double(results[1].virtualNs);
  const double measuredSpeedup =
      double(results[0].virtualNs) / double(results[2].virtualNs);
  // Measured must converge to (roughly) the static split: the fastest
  // device's steady chunk strictly larger than the slow device's.
  const auto& mp = results[2].steadyPartition;
  const bool converged = mp.size() == 4 && mp.front() > mp.back();

  bench::BenchJson("hetero_balance")
      .field("mode", "summary")
      .field("speedup_static", staticSpeedup)
      .field("speedup_measured", measuredSpeedup)
      .field("outputs_identical", identical)
      .field("measured_converged", converged)
      .print();

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "\nFAIL: outputs differ across weight modes\n");
    ok = false;
  }
  if (!converged) {
    std::fprintf(stderr, "\nFAIL: measured weights did not converge "
                         "(partition %s)\n",
                 partitionString(mp).c_str());
    ok = false;
  }
  if (measuredSpeedup < kMinMeasuredSpeedup) {
    std::fprintf(stderr,
                 "\nFAIL: measured speedup %.3fx below the %.1fx floor\n",
                 measuredSpeedup, kMinMeasuredSpeedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
