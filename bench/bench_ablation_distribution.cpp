// Ablation A-dist: Sec. IV-B — "the additional argument feature and the
// data distributions are crucial for this application as it cannot be
// implemented efficiently without these two features."
//
// Compares SkelCL's device-side copy->block combine redistribution (the
// OSEM error-image merge) against the naive alternative: downloading
// every copy to the host, merging there, and re-uploading the blocks.
#include "bench_util.h"

#include <numeric>

int main() {
  bench::setupCacheDir("distribution");
  const std::uint32_t gpus = 4;
  bench::setupSystem(gpus);

  const auto n = std::size_t(double(1 << 18) * bench::scale());
  const char* addSource = "float add(float x, float y) { return x + y; }";

  bench::heading(
      "Ablation: error-image merge strategies (copy -> block, " +
      std::to_string(gpus) + " GPUs, n=" + std::to_string(n) + ")");

  skelcl::Map<int, void> bump(
      "void b(int idx, __global float* data, uint n) {"
      "  uint chunk = (n + 511) / 512;"
      "  uint start = (uint)idx * chunk;"
      "  uint end = min(start + chunk, n);"
      "  for (uint i = start; i < end; ++i) data[i] += 1.0f;"
      "}");

  const auto makeModifiedCopies = [&](skelcl::Vector<float>& v) {
    v.fill(0.0f);
    v.setDistribution(skelcl::Distribution::Copy);
    skelcl::Vector<int> idx = skelcl::indexVector(512);
    idx.setDistribution(skelcl::Distribution::Block);
    skelcl::Arguments args;
    args.push(v);
    args.pushSizeOf(v);
    bump(idx, args);
    v.dataOnDevicesModified();
  };

  // Device-side combine (what SkelCL's setDistribution(Block, op) does).
  skelcl::Vector<float> a(n, 0.0f);
  makeModifiedCopies(a);
  const auto deviceStart = ocl::hostTimeNs();
  a.setDistribution(skelcl::Distribution::Block, addSource);
  bench::syncAllDevices();
  const double deviceMs = double(ocl::hostTimeNs() - deviceStart) * 1e-6;

  // Host-staged merge: download all copies, add on the host, re-upload.
  skelcl::Vector<float> b(n, 0.0f);
  makeModifiedCopies(b);
  const auto hostStart = ocl::hostTimeNs();
  std::vector<float> merged(n, 0.0f);
  {
    auto& runtime = skelcl::detail::Runtime::instance();
    std::vector<float> staging(n);
    for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
      const auto& chunk = b.state().chunkForDevice(d);
      runtime.queue(d).enqueueReadBuffer(chunk.buffer, 0,
                                         n * sizeof(float),
                                         staging.data(),
                                         /*blocking=*/true);
      for (std::size_t i = 0; i < n; ++i) {
        merged[i] += staging[i];
      }
    }
  }
  skelcl::Vector<float> hostMerged(merged.data(), n);
  hostMerged.setDistribution(skelcl::Distribution::Block);
  hostMerged.state().ensureOnDevices();
  bench::syncAllDevices();
  const double hostMs = double(ocl::hostTimeNs() - hostStart) * 1e-6;

  // Correctness: every element was bumped by exactly one worker on
  // exactly one device; the other copies contribute zero, so the merged
  // value is 1 everywhere under either strategy.
  bool correct = true;
  for (std::size_t i = 0; i < n; i += n / 64 + 1) {
    correct &= a[i] == 1.0f;
    correct &= hostMerged[i] == 1.0f;
  }

  std::printf("%-36s %14s\n", "merge strategy", "virtual[ms]");
  std::printf("%-36s %14.3f\n", "device-side combine (SkelCL)", deviceMs);
  std::printf("%-36s %14.3f\n", "host-staged merge", hostMs);
  std::printf("device-side advantage: %.2fx\n", hostMs / deviceMs);
  std::printf("results correct: %s\n", correct ? "yes" : "NO (BUG)");
  skelcl::terminate();
  return correct ? 0 : 1;
}
