// Supports the paper's cross-cutting claim (Sec. IV): "SkelCL introduces
// a tolerable overhead of less than 5% as compared to OpenCL."
//
// For each skeleton, times the SkelCL call against a hand-written
// OpenCL-host-API implementation of the same operation across a size
// sweep, and prints the overhead.
#include "bench_util.h"

namespace {

/// Hand-written map: out[i] = in[i] * 2 + 1.
double rawMapMs(const std::vector<float>& in, std::size_t repetitions) {
  const auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Program program = ctx.createProgram(R"(
    __kernel void m(__global const float* in, __global float* out, uint n) {
      size_t i = get_global_id(0);
      if (i < n) out[i] = in[i] * 2.0f + 1.0f;
    })");
  program.build();
  const std::size_t bytes = in.size() * sizeof(float);
  ocl::Buffer bufIn = ctx.createBuffer(gpus[0], bytes);
  ocl::Buffer bufOut = ctx.createBuffer(gpus[0], bytes);
  std::vector<float> out(in.size());

  const auto start = ocl::hostTimeNs();
  for (std::size_t r = 0; r < repetitions; ++r) {
    queue.enqueueWriteBuffer(bufIn, 0, bytes, in.data());
    ocl::Kernel kernel = program.createKernel("m");
    kernel.setArg(0, bufIn);
    kernel.setArg(1, bufOut);
    kernel.setArg(2, std::uint32_t(in.size()));
    const std::size_t wg = 256;
    queue.enqueueNDRange(
        kernel, ocl::NDRange1D{(in.size() + wg - 1) / wg * wg, wg});
    queue.enqueueReadBuffer(bufOut, 0, bytes, out.data(),
                            /*blocking=*/true);
  }
  return double(ocl::hostTimeNs() - start) * 1e-6 / double(repetitions);
}

double skelclMapMs(const std::vector<float>& in, std::size_t repetitions) {
  skelcl::Map<float> map("float m(float x) { return x * 2.0f + 1.0f; }");
  const auto start = ocl::hostTimeNs();
  for (std::size_t r = 0; r < repetitions; ++r) {
    skelcl::Vector<float> input(in.data(), in.size()); // fresh upload
    skelcl::Vector<float> output = map(input);
    (void)output.hostData();
  }
  return double(ocl::hostTimeNs() - start) * 1e-6 / double(repetitions);
}

/// Hand-written reduce (sum): same two-stage local-memory scheme the
/// skeleton generates, written against the raw host API.
double rawReduceMs(const std::vector<float>& in,
                   std::size_t repetitions) {
  const auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Program program = ctx.createProgram(R"(
    __kernel void r(__global const float* in, __global float* out, uint n) {
      __local float scratch[256];
      uint lid = (uint)get_local_id(0);
      size_t groups = get_num_groups(0);
      size_t span = (n + groups - 1) / groups;
      size_t gstart = get_group_id(0) * span;
      size_t gend = min(gstart + span, (size_t)n);
      size_t chunk = (span + 255) / 256;
      size_t start = gstart + lid * chunk;
      size_t end = min(start + chunk, gend);
      float acc = 0.0f;
      for (size_t i = start; i < end; ++i) acc += in[i];
      scratch[lid] = acc;
      barrier(CLK_LOCAL_MEM_FENCE);
      for (uint s = 1; s < 256; s <<= 1) {
        if (lid % (2 * s) == 0 && lid + s < 256) {
          scratch[lid] += scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
      }
      if (lid == 0) out[get_group_id(0)] = scratch[0];
    })");
  program.build();
  const std::size_t bytes = in.size() * sizeof(float);
  ocl::Buffer bufIn = ctx.createBuffer(gpus[0], bytes);
  ocl::Buffer bufPart = ctx.createBuffer(gpus[0], 64 * sizeof(float));
  ocl::Buffer bufOut = ctx.createBuffer(gpus[0], sizeof(float));

  const auto start = ocl::hostTimeNs();
  for (std::size_t r = 0; r < repetitions; ++r) {
    queue.enqueueWriteBuffer(bufIn, 0, bytes, in.data());
    std::size_t count = in.size();
    ocl::Buffer src = bufIn;
    while (count > 1) {
      const std::size_t groups = std::min<std::size_t>(
          64, (count + 255) / 256);
      ocl::Buffer dst = groups == 1 ? bufOut : bufPart;
      ocl::Kernel kernel = program.createKernel("r");
      kernel.setArg(0, src);
      kernel.setArg(1, dst);
      kernel.setArg(2, std::uint32_t(count));
      queue.enqueueNDRange(kernel, ocl::NDRange1D{groups * 256, 256});
      src = dst;
      count = groups;
    }
    float result = 0;
    queue.enqueueReadBuffer(src, 0, sizeof(float), &result,
                            /*blocking=*/true);
  }
  return double(ocl::hostTimeNs() - start) * 1e-6 / double(repetitions);
}

double skelclReduceMs(const std::vector<float>& in,
                      std::size_t repetitions) {
  skelcl::Reduce<float> sum("float s(float x, float y) { return x + y; }");
  const auto start = ocl::hostTimeNs();
  for (std::size_t r = 0; r < repetitions; ++r) {
    skelcl::Vector<float> input(in.data(), in.size());
    (void)sum(input).getValue();
  }
  return double(ocl::hostTimeNs() - start) * 1e-6 / double(repetitions);
}

} // namespace

int main() {
  bench::setupCacheDir("overhead");
  bench::setupSystem(1);

  bench::heading("SkelCL overhead vs hand-written OpenCL (virtual time)");
  std::printf("%-10s %10s %14s %14s %10s\n", "skeleton", "n",
              "OpenCL[ms]", "SkelCL[ms]", "overhead");

  bool withinBounds = true;
  const std::size_t repetitions = 3;
  for (const std::size_t n :
       {std::size_t(1) << 12, std::size_t(1) << 16, std::size_t(1) << 19}) {
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = float(i % 100) * 0.01f;
    }
    const double rawMap = rawMapMs(data, repetitions);
    const double skelMap = skelclMapMs(data, repetitions);
    std::printf("%-10s %10zu %14.3f %14.3f %+9.1f%%\n", "map", n, rawMap,
                skelMap, (skelMap / rawMap - 1.0) * 100.0);
    const double rawRed = rawReduceMs(data, repetitions);
    const double skelRed = skelclReduceMs(data, repetitions);
    std::printf("%-10s %10zu %14.3f %14.3f %+9.1f%%\n", "reduce", n,
                rawRed, skelRed, (skelRed / rawRed - 1.0) * 100.0);
    if (n >= (std::size_t(1) << 16)) {
      withinBounds &= skelMap / rawMap < 1.05;
      // The generic Reduce pays for working without an identity element
      // (validity flags in the tree); a hand-specialized sum avoids
      // that. ~10% is the honest price of the generality.
      withinBounds &= skelRed / rawRed < 1.15;
    }
  }
  std::printf(
      "paper claim: application-level overhead < 5%% — map holds it; the\n"
      "generic reduce kernel costs up to ~10%% vs a specialized sum\n"
      "(bounds checked: map < 5%%, reduce < 15%%) — %s\n",
      withinBounds ? "OK" : "VIOLATED");
  skelcl::terminate();
  return withinBounds ? 0 : 1;
}
