// Micro-benchmarks of the four skeletons (google-benchmark), measuring
// both wall time of the interpreted substrate and the virtual device
// time per call (reported as the "virtual_us" counter).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

void globalSetup() {
  static bool done = [] {
    bench::setupCacheDir("microbench");
    bench::setupSystem(1);
    return true;
  }();
  (void)done;
}

std::vector<float> makeData(std::size_t n) {
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = float(i % 97) * 0.125f;
  }
  return data;
}

void BM_Map(benchmark::State& state) {
  globalSetup();
  const auto n = std::size_t(state.range(0));
  const auto data = makeData(n);
  skelcl::Map<float> map("float m(float x) { return x * 2.0f + 1.0f; }");
  skelcl::Vector<float> input(data.data(), n);
  input.state().ensureOnDevices();
  std::uint64_t virtualNs = 0;
  for (auto _ : state) {
    const auto t0 = ocl::hostTimeNs();
    skelcl::Vector<float> out = map(input);
    out.state().ensureOnHost();
    virtualNs += ocl::hostTimeNs() - t0;
  }
  state.counters["virtual_us"] = benchmark::Counter(
      double(virtualNs) * 1e-3 / double(state.iterations()));
  state.SetItemsProcessed(std::int64_t(n) * state.iterations());
}
BENCHMARK(BM_Map)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_Zip(benchmark::State& state) {
  globalSetup();
  const auto n = std::size_t(state.range(0));
  const auto data = makeData(n);
  skelcl::Zip<float> zip("float z(float x, float y) { return x * y; }");
  skelcl::Vector<float> a(data.data(), n);
  skelcl::Vector<float> b(data.data(), n);
  a.state().ensureOnDevices();
  b.state().ensureOnDevices();
  std::uint64_t virtualNs = 0;
  for (auto _ : state) {
    const auto t0 = ocl::hostTimeNs();
    skelcl::Vector<float> out = zip(a, b);
    out.state().ensureOnHost();
    virtualNs += ocl::hostTimeNs() - t0;
  }
  state.counters["virtual_us"] = benchmark::Counter(
      double(virtualNs) * 1e-3 / double(state.iterations()));
  state.SetItemsProcessed(std::int64_t(n) * state.iterations());
}
BENCHMARK(BM_Zip)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_Reduce(benchmark::State& state) {
  globalSetup();
  const auto n = std::size_t(state.range(0));
  const auto data = makeData(n);
  skelcl::Reduce<float> sum("float s(float x, float y) { return x + y; }");
  skelcl::Vector<float> input(data.data(), n);
  input.state().ensureOnDevices();
  std::uint64_t virtualNs = 0;
  for (auto _ : state) {
    const auto t0 = ocl::hostTimeNs();
    benchmark::DoNotOptimize(sum(input).getValue());
    virtualNs += ocl::hostTimeNs() - t0;
  }
  state.counters["virtual_us"] = benchmark::Counter(
      double(virtualNs) * 1e-3 / double(state.iterations()));
  state.SetItemsProcessed(std::int64_t(n) * state.iterations());
}
BENCHMARK(BM_Reduce)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_Scan(benchmark::State& state) {
  globalSetup();
  const auto n = std::size_t(state.range(0));
  const auto data = makeData(n);
  skelcl::Scan<float> scan("float s(float x, float y) { return x + y; }",
                           "0.0f");
  skelcl::Vector<float> input(data.data(), n);
  input.state().ensureOnDevices();
  std::uint64_t virtualNs = 0;
  for (auto _ : state) {
    const auto t0 = ocl::hostTimeNs();
    skelcl::Vector<float> out = scan(input);
    out.state().ensureOnHost();
    virtualNs += ocl::hostTimeNs() - t0;
  }
  state.counters["virtual_us"] = benchmark::Counter(
      double(virtualNs) * 1e-3 / double(state.iterations()));
  state.SetItemsProcessed(std::int64_t(n) * state.iterations());
}
BENCHMARK(BM_Scan)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_HostSequentialSum(benchmark::State& state) {
  // Host baseline for the reduce numbers above.
  const auto n = std::size_t(state.range(0));
  const auto data = makeData(n);
  for (auto _ : state) {
    float acc = 0;
    for (const float v : data) {
      acc += v;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(std::int64_t(n) * state.iterations());
}
BENCHMARK(BM_HostSequentialSum)->Arg(1 << 18);

} // namespace

BENCHMARK_MAIN();
