// Shared helpers for the benchmark harnesses that regenerate the paper's
// figures and tables. Each bench binary prints the paper's reported
// numbers next to the values measured on the simulated testbed, so the
// shape comparison is visible in one place (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/byte_stream.h"
#include "common/env.h"
#include "common/string_util.h"
#include "ocl/ocl.h"
#include "skelcl/skelcl.h"
#include "trace/recorder.h"
#include "trace/serialize.h"

namespace bench {

/// Counts non-blank, non-comment lines of the file (the LoC metric used
/// for every program-size comparison).
inline std::size_t fileLoc(const std::string& path) {
  const auto bytes = common::readFile(path);
  return common::countLinesOfCode(
      std::string(bytes.begin(), bytes.end()));
}

/// Workload scale factor from SKELCL_BENCH_SCALE (default 1.0). Larger
/// values enlarge workloads toward the paper's sizes; the default keeps
/// every binary comfortable on an interpreted substrate.
inline double scale() {
  return common::envDouble("SKELCL_BENCH_SCALE", 1.0);
}

/// Trace destination requested via SKELCL_TRACE, claimed by the bench
/// harness: the first call caches the value and *unsets* the variable so
/// the SkelCL runtime does not also try to manage the trace across the
/// init()/terminate() cycles benches run internally. Benches that
/// support tracing wrap each measured region in a ScopedTrace, which
/// derives per-run file names from this base path.
inline const std::string& traceSpec() {
  static const std::string spec = [] {
    std::string s = common::envStr("SKELCL_TRACE");
    if (!s.empty()) {
      ::unsetenv("SKELCL_TRACE");
    }
    return s;
  }();
  return spec;
}

/// Records one benchmark run into `<traceSpec>.<tag>.sktrace` (binary
/// skeltrace format). No-op when SKELCL_TRACE was not set. Construct
/// after the scenario decided its env knobs and before setupSystem();
/// the trace is written at scope exit.
class ScopedTrace {
public:
  explicit ScopedTrace(const std::string& tag) {
    if (traceSpec().empty()) {
      return;
    }
    path_ = traceSpec() + "." + tag + ".sktrace";
    trace::Recorder::instance().start();
    active_ = true;
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  ~ScopedTrace() {
    if (!active_) {
      return;
    }
    try {
      trace::writeTraceFile(path_, trace::Recorder::instance().stop());
      std::printf("trace: %s\n", path_.c_str());
    } catch (const common::Error& e) {
      std::fprintf(stderr, "cannot write trace %s: %s\n", path_.c_str(),
                   e.what());
    }
  }

  const std::string& path() const noexcept { return path_; }

private:
  std::string path_;
  bool active_ = false;
};

/// Builds the machine-readable `BENCH {...}` line every bench prints per
/// measurement (one JSON object per line; EXPERIMENTS.md scrapes them).
/// print() appends the trace file base when SKELCL_TRACE is active, so
/// results and their traces stay associated.
class BenchJson {
public:
  explicit BenchJson(const std::string& benchName) {
    body_ = "\"bench\":\"" + benchName + "\"";
  }

  BenchJson& field(const std::string& key, const std::string& value) {
    return raw(key, "\"" + value + "\"");
  }
  BenchJson& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  BenchJson& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    return raw(key, buf);
  }
  BenchJson& field(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  BenchJson& field(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  BenchJson& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  void print() {
    if (!traceSpec().empty()) {
      field("trace", traceSpec());
    }
    std::printf("BENCH {%s}\n", body_.c_str());
  }

private:
  BenchJson& raw(const std::string& key, const std::string& json) {
    body_ += ",\"" + key + "\":" + json;
    return *this;
  }

  std::string body_;
};

/// Points the kernel cache somewhere writable and deterministic.
inline void setupCacheDir(const char* name) {
  const std::string dir = std::string("/tmp/skelcl-bench-cache-") + name;
  ::setenv("SKELCL_CACHE_DIR", dir.c_str(), 1);
}

/// Configures the paper's testbed with `gpus` GPUs and initializes
/// SkelCL on them.
inline void setupSystem(std::uint32_t gpus) {
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
}

/// Blocks the virtual host until every SkelCL device drained its queue.
inline void syncAllDevices() {
  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    runtime.queue(d).finish();
  }
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

} // namespace bench
