// Shared helpers for the benchmark harnesses that regenerate the paper's
// figures and tables. Each bench binary prints the paper's reported
// numbers next to the values measured on the simulated testbed, so the
// shape comparison is visible in one place (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/byte_stream.h"
#include "common/string_util.h"
#include "ocl/ocl.h"
#include "skelcl/skelcl.h"

namespace bench {

/// Counts non-blank, non-comment lines of the file (the LoC metric used
/// for every program-size comparison).
inline std::size_t fileLoc(const std::string& path) {
  const auto bytes = common::readFile(path);
  return common::countLinesOfCode(
      std::string(bytes.begin(), bytes.end()));
}

/// Workload scale factor from SKELCL_BENCH_SCALE (default 1.0). Larger
/// values enlarge workloads toward the paper's sizes; the default keeps
/// every binary comfortable on an interpreted substrate.
inline double scale() {
  if (const char* env = std::getenv("SKELCL_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 1.0;
}

/// Points the kernel cache somewhere writable and deterministic.
inline void setupCacheDir(const char* name) {
  const std::string dir = std::string("/tmp/skelcl-bench-cache-") + name;
  ::setenv("SKELCL_CACHE_DIR", dir.c_str(), 1);
}

/// Configures the paper's testbed with `gpus` GPUs and initializes
/// SkelCL on them.
inline void setupSystem(std::uint32_t gpus) {
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
}

/// Blocks the virtual host until every SkelCL device drained its queue.
inline void syncAllDevices() {
  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    runtime.queue(d).finish();
  }
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

} // namespace bench
