// Ablation A-wgsize: the paper notes (Sec. IV-A) that "it is sometimes
// reasonable to also hand-optimize the work-group size in SkelCL, since
// it can have a considerable impact on performance." Sweeps the Map
// skeleton's work-group size on the Mandelbrot workload.
#include "bench_util.h"

#include "mandelbrot/mandelbrot.h"

int main() {
  bench::setupCacheDir("wgsize");
  bench::setupSystem(1);

  mandelbrot::FractalParams params = mandelbrot::FractalParams::benchSize();
  params.width = std::uint32_t(double(params.width) * bench::scale());

  bench::heading("Ablation: work-group size sweep (Mandelbrot via SkelCL)");
  std::printf("%-8s %14s %12s\n", "wg", "virtual[ms]", "vs default");

  const auto reference = mandelbrot::computeSkelCl(params); // wg = 256
  const double defaultMs = reference.virtualSeconds * 1e3;

  for (const std::size_t wg : {16, 32, 64, 128, 256, 512}) {
    const auto result = mandelbrot::computeSkelCl(params, wg);
    if (result.iterations != reference.iterations) {
      std::printf("wg=%zu produced different pixels (BUG)\n", wg);
      return 1;
    }
    std::printf("%-8zu %14.3f %11.2fx%s\n", wg,
                result.virtualSeconds * 1e3,
                result.virtualSeconds * 1e3 / defaultMs,
                wg == 256 ? "  (SkelCL default)" : "");
  }
  skelcl::terminate();
  return 0;
}
