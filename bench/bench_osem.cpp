// Reproduces Figure 2 of the paper: runtime and program size of parallel
// list-mode OSEM using CUDA, OpenCL, and SkelCL on 1, 2, and 4 GPUs.
//
// Paper (Tesla S1070, ~1e7 events, 150x150x280, 10 subsets; average
// runtime per subset):
//   1 GPU : CUDA 3.03 s, OpenCL 3.66 s, SkelCL 3.66 s
//   4 GPUs: speedups CUDA 3.15x, OpenCL 3.24x, SkelCL 3.1x
//   program size: SkelCL 232 LoC (200 kernel + 32 host),
//                 CUDA 329 (199+130), OpenCL 436 (193+243)
#include "bench_util.h"

#include "cuda/runtime.h"
#include "osem/osem.h"

int main() {
  bench::setupCacheDir("osem");

  osem::OsemParams params = osem::OsemParams::benchSize();
  params.numEvents = std::size_t(double(params.numEvents) * bench::scale());
  const auto dataset = osem::generateDataset(params);

  bench::heading(
      "Figure 2: list-mode OSEM (" + std::to_string(params.numEvents) +
      " events, " + std::to_string(params.vol.nx) + "x" +
      std::to_string(params.vol.ny) + "x" + std::to_string(params.vol.nz) +
      " volume, " + std::to_string(params.numSubsets) + " subsets)");

  const auto reference = osem::reconstructSequential(dataset);

  struct Cell {
    double perSubsetMs = 0;
    bool correct = false;
  };
  const int gpuCounts[] = {1, 2, 4};
  Cell cells[3][3]; // [impl][gpuConfig]

  for (int g = 0; g < 3; ++g) {
    const int gpus = gpuCounts[g];
    bench::setupSystem(std::uint32_t(gpus));
    cuda::reset();

    const auto run = [&](int impl, osem::OsemResult result) {
      cells[impl][g].perSubsetMs = result.virtualSecondsPerSubset * 1e3;
      cells[impl][g].correct =
          osem::relativeRmse(reference.image, result.image) < 1e-3;
    };
    run(0, osem::reconstructCuda(dataset, gpus));
    run(1, osem::reconstructOpenCl(dataset, gpus));
    run(2, osem::reconstructSkelCl(dataset));
    skelcl::terminate();
  }

  const char* labels[] = {"CUDA", "OpenCL", "SkelCL"};
  const double paper1Gpu[] = {3.03, 3.66, 3.66};
  const double paperSpeedup4[] = {3.15, 3.24, 3.10};

  bench::subheading("avg virtual runtime per subset [ms]");
  std::printf("%-8s %10s %10s %10s %14s %16s %14s\n", "impl", "1 GPU",
              "2 GPUs", "4 GPUs", "speedup(4)", "paper 1GPU[s]",
              "paper sp(4)");
  bool allCorrect = true;
  for (int impl = 0; impl < 3; ++impl) {
    for (int g = 0; g < 3; ++g) {
      allCorrect &= cells[impl][g].correct;
    }
    std::printf("%-8s %10.3f %10.3f %10.3f %13.2fx %16.2f %13.2fx\n",
                labels[impl], cells[impl][0].perSubsetMs,
                cells[impl][1].perSubsetMs, cells[impl][2].perSubsetMs,
                cells[impl][0].perSubsetMs / cells[impl][2].perSubsetMs,
                paper1Gpu[impl], paperSpeedup4[impl]);
  }
  std::printf("all reconstructions match the sequential reference: %s\n",
              allCorrect ? "yes" : "NO (BUG)");
  std::printf(
      "SkelCL overhead vs OpenCL (1 GPU): %+.1f%% (paper: ~0%%, < 5%%)\n",
      (cells[2][0].perSubsetMs / cells[1][0].perSubsetMs - 1.0) * 100.0);
  std::printf(
      "SkelCL on 4 GPUs vs CUDA on 1 GPU: %.2fx faster (paper: 2.56x)\n",
      cells[0][0].perSubsetMs / cells[2][2].perSubsetMs);

  bench::subheading("program size (lines of code)");
  std::printf("%-8s %8s %8s %8s %22s\n", "impl", "kernel", "host", "total",
              "paper (kernel+host)");
  const char* paperLoc[] = {"329 (199+130)", "436 (193+243)",
                            "232 (200+32)"};
  int i = 0;
  for (const auto& entry : osem::locEntries()) {
    const std::size_t kernel = bench::fileLoc(entry.kernelFile);
    const std::size_t host = bench::fileLoc(entry.hostFile);
    std::printf("%-8s %8zu %8zu %8zu %22s\n", entry.label.c_str(), kernel,
                host, kernel + host, paperLoc[i++]);
  }
  return allCorrect ? 0 : 1;
}
