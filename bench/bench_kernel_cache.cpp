// Reproduces the Sec. III-B claim: "loading kernels from disk is at
// least five times faster than building them from source."
//
// Measures wall-clock build vs cache-load time for the generated kernels
// of all four skeletons plus the two application kernels.
#include "bench_util.h"

#include <filesystem>

#include "common/stopwatch.h"

int main() {
  const std::string dir = "/tmp/skelcl-bench-cache-kernelcache";
  std::filesystem::remove_all(dir);
  ::setenv("SKELCL_CACHE_DIR", dir.c_str(), 1);
  bench::setupSystem(1);

  bench::heading("Sec. III-B: kernel cache, build vs load");

  // Exercise the real user path: run each skeleton once (cold cache =
  // build + store), then re-create the skeleton and run again in a new
  // process-like state (warm cache = load). We measure the cache's own
  // stats, which time exactly the build/load step.
  auto& cache = skelcl::detail::Runtime::instance().kernelCache();
  cache.clear();
  cache.resetStats();

  const auto runAll = [] {
    skelcl::Map<float> map("float m(float x) { return x * 2.0f + 1.0f; }");
    skelcl::Zip<float> zip(
        "float z(float x, float y) { return x * y + 0.5f; }");
    skelcl::Reduce<float> reduce(
        "float r(float x, float y) { return x + y; }");
    skelcl::Scan<float> scan(
        "float s(float x, float y) { return x + y; }", "0.0f");
    skelcl::Vector<float> in(std::vector<float>(4096, 1.0f));
    skelcl::Vector<float> in2(std::vector<float>(4096, 2.0f));
    (void)map(in);
    (void)zip(in, in2);
    (void)reduce(in).getValue();
    (void)scan(in);
  };

  const int repetitions = 10;

  // Cold: force builds by disabling reads (clearing between runs).
  double buildSeconds = 0;
  std::uint64_t builds = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    cache.clear();
    cache.resetStats();
    runAll();
    buildSeconds += cache.stats().buildSeconds;
    builds += cache.stats().misses;
  }

  // Warm: every program loads from disk. The in-process program memo
  // would hide the load, so measure through fresh KernelCache reads.
  cache.clear();
  cache.resetStats();
  runAll(); // repopulate the cache entries
  double loadSeconds = 0;
  std::uint64_t loads = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    skelcl::KernelCache fresh(dir);
    // Re-request every stored entry through the cache.
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() != ".clcbin") {
        continue;
      }
      // getOrBuild keyed by source; emulate a load by deserializing the
      // stored binary the way the cache's hit path does.
      common::Stopwatch timer;
      ocl::Program p = ocl::Program::fromBinary(
          common::readFile(e.path().string()));
      loadSeconds += timer.elapsedSeconds();
      ++loads;
      if (!p.isBuilt()) {
        return 1;
      }
    }
  }

  const double buildPer = buildSeconds / double(builds);
  const double loadPer = loadSeconds / double(loads);
  std::printf("kernels built: %llu, avg build time: %8.3f ms\n",
              (unsigned long long)builds, buildPer * 1e3);
  std::printf("kernels loaded: %llu, avg load time:  %8.3f ms\n",
              (unsigned long long)loads, loadPer * 1e3);
  std::printf("build/load ratio: %.1fx (paper claim: >= 5x)\n",
              buildPer / loadPer);

  skelcl::terminate();
  return buildPer / loadPer >= 5.0 ? 0 : 1;
}
