// List-mode OSEM example: generates a synthetic PET dataset, runs the
// SkelCL reconstruction on all available (simulated) GPUs, and reports
// image quality against the ground-truth phantom.
//
//   osem_reconstruction [numGpus [numEvents]]
#include <cstdio>
#include <cstdlib>

#include "osem/osem.h"
#include "skelcl/skelcl.h"

int main(int argc, char** argv) {
  std::size_t gpus = 2;
  osem::OsemParams params = osem::OsemParams::testSize();
  params.numEvents = 8000;
  if (argc >= 2) {
    gpus = std::size_t(std::atoi(argv[1]));
  }
  if (argc >= 3) {
    params.numEvents = std::size_t(std::atol(argv[2]));
  }

  ocl::configureSystem(ocl::SystemConfig::teslaS1070(std::uint32_t(gpus)));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));

  std::printf("generating %zu events over a %dx%dx%d volume...\n",
              params.numEvents, params.vol.nx, params.vol.ny,
              params.vol.nz);
  const auto dataset = osem::generateDataset(params);

  std::printf("reconstructing on %zu simulated GPU(s)...\n", gpus);
  const auto result = osem::reconstructSkelCl(dataset);
  const auto reference = osem::reconstructSequential(dataset);

  std::printf("subsets: %d, avg virtual time per subset: %.3f ms\n",
              dataset.numSubsets, result.virtualSecondsPerSubset * 1e3);
  std::printf("total virtual time: %.3f ms, wall: %.3f ms\n",
              result.virtualSeconds * 1e3, result.wallSeconds * 1e3);
  std::printf("relative RMSE vs sequential reference: %.2e\n",
              osem::relativeRmse(reference.image, result.image));

  // Report contrast recovery: hot-region mean over background mean.
  double hot = 0, bg = 0;
  std::size_t hotN = 0, bgN = 0;
  for (std::size_t i = 0; i < result.image.size(); ++i) {
    if (dataset.phantom[i] >= 4.0f) {
      hot += result.image[i];
      ++hotN;
    } else if (dataset.phantom[i] == 1.0f) {
      bg += result.image[i];
      ++bgN;
    }
  }
  if (hotN > 0 && bgN > 0) {
    std::printf("hot/background contrast: %.2f (phantom truth: 4.00)\n",
                (hot / double(hotN)) / (bg / double(bgN)));
  }
  skelcl::terminate();
  return 0;
}
