// Breadth-first search as a sparse gather: the graph is stored as a
// reverse-adjacency CSR matrix (row v lists the predecessors of v), and
// one SparseGather step computes, for every vertex, the minimum level
// among its in-neighbours plus one. Zipping that candidate with the
// previous levels (again with min) relaxes the frontier; iterating to a
// fixed point yields BFS levels from the source.
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "skelcl/skelcl.h"

namespace {

constexpr std::uint32_t kInf = 0xFFFFFFFFu;

/// Random digraph with a Hamiltonian path so every vertex is reachable.
std::vector<std::pair<std::uint32_t, std::uint32_t>> randomGraph(
    std::size_t n, std::size_t extraEdges, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> vtx(0, std::uint32_t(n - 1));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v < n; ++v) {
    edges.emplace_back(v - 1, v);
  }
  for (std::size_t i = 0; i < extraEdges; ++i) {
    edges.emplace_back(vtx(rng), vtx(rng));
  }
  return edges;
}

/// Classic host-side BFS for verification.
std::vector<std::uint32_t> hostBfs(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::uint32_t source) {
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const auto& [u, v] : edges) {
    adj[u].push_back(v);
  }
  std::vector<std::uint32_t> level(n, kInf);
  std::queue<std::uint32_t> q;
  level[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t v : adj[u]) {
      if (level[v] == kInf) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

} // namespace

int main(int, char const*[]) {
  const std::size_t n = 1024;
  const auto edges = randomGraph(n, 3 * n, 42);

  skelcl::init();

  /* reverse CSR: row v holds the predecessors u of each edge u -> v */
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (const auto& [u, v] : edges) {
    pred[v].push_back(u);
  }
  std::vector<std::uint32_t> rowPtr = {0}, colIdx;
  for (std::size_t v = 0; v < n; ++v) {
    colIdx.insert(colIdx.end(), pred[v].begin(), pred[v].end());
    rowPtr.push_back(std::uint32_t(colIdx.size()));
  }
  skelcl::CsrMatrix<std::uint32_t> graph(
      n, n, rowPtr, colIdx,
      std::vector<std::uint32_t>(colIdx.size(), 1u));

  /* gather: level through an incoming edge (saturating at infinity);
   * combine: min over incoming edges; identity: unreachable */
  skelcl::SparseGather<std::uint32_t> expand(
      "uint bfs_gather(uint edge, uint lu) {\n"
      "  return lu == 0xFFFFFFFFu ? 0xFFFFFFFFu : lu + 1u;\n"
      "}\n",
      "uint bfs_min(uint a, uint b) { return a < b ? a : b; }",
      "0xFFFFFFFFu");
  skelcl::Zip<std::uint32_t> relax(
      "uint bfs_relax(uint old, uint cand) {"
      " return old < cand ? old : cand; }");

  std::vector<std::uint32_t> init(n, kInf);
  init[0] = 0;
  skelcl::Vector<std::uint32_t> levels(init);

  std::size_t steps = 0;
  for (; steps < n; ++steps) {
    skelcl::Vector<std::uint32_t> next = relax(levels, expand(graph, levels));
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (next[v] != levels[v]) {
        changed = true;
        break;
      }
    }
    levels = std::move(next);
    if (!changed) {
      break;
    }
  }

  const std::vector<std::uint32_t> expected = hostBfs(n, edges, 0);
  std::size_t mismatches = 0;
  std::uint32_t depth = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (levels[v] != expected[v]) {
      ++mismatches;
    }
    if (expected[v] != kInf && expected[v] > depth) {
      depth = expected[v];
    }
  }

  std::printf("vertices      = %zu   edges = %zu\n", n, edges.size());
  std::printf("BFS depth     = %u (converged after %zu gather steps)\n",
              depth, steps + 1);
  std::printf("mismatches    = %zu\n", mismatches);
  std::printf("virtual time  = %.3f ms\n", double(ocl::hostTimeNs()) * 1e-6);

  skelcl::terminate();
  return mismatches == 0 ? 0 : 1;
}
