// Mandelbrot example: renders the fractal with the SkelCL Map skeleton
// and writes a PPM image. Pass a different size or output path:
//
//   mandelbrot [width height [maxIter [out.ppm]]]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mandelbrot/mandelbrot.h"
#include "skelcl/skelcl.h"

int main(int argc, char** argv) {
  mandelbrot::FractalParams params = mandelbrot::FractalParams::benchSize();
  std::string outPath = "mandelbrot.ppm";
  if (argc >= 3) {
    params.width = std::uint32_t(std::atoi(argv[1]));
    params.height = std::uint32_t(std::atoi(argv[2]));
  }
  if (argc >= 4) {
    params.maxIterations = std::uint32_t(std::atoi(argv[3]));
  }
  if (argc >= 5) {
    outPath = argv[4];
  }

  skelcl::init(skelcl::DeviceSelection::nGPUs(1));

  std::printf("rendering %ux%u, %u iterations...\n", params.width,
              params.height, params.maxIterations);
  const auto result = mandelbrot::computeSkelCl(params);
  mandelbrot::writePpm(outPath, params, result.iterations);

  std::printf("wrote %s\n", outPath.c_str());
  std::printf("virtual (simulated GPU) time: %.3f ms\n",
              result.virtualSeconds * 1e3);
  std::printf("wall (interpreter) time:      %.3f ms\n",
              result.wallSeconds * 1e3);
  skelcl::terminate();
  return 0;
}
