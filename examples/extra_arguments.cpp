// Additional-arguments example (paper Listing 2 and Sec. III-C): a Map
// skeleton whose customizing function takes extra parameters — a scalar,
// a whole vector, and a user-defined struct.
#include <cstdio>

#include "skelcl/skelcl.h"

struct Window {
  float lo;
  float hi;
};

int main() {
  skelcl::init();

  // Listing 2: pass an arbitrary multiplier to a Map skeleton.
  skelcl::Map<float> multNum(
      "float f(float input, float number) { return input * number; }");
  skelcl::Vector<float> input(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  skelcl::Arguments arguments;
  arguments.push(5.0f);
  skelcl::Vector<float> scaled = multNum(input, arguments);
  std::printf("scaled: %.1f %.1f %.1f %.1f\n", double(scaled[0]),
              double(scaled[1]), double(scaled[2]), double(scaled[3]));

  // A vector argument: gather through an index table.
  skelcl::Map<int> gather(
      "int g(int idx, __global const float* table) {"
      " return (int)table[idx]; }");
  skelcl::Vector<int> indices(std::vector<int>{3, 0, 2});
  skelcl::Arguments tableArg;
  tableArg.push(scaled);
  skelcl::Vector<int> gathered = gather(indices, tableArg);
  std::printf("gathered: %d %d %d\n", gathered[0], gathered[1],
              gathered[2]);

  // A struct argument: clamp every element into a window.
  skelcl::registerType<Window>(
      "Window", "typedef struct { float lo; float hi; } Window;");
  skelcl::Map<float> clampWin(
      "float cw(float x, Window w) { return clamp(x, w.lo, w.hi); }");
  skelcl::Arguments winArg;
  winArg.push(Window{6.0f, 16.0f});
  skelcl::Vector<float> clamped = clampWin(scaled, winArg);
  std::printf("clamped: %.1f %.1f %.1f %.1f\n", double(clamped[0]),
              double(clamped[1]), double(clamped[2]), double(clamped[3]));

  skelcl::terminate();
  return 0;
}
