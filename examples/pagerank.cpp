// PageRank on the sparse-gather skeleton: pre-scaling each edge of the
// reverse graph by 1/outdegree(source) turns the rank update into a
// plain SpMV — SparseGather multiplies and sums the incoming
// contributions, and a Map applies damping. Twenty iterations match the
// same float arithmetic on the host exactly, because the device folds
// each row's contributions in the same CSR order.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <utility>
#include <vector>

#include "skelcl/skelcl.h"

int main(int, char const*[]) {
  const std::size_t n = 2048;
  const int iterations = 20;
  const float d = 0.85f;

  /* random digraph; a cycle through every vertex avoids dangling nodes */
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> vtx(0, std::uint32_t(n - 1));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < 5 * n; ++i) {
    edges.emplace_back(vtx(rng), vtx(rng));
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % std::uint32_t(n));
  }
  std::vector<std::uint32_t> outDeg(n, 0);
  for (const auto& [u, v] : edges) {
    ++outDeg[u];
  }

  skelcl::init();

  /* reverse CSR with values pre-scaled by 1/outdeg(u) */
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (const auto& [u, v] : edges) {
    pred[v].push_back(u);
  }
  std::vector<std::uint32_t> rowPtr = {0}, colIdx;
  std::vector<float> scaled;
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t u : pred[v]) {
      colIdx.push_back(u);
      scaled.push_back(1.0f / float(outDeg[u]));
    }
    rowPtr.push_back(std::uint32_t(colIdx.size()));
  }
  skelcl::CsrMatrix<float> graph(n, n, rowPtr, colIdx, scaled);

  skelcl::SparseGather<float> gather(
      "float pr_gather(float w, float r) { return w * r; }",
      "float pr_sum(float a, float b) { return a + b; }", "0.0f");
  skelcl::Map<float> damp(
      "float pr_damp(float y, float base, float d) {"
      " return base + d * y; }");

  const float base = (1.0f - d) / float(n);
  skelcl::Vector<float> rank(std::vector<float>(n, 1.0f / float(n)));
  for (int it = 0; it < iterations; ++it) {
    skelcl::Arguments args;
    args.push(base);
    args.push(d);
    rank = damp(gather(graph, rank), args);
  }

  /* host oracle with identical accumulation order */
  std::vector<float> r(n, 1.0f / float(n));
  for (int it = 0; it < iterations; ++it) {
    std::vector<float> y(n);
    for (std::size_t v = 0; v < n; ++v) {
      float acc = 0.0f;
      for (std::uint32_t k = rowPtr[v]; k < rowPtr[v + 1]; ++k) {
        acc = acc + scaled[k] * r[colIdx[k]];
      }
      y[v] = base + d * acc;
    }
    r = std::move(y);
  }

  std::size_t mismatches = 0;
  float mass = 0.0f;
  std::size_t top = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (rank[v] != r[v]) {
      ++mismatches;
    }
    mass += rank[v];
    if (rank[v] > rank[top]) {
      top = v;
    }
  }

  std::printf("vertices       = %zu   edges = %zu\n", n, edges.size());
  std::printf("iterations     = %d\n", iterations);
  std::printf("top vertex     = %zu (rank %.6f)\n", top, double(rank[top]));
  std::printf("total mass     = %.6f\n", double(mass));
  std::printf("host mismatches= %zu\n", mismatches);
  std::printf("virtual time   = %.3f ms\n", double(ocl::hostTimeNs()) * 1e-6);

  skelcl::terminate();
  return mismatches == 0 ? 0 : 1;
}
