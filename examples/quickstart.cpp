// Quickstart: the dot product from Listing 1 of the paper, verbatim in
// structure. Two skeletons — Zip customized with multiplication and
// Reduce customized with addition — compute a dot product on the GPU;
// the Vector class handles every transfer implicitly.
#include <cstdio>
#include <cstdlib>

#include "skelcl/skelcl.h"

#define ARRAY_SIZE 16384

static void fillArray(float* data, int n) {
  for (int i = 0; i < n; ++i) {
    data[i] = float(i % 10) * 0.5f;
  }
}

int main(int, char const*[]) {
  skelcl::init(); /* initialize SkelCL */

  /* create skeletons */
  skelcl::Reduce<float> sum(
      "float sum (float x,float y){return x+y;}");
  skelcl::Zip<float> mult(
      "float mult(float x,float y){return x*y;}");

  /* allocate and initialize host arrays */
  float* a_ptr = new float[ARRAY_SIZE];
  float* b_ptr = new float[ARRAY_SIZE];
  fillArray(a_ptr, ARRAY_SIZE);
  fillArray(b_ptr, ARRAY_SIZE);

  /* create input vectors */
  skelcl::Vector<float> A(a_ptr, ARRAY_SIZE);
  skelcl::Vector<float> B(b_ptr, ARRAY_SIZE);

  /* execute skeletons */
  skelcl::Scalar<float> C = sum(mult(A, B));

  /* fetch result */
  float c = C.getValue();

  /* verify against the host */
  float expected = 0.0f;
  for (int i = 0; i < ARRAY_SIZE; ++i) {
    expected += a_ptr[i] * b_ptr[i];
  }
  std::printf("dot product  = %.2f\n", double(c));
  std::printf("host result  = %.2f\n", double(expected));
  std::printf("virtual time = %.3f ms\n", double(ocl::hostTimeNs()) * 1e-6);

  /* clean up */
  delete[] a_ptr;
  delete[] b_ptr;
  skelcl::terminate();
  return std::abs(c - expected) < 1.0f ? 0 : 1;
}
