// The multi-tenant job service: policy behavior (FIFO baseline
// equivalence, weighted fair share, job-granularity priority), admission
// control, cross-tenant batching, per-tenant accounting, the runtime
// stats scopes, the scheduler's cross-thread submission contract, and
// the skeltrace tenant report. Fault-plan isolation lives in
// service_fault_test.cpp. Run with `ctest -L service`.
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "skelcl_test_util.h"

#include "ocl/ocl.h"
#include "service/service.h"
#include "skelcl/detail/scheduler.h"
#include "trace/analysis.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"

namespace {

namespace svc = skelcl::service;
using skelcl::Map;
using skelcl::Vector;
using skelcl::Zip;

struct JobSink {
  std::vector<float> data;
};

std::vector<float> seededA(std::size_t n, std::size_t seed) {
  std::vector<float> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float((i + 3 * seed) % 31) * 0.25f;
  }
  return a;
}

std::vector<float> seededB(std::size_t n, std::size_t seed) {
  std::vector<float> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = float((i * 7 + seed) % 29) * 0.5f;
  }
  return b;
}

/// The standard tenant job: Map(Zip) over seeded data on one GPU.
svc::Job chainJob(std::size_t seed, std::size_t n, std::size_t gpu,
                  const std::shared_ptr<JobSink>& sink,
                  std::uint64_t arrivalNs = 0,
                  const std::string& key = "svt-chain") {
  svc::Job job;
  job.programKey = key;
  job.arrivalNs = arrivalNs;
  auto out = std::make_shared<Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    Zip<float> mult("float svt_mul(float x, float y) { return x * y; }");
    Map<float> scale(
        "float svt_scale(float x) { return 0.5f * x + 1.0f; }");
    Vector<float> va(seededA(n, seed));
    Vector<float> vb(seededB(n, seed));
    va.setDistribution(skelcl::Distribution::Single, gpu);
    vb.setDistribution(skelcl::Distribution::Single, gpu);
    *out = scale(mult(va, vb));
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

/// What chainJob computes, evaluated directly without the service.
std::vector<float> directChain(std::size_t seed, std::size_t n,
                               std::size_t gpu) {
  Zip<float> mult("float svt_mul(float x, float y) { return x * y; }");
  Map<float> scale("float svt_scale(float x) { return 0.5f * x + 1.0f; }");
  Vector<float> va(seededA(n, seed));
  Vector<float> vb(seededB(n, seed));
  va.setDistribution(skelcl::Distribution::Single, gpu);
  vb.setDistribution(skelcl::Distribution::Single, gpu);
  return scale(mult(va, vb)).hostData();
}

class ServiceTest : public skelcl_test::SkelclFixture {
protected:
  ServiceTest() : SkelclFixture(/*gpus=*/2) {}
};

constexpr std::size_t kN = 4096;

// --- FIFO baseline equivalence -------------------------------------------

TEST_F(ServiceTest, FifoSingleTenantMatchesDirectExecutionByteIdentically) {
  std::vector<std::vector<float>> direct;
  for (std::size_t j = 0; j < 3; ++j) {
    direct.push_back(directChain(j, kN, j % 2));
  }

  svc::ServiceConfig config;
  config.policy = svc::Policy::Fifo;
  svc::JobServer server(config);
  svc::Session& only = server.openSession("only");
  std::vector<std::shared_ptr<JobSink>> sinks;
  for (std::size_t j = 0; j < 3; ++j) {
    auto sink = std::make_shared<JobSink>();
    sinks.push_back(sink);
    only.submit(chainJob(j, kN, j % 2, sink));
  }
  server.pump();

  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_EQ(sinks[j]->data.size(), direct[j].size());
    EXPECT_EQ(0, std::memcmp(sinks[j]->data.data(), direct[j].data(),
                             direct[j].size() * sizeof(float)));
  }
}

TEST_F(ServiceTest, SharedFifoTenantsKeepTheirSoloOutputs) {
  // Two tenants interleaved through one FIFO server must each see
  // exactly the bytes their jobs produce when run directly.
  svc::ServiceConfig config;
  config.policy = svc::Policy::Fifo;
  svc::JobServer server(config);
  svc::Session& left = server.openSession("left");
  svc::Session& right = server.openSession("right");
  std::vector<std::shared_ptr<JobSink>> leftSinks, rightSinks;
  for (std::size_t j = 0; j < 3; ++j) {
    auto sinkL = std::make_shared<JobSink>();
    leftSinks.push_back(sinkL);
    left.submit(chainJob(j, kN, 0, sinkL));
    auto sinkR = std::make_shared<JobSink>();
    rightSinks.push_back(sinkR);
    right.submit(chainJob(10 + j, kN, 1, sinkR));
  }
  server.pump();

  for (std::size_t j = 0; j < 3; ++j) {
    const auto expectedL = directChain(j, kN, 0);
    const auto expectedR = directChain(10 + j, kN, 1);
    EXPECT_EQ(0, std::memcmp(leftSinks[j]->data.data(), expectedL.data(),
                             expectedL.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(rightSinks[j]->data.data(), expectedR.data(),
                             expectedR.size() * sizeof(float)));
  }
}

// --- admission control ----------------------------------------------------

TEST_F(ServiceTest, OverloadRejectionIsTypedAndCounted) {
  svc::ServiceConfig config;
  config.queueCap = 2;
  svc::JobServer server(config);
  svc::Session& tenant = server.openSession("crowded");
  auto sink = std::make_shared<JobSink>();
  tenant.submit(chainJob(0, kN, 0, sink));
  tenant.submit(chainJob(1, kN, 0, sink));
  try {
    tenant.submit(chainJob(2, kN, 0, sink));
    FAIL() << "third submit should overload a cap-2 queue";
  } catch (const svc::ServiceOverload& e) {
    EXPECT_EQ(e.tenant(), "crowded");
    EXPECT_EQ(e.queued(), 2u);
    EXPECT_EQ(e.cap(), 2u);
  }
  server.pump();
  const auto stats = server.tenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].submitted, 2u);
  EXPECT_EQ(stats[0].completed, 2u);
  EXPECT_EQ(stats[0].rejected, 1u);
  EXPECT_EQ(stats[0].failed, 0u);
}

TEST(ServiceConfigTest, FromEnvParsesTheDocumentedKnobs) {
  ::setenv("SKELCL_SERVICE_POLICY", "fair", 1);
  ::setenv("SKELCL_SERVICE_QUEUE_CAP", "5", 1);
  ::setenv("SKELCL_SERVICE_BATCH", "0", 1);
  ::setenv("SKELCL_SERVICE_BATCH_LIMIT", "3", 1);
  ::setenv("SKELCL_SERVICE_THREADS", "2", 1);
  const svc::ServiceConfig config = svc::ServiceConfig::fromEnv();
  EXPECT_EQ(config.policy, svc::Policy::FairShare);
  EXPECT_EQ(config.queueCap, 5u);
  EXPECT_FALSE(config.batching);
  EXPECT_EQ(config.batchLimit, 3u);
  EXPECT_EQ(config.threads, 2u);
  ::unsetenv("SKELCL_SERVICE_POLICY");
  ::unsetenv("SKELCL_SERVICE_QUEUE_CAP");
  ::unsetenv("SKELCL_SERVICE_BATCH");
  ::unsetenv("SKELCL_SERVICE_BATCH_LIMIT");
  ::unsetenv("SKELCL_SERVICE_THREADS");

  EXPECT_THROW(svc::policyFromString("round-robin"),
               common::InvalidArgument);
}

// --- scheduling policies --------------------------------------------------

TEST_F(ServiceTest, FairShareConvergesOnWeightedPair) {
  // Both tenants stay backlogged with identical jobs; the weight-2
  // tenant must take 2/3 of the first half of dispatches.
  const std::size_t jobsEach = 9;
  svc::ServiceConfig config;
  config.policy = svc::Policy::FairShare;
  config.batching = false;
  config.queueCap = jobsEach;
  svc::JobServer server(config);
  svc::Session& a = server.openSession("w2", /*weight=*/2.0);
  svc::Session& b = server.openSession("w1", /*weight=*/1.0);

  std::vector<std::pair<svc::JobHandle, bool>> handles;
  auto sink = std::make_shared<JobSink>();
  for (std::size_t j = 0; j < jobsEach; ++j) {
    handles.emplace_back(a.submit(chainJob(j, kN, 0, sink)), true);
  }
  for (std::size_t j = 0; j < jobsEach; ++j) {
    handles.emplace_back(b.submit(chainJob(50 + j, kN, 0, sink)), false);
  }
  server.pump();

  std::vector<std::pair<std::uint64_t, bool>> order;
  for (const auto& [handle, isA] : handles) {
    handle.rethrow();
    order.emplace_back(handle.stats().dispatchNs, isA);
  }
  std::sort(order.begin(), order.end());
  std::size_t firstHalfA = 0;
  for (std::size_t i = 0; i < jobsEach; ++i) {
    firstHalfA += order[i].second ? 1 : 0;
  }
  // Identical jobs make the 2:1 interleave deterministic: A,B,A,A,B,...
  EXPECT_EQ(firstHalfA, 6u);

  const auto stats = server.tenantStats();
  EXPECT_GT(stats[0].vruntime, 0.0);
  // Equal total work, half the weighted rate: w2's vruntime is half.
  EXPECT_NEAR(stats[0].vruntime * 2.0, stats[1].vruntime,
              stats[1].vruntime * 0.01);
}

TEST_F(ServiceTest, PriorityPreemptsAtJobNotKernelGranularity) {
  svc::ServiceConfig config;
  config.policy = svc::Policy::Priority;
  config.batching = false;
  svc::JobServer server(config);
  svc::Session& low = server.openSession("low", 1.0, /*priority=*/0);
  svc::Session& high = server.openSession("high", 1.0, /*priority=*/5);

  auto sink = std::make_shared<JobSink>();
  const std::uint64_t t0 = ocl::hostTimeNs();
  std::vector<svc::JobHandle> lowHandles;
  for (std::size_t j = 0; j < 3; ++j) {
    lowHandles.push_back(low.submit(chainJob(j, kN, 0, sink)));
  }
  // Arrives just after the dispatcher committed to low's first job: it
  // must run next (ahead of low's queue) but not abort the running job.
  svc::JobHandle highHandle =
      high.submit(chainJob(99, kN, 0, sink, /*arrivalNs=*/t0 + 1000));
  server.pump();

  for (const auto& handle : lowHandles) {
    handle.rethrow();
  }
  highHandle.rethrow();
  const auto low0 = lowHandles[0].stats();
  const auto low1 = lowHandles[1].stats();
  const auto highStats = highHandle.stats();
  // Job granularity: the in-flight low job ran to completion first...
  EXPECT_GE(highStats.dispatchNs, low0.completeNs);
  // ...then the high-priority job jumped the rest of the backlog.
  EXPECT_LE(highStats.completeNs, low1.dispatchNs);
}

// --- batching -------------------------------------------------------------

TEST_F(ServiceTest, BatchingCoalescesSameProgramAcrossTenants) {
  svc::ServiceConfig config;
  config.policy = svc::Policy::Fifo;
  config.batching = true;
  config.batchLimit = 8;
  svc::JobServer server(config);
  svc::Session& a = server.openSession("a");
  svc::Session& b = server.openSession("b");
  auto sink = std::make_shared<JobSink>();
  for (std::size_t j = 0; j < 3; ++j) {
    a.submit(chainJob(j, kN, 0, sink));
    b.submit(chainJob(10 + j, kN, 1, sink));
  }
  server.pump();
  const auto stats = server.serverStats();
  EXPECT_EQ(stats.jobsExecuted, 6u);
  // All six share one programKey and arrived before the pump: one batch.
  EXPECT_EQ(stats.maxBatch, 6u);
  EXPECT_EQ(stats.coalescedJobs, 6u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST_F(ServiceTest, BatchingOffRunsEveryJobAlone) {
  svc::ServiceConfig config;
  config.batching = false;
  svc::JobServer server(config);
  svc::Session& a = server.openSession("a");
  auto sink = std::make_shared<JobSink>();
  for (std::size_t j = 0; j < 3; ++j) {
    a.submit(chainJob(j, kN, 0, sink));
  }
  server.pump();
  const auto stats = server.serverStats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.maxBatch, 1u);
  EXPECT_EQ(stats.coalescedJobs, 0u);
}

// --- accounting -----------------------------------------------------------

TEST_F(ServiceTest, TenantAccountingChargesCyclesAndBytesExactly) {
  svc::ServiceConfig config;
  svc::JobServer server(config);
  svc::Session& a = server.openSession("acct-a");
  svc::Session& b = server.openSession("acct-b");
  auto sink = std::make_shared<JobSink>();
  std::vector<svc::JobHandle> handles;
  for (std::size_t j = 0; j < 2; ++j) {
    handles.push_back(a.submit(chainJob(j, kN, 0, sink)));
    handles.push_back(b.submit(chainJob(20 + j, kN, 1, sink)));
  }
  server.pump();

  const auto stats = server.tenantStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].deviceCycles, 0u);
  EXPECT_GT(stats[0].bytesMoved, 0u);
  // Identical job shapes on identical GPUs: the accounting must split
  // the load exactly evenly — any skew means cross-tenant bleed.
  EXPECT_EQ(stats[0].deviceCycles, stats[1].deviceCycles);
  EXPECT_EQ(stats[0].bytesMoved, stats[1].bytesMoved);

  // Per-job deltas add up to the tenant totals.
  std::uint64_t jobCyclesA = 0;
  jobCyclesA += handles[0].stats().deviceCycles;
  jobCyclesA += handles[2].stats().deviceCycles;
  EXPECT_EQ(jobCyclesA, stats[0].deviceCycles);

  const auto snapshot = trace::LoadMonitor::instance().tenantSnapshot();
  ASSERT_GE(snapshot.size(), 2u);
  const auto& rowA = snapshot[snapshot.size() - 2];
  EXPECT_EQ(rowA.name, "acct-a");
  EXPECT_EQ(rowA.jobs, 2u);
  EXPECT_EQ(rowA.deviceCycles, stats[0].deviceCycles);
}

// --- runtime stats scopes (resettable counters) ---------------------------

TEST_F(ServiceTest, StatsScopeIsolatesFusionAndCacheDeltas) {
  auto& runtime = skelcl::detail::Runtime::instance();
  // Warm up: compile the chain's program once outside any scope.
  directChain(0, kN, 0);

  runtime.resetFusionStats();
  const auto zeroed = runtime.fusionStats();
  EXPECT_EQ(zeroed.fusedLaunches, 0u);
  EXPECT_EQ(zeroed.fusedStages, 0u);

  {
    skelcl::detail::StatsScope scope;
    directChain(1, kN, 0);
    const auto fusion = scope.fusionDelta();
    // Map(Zip) fuses under the default rewrite rules: the scope must see
    // exactly this run's fusion work, not history.
    EXPECT_GT(fusion.fusedStages + fusion.fusedLaunches, 0u);
  }

  // A cleared program memo forces one cache resolution, visible only
  // inside the scope that did it.
  runtime.clearProgramMemo();
  skelcl::detail::StatsScope reloadScope;
  directChain(2, kN, 0);
  const auto cache = reloadScope.cacheDelta();
  EXPECT_GE(cache.hits + cache.misses, 1u);

  runtime.kernelCache().resetStats();
  EXPECT_EQ(runtime.kernelCache().stats().hits, 0u);
  EXPECT_EQ(runtime.kernelCache().stats().misses, 0u);
}

// --- scheduler cross-thread contract --------------------------------------

TEST_F(ServiceTest, SchedulerRejectsCrossThreadSubmissionWhilePending) {
  auto& scheduler = skelcl::detail::Scheduler::instance();
  if (!scheduler.asyncEnabled()) {
    GTEST_SKIP() << "async scheduler disabled";
  }
  Map<float> scale("float svx_scale(float x) { return 3.0f * x; }");
  Vector<float> input(seededA(kN, 0));
  // Registers a deferred job owned by this thread.
  Vector<float> pending = scale(input);

  std::atomic<bool> submitThrew{false};
  std::atomic<bool> adoptThrew{false};
  std::thread other([&] {
    try {
      Vector<float> local(seededA(kN, 1));
      Vector<float> deferred = scale(local); // noteDeferred from a stranger
      (void)deferred;
    } catch (const common::Error&) {
      submitThrew = true;
    }
    try {
      scheduler.adoptCallingThread();
    } catch (const common::Error&) {
      adoptThrew = true;
    }
  });
  other.join();
  EXPECT_TRUE(submitThrew.load());
  EXPECT_TRUE(adoptThrew.load());

  // The owning thread still drains its job normally.
  const auto data = pending.hostData();
  EXPECT_EQ(data.size(), kN);
}

// --- trace: the skeltrace tenant report -----------------------------------

TEST_F(ServiceTest, TraceReportCarriesTenantSection) {
  trace::Recorder::instance().start();
  {
    svc::JobServer server{svc::ServiceConfig{}};
    svc::Session& a = server.openSession("trace-a");
    svc::Session& b = server.openSession("trace-b");
    auto sink = std::make_shared<JobSink>();
    for (std::size_t j = 0; j < 2; ++j) {
      a.submit(chainJob(j, kN, 0, sink));
      b.submit(chainJob(30 + j, kN, 1, sink));
    }
    server.pump();
  }
  const trace::Trace trace = trace::Recorder::instance().stop();

  const trace::Report report = trace::analyze(trace);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].name, "trace-a");
  EXPECT_EQ(report.tenants[1].name, "trace-b");
  for (const auto& tenant : report.tenants) {
    EXPECT_EQ(tenant.jobs, 2u);
    EXPECT_GT(tenant.execNs, 0u);
    EXPECT_GT(tenant.deviceCycles, 0u);
    EXPECT_GT(tenant.bytesMoved, 0u);
  }

  const std::string text = trace::formatReport(report);
  EXPECT_NE(text.find("tenants (job service)"), std::string::npos);
  EXPECT_NE(text.find("trace-a"), std::string::npos);
}

// --- threaded serving mode (the tsan-smoke stress) ------------------------

TEST_F(ServiceTest, StressThreadedClientsDrainEveryJob) {
  svc::ServiceConfig config;
  config.queueCap = 4; // small: exercises overload retry under threads
  svc::JobServer server(config);
  const std::size_t tenants = 3;
  const std::size_t jobsPer = 6;
  std::vector<svc::Session*> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(
        &server.openSession("stress-" + std::to_string(t)));
  }
  server.start();

  std::vector<std::vector<svc::JobHandle>> handles(tenants);
  std::vector<std::vector<std::shared_ptr<JobSink>>> sinks(tenants);
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < tenants; ++t) {
    handles[t].resize(jobsPer);
    sinks[t].resize(jobsPer);
    clients.emplace_back([&, t] {
      for (std::size_t j = 0; j < jobsPer; ++j) {
        auto sink = std::make_shared<JobSink>();
        sinks[t][j] = sink;
        while (true) {
          try {
            handles[t][j] =
                sessions[t]->submit(chainJob(t * 100 + j, kN, t % 2, sink));
            break;
          } catch (const svc::ServiceOverload&) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  for (auto& perTenant : handles) {
    for (auto& handle : perTenant) {
      handle.wait();
    }
  }
  server.stop();

  for (std::size_t t = 0; t < tenants; ++t) {
    for (std::size_t j = 0; j < jobsPer; ++j) {
      EXPECT_FALSE(handles[t][j].failed());
      const auto expected = directChain(t * 100 + j, kN, t % 2);
      ASSERT_EQ(sinks[t][j]->data.size(), expected.size());
      EXPECT_EQ(0, std::memcmp(sinks[t][j]->data.data(), expected.data(),
                               expected.size() * sizeof(float)));
    }
  }
}

TEST_F(ServiceTest, StressThreadedStencilJobsDrainByteIdentically) {
  // Threaded clients racing stencil jobs through the dispatcher: each
  // job runs a block-distributed 2D stencil whose halo exchange
  // stresses the inter-device event DAG from the service's threads.
  const std::size_t rows = 37, width = 8;
  const auto seededGrid = [&](std::size_t seed) {
    std::vector<float> g(rows * width);
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = float((i * 131 + seed * 17) % 251) * 0.125f;
    }
    return g;
  };
  const char* kHeat =
      "float svt_heat(__global const float* w, uint st) {"
      "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]"
      "                  + w[2 * (int)st + 1]);"
      "}";
  const auto stencilJob = [&](std::size_t seed,
                              const std::shared_ptr<JobSink>& sink) {
    svc::Job job;
    job.programKey = "svt-stencil";
    auto out = std::make_shared<Vector<float>>();
    job.work = [=](svc::JobContext& ctx) {
      skelcl::Stencil<float> heat(
          kHeat, skelcl::StencilShape{1, skelcl::Boundary::Clamp,
                                      std::uint32_t(width)});
      Vector<float> v(seededGrid(seed));
      *out = heat(v);
      ctx.defer(*out);
    };
    job.consume = [=] { sink->data = out->hostData(); };
    return job;
  };

  std::vector<std::vector<float>> direct;
  for (std::size_t j = 0; j < 4; ++j) {
    skelcl::Stencil<float> heat(
        kHeat, skelcl::StencilShape{1, skelcl::Boundary::Clamp,
                                    std::uint32_t(width)});
    Vector<float> v(seededGrid(j));
    direct.push_back(heat(v).hostData());
  }

  svc::ServiceConfig config;
  config.queueCap = 2; // small: overload retry under threads
  svc::JobServer server(config);
  const std::size_t tenants = 2, jobsPer = 2;
  std::vector<svc::Session*> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(
        &server.openSession("stencil-" + std::to_string(t)));
  }
  server.start();

  std::vector<std::vector<svc::JobHandle>> handles(tenants);
  std::vector<std::vector<std::shared_ptr<JobSink>>> sinks(tenants);
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < tenants; ++t) {
    handles[t].resize(jobsPer);
    sinks[t].resize(jobsPer);
    clients.emplace_back([&, t] {
      for (std::size_t j = 0; j < jobsPer; ++j) {
        auto sink = std::make_shared<JobSink>();
        sinks[t][j] = sink;
        while (true) {
          try {
            handles[t][j] =
                sessions[t]->submit(stencilJob(t * jobsPer + j, sink));
            break;
          } catch (const svc::ServiceOverload&) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  for (auto& perTenant : handles) {
    for (auto& handle : perTenant) {
      handle.wait();
    }
  }
  server.stop();

  for (std::size_t t = 0; t < tenants; ++t) {
    for (std::size_t j = 0; j < jobsPer; ++j) {
      EXPECT_FALSE(handles[t][j].failed());
      const auto& expected = direct[t * jobsPer + j];
      ASSERT_EQ(sinks[t][j]->data.size(), expected.size());
      EXPECT_EQ(0, std::memcmp(sinks[t][j]->data.data(), expected.data(),
                               expected.size() * sizeof(float)));
    }
  }
}

} // namespace
