// Tenant fault isolation under SKELCL_FAULT_PLAN: an injected device
// loss or allocation failure inside one tenant's job must surface as
// the original typed ClError on that tenant's JobHandles only, while a
// concurrent tenant's outputs stay byte-identical to a solo run on the
// same two-GPU system. Tenants are separable in the plan because their
// jobs launch differently named kernels (alpha: Map -> "skelcl_map",
// beta: Zip -> "skelcl_zip") and because FIFO order with batching off
// makes the per-site call sequence deterministic. Run with
// `ctest -L service`.
#include <cstring>
#include <memory>
#include <vector>

#include "skelcl_test_util.h"

#include "ocl/fault.h"
#include "service/service.h"

namespace {

namespace svc = skelcl::service;
using skelcl::Map;
using skelcl::Vector;
using skelcl::Zip;

constexpr std::size_t kN = 4096;
constexpr std::size_t kJobs = 4;

struct JobSink {
  std::vector<float> data;
};

std::vector<float> alphaData(std::size_t n, std::size_t seed) {
  std::vector<float> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float((i + 11 * seed) % 37) * 0.125f;
  }
  return a;
}

/// Alpha's job: a single Map on GPU 0 ("skelcl_map" launches).
svc::Job alphaJob(std::size_t seed,
                  const std::shared_ptr<JobSink>& sink) {
  svc::Job job;
  job.programKey = "svf-map";
  auto out = std::make_shared<Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    Map<float> twist("float svf_twist(float x) { return 2.0f * x + 1.0f; }");
    Vector<float> va(alphaData(kN, seed));
    va.setDistribution(skelcl::Distribution::Single, 0);
    *out = twist(va);
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

/// Beta's job: a single Zip on GPU 1 ("skelcl_zip" launches) — what the
/// fault plans target.
svc::Job betaJob(std::size_t seed,
                 const std::shared_ptr<JobSink>& sink) {
  svc::Job job;
  job.programKey = "svf-zip";
  auto out = std::make_shared<Vector<float>>();
  job.work = [=](svc::JobContext& ctx) {
    Zip<float> pair("float svf_pair(float x, float y) { return x + y; }");
    std::vector<float> a(kN), b(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      a[i] = float((i + 5 * seed) % 23) * 0.5f;
      b[i] = float((i * 3 + seed) % 19) * 0.25f;
    }
    Vector<float> va(std::move(a));
    Vector<float> vb(std::move(b));
    va.setDistribution(skelcl::Distribution::Single, 1);
    vb.setDistribution(skelcl::Distribution::Single, 1);
    *out = pair(va, vb);
    ctx.defer(*out);
  };
  job.consume = [=] { sink->data = out->hostData(); };
  return job;
}

void initSystem() {
  skelcl_test::useTempCacheDir();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
  skelcl::init(skelcl::DeviceSelection::nGPUs(2));
}

svc::ServiceConfig deterministicConfig() {
  svc::ServiceConfig config;
  config.policy = svc::Policy::Fifo;
  config.batching = false; // strict per-job execution order
  config.queueCap = 2 * kJobs;
  return config;
}

/// Alpha alone, no faults: the reference outputs.
std::vector<std::vector<float>> runAlphaSolo() {
  initSystem();
  std::vector<std::vector<float>> outputs;
  {
    svc::JobServer server(deterministicConfig());
    svc::Session& alpha = server.openSession("alpha");
    std::vector<std::shared_ptr<JobSink>> sinks;
    std::vector<svc::JobHandle> handles;
    for (std::size_t j = 0; j < kJobs; ++j) {
      auto sink = std::make_shared<JobSink>();
      sinks.push_back(sink);
      handles.push_back(alpha.submit(alphaJob(j, sink)));
    }
    server.pump();
    for (const auto& handle : handles) {
      handle.rethrow();
    }
    for (const auto& sink : sinks) {
      outputs.push_back(sink->data);
    }
  }
  skelcl::terminate();
  return outputs;
}

struct SharedRun {
  std::vector<std::vector<float>> alphaOutputs;
  std::vector<svc::JobHandle> alphaHandles;
  std::vector<svc::JobHandle> betaHandles;
  std::vector<ocl::Fault> fired;
};

/// Alpha and beta interleaved through one FIFO server with `plan` armed
/// via SKELCL_FAULT_PLAN for the whole init() cycle. `betaFirst` puts
/// beta's first job at the head of the global order (the alloc plan
/// counts calls from there).
SharedRun runShared(const char* plan, bool betaFirst) {
  ::setenv("SKELCL_FAULT_PLAN", plan, 1);
  initSystem();
  ::unsetenv("SKELCL_FAULT_PLAN");

  SharedRun run;
  {
    svc::JobServer server(deterministicConfig());
    svc::Session& alpha = server.openSession("alpha");
    svc::Session& beta = server.openSession("beta");
    std::vector<std::shared_ptr<JobSink>> alphaSinks;
    for (std::size_t j = 0; j < kJobs; ++j) {
      auto sinkB = std::make_shared<JobSink>();
      if (betaFirst) {
        run.betaHandles.push_back(beta.submit(betaJob(j, sinkB)));
      }
      auto sinkA = std::make_shared<JobSink>();
      alphaSinks.push_back(sinkA);
      run.alphaHandles.push_back(alpha.submit(alphaJob(j, sinkA)));
      if (!betaFirst) {
        run.betaHandles.push_back(beta.submit(betaJob(j, sinkB)));
      }
    }
    server.pump();
    for (const auto& sink : alphaSinks) {
      run.alphaOutputs.push_back(sink->data);
    }
  }
  run.fired = ocl::FaultInjector::instance().firedLog();
  ocl::FaultInjector::instance().reset();
  skelcl::terminate();
  return run;
}

void expectAlphaIntact(const SharedRun& run,
                       const std::vector<std::vector<float>>& solo) {
  for (std::size_t j = 0; j < kJobs; ++j) {
    EXPECT_FALSE(run.alphaHandles[j].failed()) << "alpha job " << j;
    ASSERT_EQ(run.alphaOutputs[j].size(), solo[j].size());
    EXPECT_EQ(0, std::memcmp(run.alphaOutputs[j].data(), solo[j].data(),
                             solo[j].size() * sizeof(float)))
        << "alpha job " << j << " diverged from its solo run";
  }
}

TEST(ServiceFault, DeviceLostConfinesItselfToTheFaultedTenant) {
  const auto solo = runAlphaSolo();
  // Beta's second Zip launch kills GPU 1; alpha lives on GPU 0.
  const SharedRun run =
      runShared("kernel~skelcl_zip@2=lost", /*betaFirst=*/false);

  expectAlphaIntact(run, solo);

  // Beta's first job preceded the fault; every later one finds the
  // device gone and fails with the typed DeviceLost.
  EXPECT_FALSE(run.betaHandles[0].failed());
  for (std::size_t j = 1; j < kJobs; ++j) {
    EXPECT_TRUE(run.betaHandles[j].failed()) << "beta job " << j;
    EXPECT_THROW(run.betaHandles[j].rethrow(), ocl::DeviceLost);
  }

  ASSERT_EQ(run.fired.size(), 1u);
  EXPECT_EQ(run.fired[0].site, ocl::FaultSite::Kernel);
  EXPECT_TRUE(run.fired[0].deviceLost);
  EXPECT_EQ(run.fired[0].device, 1u);
}

TEST(ServiceFault, AllocFailureFailsOneJobAndNothingElse) {
  const auto solo = runAlphaSolo();
  // Beta submits first, so the very first buffer allocation of the run
  // belongs to beta's job 0; alloc@1 fails exactly that one.
  const SharedRun run = runShared("alloc@1", /*betaFirst=*/true);

  expectAlphaIntact(run, solo);

  EXPECT_TRUE(run.betaHandles[0].failed());
  EXPECT_THROW(run.betaHandles[0].rethrow(), ocl::AllocFailure);
  // A one-shot allocation failure is transient: beta's later jobs run.
  for (std::size_t j = 1; j < kJobs; ++j) {
    EXPECT_FALSE(run.betaHandles[j].failed()) << "beta job " << j;
  }

  ASSERT_EQ(run.fired.size(), 1u);
  EXPECT_EQ(run.fired[0].site, ocl::FaultSite::Alloc);
  EXPECT_EQ(run.fired[0].device, 1u);
}

} // namespace
