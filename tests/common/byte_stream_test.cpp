#include <gtest/gtest.h>

#include <filesystem>

#include "common/byte_stream.h"

namespace {

TEST(ByteStream, ScalarRoundTrip) {
  common::ByteWriter w;
  w.write<std::uint32_t>(42);
  w.write<std::int64_t>(-7);
  w.write<double>(3.5);
  w.write<std::uint8_t>(0xab);

  common::ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(r.read<std::int64_t>(), -7);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read<std::uint8_t>(), 0xab);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteStream, StringRoundTrip) {
  common::ByteWriter w;
  w.writeString("hello");
  w.writeString("");
  w.writeString(std::string("emb\0edded", 9));

  common::ByteReader r(w.bytes());
  EXPECT_EQ(r.readString(), "hello");
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), std::string("emb\0edded", 9));
}

TEST(ByteStream, VectorRoundTrip) {
  common::ByteWriter w;
  const std::vector<std::uint64_t> v = {1, 2, 3, ~0ULL};
  w.writeVector(v);
  common::ByteReader r(w.bytes());
  EXPECT_EQ(r.readVector<std::uint64_t>(), v);
}

TEST(ByteStream, ReadingPastEndThrows) {
  common::ByteWriter w;
  w.write<std::uint32_t>(1);
  common::ByteReader r(w.bytes());
  r.read<std::uint32_t>();
  EXPECT_THROW(r.read<std::uint8_t>(), common::DeserializeError);
}

TEST(ByteStream, MalformedStringLengthThrows) {
  common::ByteWriter w;
  w.write<std::uint64_t>(1000); // claims 1000 bytes, provides none
  common::ByteReader r(w.bytes());
  EXPECT_THROW(r.readString(), common::DeserializeError);
}

TEST(ByteStream, MalformedVectorLengthThrows) {
  common::ByteWriter w;
  w.write<std::uint64_t>(~0ULL);
  common::ByteReader r(w.bytes());
  EXPECT_THROW(r.readVector<std::uint64_t>(), common::DeserializeError);
}

TEST(ByteStreamFile, WriteReadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "bs_test.bin").string();
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  common::writeFile(path, data);
  EXPECT_TRUE(common::fileExists(path));
  EXPECT_EQ(common::readFile(path), data);
  std::filesystem::remove(path);
}

TEST(ByteStreamFile, WriteCreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "bs_nested_xyz";
  const auto path = (dir / "a" / "b.bin").string();
  common::writeFile(path, {9});
  EXPECT_EQ(common::readFile(path), std::vector<std::uint8_t>{9});
  std::filesystem::remove_all(dir);
}

TEST(ByteStreamFile, MissingFileThrows) {
  EXPECT_THROW(common::readFile("/nonexistent/path/file.bin"),
               common::IoError);
  EXPECT_FALSE(common::fileExists("/nonexistent/path/file.bin"));
}

} // namespace
