#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/thread_pool.h"

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 0u); // caller-only
  int sum = 0;
  pool.parallelFor(10, [&](std::size_t i) { sum += int(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  common::ThreadPool pool(2);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagates) {
  common::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [](std::size_t i) {
                         if (i == 37) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  common::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallelFor(50, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, NestedWorkloadsComplete) {
  // A parallelFor body scheduling more work on the same pool must not
  // deadlock (the caller participates in execution).
  common::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallelFor(4, [&](std::size_t) { total += 1; });
  pool.parallelFor(4, [&](std::size_t) { total += 1; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, SubmitFromWorkerBodyCompletes) {
  // True reentrancy: parallelFor called from INSIDE a worker body (not
  // just sequentially after one completes). The inner call must run to
  // completion without deadlocking even though every pool thread may
  // already be busy executing outer bodies — whoever issues the inner
  // call participates in draining it.
  common::ThreadPool pool(3);
  std::atomic<int> inner{0};
  pool.parallelFor(8, [&](std::size_t) {
    pool.parallelFor(8, [&](std::size_t) { inner++; });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPool, ExceptionInsideNestedCallPropagatesToOuterCaller) {
  common::ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(4,
                                [&](std::size_t) {
                                  pool.parallelFor(4, [](std::size_t i) {
                                    if (i == 2) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                                }),
               std::runtime_error);
  // The pool stays usable after the unwound nested failure.
  std::atomic<int> count{0};
  pool.parallelFor(16, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ZeroCountFromWorkerBodyIsNoop) {
  common::ThreadPool pool(2);
  std::atomic<int> outer{0};
  pool.parallelFor(4, [&](std::size_t) {
    pool.parallelFor(0, [](std::size_t) { ADD_FAILURE(); });
    outer++;
  });
  EXPECT_EQ(outer.load(), 4);
}

TEST(ThreadPool, GlobalPoolExists) {
  auto& pool = common::ThreadPool::global();
  std::atomic<int> count{0};
  pool.parallelFor(10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

} // namespace
