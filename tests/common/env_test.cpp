// Error paths of the env-var parsers: every malformed value must take
// the documented fallback, never a half-parsed or saturated number.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"

namespace {

constexpr const char* kVar = "SKELCL_ENV_TEST_VAR";

class EnvParsing : public ::testing::Test {
protected:
  void TearDown() override { ::unsetenv(kVar); }

  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvParsing, UnsetTakesFallback) {
  ::unsetenv(kVar);
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
  EXPECT_EQ(common::envStr(kVar, "dflt"), "dflt");
  EXPECT_TRUE(common::envFlag(kVar, true));
  EXPECT_FALSE(common::envFlag(kVar, false));
}

TEST_F(EnvParsing, ValidValuesParse) {
  set("42");
  EXPECT_EQ(common::envInt(kVar, 7), 42);
  set("-3");
  EXPECT_EQ(common::envInt(kVar, 7), -3);
  set("1.5");
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 0.0), 1.5);
  set("  12  "); // surrounding whitespace is fine
  EXPECT_EQ(common::envInt(kVar, 7), 12);
}

TEST_F(EnvParsing, EmptyAndWhitespaceFallBack) {
  set("");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
  set("   ");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
}

TEST_F(EnvParsing, TrailingGarbageFallsBack) {
  set("12abc");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  set("1.5.3");
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
  set("0x"); // strtoll consumes "0", leaves "x"
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  set("nanx");
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
}

TEST_F(EnvParsing, NotANumberFallsBack) {
  set("abc");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
  set("--3");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
}

TEST_F(EnvParsing, OutOfRangeFallsBack) {
  set("99999999999999999999999999"); // > LLONG_MAX
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  set("-99999999999999999999999999");
  EXPECT_EQ(common::envInt(kVar, 7), 7);
  set("1e999999"); // > DBL_MAX
  EXPECT_DOUBLE_EQ(common::envDouble(kVar, 2.5), 2.5);
}

TEST_F(EnvParsing, FlagNormalization) {
  for (const char* falsy : {"", "0", "false", "FALSE", "off", "Off", "no"}) {
    set(falsy);
    EXPECT_FALSE(common::envFlag(kVar, true)) << "value: '" << falsy << "'";
  }
  for (const char* truthy : {"1", "true", "on", "yes", "whatever"}) {
    set(truthy);
    EXPECT_TRUE(common::envFlag(kVar, false)) << "value: '" << truthy << "'";
  }
}

TEST_F(EnvParsing, EmptyStringValueIsKept) {
  set("");
  EXPECT_EQ(common::envStr(kVar, "dflt"), "");
}

} // namespace
