#include <gtest/gtest.h>

#include "common/hash.h"

namespace {

TEST(Fnv1a, MatchesReferenceValues) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(common::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(common::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(common::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, DiffersForDifferentInputs) {
  EXPECT_NE(common::fnv1a64("kernel1"), common::fnv1a64("kernel2"));
}

TEST(Sha256, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(common::Sha256::hexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(common::Sha256::hexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(common::Sha256::hexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  common::Sha256 h;
  h.update("hello ");
  h.update("world");
  const auto digest = h.digest();
  EXPECT_EQ(common::toHex(digest.data(), digest.size()),
            common::Sha256::hexDigest("hello world"));
}

TEST(Sha256, LongInput) {
  const std::string input(100000, 'x');
  // Self-consistency: chunked == one-shot.
  common::Sha256 h;
  for (std::size_t i = 0; i < input.size(); i += 937) {
    h.update(input.substr(i, 937));
  }
  const auto digest = h.digest();
  EXPECT_EQ(common::toHex(digest.data(), digest.size()),
            common::Sha256::hexDigest(input));
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundary.
  for (const std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string a(n, 'a');
    common::Sha256 h;
    h.update(a);
    const auto digest = h.digest();
    EXPECT_EQ(common::toHex(digest.data(), digest.size()).size(), 64u);
    EXPECT_EQ(common::toHex(digest.data(), digest.size()),
              common::Sha256::hexDigest(a))
        << n;
  }
}

TEST(ToHex, Encodes) {
  const std::uint8_t bytes[] = {0x00, 0x0f, 0xf0, 0xff};
  EXPECT_EQ(common::toHex(bytes, 4), "000ff0ff");
}

} // namespace
