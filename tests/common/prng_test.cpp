#include <gtest/gtest.h>

#include "common/prng.h"

namespace {

TEST(Prng, DeterministicForSameSeed) {
  common::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  common::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Prng, DoublesInUnitInterval) {
  common::Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, FloatsInUnitInterval) {
  common::Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.nextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Prng, NextBelowRespectsBound) {
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
  EXPECT_EQ(rng.nextBelow(0), 0u);
  EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Prng, RoughlyUniform) {
  common::Xoshiro256 rng(99);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.nextBelow(10)]++;
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100); // within 10% of expectation
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = common::splitmix64(state);
  const std::uint64_t second = common::splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(common::splitmix64(state2), first);
  EXPECT_EQ(common::splitmix64(state2), second);
  EXPECT_NE(first, second);
}

} // namespace
