#include <gtest/gtest.h>

#include "common/string_util.h"

using namespace common;

namespace {

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\na\r "), "a");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtil, Split) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("trailing,", ','),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(startsWith("__kernel void", "__kernel"));
  EXPECT_FALSE(startsWith("ab", "abc"));
  EXPECT_TRUE(endsWith("file.cl", ".cl"));
  EXPECT_FALSE(endsWith("cl", "file.cl"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replaceAll("a TYPE b TYPE", "TYPE", "float"),
            "a float b float");
  EXPECT_EQ(replaceAll("none", "x", "y"), "none");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(toLower("MiXeD123"), "mixed123");
}

TEST(LocCounter, CountsCodeLinesOnly) {
  const char* source = R"(
// a comment line
int main() {       // trailing comment counts the code
  /* block */ int a = 1;
  /* multi
     line
     comment */
  return a;
}

)";
  // Lines: "int main() {", "int a = 1;", "return a;", "}" -> 4
  EXPECT_EQ(countLinesOfCode(source), 4u);
}

TEST(LocCounter, BlockCommentSpanningCodeLines) {
  EXPECT_EQ(countLinesOfCode("int a; /* x\n y */ int b;"), 2u);
  EXPECT_EQ(countLinesOfCode("/* only\n comments\n here */"), 0u);
}

TEST(LocCounter, StringLiteralsAreNotComments) {
  EXPECT_EQ(countLinesOfCode("const char* s = \"// not a comment\";"), 1u);
  EXPECT_EQ(countLinesOfCode("const char* s = \"/* nope */\"; int a;"), 1u);
}

TEST(LocCounter, EmptyAndBlank) {
  EXPECT_EQ(countLinesOfCode(""), 0u);
  EXPECT_EQ(countLinesOfCode("\n\n  \n\t\n"), 0u);
}

} // namespace
