// List-mode OSEM: substrate correctness (Siddon, events, phantom) and
// cross-implementation consistency of the reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/byte_stream.h"

#include "cuda/runtime.h"
#include "osem/osem.h"
#include "skelcl/skelcl.h"

namespace {

class OsemSubstrate : public ::testing::Test {
protected:
  osem::VolumeDims vol_{8, 8, 8, 1.0f};
};

TEST_F(OsemSubstrate, AxisAlignedRayCrossesWholeVolume) {
  // A ray along the x axis through the volume center crosses nx voxels,
  // each with an intersection length of one voxel edge.
  osem::Event ev{-20.0f, 0.5f, 0.5f, 20.0f, 0.5f, 0.5f};
  std::vector<osem::PathElement> path(64);
  const auto n = osem::computePath(vol_, ev, path.data(), path.size());
  ASSERT_EQ(n, 8u);
  float total = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(path[i].length, 1.0f, 1e-4f);
    total += path[i].length;
  }
  EXPECT_NEAR(total, 8.0f, 1e-3f);
}

TEST_F(OsemSubstrate, PathLengthsSumToChordLength) {
  // For any ray, the sum of voxel intersection lengths must equal the
  // length of the chord the ray cuts through the volume box.
  const osem::Event events[] = {
      {-10.0f, -2.0f, 1.0f, 10.0f, 3.0f, -1.5f},
      {-6.0f, -6.0f, -6.0f, 6.0f, 6.0f, 6.0f}, // main diagonal
      {0.5f, -20.0f, 0.5f, 0.5f, 20.0f, 0.5f},
      {-3.3f, 7.9f, -1.2f, 2.8f, -9.1f, 3.3f},
  };
  for (const auto& ev : events) {
    std::vector<osem::PathElement> path(64);
    const auto n = osem::computePath(vol_, ev, path.data(), path.size());
    ASSERT_GT(n, 0u);
    float total = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GT(path[i].length, 0.0f);
      ASSERT_GE(path[i].voxel, 0);
      ASSERT_LT(path[i].voxel, std::int32_t(vol_.voxels()));
      total += path[i].length;
    }
    // Chord length from slab clipping.
    const float dx = ev.x2 - ev.x1, dy = ev.y2 - ev.y1, dz = ev.z2 - ev.z1;
    const float len = std::sqrt(dx * dx + dy * dy + dz * dz);
    float tmin = 0.0f, tmax = 1.0f;
    const auto clip = [&](float o, float d) {
      if (d == 0.0f) return;
      float t1 = (-4.0f - o) / d, t2 = (4.0f - o) / d;
      if (t1 > t2) std::swap(t1, t2);
      tmin = std::max(tmin, t1);
      tmax = std::min(tmax, t2);
    };
    clip(ev.x1, dx);
    clip(ev.y1, dy);
    clip(ev.z1, dz);
    ASSERT_LT(tmin, tmax);
    EXPECT_NEAR(total, (tmax - tmin) * len, 1e-2f * (tmax - tmin) * len);
  }
}

TEST_F(OsemSubstrate, MissingRayHasEmptyPath) {
  osem::Event miss{-20.0f, 100.0f, 0.0f, 20.0f, 100.0f, 0.0f};
  std::vector<osem::PathElement> path(64);
  EXPECT_EQ(osem::computePath(vol_, miss, path.data(), path.size()), 0u);
  osem::Event zero{1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_EQ(osem::computePath(vol_, zero, path.data(), path.size()), 0u);
}

TEST_F(OsemSubstrate, PathVoxelsAreConnected) {
  osem::Event ev{-6.0f, -5.0f, -4.0f, 6.0f, 5.5f, 4.0f};
  std::vector<osem::PathElement> path(64);
  const auto n = osem::computePath(vol_, ev, path.data(), path.size());
  ASSERT_GT(n, 1u);
  for (std::size_t i = 1; i < n; ++i) {
    const std::int32_t a = path[i - 1].voxel;
    const std::int32_t b = path[i].voxel;
    const std::int32_t manhattan =
        std::abs(a % 8 - b % 8) + std::abs((a / 8) % 8 - (b / 8) % 8) +
        std::abs(a / 64 - b / 64);
    // Consecutive voxels share a face; when the ray clips a corner, the
    // zero-length corner voxel is skipped and two axes advance at once.
    EXPECT_GE(manhattan, 1) << "step " << i;
    EXPECT_LE(manhattan, 3) << "step " << i;
  }
}

TEST(OsemDataset, GenerationIsDeterministic) {
  osem::OsemParams params = osem::OsemParams::testSize();
  const auto a = osem::generateDataset(params);
  const auto b = osem::generateDataset(params);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(0, std::memcmp(a.events.data(), b.events.data(),
                           a.events.size() * sizeof(osem::Event)));
  params.seed = 43;
  const auto c = osem::generateDataset(params);
  EXPECT_NE(0, std::memcmp(a.events.data(), c.events.data(),
                           a.events.size() * sizeof(osem::Event)));
}

TEST(OsemDataset, PhantomHasExpectedStructure) {
  const osem::VolumeDims vol{32, 32, 32, 1.0f};
  const auto phantom = osem::makePhantom(vol);
  float maxA = 0.0f;
  std::size_t active = 0;
  for (const float a : phantom) {
    maxA = std::max(maxA, a);
    if (a > 0.0f) ++active;
  }
  EXPECT_FLOAT_EQ(maxA, 4.0f); // hot lesion
  EXPECT_GT(active, phantom.size() / 10);
  EXPECT_LT(active, phantom.size());
}

TEST(OsemDataset, SubsetsPartitionTheEvents) {
  const auto dataset = osem::generateDataset(osem::OsemParams::testSize());
  std::size_t total = 0;
  for (std::int32_t l = 0; l < dataset.numSubsets; ++l) {
    EXPECT_EQ(dataset.subsetBegin(l), l == 0 ? 0 : dataset.subsetEnd(l - 1));
    total += dataset.subsetEnd(l) - dataset.subsetBegin(l);
  }
  EXPECT_EQ(total, dataset.events.size());
}

TEST(OsemSequential, ReconstructionConvergesTowardPhantom) {
  osem::OsemParams params = osem::OsemParams::testSize();
  params.numEvents = 6000;
  const auto dataset = osem::generateDataset(params);
  const auto result = osem::reconstructSequential(dataset);
  ASSERT_EQ(result.image.size(), dataset.vol.voxels());

  // The reconstruction must correlate with the phantom: mean activity in
  // hot voxels should clearly exceed mean activity in cold voxels.
  double hotSum = 0, coldSum = 0;
  std::size_t hotN = 0, coldN = 0;
  for (std::size_t i = 0; i < result.image.size(); ++i) {
    if (dataset.phantom[i] >= 4.0f) {
      hotSum += result.image[i];
      ++hotN;
    } else if (dataset.phantom[i] == 0.0f) {
      coldSum += result.image[i];
      ++coldN;
    }
  }
  ASSERT_GT(hotN, 0u);
  ASSERT_GT(coldN, 0u);
  EXPECT_GT(hotSum / double(hotN), 3.0 * (coldSum / double(coldN)));
}

class OsemImplementations : public ::testing::Test {
protected:
  void SetUp() override {
    ::setenv("SKELCL_CACHE_DIR", "/tmp/skelcl-osem-test-cache", 1);
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
    cuda::reset();
    skelcl::init(skelcl::DeviceSelection::nGPUs(2));
    dataset_ = osem::generateDataset(osem::OsemParams::testSize());
    reference_ = osem::reconstructSequential(dataset_);
  }
  void TearDown() override { skelcl::terminate(); }

  osem::Dataset dataset_;
  osem::OsemResult reference_;
};

TEST_F(OsemImplementations, CudaMatchesSequential) {
  const auto gpu = osem::reconstructCuda(dataset_, 2);
  EXPECT_LT(osem::relativeRmse(reference_.image, gpu.image), 1e-3);
  EXPECT_GT(gpu.virtualSeconds, 0.0);
}

TEST_F(OsemImplementations, OpenClMatchesSequential) {
  const auto gpu = osem::reconstructOpenCl(dataset_, 2);
  EXPECT_LT(osem::relativeRmse(reference_.image, gpu.image), 1e-3);
}

TEST_F(OsemImplementations, SkelClMatchesSequential) {
  const auto gpu = osem::reconstructSkelCl(dataset_);
  EXPECT_LT(osem::relativeRmse(reference_.image, gpu.image), 1e-3);
}

TEST_F(OsemImplementations, SingleGpuVariantsAgree) {
  skelcl::terminate();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
  cuda::reset();
  skelcl::init(skelcl::DeviceSelection::nGPUs(1));
  const auto cudaR = osem::reconstructCuda(dataset_, 1);
  const auto oclR = osem::reconstructOpenCl(dataset_, 1);
  const auto skelR = osem::reconstructSkelCl(dataset_);
  EXPECT_LT(osem::relativeRmse(reference_.image, cudaR.image), 1e-3);
  EXPECT_LT(osem::relativeRmse(reference_.image, oclR.image), 1e-3);
  EXPECT_LT(osem::relativeRmse(reference_.image, skelR.image), 1e-3);
}

TEST_F(OsemImplementations, LocEntriesPointAtRealFiles) {
  for (const auto& entry : osem::locEntries()) {
    EXPECT_TRUE(common::fileExists(entry.kernelFile)) << entry.kernelFile;
    EXPECT_TRUE(common::fileExists(entry.hostFile)) << entry.hostFile;
  }
}

} // namespace
