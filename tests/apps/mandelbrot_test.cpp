// Cross-implementation consistency of the Mandelbrot case study.
#include <gtest/gtest.h>

#include "common/byte_stream.h"
#include "cuda/runtime.h"
#include "mandelbrot/mandelbrot.h"
#include "skelcl/skelcl.h"

namespace {

class MandelbrotTest : public ::testing::Test {
protected:
  void SetUp() override {
    ::setenv("SKELCL_CACHE_DIR", "/tmp/skelcl-mandel-test-cache", 1);
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
    cuda::reset();
    skelcl::init(skelcl::DeviceSelection::nGPUs(1));
  }
  void TearDown() override { skelcl::terminate(); }

  mandelbrot::FractalParams params_ = [] {
    mandelbrot::FractalParams p;
    p.width = 96;
    p.height = 64;
    p.maxIterations = 32;
    return p;
  }();
};

TEST_F(MandelbrotTest, ReferenceLooksLikeAMandelbrotSet) {
  const auto ref = mandelbrot::computeReference(params_);
  ASSERT_EQ(ref.iterations.size(), params_.pixels());
  // The center of the image (around -0.75 + 0i) is inside the set.
  const auto at = [&](std::uint32_t x, std::uint32_t y) {
    return ref.iterations[std::size_t(y) * params_.width + x];
  };
  EXPECT_EQ(at(params_.width / 2, params_.height / 2),
            std::int32_t(params_.maxIterations));
  // The corners diverge immediately-ish.
  EXPECT_LT(at(0, 0), 3);
  EXPECT_LT(at(params_.width - 1, params_.height - 1), 3);
}

TEST_F(MandelbrotTest, CudaMatchesReference) {
  const auto ref = mandelbrot::computeReference(params_);
  const auto gpu = mandelbrot::computeCuda(params_);
  EXPECT_EQ(gpu.iterations, ref.iterations);
  EXPECT_GT(gpu.virtualSeconds, 0.0);
}

TEST_F(MandelbrotTest, OpenClMatchesReference) {
  const auto ref = mandelbrot::computeReference(params_);
  const auto gpu = mandelbrot::computeOpenCl(params_);
  EXPECT_EQ(gpu.iterations, ref.iterations);
  EXPECT_GT(gpu.virtualSeconds, 0.0);
}

TEST_F(MandelbrotTest, SkelClMatchesReference) {
  const auto ref = mandelbrot::computeReference(params_);
  const auto gpu = mandelbrot::computeSkelCl(params_);
  EXPECT_EQ(gpu.iterations, ref.iterations);
  EXPECT_GT(gpu.virtualSeconds, 0.0);
}

TEST_F(MandelbrotTest, RuntimeOrderMatchesPaper) {
  // Fig. 1 shape: CUDA fastest, OpenCL next, SkelCL adds < ~5% overhead
  // on top of OpenCL.
  mandelbrot::FractalParams p = params_;
  p.width = 256;
  p.height = 192;
  const auto cuda = mandelbrot::computeCuda(p);
  const auto opencl = mandelbrot::computeOpenCl(p);
  const auto skelcl = mandelbrot::computeSkelCl(p);
  EXPECT_LT(cuda.virtualSeconds, opencl.virtualSeconds);
  // The paper reports SkelCL ~4% over OpenCL; our measurement lands at
  // parity (the position upload is offset by better load balance of the
  // 1-D default geometry — see EXPERIMENTS.md). Assert the paper's
  // qualitative claim: overhead below 5%, and no large win either.
  EXPECT_LT(skelcl.virtualSeconds / opencl.virtualSeconds, 1.05)
      << "SkelCL overhead should be small";
  EXPECT_GT(skelcl.virtualSeconds / opencl.virtualSeconds, 0.90);
}

TEST_F(MandelbrotTest, CustomWorkGroupSize) {
  const auto ref = mandelbrot::computeReference(params_);
  const auto gpu = mandelbrot::computeSkelCl(params_, 64);
  EXPECT_EQ(gpu.iterations, ref.iterations);
}

TEST_F(MandelbrotTest, LocEntriesPointAtRealFiles) {
  for (const auto& entry : mandelbrot::locEntries()) {
    EXPECT_TRUE(common::fileExists(entry.kernelFile)) << entry.kernelFile;
    EXPECT_TRUE(common::fileExists(entry.hostFile)) << entry.hostFile;
  }
}

TEST_F(MandelbrotTest, PpmWriterProducesValidHeader) {
  const auto ref = mandelbrot::computeReference(params_);
  const std::string path = "/tmp/skelcl-mandel-test.ppm";
  mandelbrot::writePpm(path, params_, ref.iterations);
  const auto bytes = common::readFile(path);
  ASSERT_GT(bytes.size(), 15u);
  EXPECT_EQ(bytes[0], 'P');
  EXPECT_EQ(bytes[1], '6');
  // Pixel payload is width*height*3 bytes.
  const std::string header(bytes.begin(), bytes.begin() + 15);
  EXPECT_NE(header.find("96 64"), std::string::npos);
}

} // namespace
