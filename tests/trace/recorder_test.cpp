// Recorder contract: nothing recorded while disabled, well-ordered
// records from a real workload, and lossless binary / Chrome-JSON
// round-trips.
#include "trace_test_util.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/byte_stream.h"
#include "trace/chrome_export.h"
#include "trace/serialize.h"

namespace {

using trace::CommandKind;
using trace::CommandRecord;
using trace::HostKind;
using trace::Recorder;
using trace::Trace;

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("skelcl-trace-test-") + std::to_string(::getpid()) +
           "-" + name))
      .string();
}

TEST(Recorder, DisabledCollectsNothing) {
  ASSERT_FALSE(Recorder::enabled());
  {
    trace::ScopedHostSpan span(HostKind::Skeleton, "ignored");
  }
  Recorder::instance().recordCounter("ignored", trace::kNoDevice, 0, 1);
  const Trace t = Recorder::instance().stop();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.commands.empty());
  EXPECT_TRUE(t.hostSpans.empty());
  EXPECT_TRUE(t.counters.empty());
}

TEST(Recorder, DisabledWorkloadLeavesNoTrace) {
  trace_test::runWorkload(/*traced=*/false, /*serialized=*/false);
  EXPECT_TRUE(Recorder::instance().stop().empty());
}

TEST(Recorder, WorkloadRecordsOrderedCommands) {
  const auto run =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const Trace& t = run.trace;

  ASSERT_FALSE(t.commands.empty());
  // One simulated GPU plus the testbed's host CPU device.
  ASSERT_GE(t.devices.size(), 1u);
  EXPECT_EQ(t.devices[0].index, 0u);
  EXPECT_FALSE(t.devices[0].name.empty());

  std::uint64_t lastId = 0;
  bool sawKernelWithCycles = false;
  bool sawWrite = false;
  bool sawRead = false;
  for (const CommandRecord& c : t.commands) {
    // Ids are unique and ascending in emission order.
    EXPECT_GT(c.id, lastId);
    lastId = c.id;
    // The CL profiling invariant: queued <= submit <= start <= end.
    EXPECT_LE(c.queuedNs, c.submitNs);
    EXPECT_LE(c.submitNs, c.startNs);
    EXPECT_LE(c.startNs, c.endNs);
    EXPECT_LT(c.engine, trace::kEngineCount);
    // Dependencies always point at earlier commands.
    for (const std::uint64_t dep : c.deps) {
      EXPECT_LT(dep, c.id);
    }
    EXPECT_LT(c.name, t.strings.size());
    if (c.kind == CommandKind::Kernel) {
      EXPECT_EQ(c.engine, 0);
      sawKernelWithCycles = sawKernelWithCycles || c.cycles > 0;
    }
    if (c.kind == CommandKind::Write) {
      EXPECT_EQ(c.engine, 1);
      sawWrite = true;
    }
    if (c.kind == CommandKind::Read) {
      EXPECT_EQ(c.engine, 2);
      sawRead = true;
    }
  }
  EXPECT_TRUE(sawKernelWithCycles);
  EXPECT_TRUE(sawWrite);
  EXPECT_TRUE(sawRead);

  // Host spans from the skeletons and the lazy transfer layer.
  auto hasSpan = [&](HostKind kind, const char* name) {
    return std::any_of(t.hostSpans.begin(), t.hostSpans.end(),
                       [&](const trace::HostSpanRecord& s) {
                         return s.kind == kind && t.str(s.name) == name;
                       });
  };
  EXPECT_TRUE(hasSpan(HostKind::Skeleton, "Map"));
  EXPECT_TRUE(hasSpan(HostKind::Skeleton, "Zip"));
  EXPECT_TRUE(hasSpan(HostKind::Skeleton, "Reduce"));
  EXPECT_TRUE(hasSpan(HostKind::Transfer, "vector.upload"));
  for (const trace::HostSpanRecord& s : t.hostSpans) {
    EXPECT_LE(s.startNs, s.endNs);
  }

  // The engine-implied byte counters fired, cumulatively.
  std::uint64_t lastH2d = 0;
  bool sawH2d = false;
  for (const trace::CounterRecord& c : t.counters) {
    if (t.str(c.name) == "h2d_bytes") {
      EXPECT_GE(c.value, lastH2d);
      lastH2d = c.value;
      sawH2d = true;
    }
  }
  EXPECT_TRUE(sawH2d);
}

TEST(Recorder, BinaryRoundTripIsLossless) {
  const auto run =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const std::vector<std::uint8_t> bytes = trace::serialize(run.trace);
  const Trace back = trace::deserialize(bytes);
  // Re-serializing the decoded trace must reproduce the exact bytes,
  // and every consumer-visible view must agree.
  EXPECT_EQ(trace::serialize(back), bytes);
  EXPECT_EQ(trace::chromeJson(back), trace::chromeJson(run.trace));
  EXPECT_EQ(back.commands.size(), run.trace.commands.size());
  EXPECT_EQ(back.hostSpans.size(), run.trace.hostSpans.size());
  EXPECT_EQ(back.counters.size(), run.trace.counters.size());
  EXPECT_EQ(back.strings, run.trace.strings);
}

TEST(Recorder, WriteTraceFileDispatchesOnExtension) {
  const auto run =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);

  const std::string binPath = tempPath("dispatch.sktrace");
  trace::writeTraceFile(binPath, run.trace);
  const Trace fromDisk = trace::readTraceFile(binPath);
  EXPECT_EQ(trace::serialize(fromDisk), trace::serialize(run.trace));

  const std::string jsonPath = tempPath("dispatch.json");
  trace::writeTraceFile(jsonPath, run.trace);
  const auto jsonBytes = common::readFile(jsonPath);
  const std::string json(jsonBytes.begin(), jsonBytes.end());
  EXPECT_EQ(json, trace::chromeJson(run.trace));
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"h2d dma\""), std::string::npos);

  std::filesystem::remove(binPath);
  std::filesystem::remove(jsonPath);
}

TEST(Recorder, StartClearsPreviousTrace) {
  trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  // stop() already drained that run; a fresh start()+stop() with no
  // activity in between must be empty, not a replay.
  Recorder::instance().start();
  EXPECT_TRUE(Recorder::instance().stop().empty());
}

} // namespace
