// Shared helpers for the trace tests: run a small multi-skeleton SkelCL
// workload with the recorder on and hand back the collected trace.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "skelcl/skelcl.h"
#include "trace/recorder.h"

namespace trace_test {

inline void useTempCacheDir() {
  static const std::string dir = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("skelcl-trace-test-cache-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
    ::setenv("SKELCL_CACHE_DIR", path.c_str(), 1);
    return path.string();
  }();
  (void)dir;
}

struct WorkloadResult {
  trace::Trace trace;
  std::vector<float> output;
  float reduced = 0.0f;
  std::uint64_t kernelCycles = 0;
  std::uint64_t finalVirtualNs = 0;
};

/// Map -> Zip -> Reduce on `gpus` simulated GPUs; records a trace when
/// `traced`. The input is large enough that uploads split into pieces,
/// giving the out-of-order scheduler real transfer/compute overlap.
inline WorkloadResult runWorkload(bool traced, bool serialized,
                                  std::uint32_t gpus = 1,
                                  std::size_t n = std::size_t(1) << 18) {
  if (serialized) {
    ::setenv("SKELCL_SERIALIZE", "1", 1);
  } else {
    ::unsetenv("SKELCL_SERIALIZE");
  }
  useTempCacheDir();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  if (traced) {
    trace::Recorder::instance().start();
  }

  WorkloadResult out;
  {
    skelcl::Map<float> inc("float inc(float x) { return x + 1.0f; }");
    skelcl::Zip<float> add("float add(float x, float y) { return x + y; }");
    skelcl::Reduce<float> sum(
        "float sum(float x, float y) { return x + y; }");

    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = float(i % 97) * 0.5f;
    }
    skelcl::Vector<float> x(std::move(data));
    skelcl::Vector<float> y = inc(x);
    skelcl::Vector<float> z = add(x, y);
    skelcl::Scalar<float> s = sum(z);
    out.output = z.hostData();
    out.reduced = s.getValue();

    auto& runtime = skelcl::detail::Runtime::instance();
    for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
      runtime.queue(d).finish();
      out.kernelCycles += runtime.queue(d).cumulativeKernelCycles();
    }
    out.finalVirtualNs = ocl::hostTimeNs();
  }
  if (traced) {
    out.trace = trace::Recorder::instance().stop();
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SERIALIZE");
  return out;
}

/// Builds and caches every kernel the workload uses so later runs take
/// the cache-hit path (keeps traced runs byte-identical).
inline void warmKernelCache() {
  static bool warmed = false;
  if (!warmed) {
    runWorkload(/*traced=*/false, /*serialized=*/true);
    warmed = true;
  }
}

} // namespace trace_test
