// Analyzer invariants: known overlap on synthetic traces, zero overlap
// under serialized (in-order) queues, real overlap under out-of-order
// queues, and a sane critical path.
#include "trace_test_util.h"

#include "trace/analysis.h"

namespace {

using trace::CommandKind;
using trace::CommandRecord;
using trace::Report;
using trace::Trace;

CommandRecord command(std::uint64_t id, std::uint8_t engine,
                      std::uint64_t startNs, std::uint64_t endNs,
                      std::vector<std::uint64_t> deps = {}) {
  CommandRecord c;
  c.id = id;
  c.device = 0;
  c.engine = engine;
  c.kind = engine == 0 ? CommandKind::Kernel : CommandKind::Write;
  c.queuedNs = startNs;
  c.submitNs = startNs;
  c.startNs = startNs;
  c.endNs = endNs;
  c.deps = std::move(deps);
  return c;
}

Trace syntheticTrace(std::vector<CommandRecord> commands) {
  Trace t;
  t.strings = {"", "k"};
  t.devices = {{0, "dev0"}};
  for (CommandRecord& c : commands) {
    c.name = 1;
    t.commands.push_back(std::move(c));
  }
  return t;
}

TEST(Analysis, HalfOverlappedTransfer) {
  // compute [0,100), h2d [50,150): 50 of 100 DMA ns overlap compute.
  const Report r = trace::analyze(syntheticTrace({
      command(1, /*engine=*/0, 0, 100),
      command(2, /*engine=*/1, 50, 150),
  }));
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].engines[0].busyNs, 100u);
  EXPECT_EQ(r.devices[0].engines[1].busyNs, 100u);
  EXPECT_EQ(r.devices[0].dmaBusyNs, 100u);
  EXPECT_EQ(r.devices[0].overlapNs, 50u);
  EXPECT_DOUBLE_EQ(r.devices[0].overlapRatio, 0.5);
  EXPECT_DOUBLE_EQ(r.overlapRatio, 0.5);
  EXPECT_EQ(r.spanNs, 150u);
}

TEST(Analysis, DisjointEnginesShowNoOverlap) {
  const Report r = trace::analyze(syntheticTrace({
      command(1, /*engine=*/1, 0, 100),
      command(2, /*engine=*/0, 100, 250, {1}),
      command(3, /*engine=*/2, 250, 300, {2}),
  }));
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].dmaBusyNs, 150u);
  EXPECT_EQ(r.devices[0].overlapNs, 0u);
  EXPECT_DOUBLE_EQ(r.overlapRatio, 0.0);
  // Everything is one dependency chain: critical path == makespan.
  EXPECT_EQ(r.criticalPathNs, 300u);
  EXPECT_EQ(r.spanNs, 300u);
}

TEST(Analysis, CriticalPathFollowsLongestChain) {
  // Two independent chains; the longer one (1->3, 80+120) dominates.
  const Report r = trace::analyze(syntheticTrace({
      command(1, /*engine=*/1, 0, 80),
      command(2, /*engine=*/1, 80, 130),
      command(3, /*engine=*/0, 80, 200, {1}),
  }));
  EXPECT_EQ(r.criticalPathNs, 200u);
}

TEST(Analysis, MergesOverlappingIntervalsWithinAnEngine) {
  // Two overlapping compute spans count busy time once.
  const Report r = trace::analyze(syntheticTrace({
      command(1, /*engine=*/0, 0, 100),
      command(2, /*engine=*/0, 50, 150),
  }));
  EXPECT_EQ(r.devices[0].engines[0].busyNs, 150u);
}

TEST(Analysis, LoadShareAndImbalanceTrackComputeSkew) {
  // Device 0 computes for 300 ns, device 1 for 100 ns: shares 75%/25%,
  // imbalance = max/mean - 1 = 300/200 - 1 = 50%.
  CommandRecord fast = command(1, /*engine=*/0, 0, 300);
  CommandRecord slow = command(2, /*engine=*/0, 0, 100);
  slow.device = 1;
  Trace t = syntheticTrace({fast, slow});
  t.devices.push_back({1, "dev1"});
  const Report r = trace::analyze(t);
  ASSERT_EQ(r.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(r.devices[0].loadShare, 0.75);
  EXPECT_DOUBLE_EQ(r.devices[1].loadShare, 0.25);
  EXPECT_DOUBLE_EQ(r.computeImbalance, 0.5);
  // The rendering exposes both (the skeltrace "load" column and the
  // aggregate imbalance line).
  const std::string text = trace::formatReport(r);
  EXPECT_NE(text.find("load"), std::string::npos);
  EXPECT_NE(text.find("compute load imbalance: 50.0%"), std::string::npos)
      << text;
}

TEST(Analysis, BalancedDevicesHaveZeroImbalance) {
  CommandRecord a = command(1, /*engine=*/0, 0, 200);
  CommandRecord b = command(2, /*engine=*/0, 50, 250);
  b.device = 1;
  Trace t = syntheticTrace({a, b});
  t.devices.push_back({1, "dev1"});
  const Report r = trace::analyze(t);
  EXPECT_DOUBLE_EQ(r.computeImbalance, 0.0);
  EXPECT_DOUBLE_EQ(r.devices[0].loadShare, 0.5);
  EXPECT_DOUBLE_EQ(r.devices[1].loadShare, 0.5);
}

TEST(Analysis, SerializedQueuesHaveZeroOverlap) {
  const auto run =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/true);
  const Report r = trace::analyze(run.trace);
  ASSERT_FALSE(run.trace.commands.empty());
  EXPECT_GT(r.devices[0].dmaBusyNs, 0u);
  // In-order queues start every command only after the whole device is
  // idle, so DMA can never run while compute runs — exactly zero.
  EXPECT_EQ(r.devices[0].overlapNs, 0u);
  EXPECT_DOUBLE_EQ(r.overlapRatio, 0.0);
}

TEST(Analysis, OutOfOrderQueuesOverlapTransfersWithCompute) {
  const auto ooo =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const auto ser =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/true);
  const Report rOoo = trace::analyze(ooo.trace);
  const Report rSer = trace::analyze(ser.trace);
  EXPECT_GT(rOoo.overlapRatio, 0.0);
  EXPECT_GT(rOoo.overlapRatio, rSer.overlapRatio);
  // Same commands either way; only the schedule differs.
  EXPECT_EQ(ooo.kernelCycles, ser.kernelCycles);
  EXPECT_EQ(rOoo.kernelCycles, rSer.kernelCycles);
}

TEST(Analysis, RealWorkloadReportIsConsistent) {
  const auto run =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const Report r = trace::analyze(run.trace);
  ASSERT_EQ(r.devices.size(), 1u);
  for (const auto& e : r.devices[0].engines) {
    EXPECT_LE(e.busyNs, r.devices[0].spanNs);
    EXPECT_GE(e.busyFraction, 0.0);
    EXPECT_LE(e.busyFraction, 1.0);
  }
  EXPECT_LE(r.devices[0].overlapNs, r.devices[0].dmaBusyNs);
  EXPECT_LE(r.criticalPathNs, r.spanNs);
  EXPECT_GT(r.criticalPathNs, 0u);
  // The counter totals match the per-queue bookkeeping.
  EXPECT_EQ(r.kernelCycles, run.kernelCycles);
  EXPECT_GT(r.h2dBytes, 0u);
  EXPECT_GT(r.d2hBytes, 0u);
  ASSERT_FALSE(r.kernels.empty());
  for (std::size_t i = 1; i < r.kernels.size(); ++i) {
    EXPECT_GE(r.kernels[i - 1].totalNs, r.kernels[i].totalNs);
  }
  EXPECT_GT(r.skeletonSpans, 0u);
  // The human-readable rendering mentions every device and engine.
  const std::string text = trace::formatReport(r);
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("h2d dma"), std::string::npos);
  EXPECT_NE(text.find("overlap"), std::string::npos);
}

} // namespace
