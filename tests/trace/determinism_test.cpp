// Determinism and schedule invariance:
//  * two identical traced runs produce byte-identical binary traces and
//    byte-identical Chrome JSON (no wall-clock values may leak in);
//  * recording a trace must not change what the workload computes or
//    when (same outputs, same kernel cycles, same final virtual time) —
//    the recorder only reads the virtual clock, never advances it.
#include "trace_test_util.h"

#include "trace/chrome_export.h"
#include "trace/serialize.h"

namespace {

TEST(Determinism, IdenticalRunsProduceIdenticalTraces) {
  // Warm the kernel cache so both traced runs take the cache-hit path;
  // a build in one run and a hit in the other would legitimately differ.
  trace_test::warmKernelCache();
  const auto a =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/true);
  const auto b =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/true);
  ASSERT_FALSE(a.trace.commands.empty());
  EXPECT_EQ(trace::serialize(a.trace), trace::serialize(b.trace));
  EXPECT_EQ(trace::chromeJson(a.trace), trace::chromeJson(b.trace));
}

TEST(Determinism, OutOfOrderRunsAreDeterministicToo) {
  trace_test::warmKernelCache();
  const auto a =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const auto b =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  EXPECT_EQ(trace::serialize(a.trace), trace::serialize(b.trace));
}

TEST(Determinism, TracingDoesNotPerturbTheSimulation) {
  trace_test::warmKernelCache();
  const auto traced =
      trace_test::runWorkload(/*traced=*/true, /*serialized=*/false);
  const auto untraced =
      trace_test::runWorkload(/*traced=*/false, /*serialized=*/false);
  // Bit-identical outputs, identical simulated work, identical schedule.
  EXPECT_EQ(traced.output, untraced.output);
  EXPECT_EQ(traced.reduced, untraced.reduced);
  EXPECT_EQ(traced.kernelCycles, untraced.kernelCycles);
  EXPECT_EQ(traced.finalVirtualNs, untraced.finalVirtualNs);
}

TEST(Determinism, MultiDeviceTracedRunsAreDeterministic) {
  trace_test::warmKernelCache();
  const auto a = trace_test::runWorkload(/*traced=*/true,
                                         /*serialized=*/false, /*gpus=*/2);
  const auto b = trace_test::runWorkload(/*traced=*/true,
                                         /*serialized=*/false, /*gpus=*/2);
  ASSERT_GE(a.trace.devices.size(), 2u); // 2 GPUs (+ the host CPU device)
  EXPECT_EQ(trace::serialize(a.trace), trace::serialize(b.trace));
  EXPECT_EQ(a.output, b.output);
}

} // namespace
