// Tests for the CUDA-runtime-style veneer.
#include <gtest/gtest.h>

#include <numeric>

#include "cuda/runtime.h"

namespace {

class CudaRuntime : public ::testing::Test {
protected:
  void SetUp() override {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(4));
    cuda::reset();
  }
};

TEST_F(CudaRuntime, DeviceDiscovery) {
  EXPECT_EQ(cuda::getDeviceCount(), 4); // GPUs only, not the CPU device
  cuda::setDevice(2);
  EXPECT_EQ(cuda::getDevice(), 2);
  EXPECT_THROW(cuda::setDevice(4), common::InvalidArgument);
  cuda::setDevice(0);
}

TEST_F(CudaRuntime, MallocMemcpyRoundTrip) {
  cuda::setDevice(0);
  std::vector<float> in(1000), out(1000);
  std::iota(in.begin(), in.end(), 0.5f);
  cuda::DeviceMemory mem(in.size() * sizeof(float));
  cuda::memcpyHostToDevice(mem, in.data(), in.size() * sizeof(float));
  cuda::memcpyDeviceToHost(out.data(), mem, out.size() * sizeof(float));
  EXPECT_EQ(in, out);
}

TEST_F(CudaRuntime, KernelLaunchWithCudaDialect) {
  cuda::setDevice(0);
  auto module = cuda::Module::compile(R"(
    __global__ void saxpy(float* y, const float* x, float a, int n) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      if (i < n) y[i] = a * x[i] + y[i];
    }
  )");
  auto saxpy = module.function("saxpy");

  const int n = 1000;
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[std::size_t(i)] = float(i);
    y[std::size_t(i)] = 1.0f;
  }
  cuda::DeviceMemory dx(n * sizeof(float)), dy(n * sizeof(float));
  cuda::memcpyHostToDevice(dx, x.data(), n * sizeof(float));
  cuda::memcpyHostToDevice(dy, y.data(), n * sizeof(float));

  cuda::launch(saxpy, cuda::Dim3((n + 255) / 256), cuda::Dim3(256), dy, dx,
               2.0f, n);
  cuda::deviceSynchronize();

  cuda::memcpyDeviceToHost(y.data(), dy, n * sizeof(float));
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(y[std::size_t(i)], 2.0f * float(i) + 1.0f) << i;
  }
}

TEST_F(CudaRuntime, SharedMemoryAndSyncthreads) {
  cuda::setDevice(0);
  auto module = cuda::Module::compile(R"(
    __global__ void blocksum(const int* in, int* out) {
      __shared__ int tile[64];
      int lid = threadIdx.x;
      tile[lid] = in[blockIdx.x * blockDim.x + threadIdx.x];
      __syncthreads();
      if (lid == 0) {
        int acc = 0;
        for (int k = 0; k < 64; ++k) acc += tile[k];
        out[blockIdx.x] = acc;
      }
    }
  )");
  auto blocksum = module.function("blocksum");
  std::vector<int> in(128, 3), out(2, 0);
  cuda::DeviceMemory din(in.size() * sizeof(int)),
      dout(out.size() * sizeof(int));
  cuda::memcpyHostToDevice(din, in.data(), in.size() * sizeof(int));
  cuda::launch(blocksum, cuda::Dim3(2), cuda::Dim3(64), din, dout);
  cuda::memcpyDeviceToHost(out.data(), dout, out.size() * sizeof(int));
  EXPECT_EQ(out, (std::vector<int>{192, 192}));
}

TEST_F(CudaRuntime, AtomicAddCudaSpelling) {
  cuda::setDevice(0);
  auto module = cuda::Module::compile(R"(
    __global__ void count(int* counter) { atomicAdd(&counter[0], 1); }
  )");
  auto count = module.function("count");
  int zero = 0;
  cuda::DeviceMemory counter(sizeof(int));
  cuda::memcpyHostToDevice(counter, &zero, sizeof(int));
  cuda::launch(count, cuda::Dim3(4), cuda::Dim3(32), counter);
  int result = 0;
  cuda::memcpyDeviceToHost(&result, counter, sizeof(int));
  EXPECT_EQ(result, 128);
}

TEST_F(CudaRuntime, PerDeviceAllocationsAndTransfers) {
  std::vector<cuda::DeviceMemory> mems;
  for (int d = 0; d < cuda::getDeviceCount(); ++d) {
    cuda::setDevice(d);
    mems.emplace_back(1024);
    const int value = 100 + d;
    std::vector<int> fill(256, value);
    cuda::memcpyHostToDevice(mems.back(), fill.data(), 1024);
  }
  for (int d = 0; d < cuda::getDeviceCount(); ++d) {
    std::vector<int> out(256, 0);
    cuda::memcpyDeviceToHost(out.data(), mems[std::size_t(d)], 1024);
    EXPECT_EQ(out[0], 100 + d);
    EXPECT_EQ(out[255], 100 + d);
  }
  cuda::setDevice(0);
}

TEST_F(CudaRuntime, DeviceToDeviceCopy) {
  cuda::setDevice(0);
  cuda::DeviceMemory a(256);
  cuda::setDevice(1);
  cuda::DeviceMemory b(256);
  std::vector<int> in(64);
  std::iota(in.begin(), in.end(), 0);
  cuda::memcpyHostToDevice(a, in.data(), 256);
  cuda::memcpyDeviceToDevice(b, a, 256);
  std::vector<int> out(64, -1);
  cuda::memcpyDeviceToHost(out.data(), b, 256);
  EXPECT_EQ(in, out);
  cuda::setDevice(0);
}

TEST_F(CudaRuntime, CompileErrorSurfaces) {
  EXPECT_THROW(cuda::Module::compile("__global__ void k( {"),
               common::Error);
}

TEST_F(CudaRuntime, VirtualClockAdvancesAcrossOperations) {
  cuda::setDevice(0);
  const auto before = cuda::clockNs();
  cuda::DeviceMemory mem(1 << 20);
  std::vector<char> data(1 << 20, 0);
  cuda::memcpyHostToDevice(mem, data.data(), data.size());
  cuda::deviceSynchronize();
  EXPECT_GT(cuda::clockNs(), before);
}

} // namespace
