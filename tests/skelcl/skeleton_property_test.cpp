// Property-based sweeps: every skeleton is checked against its std::
// reference semantics over randomized inputs across a grid of sizes
// (including work-group boundary sizes) and device counts.
#include <numeric>

#include "common/prng.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::Distribution;
using skelcl::Vector;

struct Config {
  std::uint32_t gpus;
  std::size_t size;
};

class SkeletonProperty : public ::testing::TestWithParam<Config> {
protected:
  void SetUp() override {
    skelcl_test::useTempCacheDir();
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(GetParam().gpus));
    skelcl::init(skelcl::DeviceSelection::nGPUs(GetParam().gpus));
  }
  void TearDown() override { skelcl::terminate(); }

  std::vector<int> randomInts(std::size_t n, std::uint64_t seed) {
    common::Xoshiro256 rng(seed ^ (n * 2654435761u) ^ GetParam().gpus);
    std::vector<int> data(n);
    for (auto& v : data) {
      v = int(rng.nextBelow(2001)) - 1000;
    }
    return data;
  }
};

TEST_P(SkeletonProperty, MapMatchesStdTransform) {
  const auto data = randomInts(GetParam().size, 1);
  skelcl::Map<int> f("int f(int x) { return x * 3 - 7; }");
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  Vector<int> output = f(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(output[i], data[i] * 3 - 7) << i;
  }
}

TEST_P(SkeletonProperty, ZipMatchesStdTransform) {
  const auto a = randomInts(GetParam().size, 2);
  const auto b = randomInts(GetParam().size, 3);
  skelcl::Zip<int> f("int f(int x, int y) { return x * y + x - y; }");
  Vector<int> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  Vector<int> out = f(va, vb);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i], a[i] * b[i] + a[i] - b[i]) << i;
  }
}

TEST_P(SkeletonProperty, ReduceMatchesStdAccumulate) {
  const auto data = randomInts(GetParam().size, 4);
  skelcl::Reduce<int> sum("int s(int x, int y) { return x + y; }");
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  EXPECT_EQ(sum(input).getValue(),
            std::accumulate(data.begin(), data.end(), 0));
}

TEST_P(SkeletonProperty, ReduceMinMatchesStdMinElement) {
  const auto data = randomInts(GetParam().size, 5);
  skelcl::Reduce<int> minOp("int m(int x, int y) { return min(x, y); }");
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  EXPECT_EQ(minOp(input).getValue(),
            *std::min_element(data.begin(), data.end()));
}

TEST_P(SkeletonProperty, ScanMatchesStdExclusiveScan) {
  const auto data = randomInts(GetParam().size, 6);
  skelcl::Scan<int> scan("int s(int x, int y) { return x + y; }", "0");
  Vector<int> input(data);
  Vector<int> output = scan(input);
  std::vector<int> expected(data.size());
  std::exclusive_scan(data.begin(), data.end(), expected.begin(), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(output[i], expected[i]) << i;
  }
}

TEST_P(SkeletonProperty, MapReduceMatchesComposition) {
  const auto data = randomInts(GetParam().size, 7);
  skelcl::MapReduce<int> fused("int m(int x) { return x * x; }",
                               "int r(int a, int b) { return a + b; }");
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  long long expected = 0;
  for (const int v : data) {
    expected += (long long)v * v;
  }
  // Ints may overflow identically on both sides, so compare as int.
  EXPECT_EQ(fused(input).getValue(), int(expected));
}

std::string configName(const ::testing::TestParamInfo<Config>& info) {
  return std::to_string(info.param.gpus) + "gpu_" +
         std::to_string(info.param.size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkeletonProperty,
    ::testing::Values(Config{1, 1}, Config{1, 255}, Config{1, 256},
                      Config{1, 257}, Config{1, 4096}, Config{2, 513},
                      Config{2, 8191}, Config{3, 1000}, Config{4, 16384}),
    configName);

} // namespace
