// Differential tests for the asynchronous task-graph scheduler: every
// scenario runs with the scheduler on (the default) and under
// SKELCL_ASYNC=0 (each in its own init()..terminate() cycle). Async may
// only change WHEN commands are enqueued — independent jobs pipeline on
// the devices — never WHAT a program computes:
//  * single-job programs keep bit-identical outputs AND bit-identical
//    final virtual time (a one-job drain IS the synchronous force);
//  * multi-job programs keep bit-identical outputs and finish strictly
//    earlier in virtual time (that is the feature);
//  * a fault in one job surfaces as the original typed ClError at that
//    job's own consumption point, with every other job's result intact;
//  * traced async runs stay byte-identical run to run, and the trace
//    carries the scheduler's job spans.
#include <cstring>
#include <functional>
#include <numeric>

#include "skelcl_test_util.h"
#include "trace/analysis.h"
#include "trace/chrome_export.h"
#include "trace/recorder.h"
#include "trace/serialize.h"

#include "skelcl/detail/scheduler.h"

namespace {

using skelcl::Map;
using skelcl::Reduce;
using skelcl::Vector;
using skelcl::Zip;

struct RunResult {
  std::vector<std::vector<float>> outputs;
  std::vector<float> scalars;
  std::uint64_t finalVirtualNs = 0;
  skelcl::detail::Scheduler::Stats sched;
};

std::vector<float> testData(std::size_t n, std::size_t seed = 0) {
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = float((i + seed) % 89) * 0.4375f - 9.0f;
  }
  return data;
}

/// Runs `scenario` in a fresh init()..terminate() cycle with the async
/// scheduler on or off; the final virtual time is taken after every
/// device queue drained, so trailing downloads count in both modes.
RunResult runScenario(const std::function<void(RunResult&)>& scenario,
                      bool async, std::uint32_t gpus = 1) {
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_ASYNC", async ? "1" : "0", 1);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));

  RunResult result;
  scenario(result);

  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    runtime.queue(d).finish();
  }
  result.finalVirtualNs = ocl::hostTimeNs();
  result.sched = skelcl::detail::Scheduler::instance().stats();
  skelcl::terminate();
  ::unsetenv("SKELCL_ASYNC");
  return result;
}

bool bitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// --- single-job invariance ----------------------------------------------

TEST(AsyncScheduler, SingleJobKeepsOutputAndVirtualTimeBitIdentical) {
  // One dependent chain: at its consumption point exactly one root job
  // is outstanding, so the drain must degenerate to the synchronous
  // force — same commands, same virtual clock, same bits.
  auto scenario = [](RunResult& out) {
    Map<float> scale("float as_scale(float x) { return 1.5f * x; }");
    Map<float> shift("float as_shift(float x) { return x - 2.0f; }");
    Reduce<float> sum("float as_sum(float a, float b) { return a + b; }");
    Vector<float> input(testData(20000));
    out.scalars.push_back(sum(shift(scale(input))).getValue());
  };
  const RunResult on = runScenario(scenario, /*async=*/true);
  const RunResult off = runScenario(scenario, /*async=*/false);
  EXPECT_TRUE(bitIdentical(on.scalars, off.scalars));
  EXPECT_EQ(on.finalVirtualNs, off.finalVirtualNs);
  EXPECT_EQ(on.sched.jobsDispatched, 1u);
  EXPECT_EQ(off.sched.jobsDispatched, 0u); // scheduler off: no registry
}

TEST(AsyncScheduler, SingleJobChainOnMultipleDevicesStaysInvariant) {
  auto scenario = [](RunResult& out) {
    Map<float> inc("float as_inc(float x) { return x + 0.25f; }");
    Vector<float> input(testData(9999));
    input.setDistribution(skelcl::Distribution::Block);
    out.outputs.push_back(inc(inc(input)).hostData());
  };
  const RunResult on = runScenario(scenario, /*async=*/true, /*gpus=*/3);
  const RunResult off = runScenario(scenario, /*async=*/false, /*gpus=*/3);
  EXPECT_TRUE(bitIdentical(on.outputs[0], off.outputs[0]));
  EXPECT_EQ(on.finalVirtualNs, off.finalVirtualNs);
}

// --- multi-job overlap ---------------------------------------------------

/// Four independent map chains, consumed after all four are registered.
void fourIndependentChains(RunResult& out) {
  Map<float> scale("float as4_scale(float x) { return 2.0f * x; }");
  Map<float> shift("float as4_shift(float x) { return x + 3.0f; }");
  std::vector<Vector<float>> results;
  for (std::size_t job = 0; job < 4; ++job) {
    Vector<float> input(testData(16384, job));
    results.push_back(shift(scale(input)));
  }
  for (auto& r : results) {
    out.outputs.push_back(r.hostData());
  }
}

TEST(AsyncScheduler, IndependentJobsOverlapWithIdenticalValues) {
  const RunResult on = runScenario(fourIndependentChains, /*async=*/true);
  const RunResult off = runScenario(fourIndependentChains, /*async=*/false);
  ASSERT_EQ(on.outputs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(bitIdentical(on.outputs[i], off.outputs[i])) << i;
  }
  // The first consumption dispatches all four jobs; the later reads
  // block only on work already in flight — strictly better makespan.
  EXPECT_LT(on.finalVirtualNs, off.finalVirtualNs);
  EXPECT_EQ(on.sched.jobsDispatched, 4u);
  EXPECT_EQ(on.sched.maxConcurrent, 4u);
  EXPECT_EQ(on.sched.drains, 1u);
}

TEST(AsyncScheduler, IndependentDotProductsOverlap) {
  auto scenario = [](RunResult& out) {
    Zip<float> mult("float as_mult(float x, float y) { return x * y; }");
    Reduce<float> sum("float as_dsum(float a, float b) { return a + b; }");
    std::vector<skelcl::Scalar<float>> results;
    for (std::size_t job = 0; job < 3; ++job) {
      Vector<float> a(testData(8192, job));
      Vector<float> b(testData(8192, job + 11));
      results.push_back(sum(mult(a, b)));
    }
    for (auto& r : results) {
      out.scalars.push_back(r.getValue());
    }
  };
  const RunResult on = runScenario(scenario, /*async=*/true);
  const RunResult off = runScenario(scenario, /*async=*/false);
  EXPECT_TRUE(bitIdentical(on.scalars, off.scalars));
  EXPECT_LT(on.finalVirtualNs, off.finalVirtualNs);
  EXPECT_EQ(on.sched.maxConcurrent, 3u);
}

TEST(AsyncScheduler, DependentChainsDispatchOnceThroughTheirRoot) {
  // A shared intermediate with fanout does not double-evaluate under a
  // drain: the roots force it exactly once, values match sync.
  auto scenario = [](RunResult& out) {
    Map<float> inc("float asd_inc(float x) { return x + 1.0f; }");
    Map<float> dbl("float asd_dbl(float x) { return 2.0f * x; }");
    Zip<float> add("float asd_add(float x, float y) { return x + y; }");
    Vector<float> input(testData(4096));
    Vector<float> shared = inc(input);
    Vector<float> left = dbl(shared);
    Vector<float> right = add(shared, left);
    out.outputs.push_back(right.hostData());
    out.outputs.push_back(left.hostData());
    out.outputs.push_back(shared.hostData());
  };
  const RunResult on = runScenario(scenario, /*async=*/true);
  const RunResult off = runScenario(scenario, /*async=*/false);
  ASSERT_EQ(on.outputs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(bitIdentical(on.outputs[i], off.outputs[i])) << i;
  }
}

// --- per-job fault isolation --------------------------------------------

/// Two independent single-map jobs under a plan failing the second
/// kernel launch: job B (registered second, dispatched second) fails,
/// job A survives. `consumeFailingFirst` flips which job is read first —
/// the poisoned error must wait at B's consumption point either way.
void runFaultIsolation(bool consumeFailingFirst) {
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_FAULT_PLAN", "kernel@2", 1);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
  skelcl::init(skelcl::DeviceSelection::nGPUs(1));
  {
    Map<float> inc("float asf_inc(float x) { return x + 1.0f; }");
    const std::vector<float> data = testData(2048);
    Vector<float> inputA(data);
    Vector<float> inputB(data);
    Vector<float> a = inc(inputA); // kernel #1: survives
    Vector<float> b = inc(inputB); // kernel #2: injected failure

    if (consumeFailingFirst) {
      EXPECT_THROW((void)b.hostData(), ocl::ClError);
      const std::vector<float> ok = a.hostData();
      ASSERT_EQ(ok.size(), data.size());
      EXPECT_EQ(ok[7], data[7] + 1.0f);
    } else {
      const std::vector<float> ok = a.hostData();
      ASSERT_EQ(ok.size(), data.size());
      EXPECT_EQ(ok[7], data[7] + 1.0f);
      EXPECT_THROW((void)b.hostData(), ocl::ClError);
    }
    // The synchronous contract carries over: a failed evaluation is
    // never retried, and the error rethrows exactly once — the next
    // read sees plain (empty) host data.
    EXPECT_NO_THROW((void)b.hostData());
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_FAULT_PLAN");
  ocl::FaultInjector::instance().reset();
}

TEST(AsyncScheduler, FaultPoisonsOnlyTheFailingJob) {
  runFaultIsolation(/*consumeFailingFirst=*/false);
}

TEST(AsyncScheduler, PoisonedJobThrowsEvenWhenConsumedFirst) {
  runFaultIsolation(/*consumeFailingFirst=*/true);
}

TEST(AsyncScheduler, FaultSequencesMatchSynchronousRuns) {
  // Same plan, same program, async on vs off: the same calls fail with
  // the same typed errors (prepare is skipped while a plan is armed, so
  // the injector sees builds and launches in the synchronous order).
  auto cycle = [](bool async) {
    skelcl_test::useTempCacheDir();
    ::setenv("SKELCL_ASYNC", async ? "1" : "0", 1);
    ::setenv("SKELCL_FAULT_PLAN", "kernel@3", 1);
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
    skelcl::init(skelcl::DeviceSelection::nGPUs(1));
    std::vector<std::string> log;
    {
      Map<float> inc("float asq_inc(float x) { return x + 1.0f; }");
      std::vector<Vector<float>> jobs;
      for (std::size_t j = 0; j < 4; ++j) {
        jobs.push_back(inc(Vector<float>(testData(1024, j))));
      }
      for (auto& job : jobs) {
        try {
          (void)job.hostData();
          log.emplace_back("ok");
        } catch (const ocl::ClError& e) {
          log.emplace_back(e.what());
        }
      }
    }
    skelcl::terminate();
    ::unsetenv("SKELCL_FAULT_PLAN");
    ::unsetenv("SKELCL_ASYNC");
    ocl::FaultInjector::instance().reset();
    return log;
  };
  EXPECT_EQ(cycle(/*async=*/true), cycle(/*async=*/false));
}

// --- trace integration ---------------------------------------------------

/// Traced multi-job run (two independent chains + a dot product).
trace::Trace tracedMultiJobRun() {
  skelcl_test::useTempCacheDir();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
  skelcl::init(skelcl::DeviceSelection::nGPUs(1));
  trace::Recorder::instance().start();
  {
    Map<float> inc("float ast_inc(float x) { return x + 1.0f; }");
    Map<float> dbl("float ast_dbl(float x) { return 2.0f * x; }");
    Zip<float> mult("float ast_mult(float x, float y) { return x * y; }");
    Reduce<float> sum("float ast_sum(float a, float b) { return a + b; }");
    Vector<float> u = inc(Vector<float>(testData(8192, 1)));
    Vector<float> v = dbl(Vector<float>(testData(8192, 2)));
    skelcl::Scalar<float> s =
        sum(mult(Vector<float>(testData(8192, 3)),
                 Vector<float>(testData(8192, 4))));
    (void)u.hostData();
    (void)v.hostData();
    (void)s.getValue();
  }
  trace::Trace trace = trace::Recorder::instance().stop();
  skelcl::terminate();
  return trace;
}

TEST(AsyncScheduler, TracedRunsAreByteIdenticalAcrossRuns) {
  tracedMultiJobRun(); // warm the kernel cache (hit-vs-build may differ)
  const trace::Trace a = tracedMultiJobRun();
  const trace::Trace b = tracedMultiJobRun();
  EXPECT_EQ(trace::serialize(a), trace::serialize(b));
  EXPECT_EQ(trace::chromeJson(a), trace::chromeJson(b));
}

TEST(AsyncScheduler, TraceCarriesSchedulerSpansAndReportCounts) {
  const trace::Trace trace = tracedMultiJobRun();
  const trace::Report report = trace::analyze(trace);
  EXPECT_EQ(report.schedulerJobs, 3u);
  EXPECT_EQ(report.maxConcurrentJobs, 3u);
  // Jobs registered before the drain waited a nonzero virtual interval
  // (the skeleton calls advanced the clock by enqueueing uploads).
  EXPECT_GT(report.schedQueueWaitNs, 0u);
  const std::string text = trace::formatReport(report);
  EXPECT_NE(text.find("scheduler:"), std::string::npos);
  EXPECT_NE(text.find("max concurrent jobs"), std::string::npos);
  // Chrome export lays scheduler jobs out on per-slot host rows.
  const std::string json = trace::chromeJson(trace);
  EXPECT_NE(json.find("async job slot"), std::string::npos);
  EXPECT_NE(json.find("sched.job"), std::string::npos);
}

TEST(AsyncScheduler, SyncRunsCarryNoSchedulerSpans) {
  ::setenv("SKELCL_ASYNC", "0", 1);
  const trace::Trace trace = tracedMultiJobRun();
  ::unsetenv("SKELCL_ASYNC");
  const trace::Report report = trace::analyze(trace);
  EXPECT_EQ(report.schedulerJobs, 0u);
  EXPECT_EQ(report.maxConcurrentJobs, 0u);
  EXPECT_EQ(report.schedQueueWaitNs, 0u);
}

} // namespace
