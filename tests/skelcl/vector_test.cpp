// Vector semantics: construction, host access, lazy transfers, and
// distribution changes.
#include <numeric>

#include "skelcl_test_util.h"

namespace {

using skelcl::Distribution;
using skelcl::Vector;
using skelcl_test::SkelclFixture;

class VectorTest : public SkelclFixture {
protected:
  VectorTest() : SkelclFixture(2) {}
};

TEST_F(VectorTest, ConstructionVariants) {
  Vector<float> empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());

  Vector<int> sized(10);
  EXPECT_EQ(sized.size(), 10u);

  Vector<int> filled(5, 42);
  EXPECT_EQ(filled[4], 42);

  const float raw[] = {1.0f, 2.0f, 3.0f};
  Vector<float> fromPtr(raw, 3); // paper Listing 1 constructor
  EXPECT_FLOAT_EQ(fromPtr[1], 2.0f);

  std::vector<double> host = {0.5, 1.5};
  Vector<double> fromVec(host);
  EXPECT_DOUBLE_EQ(fromVec[0], 0.5);

  Vector<int> fromIter(host.begin(), host.end());
  EXPECT_EQ(fromIter[1], 1);
}

TEST_F(VectorTest, CopyIsShallow) {
  Vector<int> a(4, 1);
  Vector<int> b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 99); // shared state
  Vector<int> deep = a.clone();
  deep[0] = 7;
  EXPECT_EQ(a[0], 99);
}

TEST_F(VectorTest, DefaultDistributionIsSingle) {
  Vector<int> v(8);
  EXPECT_EQ(v.distribution(), Distribution::Single);
}

TEST_F(VectorTest, LazyUploadHappensOnFirstDeviceUse) {
  Vector<int> v(1024, 1);
  EXPECT_FALSE(v.state().hasDeviceData());
  v.state().ensureOnDevices();
  EXPECT_TRUE(v.state().hasDeviceData());
  EXPECT_FALSE(v.state().hostDirty());
}

TEST_F(VectorTest, RepeatedEnsureDoesNotRetransfer) {
  Vector<int> v(1 << 18, 1);
  v.state().ensureOnDevices();
  const auto before = ocl::hostTimeNs();
  v.state().ensureOnDevices(); // no transfer: nothing changed
  v.state().ensureOnDevices();
  // Only negligible host time may pass (no enqueue happened at all).
  EXPECT_EQ(ocl::hostTimeNs(), before);
}

TEST_F(VectorTest, HostWriteInvalidatesDeviceCopy) {
  Vector<int> v(256, 1);
  v.state().ensureOnDevices();
  v[0] = 7; // writing host access
  EXPECT_TRUE(v.state().hostDirty());
  v.state().ensureOnDevices(); // re-uploads
  EXPECT_FALSE(v.state().hostDirty());
}

TEST_F(VectorTest, BlockDistributionSplitsAcrossDevices) {
  Vector<int> v(10);
  std::iota(v.hostDataForWriting().begin(), v.hostDataForWriting().end(), 0);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  const auto& chunks = v.state().chunks();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].deviceIndex, 0u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].count, 5u);
  EXPECT_EQ(chunks[1].offset, 5u);
  EXPECT_EQ(chunks[1].count, 5u);
}

TEST_F(VectorTest, UnevenBlockDistribution) {
  Vector<int> v(7, 1);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  const auto& chunks = v.state().chunks();
  EXPECT_EQ(chunks[0].count, 4u);
  EXPECT_EQ(chunks[1].count, 3u);
}

TEST_F(VectorTest, CopyDistributionReplicates) {
  Vector<int> v(6, 3);
  v.setDistribution(Distribution::Copy);
  v.state().ensureOnDevices();
  const auto& chunks = v.state().chunks();
  ASSERT_EQ(chunks.size(), 2u);
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.offset, 0u);
    EXPECT_EQ(chunk.count, 6u);
  }
}

TEST_F(VectorTest, SingleDistributionTargetsChosenDevice) {
  Vector<int> v(4, 1);
  v.setDistribution(Distribution::Single, 1);
  v.state().ensureOnDevices();
  ASSERT_EQ(v.state().chunks().size(), 1u);
  EXPECT_EQ(v.state().chunks()[0].deviceIndex, 1u);
}

TEST_F(VectorTest, RedistributionRoundTripPreservesData) {
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> v(data);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  v.setDistribution(Distribution::Copy);
  v.state().ensureOnDevices();
  v.setDistribution(Distribution::Single);
  v.state().ensureOnDevices();
  EXPECT_EQ(v.hostData(), data);
}

TEST_F(VectorTest, CombineRedistributionFoldsCopies) {
  // Build a copy-distributed vector whose per-device copies were
  // modified on the devices, then collapse to block with '+'.
  Vector<int> v(8, 5);
  v.setDistribution(Distribution::Copy);
  v.state().ensureOnDevices();
  v.dataOnDevicesModified(); // copies count as the newest data
  v.setDistribution(Distribution::Block,
                    "int combine(int a, int b) { return a + b; }");
  EXPECT_EQ(v.distribution(), Distribution::Block);
  // Each element combines one value from each of the 2 devices: 5+5.
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], 10) << i;
  }
}

TEST_F(VectorTest, CombineRedistributionWithoutDeviceDataIsPlain) {
  Vector<int> v(4, 2);
  v.setDistribution(Distribution::Copy);
  // No device data yet: combine degenerates to a plain redistribution.
  v.setDistribution(Distribution::Block,
                    "int combine(int a, int b) { return a + b; }");
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], 2);
  }
}

TEST_F(VectorTest, DataOnDevicesModifiedRequiresDeviceData) {
  Vector<int> v(4, 0);
  EXPECT_THROW(v.dataOnDevicesModified(), common::InvalidArgument);
}

TEST_F(VectorTest, ResizeInvalidatesDeviceChunks) {
  Vector<int> v(4, 1);
  v.state().ensureOnDevices();
  v.resize(8);
  EXPECT_FALSE(v.state().hasDeviceData());
  EXPECT_EQ(v.size(), 8u);
}

TEST_F(VectorTest, UseWithoutInitThrows) {
  skelcl::terminate();
  Vector<int> v(4, 1);
  EXPECT_THROW(v.state().ensureOnDevices(), common::Error);
  // Restore for TearDown.
  skelcl::init(skelcl::DeviceSelection::nGPUs(2));
}

TEST_F(VectorTest, TypeRegistrationRequiredForStructs) {
  struct Unregistered {
    int a;
  };
  EXPECT_THROW(skelcl::typeName<Unregistered>(), common::InvalidArgument);
  struct Registered {
    int a;
  };
  skelcl::registerType<Registered>("RegisteredT",
                                   "typedef struct { int a; } RegisteredT;");
  EXPECT_EQ(skelcl::typeName<Registered>(), "RegisteredT");
}

} // namespace
