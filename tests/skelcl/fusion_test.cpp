// Differential tests for the expression-DAG rewrite pass: every
// scenario runs once with fusion enabled and once under SKELCL_FUSION=0
// (each in its own init()..terminate() cycle) and must produce
// bit-identical outputs. Fusion may only change HOW the DAG executes —
// fewer kernel launches, fewer materialized intermediates — never WHAT
// it computes: a fused chain applies the same operations to the same
// elements in the same order as the unfused stages.
#include <cstring>
#include <functional>
#include <numeric>

#include "skelcl_test_util.h"

namespace {

using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Scan;
using skelcl::Vector;
using skelcl::Zip;

/// Everything disabling fusion may NOT change (outputs) plus what it
/// MUST change (launch counts, materialized intermediates).
struct RunResult {
  std::vector<float> floats;
  std::vector<int> ints;
  std::uint64_t kernelLaunches = 0; // sum over all device queues
  skelcl::detail::Runtime::FusionStats stats;
};

/// Runs `scenario` in a fresh init()..terminate() cycle on `gpus`
/// simulated GPUs with fusion on or off.
RunResult runScenario(const std::function<void(RunResult&)>& scenario,
                      std::uint32_t gpus, bool fused) {
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_FUSION", fused ? "1" : "0", 1);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));

  RunResult result;
  scenario(result);

  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < skelcl::deviceCount(); ++d) {
    result.kernelLaunches += runtime.queue(d).cumulativeKernelLaunches();
  }
  result.stats = runtime.fusionStats();
  skelcl::terminate();
  ::unsetenv("SKELCL_FUSION");
  return result;
}

/// Bit-level equality: fusion must not reassociate float arithmetic.
bool bitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

std::vector<float> testData(std::size_t n) {
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = float(i % 97) * 0.375f - 11.5f;
  }
  return data;
}

/// Runs the scenario both ways and checks the differential contract:
/// identical outputs, strictly fewer launches fused, and rewrite stats
/// that show the pass actually fired.
void expectFusionWins(const std::function<void(RunResult&)>& scenario,
                      std::uint32_t gpus = 1) {
  const RunResult fused = runScenario(scenario, gpus, /*fused=*/true);
  const RunResult unfused = runScenario(scenario, gpus, /*fused=*/false);

  EXPECT_TRUE(bitIdentical(fused.floats, unfused.floats));
  EXPECT_EQ(fused.ints, unfused.ints);
  EXPECT_LT(fused.kernelLaunches, unfused.kernelLaunches);
  EXPECT_GT(fused.stats.fusedStages, 0u);
  EXPECT_EQ(unfused.stats.fusedStages, 0u);
  EXPECT_LT(fused.stats.intermediateBytes,
            unfused.stats.intermediateBytes);
}

TEST(FusionTest, MapMapComposesIntoOneKernel) {
  auto scenario = [](RunResult& out) {
    Map<float> scale("float fu_scale(float x) { return 2.0f * x; }");
    Map<float> shift("float fu_shift(float x) { return x + 3.0f; }");
    Vector<float> input(testData(4096));
    Vector<float> result = shift(scale(input));
    out.floats = result.hostData();
  };
  const RunResult fused = runScenario(scenario, 1, /*fused=*/true);
  const RunResult unfused = runScenario(scenario, 1, /*fused=*/false);
  EXPECT_TRUE(bitIdentical(fused.floats, unfused.floats));
  // map f . map g -> one kernel; unfused runs one per stage.
  EXPECT_EQ(fused.kernelLaunches, 1u);
  EXPECT_EQ(unfused.kernelLaunches, 2u);
  EXPECT_EQ(fused.stats.intermediateBytes, 0u);
  EXPECT_EQ(unfused.stats.intermediateBytes, 4096 * sizeof(float));
}

TEST(FusionTest, ZipAbsorbsMapOperands) {
  expectFusionWins([](RunResult& out) {
    Map<float> inc("float fu_inc(float x) { return x + 1.0f; }");
    Map<float> dbl("float fu_dbl(float x) { return 2.0f * x; }");
    Zip<float> mul("float fu_mul(float x, float y) { return x * y; }");
    Vector<float> a(testData(2048));
    Vector<float> b(testData(2048));
    Vector<float> result = mul(inc(a), dbl(b));
    out.floats = result.hostData();
  });
}

TEST(FusionTest, ReduceAbsorbsMapIntoMapReduce) {
  expectFusionWins([](RunResult& out) {
    Map<float> square("float fu_sq(float x) { return x * x; }");
    Reduce<float> sum("float fu_sum(float a, float b) { return a + b; }");
    Vector<float> input(testData(10000));
    out.floats.push_back(sum(square(input)).getValue());
  });
}

TEST(FusionTest, DotProductChainFusesToTwoLaunches) {
  auto scenario = [](RunResult& out) {
    Zip<float> mul("float fu_mul(float x, float y) { return x * y; }");
    Reduce<float> sum("float fu_sum(float a, float b) { return a + b; }");
    Vector<float> a(testData(8192));
    Vector<float> b(testData(8192));
    out.floats.push_back(sum(mul(a, b)).getValue());
  };
  const RunResult fused = runScenario(scenario, 1, /*fused=*/true);
  const RunResult unfused = runScenario(scenario, 1, /*fused=*/false);
  EXPECT_TRUE(bitIdentical(fused.floats, unfused.floats));
  // Fused: one mapreduce first pass + one combine pass. Unfused: the
  // zip kernel, then the same two reduce passes.
  EXPECT_EQ(fused.kernelLaunches + 1, unfused.kernelLaunches);
  EXPECT_EQ(fused.stats.intermediateBytes, 0u);
  EXPECT_EQ(unfused.stats.intermediateBytes, 8192 * sizeof(float));
}

TEST(FusionTest, ScanAbsorbsMapChain) {
  expectFusionWins([](RunResult& out) {
    Map<int> offset("int fu_off(int x) { return x - 7; }");
    Scan<int> prefix("int fu_add(int a, int b) { return a + b; }", "0");
    std::vector<int> data(3000);
    std::iota(data.begin(), data.end(), 1);
    Vector<int> input(data);
    out.ints = prefix(offset(input)).hostData();
  });
}

TEST(FusionTest, DeepChainSplitsAtMaxDepthAndStaysExact) {
  // 24 stacked maps exceed the rewrite pass's max fusion depth, so the
  // plan must split: still bit-exact, still far fewer launches.
  expectFusionWins([](RunResult& out) {
    Map<float> step("float fu_step(float x) { return x * 1.5f - 2.0f; }");
    Vector<float> v(testData(1024));
    for (int i = 0; i < 24; ++i) {
      v = step(v);
    }
    out.floats = v.hostData();
  });
}

TEST(FusionTest, FanoutBlocksAbsorptionButKeepsResultsExact) {
  // `shared` feeds two consumers, so it must materialize exactly once;
  // both consumers then read the same buffer.
  auto scenario = [](RunResult& out) {
    Map<float> inc("float fu_inc(float x) { return x + 1.0f; }");
    Map<float> dbl("float fu_dbl(float x) { return 2.0f * x; }");
    Zip<float> add("float fu_add(float x, float y) { return x + y; }");
    Vector<float> input(testData(512));
    Vector<float> shared = inc(input);
    Vector<float> result = add(dbl(shared), shared);
    out.floats = result.hostData();
  };
  const RunResult fused = runScenario(scenario, 1, /*fused=*/true);
  const RunResult unfused = runScenario(scenario, 1, /*fused=*/false);
  EXPECT_TRUE(bitIdentical(fused.floats, unfused.floats));
  // Fused: `shared` materializes, then zip absorbs only dbl -> 2
  // launches; unfused runs all 3 stages.
  EXPECT_EQ(fused.kernelLaunches, 2u);
  EXPECT_EQ(unfused.kernelLaunches, 3u);
}

TEST(FusionTest, MultiDeviceChainsStayExact) {
  expectFusionWins(
      [](RunResult& out) {
        Map<float> inc("float fu_inc(float x) { return x + 0.5f; }");
        Zip<float> mul("float fu_mul(float x, float y) { return x * y; }");
        Reduce<float> sum(
            "float fu_sum(float a, float b) { return a + b; }");
        Vector<float> a(testData(9999));
        Vector<float> b(testData(9999));
        a.setDistribution(Distribution::Block);
        b.setDistribution(Distribution::Block);
        Vector<float> c = mul(inc(a), b);
        out.floats = c.hostData();
        out.floats.push_back(sum(c).getValue());
      },
      /*gpus=*/3);
}

TEST(FusionTest, VectorArgumentsForceEagerEvaluation) {
  // A stage with a vector argument may scatter-read, so it is never
  // deferred; the surrounding chain still matches the unfused run.
  auto scenario = [](RunResult& out) {
    Map<int> gather(
        "int fu_gather(int i, __global const int* table) {"
        " return table[i % 4]; }");
    Map<int> dbl("int fu_dbl(int x) { return 2 * x; }");
    Vector<int> table(std::vector<int>{10, 20, 30, 40});
    Arguments args;
    args.push(table);
    std::vector<int> idx(256);
    std::iota(idx.begin(), idx.end(), 0);
    Vector<int> input(idx);
    out.ints = dbl(gather(input, args)).hostData();
  };
  const RunResult fused = runScenario(scenario, 1, /*fused=*/true);
  const RunResult unfused = runScenario(scenario, 1, /*fused=*/false);
  EXPECT_EQ(fused.ints, unfused.ints);
  ASSERT_EQ(fused.ints.size(), 256u);
  EXPECT_EQ(fused.ints[1], 40);
}

TEST(FusionTest, ScalarArgumentsRideAlongIntoTheFusedKernel) {
  expectFusionWins([](RunResult& out) {
    Map<float> scale("float fu_ax(float x, float a) { return a * x; }");
    Map<float> shift("float fu_xb(float x, float b) { return x + b; }");
    Arguments aArgs;
    aArgs.push(3.0f);
    Arguments bArgs;
    bArgs.push(-1.25f);
    Vector<float> input(testData(1000));
    out.floats = shift(scale(input, aArgs), bArgs).hostData();
  });
}

} // namespace
