// Differential suite for the Stencil skeleton: exact host oracles for
// every radius (1..3) × boundary policy (clamp/wrap/constant) × shape
// (1D, row-major 2D) combination, on 1, 2, and 4 devices; bit-identity
// of an iterated float stencil across device counts, heterogeneous
// SKELCL_DEVICES specs, shuffled schedules, async-off, fusion-off, and
// measured weights; the degenerate-geometry regressions (chunks smaller
// than the halo radius, one-row chunks whose halos wrap, empty input,
// sizes not divisible by the device count); and typed-error recovery
// with a fault aimed at the halo-exchange copy itself.
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "skelcl_test_util.h"

namespace {

using ocl::FaultInjector;
using skelcl::Boundary;
using skelcl::Stencil;
using skelcl::StencilShape;
using skelcl::Vector;

// --- host oracles (exact: int arithmetic, same accumulation order as
// the generated kernels: row-major over the window) ----------------------

int resolveIndex(long g, long n, Boundary b, bool* constant) {
  *constant = false;
  switch (b) {
    case Boundary::Wrap:
      if (g < 0) g += n;
      if (g >= n) g -= n;
      return int(g);
    case Boundary::Constant:
      if (g < 0 || g >= n) {
        *constant = true;
        return 0;
      }
      return int(g);
    default:
      if (g < 0) g = 0;
      if (g >= n) g = n - 1;
      return int(g);
  }
}

std::vector<int> oracle1D(const std::vector<int>& in, int radius,
                          Boundary b, int cval) {
  const long n = long(in.size());
  std::vector<int> out(in.size());
  for (long i = 0; i < n; ++i) {
    int s = 0;
    for (int k = -radius; k <= radius; ++k) {
      bool c = false;
      const int g = resolveIndex(i + k, n, b, &c);
      s += c ? cval : in[std::size_t(g)];
    }
    out[std::size_t(i)] = s;
  }
  return out;
}

std::vector<int> oracle2D(const std::vector<int>& in, std::size_t width,
                          int radius, Boundary b, int cval) {
  const long rows = long(in.size() / width);
  const long cols = long(width);
  std::vector<int> out(in.size());
  for (long r = 0; r < rows; ++r) {
    for (long c = 0; c < cols; ++c) {
      int s = 0;
      for (int dr = -radius; dr <= radius; ++dr) {
        for (int dc = -radius; dc <= radius; ++dc) {
          bool rc = false;
          bool cc = false;
          const int rr = resolveIndex(r + dr, rows, b, &rc);
          const int gc = resolveIndex(c + dc, cols, b, &cc);
          s += (rc || cc) ? cval
                          : in[std::size_t(rr) * width + std::size_t(gc)];
        }
      }
      out[std::size_t(r) * width + std::size_t(c)] = s;
    }
  }
  return out;
}

std::string sum1DSource(int radius) {
  const int w = 2 * radius + 1;
  return "int ssum(__global const int* w) {\n"
         "  int s = 0;\n"
         "  for (int i = 0; i < " + std::to_string(w) + "; ++i) {\n"
         "    s = s + w[i];\n"
         "  }\n"
         "  return s;\n"
         "}\n";
}

std::string sum2DSource(int radius) {
  const int w = 2 * radius + 1;
  return "int ssum2(__global const int* w, uint st) {\n"
         "  int s = 0;\n"
         "  for (int r = 0; r < " + std::to_string(w) + "; ++r) {\n"
         "    for (int c = 0; c < " + std::to_string(w) + "; ++c) {\n"
         "      s = s + w[r * (int)st + c];\n"
         "    }\n"
         "  }\n"
         "  return s;\n"
         "}\n";
}

std::vector<int> randomInts(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-100, 100);
  std::vector<int> v(n);
  for (int& x : v) {
    x = dist(rng);
  }
  return v;
}

constexpr Boundary kPolicies[] = {Boundary::Clamp, Boundary::Wrap,
                                  Boundary::Constant};

void expectOracle1D(std::size_t n, unsigned seed) {
  const std::vector<int> data = randomInts(n, seed);
  for (int radius = 1; radius <= 3; ++radius) {
    for (Boundary b : kPolicies) {
      Vector<int> in(data);
      Stencil<int> st(sum1DSource(radius),
                      StencilShape{std::size_t(radius), b, 0}, /*cval=*/7);
      Vector<int> out = st(in);
      const std::vector<int> want = oracle1D(data, radius, b, 7);
      ASSERT_EQ(out.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(out[i], want[i])
            << "1D radius=" << radius << " policy=" << int(b) << " i=" << i;
      }
    }
  }
}

void expectOracle2D(std::size_t rows, std::size_t width, unsigned seed) {
  const std::vector<int> data = randomInts(rows * width, seed);
  for (int radius = 1; radius <= 3; ++radius) {
    for (Boundary b : kPolicies) {
      Vector<int> in(data);
      Stencil<int> st(sum2DSource(radius),
                      StencilShape{std::size_t(radius), b, width},
                      /*cval=*/-3);
      Vector<int> out = st(in);
      const std::vector<int> want = oracle2D(data, width, radius, b, -3);
      ASSERT_EQ(out.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(out[i], want[i])
            << "2D radius=" << radius << " policy=" << int(b) << " i=" << i;
      }
    }
  }
}

class StencilOneDevice : public skelcl_test::SkelclFixture {
public:
  StencilOneDevice() : SkelclFixture(1) {}
};
class StencilTwoDevices : public skelcl_test::SkelclFixture {
public:
  StencilTwoDevices() : SkelclFixture(2) {}
};
class StencilFourDevices : public skelcl_test::SkelclFixture {
public:
  StencilFourDevices() : SkelclFixture(4) {}
};

TEST_F(StencilOneDevice, MatchesOracleEveryRadiusAndPolicy) {
  expectOracle1D(257, 11);
  expectOracle2D(19, 10, 12);
}

// 1003 elements / 37 rows do not divide evenly by 2 or 4: the
// largest-remainder partition produces unequal row-aligned chunks.
TEST_F(StencilTwoDevices, MatchesOracleEveryRadiusAndPolicy) {
  expectOracle1D(1003, 21);
  expectOracle2D(37, 10, 22);
}

TEST_F(StencilFourDevices, MatchesOracleEveryRadiusAndPolicy) {
  expectOracle1D(1003, 31);
  expectOracle2D(37, 10, 32);
}

// Iterated stencils chain through the expression DAG (each step's input
// is the previous deferred result); the chunks stay resident on-device
// between steps.
TEST_F(StencilFourDevices, IteratedStencilMatchesIteratedOracle) {
  std::vector<int> data = randomInts(96 * 7, 41);
  Vector<int> v(data);
  Stencil<int> st(sum2DSource(1), StencilShape{1, Boundary::Clamp, 7});
  for (int step = 0; step < 4; ++step) {
    v = st(v);
    data = oracle2D(data, 7, 1, Boundary::Clamp, 0);
  }
  ASSERT_EQ(v.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(v[i], data[i]) << i;
  }
}

// --- degenerate geometry -------------------------------------------------

// Fewer rows than radius on some device: 5 rows over 4 devices gives
// per-device shares below radius 3 — the evaluator must fall back to a
// single device instead of exchanging halos wider than a chunk.
TEST_F(StencilFourDevices, ChunkSmallerThanHaloFallsBackToSingleDevice) {
  const std::vector<int> data = randomInts(5 * 4, 51);
  for (Boundary b : kPolicies) {
    Vector<int> in(data);
    Stencil<int> st(sum2DSource(3), StencilShape{3, b, 4}, 9);
    Vector<int> out = st(in);
    const std::vector<int> want = oracle2D(data, 4, 3, b, 9);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(out[i], want[i]) << "policy=" << int(b) << " i=" << i;
    }
  }
}

// Fewer elements than devices: one share is zero rows, which is below
// any radius — single-device fallback again, not a zero-sized chunk in
// the halo path.
TEST_F(StencilFourDevices, FewerElementsThanDevices) {
  const std::vector<int> data = {3, -1, 4};
  Vector<int> in(data);
  Stencil<int> st(sum1DSource(1), StencilShape{1, Boundary::Clamp, 0});
  Vector<int> out = st(in);
  const std::vector<int> want = oracle1D(data, 1, Boundary::Clamp, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out[i], want[i]) << i;
  }
}

// One row per device with wrap: every output row is pure border, both
// halos come from the other device, and the top/bottom halos of the
// first/last chunk wrap around the grid.
TEST_F(StencilTwoDevices, OneRowPerDeviceWrapHalos) {
  const std::vector<int> data = randomInts(2 * 6, 61);
  Vector<int> in(data);
  Stencil<int> st(sum2DSource(1), StencilShape{1, Boundary::Wrap, 6});
  Vector<int> out = st(in);
  const std::vector<int> want = oracle2D(data, 6, 1, Boundary::Wrap, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out[i], want[i]) << i;
  }
}

TEST_F(StencilTwoDevices, EmptyVectorYieldsEmptyResult) {
  for (Boundary b : kPolicies) {
    Vector<int> in;
    Stencil<int> st(sum1DSource(2), StencilShape{2, b, 0});
    Vector<int> out = st(in);
    EXPECT_EQ(out.size(), 0u);
  }
}

TEST_F(StencilOneDevice, InvalidGeometryThrows) {
  EXPECT_THROW(Stencil<int>(sum1DSource(1), StencilShape{0}),
               common::InvalidArgument);
  // 10 elements are not a whole number of rows of width 3.
  Vector<int> in(std::vector<int>(10, 1));
  Stencil<int> ragged(sum2DSource(1), StencilShape{1, Boundary::Clamp, 3});
  EXPECT_THROW(ragged(in), common::InvalidArgument);
  // Wrap needs every grid extent >= radius.
  Vector<int> tiny(std::vector<int>{1, 2});
  Stencil<int> wide(sum1DSource(3), StencilShape{3, Boundary::Wrap, 0});
  EXPECT_THROW(wide(tiny), common::InvalidArgument);
}

// --- fault recovery ------------------------------------------------------

class StencilFaults : public StencilTwoDevices {
protected:
  void TearDown() override {
    FaultInjector::instance().reset();
    StencilTwoDevices::TearDown();
  }
};

// A fault on the first buffer copy hits the halo exchange itself (the
// stencil's only copy_buffer commands). The error is typed, names the
// device, leaves the host data intact, and the run retries cleanly.
TEST_F(StencilFaults, HaloExchangeCopyFaultSurfacesTypedAndRetries) {
  const std::vector<int> data = randomInts(512, 71);
  Vector<int> in(data);
  Stencil<int> st(sum1DSource(2), StencilShape{2, Boundary::Clamp, 0});

  FaultInjector::instance().configure("copy@1");
  EXPECT_THROW(
      {
        Vector<int> out = st(in);
        (void)out[0];
      },
      ocl::TransferFailure);
  EXPECT_EQ(FaultInjector::instance().firedLog().size(), 1u);

  FaultInjector::instance().reset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(in[i], data[i]) << i;
  }
  Vector<int> out = st(in);
  const std::vector<int> want = oracle1D(data, 2, Boundary::Clamp, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out[i], want[i]) << i;
  }
}

TEST_F(StencilFaults, PackKernelFaultSurfacesTypedAndRetries) {
  const std::vector<int> data = randomInts(300, 72);
  Vector<int> in(data);
  Stencil<int> st(sum1DSource(1), StencilShape{1, Boundary::Wrap, 0});

  FaultInjector::instance().configure("kernel~skelcl_stencil_pack@1");
  EXPECT_THROW(
      {
        Vector<int> out = st(in);
        (void)out[0];
      },
      ocl::LaunchFailure);

  FaultInjector::instance().reset();
  Vector<int> out = st(in);
  const std::vector<int> want = oracle1D(data, 1, Boundary::Wrap, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out[i], want[i]) << i;
  }
}

// --- bit-identity across runtime configurations --------------------------

// Three steps of a float heat-diffusion stencil must produce the same
// bits no matter how the work is split or scheduled: each output cell's
// window always carries the same values in the same positions, so the
// per-cell float expression is literally identical everywhere.
std::vector<float> runHeat(std::uint32_t gpus, const char* deviceSpec) {
  skelcl_test::useTempCacheDir();
  if (deviceSpec != nullptr) {
    ocl::configureSystem(ocl::SystemConfig::parse(deviceSpec));
    skelcl::init(skelcl::DeviceSelection::allDevices());
  } else {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
    skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  }

  const std::size_t width = 24;
  const std::size_t rows = 33;
  std::vector<float> seed(rows * width);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    seed[i] = float((i * 2654435761u) % 1000) / 997.0f;
  }
  Stencil<float> heat(
      "float heat(__global const float* w, uint st) {\n"
      "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2] +\n"
      "                  w[2 * (int)st + 1]);\n"
      "}\n",
      StencilShape{1, Boundary::Clamp, width});
  Vector<float> v(seed);
  for (int step = 0; step < 3; ++step) {
    v = heat(v);
  }
  std::vector<float> result(v.begin(), v.end());
  skelcl::terminate();
  return result;
}

TEST(StencilBitIdentity, InvariantAcrossDevicesScheduleAndEngines) {
  const std::vector<float> ref = runHeat(1, nullptr);
  auto expectSame = [&](const std::vector<float>& got, const char* what) {
    ASSERT_EQ(got.size(), ref.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << what << " diverges at " << i;
    }
  };

  expectSame(runHeat(2, nullptr), "2 devices");
  expectSame(runHeat(4, nullptr), "4 devices");
  expectSame(runHeat(0, "t10*2, t10@0.5x"), "hetero 3-device");
  expectSame(runHeat(0, "t10@2x, cpu"), "gpu+cpu");

  for (unsigned seed : {1u, 7u, 1234u}) {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
    expectSame(runHeat(4, nullptr), "shuffled schedule");
    ::unsetenv("SKELCL_SCHEDULE");
    ::unsetenv("SKELCL_SCHEDULE_SEED");
  }

  ::setenv("SKELCL_ASYNC", "0", 1);
  expectSame(runHeat(4, nullptr), "async off");
  ::unsetenv("SKELCL_ASYNC");

  ::setenv("SKELCL_FUSION", "0", 1);
  expectSame(runHeat(4, nullptr), "fusion off");
  ::unsetenv("SKELCL_FUSION");

  // Measured weights re-partition after calibration; halo-aware chunk
  // geometry must follow the moved cut lines.
  ::setenv("SKELCL_WEIGHTS", "measured", 1);
  expectSame(runHeat(0, "t10*2, t10@0.5x"), "measured weights");
  ::unsetenv("SKELCL_WEIGHTS");
}

} // namespace
