// Schedule fuzzing: the event DAG underdetermines the schedule, so the
// runtime must compute the same answer under every legal tie-break. Each
// scenario here runs once under the Fifo baseline and under >= 8 seeded
// shuffle schedules (SKELCL_SCHEDULE=shuffle perturbs both the queues'
// dispatch tie-breaking and the skeletons' chunk visit order), asserting
//  * bit-identical outputs,
//  * invariant total kernel cycles (per cumulativeKernelCycles()), and
//  * invariant trace totals: kernel cycles, H2D/D2H bytes, and per-
//    device per-engine busy time (durations are model-computed, so only
//    placement may move — never the amount of work).
// Registered under `ctest -L fuzz`.
#include <functional>
#include <numeric>

#include "common/prng.h"
#include "skelcl_test_util.h"
#include "trace/analysis.h"
#include "trace/recorder.h"

namespace {

using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Scan;
using skelcl::Vector;
using skelcl::Zip;

/// Everything a schedule may NOT change about a scenario.
struct Invariants {
  std::vector<float> floats;         // scenario outputs, element order
  std::vector<int> ints;
  std::uint64_t kernelCycles = 0;    // sum over all device queues
  std::uint64_t traceKernelCycles = 0;
  std::uint64_t h2dBytes = 0;
  std::uint64_t d2hBytes = 0;
  // busyNs per (device, engine), flattened.
  std::vector<std::uint64_t> engineBusyNs;

  friend bool operator==(const Invariants& a, const Invariants& b) {
    return a.floats == b.floats && a.ints == b.ints &&
           a.kernelCycles == b.kernelCycles &&
           a.traceKernelCycles == b.traceKernelCycles &&
           a.h2dBytes == b.h2dBytes && a.d2hBytes == b.d2hBytes &&
           a.engineBusyNs == b.engineBusyNs;
  }
};

/// Runs `scenario` in a fresh init()..terminate() cycle on `gpus`
/// devices under the given schedule policy. `seed` == 0 selects the Fifo
/// baseline; any other value selects SeededShuffle(seed).
Invariants runScenario(
    const std::function<void(Invariants&)>& scenario, std::uint32_t gpus,
    std::uint64_t seed) {
  skelcl_test::useTempCacheDir();
  if (seed == 0) {
    ::setenv("SKELCL_SCHEDULE", "fifo", 1);
    ::unsetenv("SKELCL_SCHEDULE_SEED");
  } else {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
  }
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  trace::Recorder::instance().start();

  Invariants inv;
  scenario(inv);

  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < skelcl::deviceCount(); ++d) {
    inv.kernelCycles += runtime.queue(d).cumulativeKernelCycles();
  }
  const trace::Trace trace = trace::Recorder::instance().stop();
  const trace::Report report = trace::analyze(trace);
  inv.traceKernelCycles = report.kernelCycles;
  inv.h2dBytes = report.h2dBytes;
  inv.d2hBytes = report.d2hBytes;
  for (const trace::DeviceReport& dev : report.devices) {
    for (std::size_t e = 0; e < ocl::kEngineCount; ++e) {
      inv.engineBusyNs.push_back(dev.engines[e].busyNs);
    }
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SCHEDULE");
  ::unsetenv("SKELCL_SCHEDULE_SEED");
  return inv;
}

constexpr std::uint64_t kSeeds = 8; // shuffle seeds per scenario

void expectInvariant(const std::function<void(Invariants&)>& scenario,
                     std::uint32_t gpus) {
  runScenario(scenario, gpus, 0); // warm the kernel cache
  const Invariants baseline = runScenario(scenario, gpus, 0);
  ASSERT_GT(baseline.traceKernelCycles, 0u);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Invariants shuffled = runScenario(scenario, gpus, seed);
    EXPECT_EQ(shuffled.floats, baseline.floats) << "seed " << seed;
    EXPECT_EQ(shuffled.ints, baseline.ints) << "seed " << seed;
    EXPECT_EQ(shuffled.kernelCycles, baseline.kernelCycles)
        << "seed " << seed;
    EXPECT_EQ(shuffled.traceKernelCycles, baseline.traceKernelCycles)
        << "seed " << seed;
    EXPECT_EQ(shuffled.h2dBytes, baseline.h2dBytes) << "seed " << seed;
    EXPECT_EQ(shuffled.d2hBytes, baseline.d2hBytes) << "seed " << seed;
    EXPECT_EQ(shuffled.engineBusyNs, baseline.engineBusyNs)
        << "seed " << seed;
  }
}

void mapZipChain(Invariants& inv) {
  Map<float> scale("float sf(float x) { return 1.5f * x + 0.25f; }");
  Zip<float> mix("float mixf(float a, float b) { return a * b + a; }");
  const std::size_t n = 3000;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(i % 97) * 0.5f;
    b[i] = float(i % 31) - 7.0f;
  }
  Vector<float> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  Vector<float> out = mix(scale(va), vb);
  inv.floats = out.hostData();
}

void multiGpuBlockMap(Invariants& inv) {
  // Large enough that uploads split into pieces and pipeline.
  Map<float> heavy(
      "float hf(float x) {"
      "  float acc = x;"
      "  for (int k = 0; k < 16; ++k) acc = acc * 1.0001f + 0.5f;"
      "  return acc;"
      "}");
  std::vector<float> data(1 << 15);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = float(i % 1024) * 0.125f;
  }
  Vector<float> input(data);
  input.setDistribution(Distribution::Block);
  Vector<float> out = heavy(input);
  inv.floats = out.hostData();
}

void copyBlockCombine(Invariants& inv) {
  Map<int, void> bump(
      "void bsf(int idx, __global int* data) { data[idx] += idx + 1; }");
  Vector<int> indices = skelcl::indexVector(128);
  indices.setDistribution(Distribution::Block);
  Vector<int> data(128, 0);
  data.setDistribution(Distribution::Copy);
  Arguments args;
  args.push(data);
  bump(indices, args);
  data.dataOnDevicesModified();
  data.setDistribution(Distribution::Block,
                       "int addsf(int a, int b) { return a + b; }");
  inv.ints = data.hostData();
}

void reduceAndScan(Invariants& inv) {
  Reduce<int> sum("int rsum(int a, int b) { return a + b; }");
  Scan<int> scan("int ssum(int a, int b) { return a + b; }", "0");
  std::vector<int> data(4099);
  std::iota(data.begin(), data.end(), 1);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  inv.ints.push_back(sum(input).getValue());
  Vector<int> scanned = scan(input);
  inv.ints.insert(inv.ints.end(), scanned.hostData().begin(),
                  scanned.hostData().end());
}

void dotProduct(Invariants& inv) {
  Reduce<float> sum("float dsum(float x, float y) { return x + y; }");
  Zip<float> mult("float dmul(float x, float y) { return x * y; }");
  common::Xoshiro256 rng(5);
  const std::size_t n = 4096;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(rng.nextBelow(16));
    b[i] = float(rng.nextBelow(16));
  }
  Vector<float> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  inv.floats.push_back(sum(mult(va, vb)).getValue());
}

void stencilHalo(Invariants& inv) {
  // 203 rows: not divisible by 2, 3, or 4 devices, so block shares are
  // uneven and every boundary exchanges halos. Wrap makes even the
  // outermost chunks source rows from the opposite end of the grid.
  skelcl::Stencil<float> heat(
      "float fzst(__global const float* w, uint st) {"
      "  return 0.2f * (w[0] + w[1] + w[2]"
      "                 + w[(int)st + 1] + w[2 * (int)st + 1]);"
      "}",
      skelcl::StencilShape{1, skelcl::Boundary::Wrap, 8});
  std::vector<float> grid(203 * 8);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = float((i * 40503u) % 701) * 0.125f;
  }
  Vector<float> v(grid);
  for (int it = 0; it < 2; ++it) {
    v = heat(v);
  }
  inv.floats = v.hostData();
}

void csrDegenerate(Invariants& inv) {
  // Degenerate CSR structure on a prime row count: empty rows, one full
  // row, duplicate columns. Exercises zero-row chunks on 4 devices.
  const std::size_t rows = 53, cols = 19;
  std::vector<std::uint32_t> rowPtr = {0}, colIdx;
  std::vector<int> vals;
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % 6 == 1) {
      // empty row
    } else if (r == 20) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        colIdx.push_back(c);
        vals.push_back(int(c) - 3);
      }
    } else {
      for (int k = 0; k < int(r % 4) + 1; ++k) {
        const std::uint32_t c = (k == 1 && !colIdx.empty())
                                    ? colIdx.back()
                                    : std::uint32_t((r * 13 + k * 5) % cols);
        colIdx.push_back(c);
        vals.push_back(int((r * 3 + k) % 7) - 3);
      }
    }
    rowPtr.push_back(std::uint32_t(colIdx.size()));
  }
  skelcl::CsrMatrix<int> m(rows, cols, rowPtr, colIdx, vals);
  skelcl::SparseGather<int> spmv(
      "int fzg(int a, int xj) { return a * xj; }",
      "int fzc(int a, int b) { return a + b; }", "0");
  std::vector<int> x(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    x[i] = int(i % 13) - 6;
  }
  Vector<int> xs(x);
  inv.ints = spmv(m, xs).hostData();
}

TEST(ScheduleFuzz, MapZipChainIsScheduleInvariant) {
  expectInvariant(mapZipChain, 2);
}

TEST(ScheduleFuzz, MultiGpuBlockMapIsScheduleInvariant) {
  expectInvariant(multiGpuBlockMap, 4);
}

TEST(ScheduleFuzz, CopyBlockCombineIsScheduleInvariant) {
  expectInvariant(copyBlockCombine, 3);
}

TEST(ScheduleFuzz, ReduceAndScanAreScheduleInvariant) {
  expectInvariant(reduceAndScan, 4);
}

TEST(ScheduleFuzz, DotProductIsScheduleInvariant) {
  expectInvariant(dotProduct, 4);
}

TEST(ScheduleFuzz, StencilHaloExchangeIsScheduleInvariant) {
  expectInvariant(stencilHalo, 4);
}

TEST(ScheduleFuzz, CsrDegenerateRowsAreScheduleInvariant) {
  expectInvariant(csrDegenerate, 4);
}

TEST(ScheduleFuzz, ShuffleActuallyPerturbsTheSchedule) {
  // Sanity check on the fuzzer itself: a shuffled schedule must differ
  // from the baseline in *placement* (some command start moves), or the
  // suite would be vacuously green.
  auto spanOf = [](std::uint64_t seed) {
    skelcl_test::useTempCacheDir();
    if (seed == 0) {
      ::setenv("SKELCL_SCHEDULE", "fifo", 1);
    } else {
      ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
      ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
    }
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
    skelcl::init(skelcl::DeviceSelection::nGPUs(2));
    trace::Recorder::instance().start();
    Invariants inv;
    mapZipChain(inv);
    const trace::Trace trace = trace::Recorder::instance().stop();
    skelcl::terminate();
    ::unsetenv("SKELCL_SCHEDULE");
    ::unsetenv("SKELCL_SCHEDULE_SEED");
    std::vector<std::uint64_t> starts;
    for (const auto& cmd : trace.commands) {
      starts.push_back(cmd.startNs);
    }
    return starts;
  };
  spanOf(0); // warm the cache
  const auto fifo = spanOf(0);
  const auto shuffled = spanOf(1);
  EXPECT_NE(fifo, shuffled)
      << "SeededShuffle produced the exact FIFO schedule";
}

TEST(ScheduleFuzz, SerializedControlHasZeroOverlap) {
  // SKELCL_SERIALIZE=1 is the suite's control: in-order queues leave no
  // tie to break and transfers never hide behind compute.
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_SERIALIZE", "1", 1);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
  skelcl::init(skelcl::DeviceSelection::nGPUs(2));
  trace::Recorder::instance().start();
  Invariants inv;
  multiGpuBlockMap(inv);
  const trace::Trace trace = trace::Recorder::instance().stop();
  skelcl::terminate();
  ::unsetenv("SKELCL_SERIALIZE");
  const trace::Report report = trace::analyze(trace);
  EXPECT_EQ(report.overlapRatio, 0.0);
  EXPECT_GT(report.kernelCycles, 0u);
}

} // namespace
