// Remaining coverage: Scan operator variants, Arguments misuse, logging
// levels, Scalar conversions, and skeleton interactions with the virtual
// clock.
#include <cmath>

#include "common/logging.h"
#include "common/prng.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::Arguments;
using skelcl::Vector;
using skelcl_test::SkelclFixture;

class MiscTest : public SkelclFixture {
protected:
  MiscTest() : SkelclFixture(2) {}
};

TEST_F(MiscTest, ScanWithMaxOperatorAndNegativeInfinityIdentity) {
  skelcl::Scan<float> scanMax(
      "float m(float a, float b) { return fmax(a, b); }", "-INFINITY");
  Vector<float> input(std::vector<float>{3.0f, -1.0f, 7.0f, 2.0f, 9.0f});
  Vector<float> out = scanMax(input);
  EXPECT_TRUE(std::isinf(out[0]) && out[0] < 0);
  EXPECT_FLOAT_EQ(out[1], 3.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_FLOAT_EQ(out[3], 7.0f);
  EXPECT_FLOAT_EQ(out[4], 7.0f);
}

TEST_F(MiscTest, ScanRightProjectionShiftsByOne) {
  // Non-commutative associative operator: scan with right projection
  // yields the input shifted right by one (out[i] = x[i-1]). This case
  // caught a real operand-order bug in the Blelloch down-sweep.
  skelcl::Scan<int> shift("int pick(int a, int b) { return b; }", "-1");
  Vector<int> input(std::vector<int>{10, 20, 30, 40});
  Vector<int> out = shift(input);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[1], 10);
  EXPECT_EQ(out[2], 20);
  EXPECT_EQ(out[3], 30);
}

TEST_F(MiscTest, ScanNonCommutativeMonoidAcrossBlockBoundaries) {
  // A genuine non-commutative *monoid* (the paper requires an identity
  // element): affine maps x -> a*x + b over Z/2^16, packed as
  // (a << 16) | b, composed left-to-right. Identity is (1, 0).
  // (Right-projection, used in the single-block test above, has no
  // right identity and is out of contract for the multi-block path.)
  const char* compose =
      "int comp(int f, int g) {"
      "  int fa = (f >> 16) & 0xffff; int fb = f & 0xffff;"
      "  int ga = (g >> 16) & 0xffff; int gb = g & 0xffff;"
      "  int a = (fa * ga) & 0xffff;"
      "  int b = (fa * gb + fb) & 0xffff;"
      "  return (a << 16) | b;"
      "}";
  skelcl::Scan<int> scan(compose, "0x10000");
  const std::size_t n = 1000; // several 256-element blocks
  common::Xoshiro256 rng(12);
  std::vector<int> data(n);
  for (auto& v : data) {
    v = int(((rng.nextBelow(7) + 1) << 16) | rng.nextBelow(1 << 16));
  }
  Vector<int> input(data);
  Vector<int> out = scan(input);

  const auto comp = [](int f, int g) {
    const int fa = (f >> 16) & 0xffff, fb = f & 0xffff;
    const int ga = (g >> 16) & 0xffff, gb = g & 0xffff;
    return (((fa * ga) & 0xffff) << 16) | ((fa * gb + fb) & 0xffff);
  };
  int acc = 0x10000;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << i;
    acc = comp(acc, data[i]);
  }
}

TEST_F(MiscTest, ArgumentsMismatchFailsKernelBuildOrBinding) {
  // The user function takes one extra argument but two are pushed: the
  // generated kernel then calls f with the wrong arity -> build error.
  skelcl::Map<float> f(
      "float f(float x, float a) { return x * a; }");
  Vector<float> input(std::vector<float>{1.0f});
  Arguments tooMany;
  tooMany.push(1.0f);
  tooMany.push(2.0f);
  // Lazy invocation: the build happens when the result is read.
  EXPECT_THROW(f(input, tooMany)[0], ocl::BuildError);
  Arguments tooFew;
  EXPECT_THROW(f(input, tooFew)[0], ocl::BuildError);
}

TEST_F(MiscTest, MultipleVectorArgumentsInOnePush) {
  skelcl::Map<int> combine(
      "int c(int i, __global const int* a, __global const int* b) {"
      " return a[i] + b[i]; }");
  Vector<int> idx(std::vector<int>{0, 1, 2});
  Vector<int> a(std::vector<int>{1, 2, 3});
  Vector<int> b(std::vector<int>{10, 20, 30});
  Arguments args;
  args.push(a);
  args.push(b);
  Vector<int> out = combine(idx, args);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[1], 22);
  EXPECT_EQ(out[2], 33);
}

TEST_F(MiscTest, ScalarImplicitConversion) {
  skelcl::Reduce<int> sum("int s(int a, int b) { return a + b; }");
  Vector<int> v(std::vector<int>{1, 2, 3});
  const int total = sum(v); // operator T()
  EXPECT_EQ(total, 6);
}

TEST_F(MiscTest, VirtualClockAdvancesMonotonically) {
  const auto t0 = ocl::hostTimeNs();
  skelcl::Map<float> f("float f(float x) { return x + 1.0f; }");
  Vector<float> v(std::vector<float>(1 << 14, 0.0f));
  Vector<float> out = f(v);
  out.state().ensureOnHost();
  const auto t1 = ocl::hostTimeNs();
  EXPECT_GT(t1, t0);
  (void)out.hostData();
  EXPECT_EQ(ocl::hostTimeNs(), t1) << "reading synced data costs nothing";
}

TEST_F(MiscTest, LogLevelRoundTrip) {
  const auto previous = common::logLevel();
  common::setLogLevel(common::LogLevel::Debug);
  EXPECT_EQ(common::logLevel(), common::LogLevel::Debug);
  LOG_DEBUG("misc_test debug line " << 42);
  common::setLogLevel(common::LogLevel::Off);
  LOG_ERROR("this must not print");
  common::setLogLevel(previous);
}

TEST_F(MiscTest, DeviceCountReflectsInit) {
  EXPECT_EQ(skelcl::deviceCount(), 2u);
  skelcl::terminate();
  EXPECT_THROW(skelcl::deviceCount(), common::Error);
  skelcl::init(skelcl::DeviceSelection::nGPUs(1));
  EXPECT_EQ(skelcl::deviceCount(), 1u);
  skelcl::init(skelcl::DeviceSelection::nGPUs(2)); // re-init for TearDown
}

TEST_F(MiscTest, InitMoreGpusThanAvailableThrows) {
  EXPECT_THROW(skelcl::init(skelcl::DeviceSelection::nGPUs(64)),
               common::InvalidArgument);
  skelcl::init(skelcl::DeviceSelection::nGPUs(2));
}

TEST_F(MiscTest, TypeNamesForBuiltins) {
  EXPECT_EQ(skelcl::typeName<float>(), "float");
  EXPECT_EQ(skelcl::typeName<double>(), "double");
  EXPECT_EQ(skelcl::typeName<int>(), "int");
  EXPECT_EQ(skelcl::typeName<unsigned>(), "uint");
  EXPECT_EQ(skelcl::typeName<long long>(), "long");
  EXPECT_EQ(skelcl::typeName<std::size_t>(), "ulong");
  EXPECT_EQ(skelcl::typeName<std::uint8_t>(), "uchar");
}

TEST_F(MiscTest, ZipChainImplementsVariadicMap) {
  // Paper Sec. III-B: "By chaining Zip skeletons, variadic forms of Map
  // can be implemented."
  skelcl::Zip<float> add("float a(float x, float y) { return x + y; }");
  skelcl::Zip<float> mul("float m(float x, float y) { return x * y; }");
  Vector<float> a(std::vector<float>{1, 2, 3});
  Vector<float> b(std::vector<float>{4, 5, 6});
  Vector<float> c(std::vector<float>{2, 2, 2});
  // (a + b) * c, fully on-device.
  Vector<float> out = mul(add(a, b), c);
  EXPECT_FLOAT_EQ(out[0], 10.0f);
  EXPECT_FLOAT_EQ(out[1], 14.0f);
  EXPECT_FLOAT_EQ(out[2], 18.0f);
}

} // namespace
