// Multi-node cluster simulation (DESIGN.md §6j): the node() spec
// grammar and interconnect tiers, the two-level (node, then device)
// block partition, cross-node copy timing over the simulated
// interconnect, per-node fault isolation, and the per-node energy
// accounting the trace analyzer derives from the power envelopes.
#include <cstdlib>
#include <numeric>

#include "skelcl/detail/partition.h"
#include "skelcl_test_util.h"
#include "trace/analysis.h"
#include "trace/recorder.h"
#include "trace/serialize.h"

namespace {

using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Vector;
using skelcl::detail::Runtime;
using skelcl::detail::nodeBlockPartition;
using skelcl::detail::weightedPartition;

// ---------------------------------------------------------------------
// SystemConfig::parse: the node(...) cluster grammar.
// ---------------------------------------------------------------------

TEST(ClusterSpecParse, NodeEntryBuildsMultiNodeMachine) {
  const ocl::SystemConfig config =
      ocl::SystemConfig::parse("node(t10*4)*2@ib");
  ASSERT_EQ(config.devices.size(), 8u);
  ASSERT_EQ(config.nodeOf.size(), 8u);
  EXPECT_EQ(config.nodeCount(), 2u);
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(config.nodeOf[d], d < 4 ? 0u : 1u) << d;
    EXPECT_EQ(config.devices[d].name, ocl::DeviceSpec::teslaT10().name);
  }
  EXPECT_EQ(config.interconnect.name, "ib");
  EXPECT_DOUBLE_EQ(config.interconnect.latencyUs, 2.0);
  EXPECT_DOUBLE_EQ(config.interconnect.bandwidthGBs, 4.0);
}

TEST(ClusterSpecParse, EthernetTierIsSlowerThanInfiniband) {
  const ocl::SystemConfig eth =
      ocl::SystemConfig::parse("node(t10)*2@eth");
  EXPECT_EQ(eth.interconnect.name, "eth");
  EXPECT_DOUBLE_EQ(eth.interconnect.latencyUs, 50.0);
  EXPECT_DOUBLE_EQ(eth.interconnect.bandwidthGBs, 1.25);

  const ocl::SystemConfig ib = ocl::SystemConfig::parse("node(t10)*2");
  // Default tier is InfiniBand.
  EXPECT_EQ(ib.interconnect.name, "ib");
  EXPECT_LT(ib.interconnect.latencyUs, eth.interconnect.latencyUs);
  EXPECT_GT(ib.interconnect.bandwidthGBs, eth.interconnect.bandwidthGBs);
}

TEST(ClusterSpecParse, SingleNodeSpecMatchesBareGrammar) {
  // node(...) around a device list describes the same machine the bare
  // grammar does — same devices, same order, every device on node 0.
  const ocl::SystemConfig bare =
      ocl::SystemConfig::parse("t10*2,t10@0.5x,cpu");
  const ocl::SystemConfig wrapped =
      ocl::SystemConfig::parse("node(t10*2,t10@0.5x,cpu)");
  ASSERT_EQ(wrapped.devices.size(), bare.devices.size());
  for (std::size_t d = 0; d < bare.devices.size(); ++d) {
    EXPECT_EQ(wrapped.devices[d].name, bare.devices[d].name) << d;
    EXPECT_DOUBLE_EQ(wrapped.devices[d].clockGHz, bare.devices[d].clockGHz)
        << d;
    EXPECT_EQ(wrapped.nodeOf[d], 0u) << d;
  }
  EXPECT_EQ(wrapped.nodeCount(), 1u);
  EXPECT_EQ(bare.nodeCount(), 1u);
}

TEST(ClusterSpecParse, NodeScaleAppliesToEveryMemberAndComposes) {
  const ocl::SystemConfig config =
      ocl::SystemConfig::parse("node(t10*2)*2@0.5x@ib");
  ASSERT_EQ(config.devices.size(), 4u);
  const ocl::DeviceSpec base = ocl::DeviceSpec::teslaT10();
  for (const ocl::DeviceSpec& d : config.devices) {
    EXPECT_DOUBLE_EQ(d.clockGHz, base.clockGHz * 0.5);
  }
  // Inner and node scales compose through DeviceSpec::scaled — an inner
  // @0.5x times a node @2x is exactly the base device again, with no
  // stacked " @Nx @Nx" name suffixes.
  const ocl::SystemConfig composed =
      ocl::SystemConfig::parse("node(t10@0.5x)@2x");
  ASSERT_EQ(composed.devices.size(), 1u);
  EXPECT_EQ(composed.devices[0].name, base.name);
  EXPECT_DOUBLE_EQ(composed.devices[0].clockGHz, base.clockGHz);
}

TEST(ClusterSpecParse, ZeroDeviceNodeIsTypedAndNamesTheToken) {
  try {
    ocl::SystemConfig::parse("node(t10)*2,node()");
    FAIL() << "expected InvalidArgument";
  } catch (const common::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("zero devices"), std::string::npos) << what;
    EXPECT_NE(what.find("node()"), std::string::npos) << what;
  }
}

TEST(ClusterSpecParse, RejectsMalformedClusterSpecs) {
  for (const char* spec : {
           "node(t10),cpu",            // node and bare entries mixed
           "node(node(t10))",          // nodes do not nest
           "node(t10)@ib,node(t10)@eth", // one network joins all nodes
           "node(t10)@myrinet",        // unknown tier
           "node(t10",                 // unmatched '('
           "node(t10))",               // unmatched ')'
           "node(t10)*0",              // zero copies
           "node(t10)@ib@eth",         // duplicate tier
           "node(t10)junk",            // trailing junk
           "nodule(t10)",              // not the node keyword
       }) {
    EXPECT_THROW(ocl::SystemConfig::parse(spec), common::InvalidArgument)
        << "spec '" << spec << "' should be rejected";
  }
}

// ---------------------------------------------------------------------
// nodeBlockPartition: the two-level largest-remainder split.
// ---------------------------------------------------------------------

TEST(NodePartition, SingleNodeIsExactlyTheFlatSplit) {
  const std::vector<double> w = {2.0, 1.0, 1.0};
  const std::vector<std::uint32_t> oneNode = {0, 0, 0};
  for (std::size_t n : {0ul, 1ul, 7ul, 100ul, 1003ul}) {
    EXPECT_EQ(nodeBlockPartition(n, w, oneNode), weightedPartition(n, w))
        << "n=" << n;
    EXPECT_EQ(nodeBlockPartition(n, w, {}), weightedPartition(n, w))
        << "n=" << n;
  }
}

TEST(NodePartition, TwoLevelSplitPinsNodeSharesFirst) {
  // 10 elements over 2 nodes x 2 equal devices: node shares {5, 5},
  // then {3, 2} within each node.
  EXPECT_EQ(nodeBlockPartition(10, std::vector<double>(4, 1.0),
                               {0, 0, 1, 1}),
            (std::vector<std::size_t>{3, 2, 3, 2}));
  // Skewed devices: node weights are the summed member weights (3:1),
  // so the first node takes 12 of 16, split 8/4 inside.
  EXPECT_EQ(nodeBlockPartition(16, {2.0, 1.0, 0.5, 0.5}, {0, 0, 1, 1}),
            (std::vector<std::size_t>{8, 4, 2, 2}));
}

TEST(NodePartition, SumInvariantAndContiguityEnforced) {
  const std::vector<double> w(6, 1.0);
  const std::vector<std::uint32_t> nodes = {0, 0, 1, 1, 2, 2};
  for (std::size_t n = 0; n < 200; ++n) {
    const auto counts = nodeBlockPartition(n, w, nodes);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
              n)
        << "n=" << n;
  }
  // Interleaved node membership would break chunk contiguity; rejected.
  EXPECT_THROW(nodeBlockPartition(10, std::vector<double>(4, 1.0),
                                  {0, 1, 0, 1}),
               common::Error);
}

// ---------------------------------------------------------------------
// Cross-node copy timing: the interconnect joins the legs.
// ---------------------------------------------------------------------

class ClusterTiming : public ::testing::Test {
protected:
  /// Duration of a cross-device copy of `bytes` on the given platform.
  static std::uint64_t copyDurationNs(const std::string& spec,
                                      std::size_t bytes) {
    ocl::configureSystem(ocl::SystemConfig::parse(spec));
    auto devices = ocl::getPlatforms()[0].devices(ocl::DeviceType::All);
    ocl::Context ctx({devices[0], devices[1]});
    ocl::CommandQueue q0(devices[0]);
    ocl::CommandQueue q1(devices[1]);
    std::vector<char> data(bytes, 7);
    ocl::Buffer src = ctx.createBuffer(devices[0], bytes);
    ocl::Buffer dst = ctx.createBuffer(devices[1], bytes);
    ocl::Event up = q0.enqueueWriteBuffer(src, 0, bytes, data.data());
    ocl::Event copy = q1.enqueueCopyBuffer(src, 0, dst, 0, bytes, {up});
    return copy.durationNs();
  }
};

TEST_F(ClusterTiming, CrossNodeCopyPaysTheInterconnectWireAndLatency) {
  const std::size_t bytes = 4u << 20;
  const ocl::DeviceSpec t10 = ocl::DeviceSpec::teslaT10();
  const double pcieWireNs = double(bytes) / (t10.pcieBandwidthGBs * 1e9) * 1e9;
  const double pcieLatNs = t10.pcieLatencyUs * 1e3;

  // InfiniBand: 4 GB/s < PCIe 5.2 GB/s, so the wire time is the ib leg;
  // latency is one PCIe hop plus the interconnect's 2 us.
  const double ibWireNs = double(bytes) / (4.0 * 1e9) * 1e9;
  EXPECT_EQ(copyDurationNs("node(t10)*2@ib", bytes),
            std::uint64_t(std::max(pcieWireNs, ibWireNs) + pcieLatNs +
                          2.0 * 1e3));

  // 10GbE: slower wire, much higher latency.
  const double ethWireNs = double(bytes) / (1.25 * 1e9) * 1e9;
  EXPECT_EQ(copyDurationNs("node(t10)*2@eth", bytes),
            std::uint64_t(std::max(pcieWireNs, ethWireNs) + pcieLatNs +
                          50.0 * 1e3));

  EXPECT_GT(copyDurationNs("node(t10)*2@eth", bytes),
            copyDurationNs("node(t10)*2@ib", bytes));
  // Same-node peer copies never touch the interconnect.
  EXPECT_LT(copyDurationNs("t10*2", bytes),
            copyDurationNs("node(t10)*2@ib", bytes));
}

// ---------------------------------------------------------------------
// Runtime integration: distribution, bit-identity, fault isolation.
// ---------------------------------------------------------------------

class ClusterTest : public ::testing::Test {
protected:
  void initPlatform(const std::string& spec) {
    skelcl_test::useTempCacheDir();
    ocl::configureSystem(ocl::SystemConfig::parse(spec));
    skelcl::init(skelcl::DeviceSelection::allDevices());
  }

  void TearDown() override {
    ocl::FaultInjector::instance().reset();
    if (Runtime::instance().initialized()) {
      skelcl::terminate();
    }
  }

  static std::vector<std::size_t> chunkCounts(const Vector<float>& v) {
    std::vector<std::size_t> counts;
    for (const auto& chunk : v.state().chunks()) {
      counts.push_back(chunk.count);
    }
    return counts;
  }
};

TEST_F(ClusterTest, BlockDistributionUsesTwoLevelNodeSplit) {
  initPlatform("node(t10*2)*2@ib");
  EXPECT_EQ(Runtime::instance().deviceNodes(),
            (std::vector<std::uint32_t>{0, 0, 1, 1}));
  EXPECT_EQ(Runtime::instance().blockPartition(10),
            (std::vector<std::size_t>{3, 2, 3, 2}));

  Vector<float> v(10, 1.0f);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  EXPECT_EQ(chunkCounts(v), (std::vector<std::size_t>{3, 2, 3, 2}));
}

TEST_F(ClusterTest, SingleNodeSpecBitIdenticalToBareGrammar) {
  auto run = [this](const std::string& spec) {
    initPlatform(spec);
    std::vector<float> data(1003);
    std::iota(data.begin(), data.end(), 0.0f);
    Vector<float> v(data);
    v.setDistribution(Distribution::Block);
    v.state().ensureOnDevices();
    const auto layout = chunkCounts(v);
    Map<float> triple("float ctriple(float x) { return 3.0f * x; }");
    Reduce<float> sum("float cadd(float x, float y) { return x + y; }");
    Vector<float> out = triple(v);
    const float total = sum(out).getValue();
    std::vector<float> host = out.hostData();
    skelcl::terminate();
    return std::make_tuple(layout, host, total);
  };
  const auto bare = run("t10*2");
  const auto wrapped = run("node(t10*2)");
  EXPECT_EQ(std::get<0>(bare), std::get<0>(wrapped));
  EXPECT_EQ(std::get<1>(bare), std::get<1>(wrapped));
  EXPECT_EQ(std::get<2>(bare), std::get<2>(wrapped));
}

TEST_F(ClusterTest, MapOutputsBitIdenticalAcrossNodeCounts) {
  auto run = [this](const std::string& spec) {
    initPlatform(spec);
    std::vector<float> data(4097);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = float((i * 13) % 97) * 0.0625f;
    }
    Vector<float> v(data);
    v.setDistribution(Distribution::Block);
    Map<float> heavy(
        "float cheavy(float x) {\n"
        "  float acc = x;\n"
        "  for (int i = 0; i < 16; ++i) { acc = acc * 1.0001f + 0.5f; }\n"
        "  return acc;\n"
        "}");
    Vector<float> out = heavy(v);
    std::vector<float> host = out.hostData();
    skelcl::terminate();
    return host;
  };
  const auto one = run("node(t10*4)@ib");
  const auto two = run("node(t10*2)*2@ib");
  const auto four = run("node(t10)*4@eth");
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST_F(ClusterTest, StencilWithFewerRowsThanDevicesFallsBackCleanly) {
  auto run = [this](const std::string& spec) {
    initPlatform(spec);
    std::vector<float> grid(2 * 8); // 2 rows on up to 8 devices
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = float(i) * 0.25f;
    }
    skelcl::Stencil<float> blur(
        "float cblur(__global const float* w, uint st) {\n"
        "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]\n"
        "                  + w[2 * (int)st + 1]);\n"
        "}",
        skelcl::StencilShape{1, skelcl::Boundary::Clamp, 8});
    Vector<float> v(grid);
    Vector<float> out = blur(v);
    std::vector<float> host = out.hostData();
    skelcl::terminate();
    return host;
  };
  const auto single = run("t10");
  const auto cluster = run("node(t10*2)*4@ib");
  EXPECT_EQ(single, cluster);
}

TEST_F(ClusterTest, FaultOnOneNodeLeavesOtherNodesIntact) {
  initPlatform("node(t10)*2@ib");
  Map<int> twice("int ctwice(int x) { return 2 * x; }");
  std::vector<int> data(512);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);

  ocl::FaultInjector::instance().configure("kernel@1=lost");
  try {
    Vector<int> out = twice(input);
    (void)out[0];
    FAIL() << "expected DeviceLost";
  } catch (const ocl::DeviceLost& e) {
    EXPECT_EQ(e.deviceIndex(), 0u); // node 0's only device
  }
  ocl::FaultInjector::instance().reset();

  auto& runtime = Runtime::instance();
  EXPECT_EQ(runtime.devices()[0].node(), 0u);
  EXPECT_EQ(runtime.devices()[1].node(), 1u);

  // Node 0's device stays lost until the system is reconfigured...
  EXPECT_THROW(runtime.context().createBuffer(runtime.devices()[0], 64),
               ocl::DeviceLost);

  // ...but node 1's device still moves data and computes. A full
  // write/read roundtrip over its queue works untouched.
  std::vector<int> payload(128);
  std::iota(payload.begin(), payload.end(), 100);
  ocl::Buffer buf = runtime.context().createBuffer(
      runtime.devices()[1], payload.size() * sizeof(int));
  runtime.queue(1).enqueueWriteBuffer(
      buf, 0, payload.size() * sizeof(int), payload.data());
  std::vector<int> back(payload.size(), 0);
  runtime.queue(1).enqueueReadBuffer(buf, 0, back.size() * sizeof(int),
                                     back.data());
  runtime.queue(1).finish();
  EXPECT_EQ(back, payload);

  // Host data of the failed workload survived for a retry elsewhere.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(input[i], int(i)) << i;
  }
}

// ---------------------------------------------------------------------
// Trace: cross-node traffic counters and the per-node energy ledger.
// ---------------------------------------------------------------------

TEST_F(ClusterTest, TraceCarriesNodeTrafficAndReconcilingEnergy) {
  initPlatform("node(t10)*2@ib");
  trace::Recorder::instance().start();

  // A stencil across the two single-device nodes ships halo rows over
  // the interconnect every iteration; the map adds pure compute.
  const std::size_t width = 64, rows = 512;
  std::vector<float> grid(rows * width);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = float((i * 31) % 101) * 0.125f;
  }
  skelcl::Stencil<float> heat(
      "float cheat(__global const float* w, uint st) {\n"
      "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]\n"
      "                  + w[2 * (int)st + 1]);\n"
      "}",
      skelcl::StencilShape{1, skelcl::Boundary::Clamp,
                           std::uint32_t(width)});
  Vector<float> v(grid);
  for (int it = 0; it < 3; ++it) {
    v = heat(v);
  }
  (void)v.hostData();
  for (std::size_t d = 0; d < Runtime::instance().deviceCount(); ++d) {
    Runtime::instance().queue(d).finish();
  }

  const trace::Trace t = trace::Recorder::instance().stop();

  // The binary format round-trips the v3 node/power fields.
  const trace::Trace rt = trace::deserialize(trace::serialize(t));
  ASSERT_EQ(rt.devices.size(), 2u);
  EXPECT_EQ(rt.devices[1].node, 1u);
  EXPECT_DOUBLE_EQ(rt.devices[0].idlePowerW, 60.0);
  EXPECT_DOUBLE_EQ(rt.devices[0].busyPowerW, 200.0);
  EXPECT_DOUBLE_EQ(rt.devices[0].transferNjPerByte, 0.5);

  const trace::Report report = trace::analyze(t);

  // Cross-node traffic flowed, and the counter agrees with the
  // copy_node_in commands it summarizes.
  EXPECT_GT(report.internodeBytes, 0u);
  std::uint64_t nodeInBytes = 0;
  for (const trace::CommandRecord& c : t.commands) {
    if (t.str(c.name) == "copy_node_in") {
      nodeInBytes += c.bytes;
    }
  }
  EXPECT_EQ(report.internodeBytes, nodeInBytes);

  // Per-device energy follows the documented formula to within 1%.
  ASSERT_EQ(report.devices.size(), 2u);
  for (const trace::DeviceReport& dev : report.devices) {
    const double expectedNj = 60.0 * double(report.spanNs) +
                              (200.0 - 60.0) *
                                  double(dev.engines[0].busyNs) +
                              0.5 * double(dev.dmaBytes);
    ASSERT_GT(dev.energyJ, 0.0);
    EXPECT_NEAR(dev.energyJ, expectedNj * 1e-9, 0.01 * expectedNj * 1e-9)
        << "device " << dev.device;
    EXPECT_GT(dev.perfPerWatt, 0.0) << "device " << dev.device;
  }

  // Node rollups: one row per node, energies summing to the total.
  ASSERT_EQ(report.nodes.size(), 2u);
  double nodeSum = 0.0;
  std::uint32_t devicesSeen = 0;
  for (const trace::NodeReport& n : report.nodes) {
    EXPECT_EQ(n.devices, 1u);
    EXPECT_GT(n.energyJ, 0.0);
    nodeSum += n.energyJ;
    devicesSeen += n.devices;
  }
  EXPECT_EQ(devicesSeen, 2u);
  EXPECT_NEAR(nodeSum, report.totalEnergyJ, 0.01 * report.totalEnergyJ);
  EXPECT_GT(report.perfPerWatt, 0.0);

  // The human-readable report surfaces the new columns.
  const std::string text = trace::formatReport(report);
  EXPECT_NE(text.find("per-node energy"), std::string::npos) << text;
  EXPECT_NE(text.find("cross-node traffic"), std::string::npos) << text;
}

} // namespace
