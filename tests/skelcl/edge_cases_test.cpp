// Edge cases and failure injection across the SkelCL stack: vectors
// smaller than the device count, zero-length chunks, user-kernel faults
// surfacing through skeleton calls, and error recovery.
#include "skelcl_test_util.h"

namespace {

using skelcl::Distribution;
using skelcl::Vector;
using skelcl_test::SkelclFixture;

class EdgeCases : public SkelclFixture {
protected:
  EdgeCases() : SkelclFixture(4) {}
};

TEST_F(EdgeCases, BlockDistributionSmallerThanDeviceCount) {
  // 2 elements over 4 devices: two devices get empty chunks.
  Vector<int> v(std::vector<int>{10, 20});
  v.setDistribution(Distribution::Block);
  skelcl::Map<int> inc("int f(int x) { return x + 1; }");
  Vector<int> out = inc(v);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[1], 21);
}

TEST_F(EdgeCases, ReduceSmallerThanDeviceCount) {
  Vector<int> v(std::vector<int>{5, 7, 11});
  v.setDistribution(Distribution::Block);
  skelcl::Reduce<int> sum("int s(int a, int b) { return a + b; }");
  EXPECT_EQ(sum(v).getValue(), 23);
}

TEST_F(EdgeCases, ZipSmallerThanDeviceCount) {
  Vector<int> a(std::vector<int>{1, 2});
  Vector<int> b(std::vector<int>{10, 20});
  a.setDistribution(Distribution::Block);
  skelcl::Zip<int> add("int z(int x, int y) { return x + y; }");
  Vector<int> out = add(a, b);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[1], 22);
}

TEST_F(EdgeCases, SingleElementVectorAcrossFourDevices) {
  Vector<float> v(std::vector<float>{2.5f});
  v.setDistribution(Distribution::Block);
  skelcl::Map<float> dbl("float d(float x) { return 2.0f * x; }");
  EXPECT_FLOAT_EQ(dbl(v)[0], 5.0f);
}

TEST_F(EdgeCases, CombineRedistributionWithEmptyChunks) {
  Vector<int> v(3, 1);
  v.setDistribution(Distribution::Copy);
  v.state().ensureOnDevices();
  v.dataOnDevicesModified();
  v.setDistribution(Distribution::Block,
                    "int add(int a, int b) { return a + b; }");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(v[i], 4); // 4 copies of 1 summed
  }
}

TEST_F(EdgeCases, KernelTrapSurfacesThroughSkeletonCall) {
  // The user function indexes out of bounds; the VM trap must propagate
  // as an exception from the skeleton call, not corrupt memory.
  skelcl::Map<int> broken(
      "int f(int x, __global const int* table) { return table[x]; }");
  Vector<int> input(std::vector<int>{1000000});
  Vector<int> table(std::vector<int>{1, 2, 3});
  skelcl::Arguments args;
  args.push(table);
  EXPECT_THROW(broken(input, args), clc::TrapError);
}

TEST_F(EdgeCases, DivisionByZeroInUserFunctionTraps) {
  skelcl::Map<int> div("int f(int x) { return 100 / x; }");
  Vector<int> zeros(std::vector<int>{5, 0, 2});
  // Lazy invocation: the trap fires when the result is read.
  EXPECT_THROW(div(zeros)[0], clc::TrapError);
}

TEST_F(EdgeCases, SkeletonUsableAfterFailedCall) {
  skelcl::Map<int> div("int f(int x) { return 100 / x; }");
  Vector<int> bad(std::vector<int>{0});
  EXPECT_THROW(div(bad)[0], clc::TrapError);
  // The same skeleton instance keeps working with good input.
  Vector<int> good(std::vector<int>{4});
  EXPECT_EQ(div(good)[0], 25);
}

TEST_F(EdgeCases, BuildErrorIdentifiesTheUserFunction) {
  skelcl::Map<float> typo("float f(float x) { return sqrrt(x); }");
  Vector<float> input(std::vector<float>{1.0f});
  try {
    (void)typo(input)[0];
    FAIL() << "expected BuildError";
  } catch (const ocl::BuildError& e) {
    EXPECT_NE(e.log().find("sqrrt"), std::string::npos) << e.log();
  }
}

TEST_F(EdgeCases, MalformedUserSourceFails) {
  // No function definition at all: rejected at construction.
  EXPECT_THROW(skelcl::Map<float> noFn("int x = 3;"),
               common::InvalidArgument);
  // Unterminated body: the name is extractable, so the error surfaces
  // at first use as a build failure (like a real OpenCL driver).
  skelcl::Map<float> bad("float f(float x) {");
  Vector<float> input(std::vector<float>{1.0f});
  EXPECT_THROW(bad(input)[0], ocl::BuildError);
}

TEST_F(EdgeCases, LargeStructElements) {
  struct Big {
    float values[16];
  };
  skelcl::registerType<Big>(
      "Big", "typedef struct { float values[16]; } Big;");
  skelcl::Map<Big, float> sumFields(
      "float s(Big b) {"
      "  float acc = 0.0f;"
      "  for (int i = 0; i < 16; ++i) acc += b.values[i];"
      "  return acc;"
      "}");
  std::vector<Big> data(10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int k = 0; k < 16; ++k) {
      data[i].values[k] = float(i);
    }
  }
  Vector<Big> input(data);
  input.setDistribution(Distribution::Block);
  Vector<float> out = sumFields(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 16.0f * float(i)) << i;
  }
}

TEST_F(EdgeCases, ManySmallSkeletonCallsReuseCompiledProgram) {
  skelcl::Map<int> inc("int f(int x) { return x + 1; }");
  auto& cache = skelcl::detail::Runtime::instance().kernelCache();
  cache.resetStats();
  Vector<int> v(std::vector<int>{1});
  for (int i = 0; i < 50; ++i) {
    v = inc(v);
  }
  EXPECT_EQ(v[0], 51);
  // Fusion chops the 50-deep chain into max-depth fused programs plus
  // one shorter remainder, so at most two distinct programs get built;
  // the program memo serves every repeat without touching the cache.
  EXPECT_LE(cache.stats().hits + cache.stats().misses, 2u);
}

TEST_F(EdgeCases, ScanOfEmptyVectorIsEmpty) {
  skelcl::Scan<int> scan("int s(int a, int b) { return a + b; }", "0");
  Vector<int> empty;
  Vector<int> out = scan(empty);
  EXPECT_EQ(out.size(), 0u);
}

} // namespace
