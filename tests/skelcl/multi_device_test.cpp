// Multi-GPU behaviour: skeletons over block/copy-distributed vectors,
// implicit synchronization, redistribution, and virtual-time scaling.
#include <numeric>

#include "common/prng.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Scan;
using skelcl::Vector;
using skelcl::Zip;

class MultiDeviceTest : public skelcl_test::SkelclFixture,
                        public ::testing::WithParamInterface<std::uint32_t> {
public:
  MultiDeviceTest() : SkelclFixture(GetParam()) {}
};

TEST_P(MultiDeviceTest, MapOverBlockDistribution) {
  Map<int> inc("int inc(int x) { return x + 1; }");
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  Vector<int> output = inc(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(output[i], int(i) + 1) << i;
  }
}

TEST_P(MultiDeviceTest, ZipOverBlockDistribution) {
  Zip<float> add("float add(float a, float b) { return a + b; }");
  const std::size_t n = 777; // odd size: uneven blocks
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(i);
    b[i] = 1000.0f - float(i);
  }
  Vector<float> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  Vector<float> out = add(va, vb);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 1000.0f) << i;
  }
}

TEST_P(MultiDeviceTest, ReduceOverBlockDistribution) {
  Reduce<int> sum("int sum(int a, int b) { return a + b; }");
  // 60000 keeps the exact sum within int range (1800030000 < 2^31).
  std::vector<int> data(60000);
  std::iota(data.begin(), data.end(), 1);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  EXPECT_EQ(sum(input).getValue(), (60000 / 2) * 60001);
}

TEST_P(MultiDeviceTest, ReduceNonCommutativeAcrossDevices) {
  Reduce<int> last("int pick(int a, int b) { return b; }");
  std::vector<int> data(4099);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  EXPECT_EQ(last(input).getValue(), 4098);
}

TEST_P(MultiDeviceTest, ScanGathersDistributedInput) {
  Scan<int> scan("int add(int a, int b) { return a + b; }", "0");
  std::vector<int> data(3000, 1);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);
  Vector<int> output = scan(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(output[i], int(i)) << i;
  }
}

TEST_P(MultiDeviceTest, MapOverCopyRunsEverywhere) {
  Map<int> inc("int inc(int x) { return x + 1; }");
  Vector<int> input(std::vector<int>(100, 7));
  input.setDistribution(Distribution::Copy);
  Vector<int> output = inc(input);
  EXPECT_EQ(output.distribution(), Distribution::Copy);
  EXPECT_EQ(output[0], 8);
  EXPECT_EQ(output[99], 8);
}

TEST_P(MultiDeviceTest, VoidMapWithBlockInputAndCopyArguments) {
  // The OSEM access pattern: indices block-distributed, images copied,
  // per-device sizes via pushSizeOf.
  Map<int, void> accumulate(
      "void acc(int idx, __global const int* data, uint n,"
      "         __global int* out) {"
      "  int total = 0;"
      "  for (uint k = 0; k < n; ++k) total += data[k];"
      "  out[idx] = total + idx;"
      "}");
  Vector<int> indices = skelcl::indexVector(64);
  indices.setDistribution(Distribution::Block);
  Vector<int> data(std::vector<int>{1, 2, 3, 4}); // sums to 10
  data.setDistribution(Distribution::Copy);
  Vector<int> out(64, 0);
  out.setDistribution(Distribution::Copy);

  Arguments args;
  args.push(data);
  args.pushSizeOf(data);
  args.push(out);
  accumulate(indices, args);
  out.dataOnDevicesModified();

  // Each device wrote the slots of ITS indices into ITS copy of `out`;
  // folding the copies with max() merges them (0 stays elsewhere).
  out.setDistribution(Distribution::Block,
                      "int mx(int a, int b) { return max(a, b); }");
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(out[i], 10 + int(i)) << i;
  }
}

TEST_P(MultiDeviceTest, CombineRedistributionSumsCopies) {
  const auto devices = skelcl::deviceCount();
  Map<int, void> bump(
      "void b(int idx, __global int* data) { data[idx] += idx; }");
  Vector<int> indices = skelcl::indexVector(32);
  indices.setDistribution(Distribution::Block);
  Vector<int> data(32, 0);
  data.setDistribution(Distribution::Copy);
  Arguments args;
  args.push(data);
  bump(indices, args);
  data.dataOnDevicesModified();
  data.setDistribution(Distribution::Block,
                       "int add(int a, int b) { return a + b; }");
  // Every index was bumped on exactly one device; the other copies hold
  // 0 there, so the sum equals idx regardless of the device count.
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(data[i], int(i)) << "devices=" << devices;
  }
}

TEST_P(MultiDeviceTest, DotProductDistributed) {
  Reduce<float> sum("float sum(float x, float y) { return x + y; }");
  Zip<float> mult("float mult(float x, float y) { return x * y; }");
  common::Xoshiro256 rng(5);
  const std::size_t n = 4096;
  std::vector<float> a(n), b(n);
  float expected = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(rng.nextBelow(16));
    b[i] = float(rng.nextBelow(16));
    expected += a[i] * b[i];
  }
  Vector<float> A(a), B(b);
  A.setDistribution(Distribution::Block);
  EXPECT_FLOAT_EQ(sum(mult(A, B)).getValue(), expected);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiDeviceTest,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "gpu";
                         });

TEST(MultiDeviceTiming, FourGpusBeatOneInVirtualTime) {
  skelcl_test::useTempCacheDir();
  const auto runWorkload = [](std::uint32_t gpus) {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
    skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
    Map<float> heavy(
        "float h(float x) {"
        "  float acc = x;"
        "  for (int k = 0; k < 64; ++k) acc = acc * 1.0001f + 0.5f;"
        "  return acc;"
        "}");
    Vector<float> input(std::vector<float>(1 << 15, 1.0f));
    input.setDistribution(Distribution::Block);
    input.state().ensureOnDevices();
    const auto start = ocl::hostTimeNs();
    Vector<float> out = heavy(input);
    out.state().ensureOnHost();
    const auto elapsed = ocl::hostTimeNs() - start;
    skelcl::terminate();
    return elapsed;
  };
  const auto one = runWorkload(1);
  const auto four = runWorkload(4);
  EXPECT_LT(four, one);
  EXPECT_GT(double(one) / double(four), 2.0)
      << "expected a clear multi-GPU speedup in virtual time";
}

} // namespace
