// Shared fixture for SkelCL tests: a fresh simulated Tesla S1070 and a
// per-process temporary kernel-cache directory.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "skelcl/skelcl.h"

namespace skelcl_test {

inline void useTempCacheDir() {
  static const std::string dir = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("skelcl-test-cache-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
    ::setenv("SKELCL_CACHE_DIR", path.c_str(), 1);
    return path.string();
  }();
  (void)dir;
}

/// Fixture parameterized on GPU count via the constructor.
class SkelclFixture : public ::testing::Test {
protected:
  explicit SkelclFixture(std::uint32_t gpus = 1) : gpus_(gpus) {}

  void SetUp() override {
    useTempCacheDir();
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus_));
    skelcl::init(skelcl::DeviceSelection::nGPUs(gpus_));
  }

  void TearDown() override { skelcl::terminate(); }

  std::uint32_t gpus_;
};

} // namespace skelcl_test
