// Kernel-cache behaviour (paper Sec. III-B).
#include <filesystem>

#include "common/byte_stream.h"
#include "common/stopwatch.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::KernelCache;

class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
    dir_ = (std::filesystem::temp_directory_path() /
            ("skelcl-cache-test-" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this))))
               .string();
    std::filesystem::create_directories(dir_);
    auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
    context_ = ocl::Context({gpus[0]});
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  ocl::Context context_;
  const std::string source_ =
      "__kernel void k(__global float* d) { d[get_global_id(0)] = 1.0f; }";
};

TEST_F(CacheTest, FirstBuildIsAMissAndStoresEntry) {
  KernelCache cache(dir_);
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(CacheTest, SecondUseIsAHit) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(CacheTest, SeparateCacheInstancesShareTheDirectory) {
  {
    KernelCache cache(dir_);
    cache.getOrBuild(context_, source_);
  }
  KernelCache second(dir_);
  second.getOrBuild(context_, source_);
  EXPECT_EQ(second.stats().hits, 1u);
  EXPECT_EQ(second.stats().misses, 0u);
}

TEST_F(CacheTest, DifferentSourcesGetDifferentEntries) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  cache.getOrBuild(context_, source_ + "\n// variant");
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(CacheTest, DifferentSaltsGetDifferentEntries) {
  // The key schema (v2) folds the caller salt — the fusion flag and
  // fused composition — into the entry name, so identical sources built
  // under different fusion configurations never share an entry.
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_, skelcl::kDefaultBuildOptions,
                   "fusion=1;Fused(f\xE2\x88\x98g);leaves=1");
  cache.getOrBuild(context_, source_, skelcl::kDefaultBuildOptions,
                   "fusion=0;Map:f;leaves=1");
  EXPECT_EQ(cache.stats().misses, 2u);
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") ++entries;
  }
  EXPECT_EQ(entries, 2u);
  // Each salted key still hits on reuse.
  cache.getOrBuild(context_, source_, skelcl::kDefaultBuildOptions,
                   "fusion=0;Map:f;leaves=1");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(CacheTest, CorruptedEntryFallsBackToRebuild) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") {
      std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
      common::writeFile(e.path().string(), garbage);
    }
  }
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().misses, 2u); // rebuilt
  // And the entry was repaired:
  cache.getOrBuild(context_, source_);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(CacheTest, TruncatedEntryIsDetectedAndRebuilt) {
  // The integrity envelope records the payload length: chopping bytes off
  // the end fails the length check before the deserializer ever runs.
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") {
      auto bytes = common::readFile(e.path().string());
      ASSERT_GT(bytes.size(), 16u);
      bytes.resize(bytes.size() - 7);
      common::writeFile(e.path().string(), bytes);
    }
  }
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().misses, 2u) << "truncation must force a rebuild";
  cache.getOrBuild(context_, source_);
  EXPECT_EQ(cache.stats().hits, 1u) << "the entry was repaired on disk";
}

TEST_F(CacheTest, BitFlippedEntryFailsTheDigestCheck) {
  // A single flipped payload bit keeps the header and length intact but
  // fails the payload digest comparison.
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") {
      auto bytes = common::readFile(e.path().string());
      ASSERT_GT(bytes.size(), 100u);
      bytes[bytes.size() / 2] ^= 0x40;
      common::writeFile(e.path().string(), bytes);
    }
  }
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().misses, 2u) << "digest mismatch must rebuild";
  cache.getOrBuild(context_, source_);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(CacheTest, StaleFormatVersionIsRejectedAndRebuilt) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  // Corrupt the on-disk format version (bytes [4,8) after the magic) to
  // impersonate an entry from an older library build.
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") {
      auto bytes = common::readFile(e.path().string());
      ASSERT_GE(bytes.size(), 8u);
      bytes[4] = 0xfe;
      bytes[5] = 0xff;
      common::writeFile(e.path().string(), bytes);
    }
  }
  ocl::Program p = cache.getOrBuild(context_, source_);
  EXPECT_TRUE(p.isBuilt());
  EXPECT_EQ(cache.stats().misses, 2u) << "stale version must force a rebuild";
  // The rebuild overwrote the stale entry with the current format.
  cache.getOrBuild(context_, source_);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(CacheTest, DifferentOptLevelsGetDifferentEntries) {
  KernelCache cache(dir_);
  ocl::Program fast = cache.getOrBuild(context_, source_); // default: O2
  ocl::Program slow = cache.getOrBuild(context_, source_, "-cl-opt-level=0");
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(fast.compiled().optLevel, 2u);
  EXPECT_EQ(slow.compiled().optLevel, 0u);
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") ++entries;
  }
  EXPECT_EQ(entries, 2u) << "each opt level keys its own entry";
  // Both entries hit independently afterwards.
  cache.getOrBuild(context_, source_);
  cache.getOrBuild(context_, source_, "-cl-opt-level=0");
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST_F(CacheTest, DisabledCacheAlwaysBuilds) {
  KernelCache cache(dir_);
  cache.setEnabled(false);
  cache.getOrBuild(context_, source_);
  cache.getOrBuild(context_, source_);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(CacheTest, ClearRemovesEntries) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  cache.clear();
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".clcbin") ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

TEST_F(CacheTest, LoadedProgramExecutesCorrectly) {
  KernelCache cache(dir_);
  cache.getOrBuild(context_, source_);
  ocl::Program p = cache.getOrBuild(context_, source_); // from cache
  auto device = context_.devices()[0];
  ocl::CommandQueue queue(device);
  std::vector<float> data(8, 0.0f);
  ocl::Buffer buf = context_.createBuffer(device, 8 * sizeof(float));
  queue.enqueueWriteBuffer(buf, 0, 8 * sizeof(float), data.data());
  ocl::Kernel kernel = p.createKernel("k");
  kernel.setArg(0, buf);
  queue.enqueueNDRange(kernel, ocl::NDRange1D{8, 8});
  queue.enqueueReadBuffer(buf, 0, 8 * sizeof(float), data.data());
  for (float v : data) {
    EXPECT_FLOAT_EQ(v, 1.0f);
  }
}

TEST_F(CacheTest, LoadIsAtLeastFiveTimesFasterThanBuild) {
  // The paper's claim: "loading kernels from disk is at least five times
  // faster than building them from source." Use a realistically sized
  // generated kernel and amortize over repetitions.
  std::string bigSource = source_;
  for (int i = 0; i < 30; ++i) {
    bigSource += "\nfloat helper" + std::to_string(i) +
                 "(float x) { return sqrt(x) * " + std::to_string(i) +
                 ".0f + sin(x); }";
  }
  KernelCache cache(dir_);
  cache.getOrBuild(context_, bigSource); // prime the cache

  cache.resetStats();
  common::Stopwatch buildTimer;
  for (int i = 0; i < 20; ++i) {
    KernelCache fresh(dir_);
    fresh.setEnabled(false);
    fresh.getOrBuild(context_, bigSource);
  }
  const double buildTime = buildTimer.elapsedSeconds();

  common::Stopwatch loadTimer;
  for (int i = 0; i < 20; ++i) {
    KernelCache fresh(dir_);
    fresh.getOrBuild(context_, bigSource);
    EXPECT_EQ(fresh.stats().hits, 1u);
  }
  const double loadTime = loadTimer.elapsedSeconds();
  EXPECT_LT(loadTime * 5, buildTime)
      << "build=" << buildTime << "s load=" << loadTime << "s";
}

} // namespace
