// MapReduce fused skeleton (extension; DESIGN.md §7).
#include <numeric>

#include "common/prng.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::MapReduce;
using skelcl::Vector;
using skelcl_test::SkelclFixture;

class MapReduceTest : public SkelclFixture {
protected:
  MapReduceTest() : SkelclFixture(1) {}
};

TEST_F(MapReduceTest, SumOfSquares) {
  MapReduce<float> sumSquares("float sq(float x) { return x * x; }",
                              "float add(float a, float b) { return a + b; }");
  std::vector<float> data(1000);
  std::iota(data.begin(), data.end(), 1.0f);
  Vector<float> input(data);
  double expected = 0;
  for (const float v : data) {
    expected += double(v) * double(v);
  }
  EXPECT_NEAR(double(sumSquares(input).getValue()), expected,
              expected * 1e-5);
}

TEST_F(MapReduceTest, TypeChangingMapReduce) {
  // Count elements above a threshold: Tin=float, Tout=int.
  MapReduce<float, int> countAbove(
      "int above(float x) { return x > 0.5f ? 1 : 0; }",
      "int add(int a, int b) { return a + b; }");
  common::Xoshiro256 rng(3);
  std::vector<float> data(5000);
  int expected = 0;
  for (auto& v : data) {
    v = rng.nextFloat();
    expected += v > 0.5f ? 1 : 0;
  }
  Vector<float> input(data);
  EXPECT_EQ(countAbove(input).getValue(), expected);
}

TEST_F(MapReduceTest, MatchesUnfusedComposition) {
  skelcl::Map<float> square("float sq(float x) { return x * x; }");
  skelcl::Reduce<float> sum("float a(float x, float y) { return x + y; }");
  MapReduce<float> fused("float sq(float x) { return x * x; }",
                         "float a(float x, float y) { return x + y; }");
  common::Xoshiro256 rng(7);
  std::vector<float> data(4097);
  for (auto& v : data) {
    v = float(rng.nextBelow(8));
  }
  Vector<float> a(data), b(data);
  EXPECT_FLOAT_EQ(fused(a).getValue(), sum(square(b)).getValue());
}

TEST_F(MapReduceTest, SingleElement) {
  MapReduce<int> mr("int m(int x) { return x + 10; }",
                    "int r(int a, int b) { return a + b; }");
  Vector<int> one(std::vector<int>{5});
  EXPECT_EQ(mr(one).getValue(), 15);
}

TEST_F(MapReduceTest, EmptyReturnsIdentity) {
  MapReduce<int> mr("int m(int x) { return x; }",
                    "int r(int a, int b) { return a + b; }");
  Vector<int> empty;
  EXPECT_EQ(mr(empty).getValue(), 0);

  MapReduce<int> product("int m(int x) { return x; }",
                         "int r(int a, int b) { return a * b; }", 1);
  EXPECT_EQ(product(empty).getValue(), 1);
}

class MapReduceMultiDevice
    : public SkelclFixture,
      public ::testing::WithParamInterface<std::uint32_t> {
public:
  MapReduceMultiDevice() : SkelclFixture(GetParam()) {}
};

TEST_P(MapReduceMultiDevice, BlockDistributedSumOfSquares) {
  MapReduce<long long> sumSq("long sq(long x) { return x * x; }",
                             "long add(long a, long b) { return a + b; }");
  std::vector<long long> data(30000);
  std::iota(data.begin(), data.end(), 0LL);
  Vector<long long> input(data);
  input.setDistribution(skelcl::Distribution::Block);
  long long expected = 0;
  for (const long long v : data) {
    expected += v * v;
  }
  EXPECT_EQ(sumSq(input).getValue(), expected);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MapReduceMultiDevice,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "gpu";
                         });

} // namespace
