// SkelCL-layer hardening under injected runtime failures: every fault
// class (alloc, build, transfer, device-lost) surfaces as a typed
// exception with the failing device named, host-side data stays valid,
// and the workload can retry after the fault clears. Also: corrupt
// kernel-cache entries rebuild silently, compile errors carry the
// offending source line, and a fixed SKELCL_FAULT_PLAN/SEED replays the
// same failure sequence across independent init() cycles.
#include <filesystem>
#include <numeric>

#include "common/byte_stream.h"
#include "skelcl_test_util.h"

namespace {

using ocl::FaultInjector;
using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Vector;

class FaultRecovery : public skelcl_test::SkelclFixture {
public:
  FaultRecovery() : SkelclFixture(2) {}

protected:
  void TearDown() override {
    FaultInjector::instance().reset();
    skelcl_test::SkelclFixture::TearDown();
  }
};

TEST_F(FaultRecovery, AllocFaultSurfacesTypedAndHostDataSurvives) {
  Map<int> inc("int inc_af(int x) { return x + 1; }");
  std::vector<int> data(512);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);

  FaultInjector::instance().configure("alloc@1");
  try {
    Vector<int> out = inc(input);
    FAIL() << "expected AllocFailure";
  } catch (const ocl::AllocFailure& e) {
    EXPECT_EQ(e.status(), ocl::Status::MemObjectAllocationFailure);
    EXPECT_NE(std::string(e.what()).find("vector upload"),
              std::string::npos);
  }
  // Host data is untouched and the workload retries cleanly.
  FaultInjector::instance().reset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(input[i], int(i)) << i;
  }
  Vector<int> out = inc(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], int(i) + 1) << i;
  }
}

TEST_F(FaultRecovery, UploadTransferFaultSurfacesTypedAndRetries) {
  Map<int> twice("int twice_tf(int x) { return 2 * x; }");
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);

  FaultInjector::instance().configure("write@1");
  try {
    Vector<int> out = twice(input);
    FAIL() << "expected TransferFailure";
  } catch (const ocl::TransferFailure& e) {
    EXPECT_GT(e.bytesRequested(), e.bytesTransferred());
    EXPECT_NE(std::string(e.what()).find("vector upload"),
              std::string::npos);
  }
  FaultInjector::instance().reset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(input[i], int(i)) << i; // host copy is still the truth
  }
  Vector<int> out = twice(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], 2 * int(i)) << i;
  }
}

TEST_F(FaultRecovery, DownloadTransferFaultIsTransactional) {
  Map<int> inc("int inc_dtf(int x) { return x + 1; }");
  std::vector<int> data(256, 5);
  Vector<int> input(data);
  Vector<int> out = inc(input);

  // The first download attempt fails mid-transfer; the staging commit
  // never happens, so the vector stays consistent and the retry returns
  // the complete, correct result.
  FaultInjector::instance().configure("read@1");
  EXPECT_THROW(out[0], ocl::TransferFailure);
  FaultInjector::instance().reset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], 6) << i;
  }
}

TEST_F(FaultRecovery, LaunchFaultReportsSkeletonAndDevice) {
  Map<int> inc("int inc_lf(int x) { return x + 1; }");
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);

  // The second launch is device 1's chunk (Fifo visits chunks in order).
  FaultInjector::instance().configure("kernel~skelcl_map@2");
  try {
    Vector<int> out = inc(input);
    (void)out[0]; // force: launches happen at the first read
    FAIL() << "expected LaunchFailure";
  } catch (const ocl::LaunchFailure& e) {
    EXPECT_EQ(e.deviceIndex(), 1u);
    EXPECT_NE(std::string(e.what()).find("Map skeleton on device 1"),
              std::string::npos);
  }
  FaultInjector::instance().reset();
  Vector<int> out = inc(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], int(i) + 1) << i;
  }
}

TEST_F(FaultRecovery, DeviceLostSurfacesTypedWithHostDataValid) {
  Map<int> inc("int inc_dl(int x) { return x + 1; }");
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);

  FaultInjector::instance().configure("kernel@1=lost");
  try {
    Vector<int> out = inc(input);
    (void)out[0]; // force: launches happen at the first read
    FAIL() << "expected DeviceLost";
  } catch (const ocl::DeviceLost& e) {
    EXPECT_EQ(e.status(), ocl::Status::DeviceNotAvailable);
    EXPECT_EQ(e.deviceIndex(), 0u);
    EXPECT_NE(std::string(e.what()).find("Map skeleton on device 0"),
              std::string::npos);
  }
  FaultInjector::instance().reset();
  // The device stays lost, but the host data is intact and readable.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(input[i], int(i)) << i;
  }
}

TEST_F(FaultRecovery, BuildFaultSurfacesThroughSkeleton) {
  // Unique source so the kernel cache cannot satisfy it from disk.
  Map<int> inc("int inc_bf_unique(int x) { return x + 1; }");
  Vector<int> input(std::vector<int>(16, 1));
  FaultInjector::instance().configure("build@1");
  try {
    Vector<int> out = inc(input);
    (void)out[0]; // force: the build happens at the first read
    FAIL() << "expected BuildError";
  } catch (const ocl::BuildError& e) {
    EXPECT_NE(e.log().find("injected"), std::string::npos);
  }
  FaultInjector::instance().reset();
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(input[i], 1) << i;
  }
  Vector<int> out = inc(input);
  EXPECT_EQ(out[0], 2);
}

TEST_F(FaultRecovery, CompileErrorCarriesSourceLine) {
  // A genuine front-end error (not injected): the build log must point
  // at the offending line of the generated kernel source.
  Map<float> bad("float f_ce(float x) { return undeclared_ce_var; }");
  Vector<float> input(std::vector<float>(8, 1.0f));
  try {
    Vector<float> out = bad(input);
    (void)out[0]; // force: the build happens at the first read
    FAIL() << "expected BuildError";
  } catch (const ocl::BuildError& e) {
    EXPECT_NE(e.log().find("error"), std::string::npos);
    EXPECT_NE(e.log().find("undeclared_ce_var"), std::string::npos);
    // renderContext prints "line:column: error: ..." — require a line
    // number prefix.
    const auto colon = e.log().find(':');
    ASSERT_NE(colon, std::string::npos);
    EXPECT_GT(colon, 0u);
    EXPECT_TRUE(::isdigit(e.log()[colon - 1])) << e.log();
  }
}

TEST_F(FaultRecovery, MidRedistributeFailureKeepsPreRedistributeState) {
  // The OSEM shape: copies modified per-device, then collapsed into
  // blocks with a combine function. A cross-device transfer failure in
  // the middle of the combine must leave the vector exactly as it was:
  // still copy-distributed, host data untouched, retry possible.
  Map<int, void> bump(
      "void b_mr(int idx, __global int* data) { data[idx] += idx; }");
  Vector<int> indices = skelcl::indexVector(32);
  indices.setDistribution(Distribution::Block);
  Vector<int> data(32, 0);
  data.setDistribution(Distribution::Copy);
  Arguments args;
  args.push(data);
  bump(indices, args);
  data.dataOnDevicesModified();

  const std::vector<int> preHost = data.state().rawHost();

  // Copy #2 of the combine is the first cross-device fold transfer.
  FaultInjector::instance().configure("copy@2");
  try {
    data.setDistribution(Distribution::Block,
                         "int add_mr(int a, int b) { return a + b; }");
    FAIL() << "expected TransferFailure";
  } catch (const ocl::TransferFailure& e) {
    EXPECT_NE(std::string(e.what()).find("combine redistribution"),
              std::string::npos);
  }
  // Pre-redistribute state is fully preserved.
  EXPECT_EQ(data.distribution(), Distribution::Copy);
  EXPECT_EQ(data.state().rawHost(), preHost);

  // After the fault clears, the same redistribution succeeds.
  FaultInjector::instance().reset();
  data.setDistribution(Distribution::Block,
                       "int add_mr(int a, int b) { return a + b; }");
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(data[i], int(i)) << i;
  }
}

TEST_F(FaultRecovery, CorruptCacheEntryRebuildsSilentlyThroughSkeleton) {
  const std::string source = "int inc_cc(int x) { return x + 1; }";
  std::vector<int> data(64, 3);
  {
    Map<int> inc(source);
    Vector<int> out = inc(Vector<int>(data));
    ASSERT_EQ(out[0], 4);
  }
  // Corrupt every on-disk entry (flip a payload bit; header stays valid).
  const std::string dir = common::envStr("SKELCL_CACHE_DIR");
  ASSERT_FALSE(dir.empty());
  std::size_t corrupted = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".clcbin") {
      auto bytes = common::readFile(e.path().string());
      if (bytes.size() > 100) {
        bytes[bytes.size() - 3] ^= 0x01;
        common::writeFile(e.path().string(), bytes);
        ++corrupted;
      }
    }
  }
  ASSERT_GT(corrupted, 0u);
  // A fresh skeleton (no in-memory memo) hits the corrupt entries,
  // rebuilds silently, and computes the right answer.
  Map<int> inc(source);
  Vector<int> out = inc(Vector<int>(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], 4) << i;
  }
}

// Mirrors tests/trace/determinism_test.cpp: a fixed SKELCL_FAULT_SEED
// and plan reproduce the exact same failure sequence across two
// independent init()..terminate() cycles.
TEST(FaultDeterminism, EnvConfiguredPlanReplaysByteIdentically) {
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_FAULT_PLAN", "kernel@p0.4,write@2", 1);
  ::setenv("SKELCL_FAULT_SEED", "77", 1);

  auto cycle = [] {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
    skelcl::init(skelcl::DeviceSelection::nGPUs(2));
    Map<int> inc("int inc_fd(int x) { return x + 1; }");
    std::vector<int> data(512);
    std::iota(data.begin(), data.end(), 0);
    std::vector<std::string> failures;
    for (int round = 0; round < 6; ++round) {
      Vector<int> input(data);
      input.setDistribution(Distribution::Block);
      try {
        Vector<int> out = inc(input);
        (void)out[0];
        failures.emplace_back("ok");
      } catch (const ocl::ClError& e) {
        failures.emplace_back(e.what());
      }
    }
    auto log = FaultInjector::instance().firedLog();
    skelcl::terminate();
    return std::make_pair(std::move(failures), std::move(log));
  };

  const auto a = cycle();
  const auto b = cycle();
  ::unsetenv("SKELCL_FAULT_PLAN");
  ::unsetenv("SKELCL_FAULT_SEED");
  FaultInjector::instance().reset();

  EXPECT_EQ(a.first, b.first) << "caught failure sequence diverged";
  ASSERT_EQ(a.second.size(), b.second.size());
  EXPECT_FALSE(a.second.empty()) << "the plan never fired";
  for (std::size_t i = 0; i < a.second.size(); ++i) {
    EXPECT_TRUE(a.second[i] == b.second[i])
        << "fired-fault log diverges at entry " << i;
  }
}

} // namespace
