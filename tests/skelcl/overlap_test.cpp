// Scheduling-invariance regression for the transfer/compute-overlap
// runtime: the same chained-skeleton workload run on out-of-order queues
// (default) and with SKELCL_SERIALIZE=1 (classic in-order queues) must
// produce bit-identical buffers and identical total simulated kernel
// cycles — overlap changes *when* commands run, never what they compute
// — and the overlapped schedule must never be slower.
#include "skelcl_test_util.h"

namespace {

using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Scalar;
using skelcl::Vector;
using skelcl::Zip;

struct RunOutput {
  std::vector<float> result;
  std::uint64_t virtualNs = 0;
  std::uint64_t kernelCycles = 0;
};

std::uint64_t sumQueueCycles() {
  auto& runtime = skelcl::detail::Runtime::instance();
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    total += runtime.queue(d).cumulativeKernelCycles();
  }
  return total;
}

void initRuntime(bool serialized, std::uint32_t gpus) {
  if (serialized) {
    ::setenv("SKELCL_SERIALIZE", "1", 1);
  } else {
    ::unsetenv("SKELCL_SERIALIZE");
  }
  skelcl_test::useTempCacheDir();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
}

void syncAllQueues() {
  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < runtime.deviceCount(); ++d) {
    runtime.queue(d).finish();
  }
}

/// Map -> Zip -> Reduce chain on one GPU. The input is big enough that
/// its upload is split into pieces and the Zip pipelines against them.
RunOutput runChain(bool serialized) {
  initRuntime(serialized, 1);
  RunOutput out;
  {
    Map<float> inc("float inc(float x) { return x + 1.0f; }");
    Zip<float> add("float add(float x, float y) { return x + y; }");
    Reduce<float> sum("float sum(float x, float y) { return x + y; }");

    const std::size_t n = std::size_t(1) << 19; // 2 MiB: split upload
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = float(i % 97) * 0.5f;
    }
    const std::uint64_t t0 = ocl::hostTimeNs();
    Vector<float> x(std::move(data));
    Vector<float> y = inc(x);
    Vector<float> z = add(x, y);
    Scalar<float> s = sum(z);
    out.result = z.hostData();
    out.result.push_back(s.getValue());
    syncAllQueues();
    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelCycles = sumQueueCycles();
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SERIALIZE");
  return out;
}

/// Copy -> block redistribution with a combine function on 4 GPUs: the
/// path whose cross-device copies double-buffer against the combine
/// kernels when overlap is on.
RunOutput runMerge(bool serialized) {
  initRuntime(serialized, 4);
  RunOutput out;
  {
    Map<float> touch("float touch(float x) { return x * 2.0f; }");
    const std::size_t n = std::size_t(1) << 14;
    const std::uint64_t t0 = ocl::hostTimeNs();
    Vector<float> c(n, 1.5f);
    c.setDistribution(Distribution::Copy);
    touch(c, Arguments{}, c); // dirty every device's copy on-device
    c.setDistribution(Distribution::Block,
                      "float add(float x, float y) { return x + y; }");
    out.result = c.hostData();
    syncAllQueues();
    out.virtualNs = ocl::hostTimeNs() - t0;
    out.kernelCycles = sumQueueCycles();
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SERIALIZE");
  return out;
}

TEST(OverlapRegression, ChainedSkeletonsMatchSerializedMode) {
  const RunOutput serialized = runChain(/*serialized=*/true);
  const RunOutput overlapped = runChain(/*serialized=*/false);
  EXPECT_EQ(serialized.result, overlapped.result); // bit-identical
  EXPECT_EQ(serialized.kernelCycles, overlapped.kernelCycles);
  EXPECT_LE(overlapped.virtualNs, serialized.virtualNs);
}

TEST(OverlapRegression, CopyToBlockMergeMatchesSerializedMode) {
  const RunOutput serialized = runMerge(/*serialized=*/true);
  const RunOutput overlapped = runMerge(/*serialized=*/false);
  EXPECT_EQ(serialized.result, overlapped.result); // bit-identical
  EXPECT_EQ(serialized.kernelCycles, overlapped.kernelCycles);
  EXPECT_LE(overlapped.virtualNs, serialized.virtualNs);
}

TEST(OverlapRegression, SerializeEnvSelectsInOrderQueues) {
  initRuntime(/*serialized=*/true, 1);
  EXPECT_TRUE(skelcl::detail::Runtime::instance().serializedQueues());
  EXPECT_EQ(skelcl::detail::Runtime::instance().queue(0).order(),
            ocl::QueueOrder::InOrder);
  skelcl::terminate();

  initRuntime(/*serialized=*/false, 1);
  EXPECT_FALSE(skelcl::detail::Runtime::instance().serializedQueues());
  EXPECT_EQ(skelcl::detail::Runtime::instance().queue(0).order(),
            ocl::QueueOrder::OutOfOrder);
  skelcl::terminate();
  ::unsetenv("SKELCL_SERIALIZE");
}

} // namespace
