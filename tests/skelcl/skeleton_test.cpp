// Skeleton correctness on a single device: Map, Zip, Reduce, Scan,
// composition, and the additional-arguments mechanism.
#include <cmath>
#include <numeric>

#include "common/prng.h"
#include "skelcl_test_util.h"

namespace {

using skelcl::Arguments;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Scalar;
using skelcl::Scan;
using skelcl::Vector;
using skelcl::Zip;
using skelcl_test::SkelclFixture;

class SkeletonTest : public SkelclFixture {
protected:
  SkeletonTest() : SkelclFixture(1) {}
};

TEST_F(SkeletonTest, MapAppliesUnaryFunction) {
  Map<float> dbl("float dbl(float x) { return 2.0f * x; }");
  std::vector<float> in(100);
  std::iota(in.begin(), in.end(), 0.0f);
  Vector<float> input(in);
  Vector<float> output = dbl(input);
  ASSERT_EQ(output.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(output[i], 2.0f * in[i]) << i;
  }
}

TEST_F(SkeletonTest, MapWithDifferentOutputType) {
  Map<float, int> toInt("int f(float x) { return (int)(x + 0.5f); }");
  Vector<float> input(std::vector<float>{0.2f, 1.7f, 2.4f});
  Vector<int> output = toInt(input);
  EXPECT_EQ(output[0], 0);
  EXPECT_EQ(output[1], 2);
  EXPECT_EQ(output[2], 2);
}

TEST_F(SkeletonTest, MapUsesOpenClBuiltins) {
  Map<float> f("float f(float x) { return sqrt(x) + sin(0.0f); }");
  Vector<float> input(std::vector<float>{4.0f, 9.0f, 16.0f});
  Vector<float> output = f(input);
  EXPECT_FLOAT_EQ(output[0], 2.0f);
  EXPECT_FLOAT_EQ(output[1], 3.0f);
  EXPECT_FLOAT_EQ(output[2], 4.0f);
}

TEST_F(SkeletonTest, ZipCombinesElementwise) {
  Zip<int> add("int add(int a, int b) { return a + b; }");
  Vector<int> a(std::vector<int>{1, 2, 3});
  Vector<int> b(std::vector<int>{10, 20, 30});
  Vector<int> c = add(a, b);
  EXPECT_EQ(c[0], 11);
  EXPECT_EQ(c[1], 22);
  EXPECT_EQ(c[2], 33);
}

TEST_F(SkeletonTest, ZipSizeMismatchThrows) {
  Zip<int> add("int add(int a, int b) { return a + b; }");
  Vector<int> a(3, 0), b(4, 0);
  EXPECT_THROW(add(a, b), common::InvalidArgument);
}

TEST_F(SkeletonTest, ZipWithAliasedOutput) {
  // The OSEM update pattern: update(f, c, f).
  Zip<float> update(
      "float up(float f, float c) { return c > 0.0f ? f * c : f; }");
  Vector<float> f(std::vector<float>{1.0f, 2.0f, 3.0f});
  Vector<float> c(std::vector<float>{2.0f, 0.0f, 4.0f});
  update(f, c, f);
  EXPECT_FLOAT_EQ(f[0], 2.0f);
  EXPECT_FLOAT_EQ(f[1], 2.0f);
  EXPECT_FLOAT_EQ(f[2], 12.0f);
}

TEST_F(SkeletonTest, ReduceSumsAllElements) {
  Reduce<int> sum("int sum(int a, int b) { return a + b; }");
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 1);
  Vector<int> input(data);
  Scalar<int> result = sum(input);
  EXPECT_EQ(result.getValue(), 500500);
}

TEST_F(SkeletonTest, ReduceSingleElement) {
  Reduce<float> sum("float f(float a, float b) { return a + b; }");
  Vector<float> one(std::vector<float>{42.0f});
  EXPECT_FLOAT_EQ(sum(one).getValue(), 42.0f);
}

TEST_F(SkeletonTest, ReduceEmptyReturnsIdentity) {
  Reduce<float> sum("float f(float a, float b) { return a + b; }");
  Vector<float> empty;
  EXPECT_EQ(sum(empty).getValue(), 0.0f);

  Reduce<float> product("float f(float a, float b) { return a * b; }",
                        1.0f);
  EXPECT_EQ(product(empty).getValue(), 1.0f);
}

TEST_F(SkeletonTest, ReduceNonCommutativeAssociativeOperator) {
  // Right projection is associative but not commutative: the reduction
  // must produce exactly the last element.
  Reduce<int> last("int pick(int a, int b) { return b; }");
  std::vector<int> data(70000);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  EXPECT_EQ(last(input).getValue(), 69999);
}

TEST_F(SkeletonTest, ReduceMax) {
  Reduce<float> maxOp("float m(float a, float b) { return fmax(a, b); }");
  std::vector<float> data = {3.5f, -1.0f, 99.25f, 12.0f, 98.0f};
  Vector<float> input(data);
  EXPECT_FLOAT_EQ(maxOp(input).getValue(), 99.25f);
}

TEST_F(SkeletonTest, DotProductComposition) {
  // Paper Listing 1 exactly: Scalar = sum(mult(A, B)).
  Reduce<float> sum("float sum (float x,float y){return x+y;}");
  Zip<float> mult("float mult(float x,float y){return x*y;}");
  const std::size_t n = 1024;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(i % 10);
    b[i] = float((i + 1) % 7);
  }
  Vector<float> A(a.data(), n);
  Vector<float> B(b.data(), n);
  Scalar<float> C = sum(mult(A, B));
  float expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += a[i] * b[i];
  }
  EXPECT_FLOAT_EQ(C.getValue(), expected);
}

TEST_F(SkeletonTest, ScanExclusiveSum) {
  Scan<int> scan("int add(int a, int b) { return a + b; }", "0");
  std::vector<int> data(1000, 1);
  Vector<int> input(data);
  Vector<int> output = scan(input);
  ASSERT_EQ(output.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(output[i], int(i)) << i; // exclusive prefix count
  }
}

TEST_F(SkeletonTest, ScanMatchesStdExclusiveScan) {
  Scan<int> scan("int add(int a, int b) { return a + b; }", "0");
  common::Xoshiro256 rng(11);
  std::vector<int> data(5000);
  for (auto& v : data) {
    v = int(rng.nextBelow(100)) - 50;
  }
  Vector<int> input(data);
  Vector<int> output = scan(input);
  std::vector<int> expected(data.size());
  std::exclusive_scan(data.begin(), data.end(), expected.begin(), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(output[i], expected[i]) << i;
  }
}

TEST_F(SkeletonTest, ScanWithMultiplicationIdentity) {
  Scan<float> scan("float mul(float a, float b) { return a * b; }", "1.0f");
  Vector<float> input(std::vector<float>{2.0f, 3.0f, 4.0f});
  Vector<float> output = scan(input);
  EXPECT_FLOAT_EQ(output[0], 1.0f);
  EXPECT_FLOAT_EQ(output[1], 2.0f);
  EXPECT_FLOAT_EQ(output[2], 6.0f);
}

TEST_F(SkeletonTest, ScanSingleBlockAndExactBlockBoundary) {
  Scan<int> scan("int add(int a, int b) { return a + b; }", "0");
  for (const std::size_t n : {1u, 7u, 255u, 256u, 257u, 512u}) {
    std::vector<int> data(n, 2);
    Vector<int> input(data);
    Vector<int> output = scan(input);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(output[i], int(2 * i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(SkeletonTest, MapWithAdditionalScalarArgument) {
  // Paper Listing 2: the Map function takes an extra argument.
  Map<float> multNum(
      "float f(float input, float number) { return input * number; }");
  Vector<float> input(std::vector<float>{1.0f, 2.0f, 3.0f});
  Arguments args;
  args.push(5.0f);
  Vector<float> output = multNum(input, args);
  EXPECT_FLOAT_EQ(output[0], 5.0f);
  EXPECT_FLOAT_EQ(output[1], 10.0f);
  EXPECT_FLOAT_EQ(output[2], 15.0f);
}

TEST_F(SkeletonTest, MapWithVectorArgument) {
  Map<int> gather(
      "int g(int idx, __global int* table) { return table[idx]; }");
  Vector<int> indices(std::vector<int>{2, 0, 1});
  Vector<int> table(std::vector<int>{10, 20, 30});
  Arguments args;
  args.push(table);
  Vector<int> output = gather(indices, args);
  EXPECT_EQ(output[0], 30);
  EXPECT_EQ(output[1], 10);
  EXPECT_EQ(output[2], 20);
}

TEST_F(SkeletonTest, MapWithVectorSizeArgument) {
  Map<int> f(
      "int f(int idx, __global int* data, uint n) {"
      "  int acc = 0;"
      "  for (uint k = 0; k < n; ++k) acc += data[k];"
      "  return acc + idx;"
      "}");
  Vector<int> indices(std::vector<int>{0, 1});
  Vector<int> data(std::vector<int>{5, 6, 7});
  Arguments args;
  args.push(data);
  args.pushSizeOf(data);
  Vector<int> output = f(indices, args);
  EXPECT_EQ(output[0], 18);
  EXPECT_EQ(output[1], 19);
}

TEST_F(SkeletonTest, VoidMapWithSideEffects) {
  // A Map<..., void> updates a vector argument in place and the host
  // must flag the modification (paper Sec. IV-B).
  Map<int, void> scatter(
      "void s(int idx, __global int* out) { out[idx] = idx * idx; }");
  Vector<int> indices = skelcl::indexVector(8);
  Vector<int> out(8, 0);
  Arguments args;
  args.push(out);
  scatter(indices, args);
  out.dataOnDevicesModified();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], int(i * i)) << i;
  }
}

TEST_F(SkeletonTest, ArgumentsWithStructType) {
  struct Params {
    float scale;
    float offset;
  };
  skelcl::registerType<Params>(
      "Params", "typedef struct { float scale; float offset; } Params;");
  Map<float> affine(
      "float f(float x, Params p) { return x * p.scale + p.offset; }");
  Vector<float> input(std::vector<float>{1.0f, 2.0f});
  Arguments args;
  args.push(Params{3.0f, 0.5f});
  Vector<float> output = affine(input, args);
  EXPECT_FLOAT_EQ(output[0], 3.5f);
  EXPECT_FLOAT_EQ(output[1], 6.5f);
}

TEST_F(SkeletonTest, StructElementVectors) {
  struct Complex {
    float re, im;
  };
  skelcl::registerType<Complex>(
      "ComplexT", "typedef struct { float re; float im; } ComplexT;");
  Map<Complex, float> magnitude(
      "float mag(ComplexT z) { return sqrt(z.re * z.re + z.im * z.im); }");
  Vector<Complex> input(std::vector<Complex>{{3.0f, 4.0f}, {5.0f, 12.0f}});
  Vector<float> output = magnitude(input);
  EXPECT_FLOAT_EQ(output[0], 5.0f);
  EXPECT_FLOAT_EQ(output[1], 13.0f);
}

TEST_F(SkeletonTest, ChainedSkeletonsStayOnDevice) {
  // Paper Sec. III-A: "if an output vector is used as the input to
  // another skeleton, no further data transfer is performed."
  Map<float> inc("float inc(float x) { return x + 1.0f; }");
  Vector<float> input(std::vector<float>(1 << 16, 0.0f));
  Vector<float> a = inc(input);
  const auto host1 = ocl::hostTimeNs();
  Vector<float> b = inc(a); // chained: must not download/upload `a`
  Vector<float> c = inc(b);
  // Between chained calls only enqueue overhead passes on the host; a
  // download of 256 KiB would cost ~50 us of virtual time.
  const auto elapsed = ocl::hostTimeNs() - host1;
  EXPECT_LT(elapsed, 20'000u) << "chaining seems to transfer data";
  EXPECT_FLOAT_EQ(c[100], 3.0f);
}

TEST_F(SkeletonTest, InvalidUserFunctionFailsAtFirstUse) {
  Map<float> broken("float f(float x) { return undefined_var; }");
  Vector<float> input(std::vector<float>{1.0f});
  // Invocation is lazy; the build happens when the result is read.
  EXPECT_THROW(broken(input)[0], ocl::BuildError);
}

TEST_F(SkeletonTest, UserFunctionNameExtraction) {
  EXPECT_EQ(skelcl::detail::userFunctionName(
                "float sum (float x,float y){return x+y;}"),
            "sum");
  EXPECT_EQ(skelcl::detail::userFunctionName(
                "int f(int a) { return g(a); }"),
            "f");
  EXPECT_THROW(skelcl::detail::userFunctionName("int x = 3;"),
               common::InvalidArgument);
}

TEST_F(SkeletonTest, MapRespectsCustomWorkGroupSize) {
  Map<int> f("int f(int x) { return x + 1; }");
  f.setWorkGroupSize(64);
  Vector<int> input(std::vector<int>(1000, 5));
  Vector<int> output = f(input);
  EXPECT_EQ(output[999], 6);
}

} // namespace
