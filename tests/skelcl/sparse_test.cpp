// Differential suite for CsrMatrix + SparseGather: exact host oracles
// for SpMV (int and float), BFS level expansion to a fixed point, and a
// 20-iteration PageRank, on 1, 2, and 4 devices and heterogeneous
// specs; bit-identity across shuffled schedules, async-off and
// fusion-off; degenerate structure (zero-row matrix, empty rows, a full
// row, duplicate column entries, more devices than rows); CSR
// validation errors; and typed-error recovery with a fault aimed at the
// gather kernel.
#include <cstdint>
#include <cstdlib>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include "skelcl_test_util.h"

namespace {

using ocl::FaultInjector;
using skelcl::Arguments;
using skelcl::CsrMatrix;
using skelcl::Map;
using skelcl::SparseGather;
using skelcl::Vector;
using skelcl::Zip;

constexpr std::uint32_t kInf = 0xFFFFFFFFu;

/// Host CSR mirror; rows may be empty, full, or carry duplicate columns.
struct HostCsr {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> rowPtr;
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
};

HostCsr randomCsr(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> degree(0, 8);
  std::uniform_int_distribution<std::uint32_t> col(
      0, cols > 0 ? std::uint32_t(cols - 1) : 0);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  HostCsr m;
  m.rows = rows;
  m.cols = cols;
  m.rowPtr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    int deg = degree(rng);
    if (r % 11 == 0) {
      deg = 0; // force empty rows into the structure
    } else if (r % 13 == 1 && cols <= 64) {
      deg = int(cols); // and an occasional full row
    }
    for (int k = 0; k < deg; ++k) {
      // Duplicate columns are legal: every fourth entry repeats the
      // previous one.
      const std::uint32_t c =
          (k % 4 == 3 && !m.colIdx.empty()) ? m.colIdx.back() : col(rng);
      m.colIdx.push_back(c);
      m.values.push_back(val(rng));
    }
    m.rowPtr.push_back(std::uint32_t(m.colIdx.size()));
  }
  return m;
}

template <typename T>
std::vector<T> spmvOracle(const HostCsr& m, const std::vector<T>& x,
                          const std::vector<T>& vals) {
  std::vector<T> y(m.rows);
  for (std::size_t r = 0; r < m.rows; ++r) {
    T acc = T(0);
    for (std::uint32_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k) {
      acc += vals[k] * x[m.colIdx[k]];
    }
    y[r] = acc;
  }
  return y;
}

const char* kSpmvGatherF = "float spg(float a, float xj) { return a * xj; }";
const char* kSpmvCombineF = "float spc(float a, float b) { return a + b; }";
const char* kSpmvGatherI = "int spgi(int a, int xj) { return a * xj; }";
const char* kSpmvCombineI = "int spci(int a, int b) { return a + b; }";

void expectSpmvMatchesOracle(unsigned seed) {
  const HostCsr m = randomCsr(97, 53, seed);
  std::vector<int> vals(m.values.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = int(m.values[i] * 10.0f);
  }
  std::vector<int> x(m.cols);
  std::mt19937 rng(seed + 1);
  std::uniform_int_distribution<int> d(-9, 9);
  for (int& v : x) {
    v = d(rng);
  }

  CsrMatrix<int> mat(m.rows, m.cols, m.rowPtr, m.colIdx, vals);
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  Vector<int> xs(x);
  Vector<int> y = spmv(mat, xs);
  const std::vector<int> want = spmvOracle<int>(m, x, vals);
  ASSERT_EQ(y.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(y[i], want[i]) << "row " << i;
  }
}

class SparseOneDevice : public skelcl_test::SkelclFixture {
public:
  SparseOneDevice() : SkelclFixture(1) {}
};
class SparseTwoDevices : public skelcl_test::SkelclFixture {
public:
  SparseTwoDevices() : SkelclFixture(2) {}
};
class SparseFourDevices : public skelcl_test::SkelclFixture {
public:
  SparseFourDevices() : SkelclFixture(4) {}
};

TEST_F(SparseOneDevice, SpmvMatchesOracle) { expectSpmvMatchesOracle(3); }
TEST_F(SparseTwoDevices, SpmvMatchesOracle) { expectSpmvMatchesOracle(5); }
TEST_F(SparseFourDevices, SpmvMatchesOracle) { expectSpmvMatchesOracle(7); }

// --- degenerate structure ------------------------------------------------

TEST_F(SparseTwoDevices, ZeroRowMatrixYieldsEmptyResult) {
  CsrMatrix<int> empty(0, 5, {0}, {}, {});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  Vector<int> x(std::vector<int>{1, 2, 3, 4, 5});
  Vector<int> y = spmv(empty, x);
  EXPECT_EQ(y.size(), 0u);
}

TEST_F(SparseFourDevices, FewerRowsThanDevices) {
  // 2 rows over 4 devices: two shares are zero rows and launch nothing.
  CsrMatrix<int> m(2, 3, {0, 2, 3}, {0, 2, 1}, {4, 5, 6});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  Vector<int> x(std::vector<int>{1, 10, 100});
  Vector<int> y = spmv(m, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 4 * 1 + 5 * 100);
  EXPECT_EQ(y[1], 6 * 10);
}

TEST_F(SparseTwoDevices, EmptyRowsYieldIdentity) {
  // Identity is observable exactly on empty rows.
  CsrMatrix<int> m(3, 2, {0, 0, 1, 1}, {1}, {9});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "-42");
  Vector<int> x(std::vector<int>{7, 2});
  Vector<int> y = spmv(m, x);
  EXPECT_EQ(y[0], -42);
  EXPECT_EQ(y[1], -42 + 9 * 2);
  EXPECT_EQ(y[2], -42);
}

TEST_F(SparseOneDevice, DuplicateColumnsContributePerEntry) {
  CsrMatrix<int> m(1, 2, {0, 3}, {1, 1, 1}, {2, 3, 4});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  Vector<int> x(std::vector<int>{0, 10});
  Vector<int> y = spmv(m, x);
  EXPECT_EQ(y[0], (2 + 3 + 4) * 10);
}

TEST_F(SparseOneDevice, MalformedCsrThrows) {
  using common::InvalidArgument;
  std::vector<std::uint32_t> ok = {0, 1};
  EXPECT_THROW(CsrMatrix<int>(2, 2, ok, {0}, {1}), InvalidArgument);
  EXPECT_THROW(CsrMatrix<int>(1, 2, {1, 1}, {}, {}), InvalidArgument);
  EXPECT_THROW(CsrMatrix<int>(2, 2, {0, 2, 1}, {0, 1}, {1, 2}),
               InvalidArgument);
  EXPECT_THROW(CsrMatrix<int>(1, 2, {0, 1}, {2}, {1}), InvalidArgument);
  EXPECT_THROW(CsrMatrix<int>(1, 2, {0, 2}, {0, 1}, {1}), InvalidArgument);
  // Operand size must match the column count.
  CsrMatrix<int> m(1, 3, {0, 1}, {0}, {1});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  Vector<int> tooShort(std::vector<int>{1, 2});
  EXPECT_THROW(spmv(m, tooShort), InvalidArgument);
}

// --- BFS levels ----------------------------------------------------------

/// BFS oracle over an adjacency list (edge u -> v).
std::vector<std::uint32_t> bfsOracle(
    std::size_t n, const std::vector<std::pair<std::uint32_t,
                                               std::uint32_t>>& edges,
    std::uint32_t sourceVertex) {
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const auto& [u, v] : edges) {
    adj[u].push_back(v);
  }
  std::vector<std::uint32_t> level(n, kInf);
  std::queue<std::uint32_t> q;
  level[sourceVertex] = 0;
  q.push(sourceVertex);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t v : adj[u]) {
      if (level[v] == kInf) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

/// Reverse-graph CSR: row v lists the predecessors u of v, so one
/// gather step computes min over incoming levels + 1.
HostCsr reverseCsr(std::size_t n,
                   const std::vector<std::pair<std::uint32_t,
                                               std::uint32_t>>& edges) {
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (const auto& [u, v] : edges) {
    pred[v].push_back(u);
  }
  HostCsr m;
  m.rows = n;
  m.cols = n;
  m.rowPtr.push_back(0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t u : pred[v]) {
      m.colIdx.push_back(u);
      m.values.push_back(1.0f);
    }
    m.rowPtr.push_back(std::uint32_t(m.colIdx.size()));
  }
  return m;
}

void expectBfsMatchesOracle(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> vtx(0,
                                                   std::uint32_t(n - 1));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < 3 * n; ++i) {
    edges.emplace_back(vtx(rng), vtx(rng));
  }
  // A path through every vertex keeps the graph connected.
  for (std::uint32_t v = 1; v < n; ++v) {
    edges.emplace_back(v - 1, v);
  }
  const HostCsr rg = reverseCsr(n, edges);
  const std::vector<std::uint32_t> want = bfsOracle(n, edges, 0);

  CsrMatrix<std::uint32_t> mat(
      rg.rows, rg.cols, rg.rowPtr, rg.colIdx,
      std::vector<std::uint32_t>(rg.values.size(), 1u));
  // Gather: candidate level through an incoming edge (saturating at
  // infinity); combine: min. Relaxing against the previous levels keeps
  // already-settled vertices settled.
  SparseGather<std::uint32_t> expand(
      "uint bfs_g(uint e, uint lu) {\n"
      "  return lu == 0xFFFFFFFFu ? 0xFFFFFFFFu : lu + 1u;\n"
      "}\n",
      "uint bfs_m(uint a, uint b) { return a < b ? a : b; }",
      "0xFFFFFFFFu");
  Zip<std::uint32_t> relax(
      "uint bfs_r(uint old, uint cand) { return old < cand ? old : cand; }");

  std::vector<std::uint32_t> init(n, kInf);
  init[0] = 0;
  Vector<std::uint32_t> levels(init);
  for (std::size_t step = 0; step < n; ++step) {
    Vector<std::uint32_t> next = relax(levels, expand(mat, levels));
    // Fixed point detection reads the host copy (forcing the chain).
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (next[v] != levels[v]) {
        changed = true;
        break;
      }
    }
    levels = std::move(next);
    if (!changed) {
      break;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(levels[v], want[v]) << "vertex " << v;
  }
}

TEST_F(SparseOneDevice, BfsLevelsMatchOracle) {
  expectBfsMatchesOracle(64, 17);
}
TEST_F(SparseFourDevices, BfsLevelsMatchOracle) {
  expectBfsMatchesOracle(101, 19);
}

// --- PageRank ------------------------------------------------------------

/// 20 damped PageRank iterations. The device run and the host oracle
/// fold each row's contributions in CSR order with identical float
/// operations, so the comparison is exact.
std::vector<float> pagerankOracle(const HostCsr& m,
                                  const std::vector<float>& scaled,
                                  int iterations) {
  const float d = 0.85f;
  const float base = (1.0f - d) / float(m.rows);
  std::vector<float> r(m.rows, 1.0f / float(m.rows));
  for (int it = 0; it < iterations; ++it) {
    std::vector<float> y(m.rows);
    for (std::size_t v = 0; v < m.rows; ++v) {
      float acc = 0.0f;
      for (std::uint32_t k = m.rowPtr[v]; k < m.rowPtr[v + 1]; ++k) {
        acc = acc + scaled[k] * r[m.colIdx[k]];
      }
      y[v] = base + d * acc;
    }
    r = std::move(y);
  }
  return r;
}

void expectPagerankMatchesOracle(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> vtx(0,
                                                   std::uint32_t(n - 1));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < 4 * n; ++i) {
    edges.emplace_back(vtx(rng), vtx(rng));
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % std::uint32_t(n)); // no dangling nodes
  }
  std::vector<std::uint32_t> outDeg(n, 0);
  for (const auto& [u, v] : edges) {
    ++outDeg[u];
  }
  HostCsr rg = reverseCsr(n, edges);
  // Pre-scale each incoming edge by 1/outdeg(u): the gather is then a
  // plain multiply and the row fold a plain sum — SpMV.
  std::vector<float> scaled(rg.colIdx.size());
  for (std::size_t k = 0; k < scaled.size(); ++k) {
    scaled[k] = 1.0f / float(outDeg[rg.colIdx[k]]);
  }

  CsrMatrix<float> mat(rg.rows, rg.cols, rg.rowPtr, rg.colIdx, scaled);
  SparseGather<float> gather(kSpmvGatherF, kSpmvCombineF, "0.0f");
  Map<float> damp("float pr_d(float y, float base, float d) {\n"
                  "  return base + d * y;\n"
                  "}\n");
  const float d = 0.85f;
  const float base = (1.0f - d) / float(n);

  Vector<float> rank(std::vector<float>(n, 1.0f / float(n)));
  for (int it = 0; it < 20; ++it) {
    Arguments args;
    args.push(base);
    args.push(d);
    rank = damp(gather(mat, rank), args);
  }
  const std::vector<float> want = pagerankOracle(rg, scaled, 20);
  ASSERT_EQ(rank.size(), want.size());
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(rank[v], want[v]) << "vertex " << v;
  }
}

TEST_F(SparseOneDevice, PagerankTwentyIterationsMatchesOracle) {
  expectPagerankMatchesOracle(60, 23);
}
TEST_F(SparseTwoDevices, PagerankTwentyIterationsMatchesOracle) {
  expectPagerankMatchesOracle(60, 23);
}

// --- bit-identity across runtime configurations --------------------------

std::vector<float> runSpmvConfig(std::uint32_t gpus,
                                 const char* deviceSpec) {
  skelcl_test::useTempCacheDir();
  if (deviceSpec != nullptr) {
    ocl::configureSystem(ocl::SystemConfig::parse(deviceSpec));
    skelcl::init(skelcl::DeviceSelection::allDevices());
  } else {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
    skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  }
  const HostCsr m = randomCsr(151, 151, 29);
  std::vector<float> x(m.cols);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = float((i * 2654435761u) % 997) / 991.0f;
  }
  CsrMatrix<float> mat(m.rows, m.cols, m.rowPtr, m.colIdx, m.values);
  SparseGather<float> spmv(kSpmvGatherF, kSpmvCombineF, "0.0f");
  Vector<float> v(x);
  for (int it = 0; it < 3; ++it) {
    v = spmv(mat, v); // square matrix: iterate
  }
  std::vector<float> result(v.begin(), v.end());
  skelcl::terminate();
  return result;
}

TEST(SparseBitIdentity, InvariantAcrossDevicesScheduleAndEngines) {
  const std::vector<float> ref = runSpmvConfig(1, nullptr);
  auto expectSame = [&](const std::vector<float>& got, const char* what) {
    ASSERT_EQ(got.size(), ref.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << what << " diverges at " << i;
    }
  };
  expectSame(runSpmvConfig(2, nullptr), "2 devices");
  expectSame(runSpmvConfig(4, nullptr), "4 devices");
  expectSame(runSpmvConfig(0, "t10*2, t10@0.5x"), "hetero 3-device");

  for (unsigned seed : {2u, 99u}) {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
    expectSame(runSpmvConfig(4, nullptr), "shuffled schedule");
    ::unsetenv("SKELCL_SCHEDULE");
    ::unsetenv("SKELCL_SCHEDULE_SEED");
  }
  ::setenv("SKELCL_ASYNC", "0", 1);
  expectSame(runSpmvConfig(4, nullptr), "async off");
  ::unsetenv("SKELCL_ASYNC");
  ::setenv("SKELCL_FUSION", "0", 1);
  expectSame(runSpmvConfig(4, nullptr), "fusion off");
  ::unsetenv("SKELCL_FUSION");
  ::setenv("SKELCL_WEIGHTS", "measured", 1);
  expectSame(runSpmvConfig(4, nullptr), "measured weights");
  ::unsetenv("SKELCL_WEIGHTS");
}

// --- fault recovery ------------------------------------------------------

class SparseFaults : public SparseTwoDevices {
protected:
  void TearDown() override {
    FaultInjector::instance().reset();
    SparseTwoDevices::TearDown();
  }
};

TEST_F(SparseFaults, GatherKernelFaultSurfacesTypedAndRetries) {
  CsrMatrix<int> m(4, 4, {0, 2, 3, 3, 5}, {0, 1, 3, 2, 2}, {1, 2, 3, 4, 5});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");
  const std::vector<int> xs = {1, 10, 100, 1000};

  FaultInjector::instance().configure("kernel~skelcl_spgather@1");
  {
    Vector<int> x(xs);
    EXPECT_THROW(
        {
          Vector<int> y = spmv(m, x);
          (void)y[0];
        },
        ocl::LaunchFailure);
  }

  FaultInjector::instance().reset();
  Vector<int> x(xs);
  Vector<int> y = spmv(m, x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(y[0], 1 * 1 + 2 * 10);
  EXPECT_EQ(y[1], 3 * 1000);
  EXPECT_EQ(y[2], 0);
  EXPECT_EQ(y[3], 4 * 100 + 5 * 100);
}

TEST_F(SparseFaults, CsrUploadFaultSurfacesTypedAndRetries) {
  CsrMatrix<int> m(2, 2, {0, 1, 2}, {0, 1}, {3, 4});
  SparseGather<int> spmv(kSpmvGatherI, kSpmvCombineI, "0");

  FaultInjector::instance().configure("write@1");
  {
    Vector<int> x(std::vector<int>{5, 6});
    EXPECT_THROW(
        {
          Vector<int> y = spmv(m, x);
          (void)y[0];
        },
        ocl::TransferFailure);
  }

  FaultInjector::instance().reset();
  Vector<int> x(std::vector<int>{5, 6});
  Vector<int> y = spmv(m, x);
  EXPECT_EQ(y[0], 15);
  EXPECT_EQ(y[1], 24);
}

} // namespace
