// Heterogeneous simulated platforms and the weighted block
// distribution (DESIGN.md §6e): the SKELCL_DEVICES spec grammar, the
// deterministic largest-remainder partitioner, the three weight modes
// (even / static / measured), and that the fault-injection and
// schedule-fuzzing guarantees carry over to skewed machines.
#include <cstdlib>
#include <numeric>

#include "skelcl/detail/partition.h"
#include "skelcl_test_util.h"
#include "trace/recorder.h"

namespace {

using skelcl::Distribution;
using skelcl::Map;
using skelcl::MapReduce;
using skelcl::Reduce;
using skelcl::Scan;
using skelcl::Vector;
using skelcl::WeightMode;
using skelcl::Zip;
using skelcl::detail::Runtime;
using skelcl::detail::weightedPartition;

// ---------------------------------------------------------------------
// weightedPartition: pure-function pins (no runtime needed).
// ---------------------------------------------------------------------

TEST(WeightedPartition, EqualWeightsReproduceHistoricalEvenSplit) {
  // The seed split was base = n / devices plus one extra element on the
  // first n % devices devices. These exact sizes are pinned by
  // vector_test (10/2 -> {5,5}, 7/2 -> {4,3}); the partitioner must
  // keep producing them forever.
  const std::vector<double> two(2, 1.0);
  EXPECT_EQ(weightedPartition(10, two), (std::vector<std::size_t>{5, 5}));
  EXPECT_EQ(weightedPartition(7, two), (std::vector<std::size_t>{4, 3}));
  const std::vector<double> four(4, 1.0);
  EXPECT_EQ(weightedPartition(10, four),
            (std::vector<std::size_t>{3, 3, 2, 2}));
  const std::vector<double> three(3, 1.0);
  EXPECT_EQ(weightedPartition(7, three), (std::vector<std::size_t>{3, 2, 2}));
}

TEST(WeightedPartition, RemainderSpreadsByLargestFraction) {
  EXPECT_EQ(weightedPartition(10, {2.0, 1.0, 1.0}),
            (std::vector<std::size_t>{5, 3, 2}));
  EXPECT_EQ(weightedPartition(5, {3.0, 1.0}),
            (std::vector<std::size_t>{4, 1}));
}

TEST(WeightedPartition, DegenerateInputs) {
  // Fewer elements than devices: the tail devices get zero elements.
  EXPECT_EQ(weightedPartition(3, std::vector<double>(5, 1.0)),
            (std::vector<std::size_t>{1, 1, 1, 0, 0}));
  // Empty vector: every device gets zero.
  EXPECT_EQ(weightedPartition(0, std::vector<double>(3, 1.0)),
            (std::vector<std::size_t>{0, 0, 0}));
  // A zero-weight device receives nothing.
  EXPECT_EQ(weightedPartition(5, {0.0, 1.0}),
            (std::vector<std::size_t>{0, 5}));
  // All-zero weights fall back to the even split instead of dividing
  // by zero.
  EXPECT_EQ(weightedPartition(4, {0.0, 0.0}),
            (std::vector<std::size_t>{2, 2}));
}

TEST(WeightedPartition, SumInvariantOverSweep) {
  const std::vector<double> weights = {3.7, 0.0, 1.1, 2.9};
  for (std::size_t n = 0; n < 300; ++n) {
    const auto counts = weightedPartition(n, weights);
    ASSERT_EQ(counts.size(), weights.size());
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
              n)
        << "n=" << n;
    EXPECT_EQ(counts[1], 0u) << "n=" << n; // zero weight stays empty
  }
}

TEST(WeightedPartition, RejectsBadWeights) {
  EXPECT_THROW(weightedPartition(4, {1.0, -1.0}), common::Error);
  EXPECT_THROW(weightedPartition(4, {}), common::Error);
}

// ---------------------------------------------------------------------
// SystemConfig::parse: the SKELCL_DEVICES grammar.
// ---------------------------------------------------------------------

TEST(DeviceSpecParse, BuildsHeterogeneousPlatform) {
  const ocl::SystemConfig config =
      ocl::SystemConfig::parse("t10*2, t10@0.5x, cpu");
  ASSERT_EQ(config.devices.size(), 4u);

  const ocl::DeviceSpec full = ocl::DeviceSpec::teslaT10();
  EXPECT_EQ(config.devices[0].name, full.name);
  EXPECT_DOUBLE_EQ(config.devices[0].clockGHz, full.clockGHz);
  EXPECT_DOUBLE_EQ(config.devices[1].clockGHz, full.clockGHz);

  // The scaled device runs at half clock and half memory bandwidth but
  // keeps its PCIe link (the bus does not slow down with the chip).
  EXPECT_DOUBLE_EQ(config.devices[2].clockGHz, full.clockGHz * 0.5);
  EXPECT_DOUBLE_EQ(config.devices[2].memBandwidthGBs,
                   full.memBandwidthGBs * 0.5);
  EXPECT_DOUBLE_EQ(config.devices[2].pcieBandwidthGBs, full.pcieBandwidthGBs);
  EXPECT_NE(config.devices[2].name.find("@0.5x"), std::string::npos);

  EXPECT_EQ(config.devices[3].type, ocl::DeviceType::CPU);
  EXPECT_NE(config.platformName.find("t10*2"), std::string::npos);
}

TEST(DeviceSpecParse, SuffixesComposeInEitherOrder) {
  for (const char* spec : {"t10@0.5x*2", "t10*2@0.5x"}) {
    const ocl::SystemConfig config = ocl::SystemConfig::parse(spec);
    ASSERT_EQ(config.devices.size(), 2u) << spec;
    EXPECT_DOUBLE_EQ(config.devices[0].clockGHz, 0.72) << spec;
    EXPECT_DOUBLE_EQ(config.devices[1].clockGHz, 0.72) << spec;
  }
}

TEST(DeviceSpecParse, RejectsMalformedSpecs) {
  // Strict by design: a typo must not silently configure a different
  // machine than the experiment intended.
  for (const char* spec :
       {"", "t10,,cpu", "gtx280", "t10@x", "t10@0x", "t10@-1x", "t10@2",
        "t10*0", "t10*2*3", "t10@1x@2x", "t10*two"}) {
    EXPECT_THROW(ocl::SystemConfig::parse(spec), common::InvalidArgument)
        << "spec '" << spec << "' should be rejected";
  }
}

TEST(DeviceSpecScaled, ComposesIdempotentlyWithoutStackingSuffixes) {
  // Regression: scaled() used to append " @Nx" on every call, so
  // scaled(0.5).scaled(0.5) produced "name @0.5x @0.5x" and the factors
  // compounded unpredictably with the parser's own scaling. The suffix
  // now always reflects the single composed factor.
  const ocl::DeviceSpec base = ocl::DeviceSpec::teslaT10();
  const ocl::DeviceSpec half = base.scaled(0.5);
  EXPECT_EQ(half.name, base.name + " @0.5x");
  EXPECT_DOUBLE_EQ(half.scale, 0.5);

  const ocl::DeviceSpec quarter = half.scaled(0.5);
  EXPECT_EQ(quarter.name, base.name + " @0.25x");
  EXPECT_DOUBLE_EQ(quarter.clockGHz, base.clockGHz * 0.25);
  EXPECT_DOUBLE_EQ(quarter.memBandwidthGBs, base.memBandwidthGBs * 0.25);

  // Scaling back to 1.0 restores the clean base spec, name and all.
  const ocl::DeviceSpec roundTrip = half.scaled(2.0);
  EXPECT_EQ(roundTrip.name, base.name);
  EXPECT_DOUBLE_EQ(roundTrip.scale, 1.0);
  EXPECT_DOUBLE_EQ(roundTrip.clockGHz, base.clockGHz);
  EXPECT_DOUBLE_EQ(roundTrip.busyPowerW, base.busyPowerW);
  // PCIe and idle power never scale with the chip.
  EXPECT_DOUBLE_EQ(quarter.pcieBandwidthGBs, base.pcieBandwidthGBs);
  EXPECT_DOUBLE_EQ(quarter.idlePowerW, base.idlePowerW);
}

// ---------------------------------------------------------------------
// Runtime integration: weight modes, determinism, geometry alignment.
// ---------------------------------------------------------------------

/// Fixture for tests that build their own platform per test body (the
/// shared SkelclFixture hardcodes the uniform Tesla S1070).
class HeteroTest : public ::testing::Test {
protected:
  void initPlatform(const std::string& spec,
                    WeightMode mode = WeightMode::Even) {
    skelcl_test::useTempCacheDir();
    ocl::configureSystem(ocl::SystemConfig::parse(spec));
    skelcl::init(skelcl::DeviceSelection::allDevices());
    Runtime::instance().setWeightMode(mode);
  }

  void TearDown() override {
    ocl::FaultInjector::instance().reset();
    ::unsetenv("SKELCL_DEVICES");
    ::unsetenv("SKELCL_WEIGHTS");
    ::unsetenv("SKELCL_SCHEDULE");
    ::unsetenv("SKELCL_SCHEDULE_SEED");
    if (Runtime::instance().initialized()) {
      skelcl::terminate();
    }
  }

  static std::vector<std::size_t> chunkCounts(const Vector<float>& v) {
    std::vector<std::size_t> counts;
    for (const auto& chunk : v.state().chunks()) {
      counts.push_back(chunk.count);
    }
    return counts;
  }
};

TEST_F(HeteroTest, EnvSpecAndWeightsDriveInit) {
  skelcl_test::useTempCacheDir();
  ::setenv("SKELCL_DEVICES", "t10@0.5x*2,cpu", 1);
  ::setenv("SKELCL_WEIGHTS", "static", 1);
  skelcl::init(); // default GPU selection is overridden by the spec
  EXPECT_EQ(skelcl::deviceCount(), 3u);
  EXPECT_EQ(Runtime::instance().weightMode(), WeightMode::Static);
}

TEST_F(HeteroTest, StaticWeightsFavorFasterDevice) {
  initPlatform("t10,t10@0.5x", WeightMode::Static);
  // Peak throughput 2:1, so 9 elements split exactly {6, 3}.
  EXPECT_EQ(Runtime::instance().blockPartition(9),
            (std::vector<std::size_t>{6, 3}));

  Vector<float> v(9, 1.0f);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  EXPECT_EQ(chunkCounts(v), (std::vector<std::size_t>{6, 3}));
  EXPECT_EQ(v.state().chunks()[1].offset, 6u);
}

TEST_F(HeteroTest, MeasuredFallsBackToEvenUntilSampled) {
  initPlatform("t10,t10@0.5x", WeightMode::Measured);
  // No kernel has retired yet: the monitor has no samples, so the
  // partition is the even one, not garbage.
  EXPECT_EQ(Runtime::instance().blockPartition(10),
            (std::vector<std::size_t>{5, 5}));
}

TEST_F(HeteroTest, MeasuredModeConvergesOnSkewedPlatform) {
  initPlatform("t10,t10@0.5x", WeightMode::Measured);
  Map<float> heavy(
      "float heavy(float x) {\n"
      "  float acc = x;\n"
      "  for (int i = 0; i < 64; ++i) { acc = acc * 1.0001f + 0.5f; }\n"
      "  return acc;\n"
      "}");

  const std::size_t n = 60000;
  Vector<float> v(n, 1.0f);
  v.setDistribution(Distribution::Block);
  v.state().ensureOnDevices();
  // Round 1 runs on the even fallback split and feeds the load monitor.
  EXPECT_EQ(chunkCounts(v), (std::vector<std::size_t>{n / 2, n / 2}));
  Vector<float> out = heavy(v);
  (void)out[0]; // force completion + download

  // Round 2: a fresh redistribution sees the measured rates. The full-
  // speed device runs ~2x faster, so its share converges toward 2/3.
  Vector<float> w(n, 2.0f);
  w.setDistribution(Distribution::Block);
  w.state().ensureOnDevices();
  const auto counts = chunkCounts(w);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], n);
  EXPECT_GE(double(counts[0]), 1.5 * double(counts[1]))
      << "fast device got " << counts[0] << " vs " << counts[1];
  EXPECT_LE(double(counts[0]), 2.5 * double(counts[1]))
      << "fast device got " << counts[0] << " vs " << counts[1];

  // The skewed split still computes the right answer.
  Vector<float> res = heavy(w);
  float expected = 2.0f;
  for (int i = 0; i < 64; ++i) {
    expected = expected * 1.0001f + 0.5f;
  }
  for (std::size_t i = 0; i < n; i += 9973) {
    ASSERT_FLOAT_EQ(res[i], expected) << i;
  }
}

TEST_F(HeteroTest, UniformPlatformAllModesMatchSeedSplit) {
  // Acceptance pin: on a uniform platform every weight mode must keep
  // the exact historical even split — byte-identical outputs and chunk
  // boundaries. Measured gets symmetric samples first (a map whose
  // chunks are all equal) so its weights are exactly equal doubles.
  skelcl_test::useTempCacheDir();
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(4));
  skelcl::init(skelcl::DeviceSelection::nGPUs(4));
  Runtime::instance().setWeightMode(WeightMode::Measured);

  Map<float> triple("float triple(float x) { return 3.0f * x; }");
  Vector<float> warm(1000, 1.0f);
  warm.setDistribution(Distribution::Block);
  (void)triple(warm)[0];

  const std::vector<std::size_t> seedSplit = {251, 251, 251, 250};
  std::vector<std::vector<float>> outputs;
  for (const WeightMode mode :
       {WeightMode::Even, WeightMode::Static, WeightMode::Measured}) {
    Runtime::instance().setWeightMode(mode);
    EXPECT_EQ(Runtime::instance().blockPartition(1003), seedSplit)
        << skelcl::weightModeName(mode);

    std::vector<float> data(1003);
    std::iota(data.begin(), data.end(), 0.0f);
    Vector<float> v(data);
    v.setDistribution(Distribution::Block);
    v.state().ensureOnDevices();
    EXPECT_EQ(chunkCounts(v), seedSplit) << skelcl::weightModeName(mode);

    Vector<float> out = triple(v);
    std::vector<float> host(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      host[i] = out[i];
    }
    outputs.push_back(std::move(host));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST_F(HeteroTest, SameSpecSameSplitAcrossInitCycles) {
  // Weighted partitions are a pure function of the spec: two
  // independent init() cycles over the same machine must produce
  // identical chunk boundaries and identical outputs.
  auto run = [this] {
    initPlatform("t10*2,t10@0.5x", WeightMode::Static);
    std::vector<float> data(4097);
    std::iota(data.begin(), data.end(), 0.0f);
    Vector<float> v(data);
    v.setDistribution(Distribution::Block);
    v.state().ensureOnDevices();
    std::vector<std::size_t> layout;
    for (const auto& chunk : v.state().chunks()) {
      layout.push_back(chunk.offset);
      layout.push_back(chunk.count);
    }
    Map<float> negate("float neg(float x) { return -x; }");
    Vector<float> out = negate(v);
    std::vector<float> host(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      host[i] = out[i];
    }
    skelcl::terminate();
    return std::make_pair(layout, host);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST_F(HeteroTest, ZipSizeMismatchIsTypedAndNamesBothSides) {
  initPlatform("t10*2");
  Zip<float> add("float add(float x, float y) { return x + y; }");
  Vector<float> left(3, 1.0f);
  Vector<float> right(5, 2.0f);
  left.setDistribution(Distribution::Block);
  right.setDistribution(Distribution::Copy);
  try {
    Vector<float> out = add(left, right);
    FAIL() << "expected ZipSizeMismatch";
  } catch (const skelcl::ZipSizeMismatch& e) {
    EXPECT_EQ(e.leftSize(), 3u);
    EXPECT_EQ(e.rightSize(), 5u);
    EXPECT_EQ(e.leftDistribution(), Distribution::Block);
    EXPECT_EQ(e.rightDistribution(), Distribution::Copy);
    const std::string what = e.what();
    EXPECT_NE(what.find("3 element(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("5 element(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("copy"), std::string::npos) << what;
  }
}

TEST_F(HeteroTest, ZipAutoRedistributesWhenOnlyDistributionDiffers) {
  initPlatform("t10,t10@0.5x", WeightMode::Static);
  Zip<float> sub("float sub(float x, float y) { return x - y; }");
  std::vector<float> a(999), b(999);
  std::iota(a.begin(), a.end(), 0.0f);
  std::iota(b.begin(), b.end(), 100.0f);
  Vector<float> left(a), right(b);
  left.setDistribution(Distribution::Block);
  right.setDistribution(Distribution::Copy); // mismatched, same size
  Vector<float> out = sub(left, right);
  for (std::size_t i = 0; i < out.size(); i += 97) {
    ASSERT_FLOAT_EQ(out[i], -100.0f) << i;
  }
  // The right operand was aligned to the left's block layout in place.
  EXPECT_EQ(right.distribution(), Distribution::Block);
  ASSERT_EQ(right.state().chunks().size(), left.state().chunks().size());
  for (std::size_t i = 0; i < left.state().chunks().size(); ++i) {
    EXPECT_EQ(right.state().chunks()[i].count,
              left.state().chunks()[i].count);
  }
}

TEST_F(HeteroTest, ZipAlignsGeometryWhenMeasuredWeightsDrift) {
  // Under measured weights two block partitions made at different
  // times can disagree (the monitor keeps learning between them). Zip
  // must align the right operand to the left's *actual* chunks, not
  // assume both blocks are congruent.
  initPlatform("t10,t10@0.5x", WeightMode::Measured);
  const std::size_t n = 40000;
  std::vector<float> data(n);
  std::iota(data.begin(), data.end(), 0.0f);
  Vector<float> a(data);
  a.setDistribution(Distribution::Block);
  a.state().ensureOnDevices(); // even fallback split
  const auto evenCounts = chunkCounts(a);

  Map<float> heavy(
      "float heavy2(float x) {\n"
      "  float acc = x;\n"
      "  for (int i = 0; i < 64; ++i) { acc = acc * 1.0001f + 0.25f; }\n"
      "  return acc;\n"
      "}");
  (void)heavy(a)[0]; // feed the monitor -> weights now skewed

  Vector<float> b(data);
  b.setDistribution(Distribution::Block);
  b.state().ensureOnDevices(); // measured split, differs from a's
  EXPECT_NE(chunkCounts(b), evenCounts)
      << "test premise: the two partitions should disagree";

  Zip<float> add("float add2(float x, float y) { return x + y; }");
  Vector<float> out = add(a, b);
  for (std::size_t i = 0; i < n; i += 997) {
    ASSERT_FLOAT_EQ(out[i], 2.0f * float(i)) << i;
  }
  // b was re-staged onto a's geometry.
  EXPECT_EQ(chunkCounts(b), evenCounts);
}

// ---------------------------------------------------------------------
// Degenerate sizes: no zero-length device commands, ever.
// ---------------------------------------------------------------------

TEST_F(HeteroTest, EmptyVectorsIssueNoDeviceCommands) {
  initPlatform("t10*2,cpu");
  trace::Recorder::instance().start();

  Vector<float> empty;
  empty.setDistribution(Distribution::Block);
  Map<float> inc("float inc_e(float x) { return x + 1.0f; }");
  Vector<float> mapped = inc(empty);
  EXPECT_EQ(mapped.size(), 0u);

  Reduce<float> sum("float add(float x, float y) { return x + y; }");
  EXPECT_FLOAT_EQ(sum(empty).getValue(), 0.0f);

  MapReduce<float> sumSq("float sq(float x) { return x * x; }",
                         "float add2(float x, float y) { return x + y; }");
  EXPECT_FLOAT_EQ(sumSq(empty).getValue(), 0.0f);

  Scan<float> prefix("float add3(float x, float y) { return x + y; }");
  EXPECT_EQ(prefix(empty).size(), 0u);

  Vector<float> empty2;
  empty2.setDistribution(Distribution::Copy);
  Zip<float> mul("float mul(float x, float y) { return x * y; }");
  EXPECT_EQ(mul(empty, empty2).size(), 0u);

  empty.setDistribution(Distribution::Copy);
  empty.setDistribution(Distribution::Single);
  empty.setDistribution(Distribution::Block);

  const trace::Trace trace = trace::Recorder::instance().stop();
  EXPECT_TRUE(trace.commands.empty())
      << trace.commands.size() << " device command(s) for empty vectors";
}

TEST_F(HeteroTest, TinyVectorsNeverEnqueueZeroLengthCommands) {
  initPlatform("t10*3,t10@0.5x", WeightMode::Static);
  Map<int> inc("int inc_t(int x) { return x + 1; }");
  Reduce<int> sum("int add(int x, int y) { return x + y; }");
  Scan<int> prefix("int add2(int x, int y) { return x + y; }");

  trace::Recorder::instance().start();
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<int> data(n, 7);
    Vector<int> v(data);
    v.setDistribution(Distribution::Block); // fewer elements than devices
    Vector<int> out = inc(v);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], 8) << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(sum(v).getValue(), int(7 * n)) << "n=" << n;
    Vector<int> scanned = prefix(v); // exclusive prefix sum
    ASSERT_EQ(scanned.size(), n);
    EXPECT_EQ(scanned[n - 1], int(7 * (n - 1))) << "n=" << n;
  }
  const trace::Trace trace = trace::Recorder::instance().stop();
  for (const trace::CommandRecord& c : trace.commands) {
    if (c.kind != trace::CommandKind::Kernel) {
      EXPECT_GT(c.bytes, 0u)
          << "zero-length " << trace::commandKindLabel(c.kind)
          << " on device " << c.device;
    }
  }
}

// ---------------------------------------------------------------------
// Fault injection and schedule fuzzing on heterogeneous machines.
// ---------------------------------------------------------------------

TEST_F(HeteroTest, FaultPlanReplaysUnderHeterogeneousSpec) {
  initPlatform("t10,t10@0.5x,cpu", WeightMode::Static);
  Map<int> twice("int twice_h(int x) { return 2 * x; }");
  std::vector<int> data(512);
  std::iota(data.begin(), data.end(), 0);
  Vector<int> input(data);
  input.setDistribution(Distribution::Block);

  ocl::FaultInjector::instance().configure("write@1");
  EXPECT_THROW({ Vector<int> out = twice(input); }, ocl::TransferFailure);
  ocl::FaultInjector::instance().reset();

  // Host data survived; the retry over the weighted split is correct.
  Vector<int> out = twice(input);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], 2 * int(i)) << i;
  }
}

TEST_F(HeteroTest, SchedulesAreOutputInvariantOnSkewedPlatform) {
  // Mirrors the schedule-fuzzing suite on a heterogeneous machine: the
  // weighted chunks differ per device, but every legal schedule of the
  // same command DAG must produce bit-identical results.
  auto run = [this] {
    initPlatform("t10*2,t10@0.5x", WeightMode::Static);
    std::vector<float> a(3001), b(3001);
    std::iota(a.begin(), a.end(), 1.0f);
    std::iota(b.begin(), b.end(), 0.5f);
    Vector<float> va(a), vb(b);
    va.setDistribution(Distribution::Block);
    Zip<float> mul("float mul_s(float x, float y) { return x * y; }");
    Reduce<float> sum("float add_s(float x, float y) { return x + y; }");
    Vector<float> prod = mul(va, vb);
    const float dot = sum(prod).getValue();
    std::vector<float> host(prod.size());
    for (std::size_t i = 0; i < prod.size(); ++i) {
      host[i] = prod[i];
    }
    skelcl::terminate();
    return std::make_pair(dot, host);
  };

  ::setenv("SKELCL_SCHEDULE", "fifo", 1);
  const auto baseline = run();
  for (int seed : {1, 2, 3}) {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
    const auto fuzzed = run();
    EXPECT_EQ(baseline.first, fuzzed.first) << "seed " << seed;
    EXPECT_EQ(baseline.second, fuzzed.second) << "seed " << seed;
  }
}

} // namespace
