// Deterministic fault injection at the ocl layer: plan parsing, the
// trigger kinds (nth-call, probability, pattern, always, =lost), the
// typed exceptions each site raises, and — the point of the exercise —
// that a failed enqueue leaves queue/timeline state exactly as if it had
// never been attempted, and that equal (plan, seed, call sequence)
// triples replay byte-identical failure sequences.
#include <gtest/gtest.h>

#include <cstring>

#include "ocl/ocl.h"

namespace {

using ocl::FaultInjector;
using ocl::FaultSite;

class OclFault : public ::testing::Test {
protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
    gpus_ = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  }

  // The injector is process-global: never leak a plan into other tests.
  void TearDown() override { FaultInjector::instance().reset(); }

  std::vector<ocl::Device> gpus_;
};

TEST_F(OclFault, DisarmedByDefault) {
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_FALSE(
      FaultInjector::instance().check(FaultSite::Write, "write_buffer"));
}

TEST_F(OclFault, MalformedPlansThrow) {
  auto& inj = FaultInjector::instance();
  EXPECT_THROW(inj.configure("frobnicate@1"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("alloc"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("@3"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("alloc@"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("alloc@x"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("alloc@p"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("alloc@pbogus"), common::InvalidArgument);
  EXPECT_THROW(inj.configure("write@1=explode"), common::InvalidArgument);
  // A failed configure never leaves a half-armed plan behind.
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST_F(OclFault, ValidPlansParse) {
  auto& inj = FaultInjector::instance();
  EXPECT_NO_THROW(inj.configure("alloc@1"));
  EXPECT_NO_THROW(inj.configure("build@2, transfer@3"));
  EXPECT_NO_THROW(inj.configure("kernel~skelcl_map@2"));
  EXPECT_NO_THROW(inj.configure("enqueue@p0.25", 7));
  EXPECT_NO_THROW(inj.configure("any@*"));
  EXPECT_NO_THROW(inj.configure("write@1=lost"));
  EXPECT_TRUE(FaultInjector::enabled());
  inj.configure(""); // empty plan disarms
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST_F(OclFault, NthCallTriggerFiresExactlyOnce) {
  FaultInjector::instance().configure("write@2");
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 10, 3);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  EXPECT_NO_THROW(
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data()));
  EXPECT_THROW(queue.enqueueWriteBuffer(buf, 0, data.size(), data.data()),
               ocl::TransferFailure);
  EXPECT_NO_THROW(
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data()));
  EXPECT_EQ(FaultInjector::instance().siteCalls(FaultSite::Write), 3u);
  EXPECT_EQ(FaultInjector::instance().firedLog().size(), 1u);
}

TEST_F(OclFault, PatternRestrictsByLabel) {
  FaultInjector::instance().configure("kernel~nomatch@1");
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  ocl::Program program = ctx.createProgram(
      "__kernel void noop(__global int* p) { p[get_global_id(0)] = 1; }");
  program.build();
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], 64 * sizeof(int));
  ocl::Kernel kernel = program.createKernel("noop");
  kernel.setArg(0, buf);
  // Label "noop" does not contain "nomatch": the rule never fires.
  EXPECT_NO_THROW(queue.enqueueNDRange(kernel, ocl::NDRange1D{64, 64}));

  FaultInjector::instance().configure("kernel~noop@1");
  ocl::Kernel again = program.createKernel("noop");
  again.setArg(0, buf);
  EXPECT_THROW(queue.enqueueNDRange(again, ocl::NDRange1D{64, 64}),
               ocl::LaunchFailure);
}

TEST_F(OclFault, AllocFaultCarriesStatusAndDevice) {
  FaultInjector::instance().configure("alloc@*");
  ocl::Context ctx(gpus_);
  try {
    ctx.createBuffer(gpus_[1], 1 << 20);
    FAIL() << "expected AllocFailure";
  } catch (const ocl::AllocFailure& e) {
    EXPECT_EQ(e.status(), ocl::Status::MemObjectAllocationFailure);
    EXPECT_EQ(e.deviceIndex(), 1u);
  }
  // The failed allocation must not count against the device's memory.
  EXPECT_EQ(gpus_[1].state().allocatedBytes(), 0u);
}

TEST_F(OclFault, BuildFaultLeavesProgramRebuildable) {
  FaultInjector::instance().configure("build@1");
  ocl::Context ctx({gpus_[0]});
  ocl::Program program = ctx.createProgram(
      "__kernel void noop(__global int* p) { p[0] = 1; }");
  try {
    program.build();
    FAIL() << "expected BuildError";
  } catch (const ocl::BuildError& e) {
    EXPECT_NE(std::string(e.log()).find("injected"), std::string::npos);
  }
  EXPECT_FALSE(program.isBuilt());
  // The fault was one-shot; the same program builds fine afterwards.
  EXPECT_NO_THROW(program.build());
  EXPECT_TRUE(program.isBuilt());
}

TEST_F(OclFault, TruncatedReadReportsByteCounts) {
  FaultInjector::instance().configure("read@1");
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<std::uint8_t> src(4096, 0xab);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], src.size());
  queue.enqueueWriteBuffer(buf, 0, src.size(), src.data());

  std::vector<std::uint8_t> dst(src.size(), 0);
  try {
    queue.enqueueReadBuffer(buf, 0, dst.size(), dst.data());
    FAIL() << "expected TransferFailure";
  } catch (const ocl::TransferFailure& e) {
    EXPECT_EQ(e.bytesRequested(), dst.size());
    EXPECT_EQ(e.bytesTransferred(), dst.size() / 2);
    EXPECT_EQ(e.deviceIndex(), 0u);
  }
  // Truncation is real: exactly the first half of the bytes landed.
  EXPECT_EQ(dst[dst.size() / 2 - 1], 0xab);
  EXPECT_EQ(dst[dst.size() / 2], 0u);
}

TEST_F(OclFault, FailedEnqueueLeavesQueueStateConsistent) {
  FaultInjector::instance().configure("write@2");
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0], ocl::Backend::OpenCL,
                          ocl::QueueOrder::OutOfOrder);
  std::vector<char> data(1 << 16, 5);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());

  ocl::Event e1 =
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  const std::uint64_t readyAfterFirst =
      gpus_[0].state().readyTimeNs(ocl::Engine::HostToDevice);

  EXPECT_THROW(queue.enqueueWriteBuffer(buf, 0, data.size(), data.data()),
               ocl::TransferFailure);
  // The failed command retired nothing: no engine time occupied, no
  // command id consumed, and the next enqueue behaves as if the failure
  // had never been attempted.
  EXPECT_EQ(gpus_[0].state().readyTimeNs(ocl::Engine::HostToDevice),
            readyAfterFirst);
  ocl::Event e3 =
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_EQ(e3.commandId(), e1.commandId() + 1);
  EXPECT_GE(e3.startNs(), e1.endNs()); // FIFO on the same engine
  EXPECT_NO_THROW(queue.finish());
}

TEST_F(OclFault, DeviceLostPoisonsOnlyThatDevice) {
  FaultInjector::instance().configure("write@1=lost");
  ocl::Context ctx(gpus_);
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  std::vector<char> data(256, 1);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());

  EXPECT_THROW(q0.enqueueWriteBuffer(b0, 0, data.size(), data.data()),
               ocl::DeviceLost);
  EXPECT_TRUE(gpus_[0].state().lost());
  // Every later command on the lost device fails the same way...
  EXPECT_THROW(q0.enqueueWriteBuffer(b0, 0, data.size(), data.data()),
               ocl::DeviceLost);
  EXPECT_THROW(ctx.createBuffer(gpus_[0], 64), ocl::DeviceLost);
  // ...while the sibling device keeps working.
  EXPECT_NO_THROW(q1.enqueueWriteBuffer(b1, 0, data.size(), data.data()));
  // configureSystem builds fresh devices: the loss does not persist.
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(2));
  auto fresh = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  EXPECT_FALSE(fresh[0].state().lost());
}

TEST_F(OclFault, ProbabilityTriggerIsSeedReproducible) {
  auto roll = [&](std::uint64_t seed) {
    FaultInjector::instance().configure("write@p0.5", seed);
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
    auto gpu = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU)[0];
    ocl::Context ctx({gpu});
    ocl::CommandQueue queue(gpu);
    std::vector<char> data(64, 0);
    ocl::Buffer buf = ctx.createBuffer(gpu, data.size());
    std::vector<bool> failed;
    for (int i = 0; i < 32; ++i) {
      try {
        queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
        failed.push_back(false);
      } catch (const ocl::TransferFailure&) {
        failed.push_back(true);
      }
    }
    return failed;
  };
  const auto a = roll(42);
  const auto b = roll(42);
  const auto c = roll(43);
  EXPECT_EQ(a, b); // same seed, same call sequence -> same failures
  EXPECT_NE(a, c); // 1-in-2^32 flake odds; the seeds are decorrelated
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(OclFault, FiredLogReplaysByteIdentically) {
  auto run = [&] {
    FaultInjector::instance().configure(
        "write@2, read@p0.5, kernel~noop@1=lost", 1234);
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
    auto gpu = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU)[0];
    ocl::Context ctx({gpu});
    ocl::CommandQueue queue(gpu);
    std::vector<char> data(128, 0);
    ocl::Buffer buf = ctx.createBuffer(gpu, data.size());
    for (int i = 0; i < 8; ++i) {
      try {
        queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
      } catch (const ocl::ClError&) {
      }
      try {
        queue.enqueueReadBuffer(buf, 0, data.size(), data.data());
      } catch (const ocl::ClError&) {
      }
    }
    return FaultInjector::instance().firedLog();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "fired-fault log diverges at entry " << i;
  }
}

TEST_F(OclFault, TransferGroupCoversAllThreeSites) {
  FaultInjector::instance().configure("transfer@*");
  ocl::Context ctx(gpus_);
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(256, 1);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());
  EXPECT_THROW(queue.enqueueWriteBuffer(b0, 0, data.size(), data.data()),
               ocl::TransferFailure);
  EXPECT_THROW(queue.enqueueReadBuffer(b0, 0, data.size(), data.data()),
               ocl::TransferFailure);
  EXPECT_THROW(queue.enqueueCopyBuffer(b0, 0, b1, 0, data.size()),
               ocl::TransferFailure);
}

TEST_F(OclFault, SeededShufflePreservesConstraints) {
  // Jittered dispatch may delay starts but can never violate engine FIFO
  // or dependency ordering, and the data effect is unchanged.
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0], ocl::Backend::OpenCL,
                          ocl::QueueOrder::OutOfOrder,
                          ocl::SchedulePolicy::seededShuffle(99));
  std::vector<char> data(1 << 16, 7);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e1 =
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  ocl::Event e2 =
      queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  std::vector<char> out(data.size(), 0);
  ocl::Event e3 = queue.enqueueReadBuffer(buf, 0, out.size(), out.data(),
                                          /*blocking=*/true, {e2});
  EXPECT_GE(e2.startNs(), e1.endNs()); // H2D engine FIFO still holds
  EXPECT_GE(e3.startNs(), e2.endNs()); // the dependency still holds
  EXPECT_EQ(out, data);
}

} // namespace
