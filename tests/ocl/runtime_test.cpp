// Tests for the simulated OpenCL host runtime: discovery, buffers,
// programs/kernels, queues, events.
#include <gtest/gtest.h>

#include <numeric>

#include "ocl/ocl.h"

namespace {

class OclRuntime : public ::testing::Test {
protected:
  void SetUp() override {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(4));
  }
};

TEST_F(OclRuntime, PlatformDiscovery) {
  const auto platforms = ocl::getPlatforms();
  ASSERT_EQ(platforms.size(), 1u);
  EXPECT_EQ(platforms[0].devices(ocl::DeviceType::GPU).size(), 4u);
  EXPECT_EQ(platforms[0].devices(ocl::DeviceType::CPU).size(), 1u);
  EXPECT_EQ(platforms[0].devices().size(), 5u);
}

TEST_F(OclRuntime, DeviceSpecsMatchPaperTestbed) {
  const auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  const auto& spec = gpus[0].spec();
  EXPECT_EQ(spec.computeUnits * spec.pesPerUnit, 240u); // 240 SP cores
  EXPECT_DOUBLE_EQ(spec.clockGHz, 1.44);
  EXPECT_EQ(spec.globalMemBytes, 4ull << 30);
  EXPECT_DOUBLE_EQ(spec.memBandwidthGBs, 102.0);
}

TEST_F(OclRuntime, BufferAllocationTracking) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  EXPECT_EQ(gpus[0].state().allocatedBytes(), 0u);
  {
    ocl::Buffer b = ctx.createBuffer(gpus[0], 1024);
    EXPECT_EQ(gpus[0].state().allocatedBytes(), 1024u);
    EXPECT_EQ(b.size(), 1024u);
  }
  EXPECT_EQ(gpus[0].state().allocatedBytes(), 0u); // released
}

TEST_F(OclRuntime, OutOfMemoryThrows) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  EXPECT_THROW(ctx.createBuffer(gpus[0], 5ull << 30), common::Error);
}

TEST_F(OclRuntime, WriteReadRoundTrip) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  std::vector<int> in(256), out(256);
  std::iota(in.begin(), in.end(), 7);
  ocl::Buffer buf = ctx.createBuffer(gpus[0], in.size() * sizeof(int));
  queue.enqueueWriteBuffer(buf, 0, in.size() * sizeof(int), in.data());
  queue.enqueueReadBuffer(buf, 0, in.size() * sizeof(int), out.data());
  EXPECT_EQ(in, out);
}

TEST_F(OclRuntime, PartialWritesWithOffset) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Buffer buf = ctx.createBuffer(gpus[0], 8 * sizeof(int));
  std::vector<int> zeros(8, 0), ones(4, 1), out(8);
  queue.enqueueWriteBuffer(buf, 0, 8 * sizeof(int), zeros.data());
  queue.enqueueWriteBuffer(buf, 4 * sizeof(int), 4 * sizeof(int),
                           ones.data());
  queue.enqueueReadBuffer(buf, 0, 8 * sizeof(int), out.data());
  EXPECT_EQ(out, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
}

TEST_F(OclRuntime, OutOfRangeTransfersRejected) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Buffer buf = ctx.createBuffer(gpus[0], 16);
  char data[32] = {};
  EXPECT_THROW(queue.enqueueWriteBuffer(buf, 0, 32, data),
               common::InvalidArgument);
  EXPECT_THROW(queue.enqueueReadBuffer(buf, 8, 16, data),
               common::InvalidArgument);
}

TEST_F(OclRuntime, ProgramBuildAndKernelRun) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Program program = ctx.createProgram(R"(
    __kernel void twice(__global int* data, uint n) {
      size_t i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2;
    }
  )");
  program.build();
  EXPECT_TRUE(program.isBuilt());
  EXPECT_EQ(program.kernelNames(), std::vector<std::string>{"twice"});

  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  ocl::Buffer buf = ctx.createBuffer(gpus[0], data.size() * sizeof(int));
  queue.enqueueWriteBuffer(buf, 0, data.size() * sizeof(int), data.data());

  ocl::Kernel kernel = program.createKernel("twice");
  kernel.setArg(0, buf);
  kernel.setArg(1, std::uint32_t(100));
  queue.enqueueNDRange(kernel, ocl::NDRange1D{128, 32});
  queue.enqueueReadBuffer(buf, 0, data.size() * sizeof(int), data.data());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(data[std::size_t(i)], 2 * i);
  }
}

TEST_F(OclRuntime, BuildErrorCarriesLogWithLocation) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::Program program =
      ctx.createProgram("__kernel void k() { undeclared += 1; }");
  try {
    program.build();
    FAIL() << "expected BuildError";
  } catch (const ocl::BuildError& e) {
    EXPECT_NE(e.log().find("undeclared"), std::string::npos) << e.log();
    EXPECT_NE(e.log().find("^"), std::string::npos) << e.log();
  }
}

TEST_F(OclRuntime, BinaryRoundTripThroughProgram) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::Program program = ctx.createProgram(
      "__kernel void k(__global int* d) { d[get_global_id(0)] = 9; }");
  program.build();
  ocl::Program loaded = ctx.createProgramFromBinary(program.binary());
  EXPECT_TRUE(loaded.isBuilt());

  ocl::CommandQueue queue(gpus[0]);
  std::vector<int> data(4, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus[0], sizeof(int) * 4);
  queue.enqueueWriteBuffer(buf, 0, sizeof(int) * 4, data.data());
  ocl::Kernel kernel = loaded.createKernel("k");
  kernel.setArg(0, buf);
  queue.enqueueNDRange(kernel, ocl::NDRange1D{4, 4});
  queue.enqueueReadBuffer(buf, 0, sizeof(int) * 4, data.data());
  EXPECT_EQ(data, (std::vector<int>{9, 9, 9, 9}));
}

TEST_F(OclRuntime, KernelArgValidation) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::Program program = ctx.createProgram(
      "__kernel void k(__global int* d, float x, __local int* s) {}");
  program.build();
  ocl::Kernel kernel = program.createKernel("k");
  ocl::Buffer buf = ctx.createBuffer(gpus[0], 16);

  EXPECT_THROW(kernel.setArg(0, 1.0f), common::InvalidArgument);
  EXPECT_THROW(kernel.setArg(1, buf), common::InvalidArgument);
  EXPECT_THROW(kernel.setArg(3, buf), common::InvalidArgument);
  EXPECT_THROW(kernel.setArgLocal(0, 64), common::InvalidArgument);
  EXPECT_NO_THROW(kernel.setArg(0, buf));
  EXPECT_NO_THROW(kernel.setArg(1, 2)); // int converts to float param
  EXPECT_NO_THROW(kernel.setArgLocal(2, 64));

  // Launch with a missing argument is rejected.
  ocl::Kernel incomplete = program.createKernel("k");
  incomplete.setArg(0, buf);
  ocl::CommandQueue queue(gpus[0]);
  EXPECT_THROW(queue.enqueueNDRange(incomplete, ocl::NDRange1D{4, 4}),
               common::InvalidArgument);
}

TEST_F(OclRuntime, ScalarArgConversionToParamType) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Program program = ctx.createProgram(
      "__kernel void k(__global float* out, float x) { out[0] = x; }");
  program.build();
  ocl::Buffer buf = ctx.createBuffer(gpus[0], sizeof(float));
  ocl::Kernel kernel = program.createKernel("k");
  kernel.setArg(0, buf);
  kernel.setArg(1, 3); // int -> float parameter
  queue.enqueueNDRange(kernel, ocl::NDRange1D{1, 1});
  float out = 0;
  queue.enqueueReadBuffer(buf, 0, sizeof(float), &out);
  EXPECT_FLOAT_EQ(out, 3.0f);
}

TEST_F(OclRuntime, UnknownKernelNameThrows) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::Program program = ctx.createProgram("__kernel void k() {}");
  program.build();
  EXPECT_THROW(program.createKernel("missing"), common::InvalidArgument);
}

TEST_F(OclRuntime, QueueRejectsForeignBuffers) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0], gpus[1]});
  ocl::CommandQueue queue0(gpus[0]);
  ocl::Buffer onGpu1 = ctx.createBuffer(gpus[1], 16);
  char data[16] = {};
  EXPECT_THROW(queue0.enqueueWriteBuffer(onGpu1, 0, 16, data),
               common::InvalidArgument);
}

TEST_F(OclRuntime, CrossDeviceCopy) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0], gpus[1]});
  ocl::CommandQueue q0(gpus[0]);
  std::vector<int> in = {1, 2, 3, 4}, out(4, 0);
  ocl::Buffer a = ctx.createBuffer(gpus[0], 16);
  ocl::Buffer b = ctx.createBuffer(gpus[1], 16);
  q0.enqueueWriteBuffer(a, 0, 16, in.data());
  q0.enqueueCopyBuffer(a, 0, b, 0, 16);
  ocl::CommandQueue q1(gpus[1]);
  q1.enqueueReadBuffer(b, 0, 16, out.data());
  EXPECT_EQ(in, out);
}

TEST_F(OclRuntime, SameDeviceCopyOnForeignQueueThrows) {
  // Regression: both buffers live on gpu1 but the queue belongs to gpu0.
  // The on-device copy path used to skip the ownership check and charge
  // gpu0's timeline with gpu1's copy.
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0], gpus[1]});
  ocl::CommandQueue q0(gpus[0]);
  ocl::Buffer a = ctx.createBuffer(gpus[1], 16);
  ocl::Buffer b = ctx.createBuffer(gpus[1], 16);
  EXPECT_THROW(q0.enqueueCopyBuffer(a, 0, b, 0, 16),
               common::InvalidArgument);
  // On the owning queue the same copy is fine.
  ocl::CommandQueue q1(gpus[1]);
  EXPECT_NO_THROW(q1.enqueueCopyBuffer(a, 0, b, 0, 16));
}

TEST_F(OclRuntime, WorkGroupSizeLimitEnforced) {
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  ocl::Context ctx({gpus[0]});
  ocl::CommandQueue queue(gpus[0]);
  ocl::Program program = ctx.createProgram("__kernel void k() {}");
  program.build();
  ocl::Kernel kernel = program.createKernel("k");
  EXPECT_THROW(queue.enqueueNDRange(kernel, ocl::NDRange1D{2048, 1024}),
               common::InvalidArgument);
}

} // namespace
