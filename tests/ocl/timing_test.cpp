// Tests for the virtual-time model: device timelines, event profiling,
// transfer and kernel duration scaling, backend profiles.
#include <gtest/gtest.h>

#include "ocl/ocl.h"

namespace {

class OclTiming : public ::testing::Test {
protected:
  void SetUp() override {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(4));
    gpus_ = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  }

  std::vector<ocl::Device> gpus_;
};

TEST_F(OclTiming, ConfigureResetsClocks) {
  EXPECT_EQ(ocl::hostTimeNs(), 0u);
  ocl::advanceHostTimeNs(100);
  EXPECT_EQ(ocl::hostTimeNs(), 100u);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
  EXPECT_EQ(ocl::hostTimeNs(), 0u);
}

TEST_F(OclTiming, TransferDurationScalesWithSize) {
  const ocl::TimingModel model(ocl::DeviceSpec::teslaT10(),
                               ocl::Backend::OpenCL);
  const auto small = model.transferDurationNs(1 << 10);
  const auto large = model.transferDurationNs(64 << 20);
  EXPECT_LT(small, large);
  // 64 MiB over 5.2 GB/s is ~12.9 ms; latency is negligible there.
  EXPECT_NEAR(double(large), 64e6 * (1 << 20) / (5.2e9 * 1e6) * 1e9, 1e6);
  // Small transfers are latency-bound (8 us).
  EXPECT_GT(small, 8'000u);
  EXPECT_LT(small, 9'000u);
}

TEST_F(OclTiming, EventsExposeProfilingTimes) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 20, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GT(e.endNs(), e.startNs());
  EXPECT_GE(e.startNs(), e.queuedNs());
  EXPECT_EQ(e.durationNs(), e.endNs() - e.startNs());
}

TEST_F(OclTiming, ProfilingInfoMirrorsClProfilingQueries) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 20, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());

  // The four CL_PROFILING_COMMAND_* timestamps, in their CL ordering.
  const ocl::ProfilingInfo info = e.profilingInfo();
  EXPECT_LE(info.queuedNs, info.submitNs);
  EXPECT_LE(info.submitNs, info.startNs);
  EXPECT_LE(info.startNs, info.endNs);
  EXPECT_EQ(info.queuedNs, e.queuedNs());
  EXPECT_EQ(info.submitNs, e.submitNs());
  EXPECT_EQ(info.startNs, e.startNs());
  EXPECT_EQ(info.endNs, e.endNs());

  // Commands carry unique, ascending ids for trace correlation.
  ocl::Event e2 = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GT(e.commandId(), 0u);
  EXPECT_GT(e2.commandId(), e.commandId());
}

TEST_F(OclTiming, InOrderQueueSerializesCommands) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 16, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e1 = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  ocl::Event e2 = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GE(e2.startNs(), e1.endNs());
}

TEST_F(OclTiming, IndependentDevicesOverlapInVirtualTime) {
  ocl::Context ctx({gpus_[0], gpus_[1]});
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  std::vector<char> data(8 << 20, 0);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());
  ocl::Event e0 = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  ocl::Event e1 = q1.enqueueWriteBuffer(b1, 0, data.size(), data.data());
  // The second transfer starts long before the first ends: the devices'
  // timelines overlap instead of serializing.
  EXPECT_LT(e1.startNs(), e0.endNs());
}

TEST_F(OclTiming, FinishAdvancesHostClock) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(16 << 20, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_LT(ocl::hostTimeNs(), e.endNs()); // enqueue returns "immediately"
  queue.finish();
  EXPECT_GE(ocl::hostTimeNs(), e.endNs());
}

TEST_F(OclTiming, DependenciesDelayCommandStart) {
  ocl::Context ctx({gpus_[0], gpus_[1]});
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  std::vector<char> data(8 << 20, 0);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());
  ocl::Event e0 = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  ocl::Event e1 =
      q1.enqueueWriteBuffer(b1, 0, data.size(), data.data(), {e0});
  EXPECT_GE(e1.startNs(), e0.endNs());
}

std::uint64_t runMapKernel(const ocl::Device& device, ocl::Backend backend,
                           std::size_t n) {
  ocl::Context ctx({device});
  ocl::CommandQueue queue(device, backend);
  ocl::Program program = ctx.createProgram(R"(
    __kernel void f(__global float* data, uint n) {
      size_t i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2.0f + 1.0f;
    }
  )");
  program.build();
  std::vector<float> data(n, 1.0f);
  ocl::Buffer buf = ctx.createBuffer(device, n * sizeof(float));
  queue.enqueueWriteBuffer(buf, 0, n * sizeof(float), data.data());
  ocl::Kernel kernel = program.createKernel("f");
  kernel.setArg(0, buf);
  kernel.setArg(1, std::uint32_t(n));
  ocl::Event e =
      queue.enqueueNDRange(kernel, ocl::NDRange1D{(n + 255) / 256 * 256,
                                                  256});
  return e.durationNs();
}

TEST_F(OclTiming, KernelDurationScalesWithWork) {
  const auto small = runMapKernel(gpus_[0], ocl::Backend::OpenCL, 1 << 12);
  const auto large = runMapKernel(gpus_[1], ocl::Backend::OpenCL, 1 << 18);
  EXPECT_GT(large, small);
  // 64x the work; the fixed launch overhead dominates the small case,
  // so the observed ratio is far below 64 but must still be substantial.
  EXPECT_GT(double(large) / double(small), 4.0);
  EXPECT_LT(double(large) / double(small), 64.0);
}

TEST_F(OclTiming, CudaBackendIsFasterThanOpenCl) {
  const auto opencl = runMapKernel(gpus_[0], ocl::Backend::OpenCL, 1 << 16);
  const auto cuda = runMapKernel(gpus_[1], ocl::Backend::Cuda, 1 << 16);
  EXPECT_LT(cuda, opencl);
  // The calibrated gap is ~1.3x on compute-bound kernels plus the
  // launch-overhead difference; allow a generous window.
  EXPECT_GT(double(opencl) / double(cuda), 1.05);
  EXPECT_LT(double(opencl) / double(cuda), 1.8);
}

// --- Engine timelines and out-of-order scheduling (overlap model) ---

class OclEngines : public OclTiming {
protected:
  void SetUp() override {
    OclTiming::SetUp();
    ctx_ = ocl::Context({gpus_[0]});
    queue_ = ocl::CommandQueue(gpus_[0], ocl::Backend::OpenCL,
                               ocl::QueueOrder::OutOfOrder);
    program_ = ctx_.createProgram(R"(
      __kernel void f(__global float* data, uint n) {
        size_t i = get_global_id(0);
        if (i < n) data[i] = data[i] * 2.0f + 1.0f;
      }
    )");
    program_.build();
  }

  ocl::Event launchKernel(const ocl::Buffer& buf, std::size_t n,
                          const std::vector<ocl::Event>& deps = {}) {
    ocl::Kernel kernel = program_.createKernel("f");
    kernel.setArg(0, buf);
    kernel.setArg(1, std::uint32_t(n));
    return queue_.enqueueNDRange(
        kernel, ocl::NDRange1D{(n + 255) / 256 * 256, 256}, deps);
  }

  ocl::Context ctx_;
  ocl::CommandQueue queue_;
  ocl::Program program_;
};

TEST_F(OclEngines, CommandsReportTheirEngine) {
  std::vector<float> data(1 << 12, 1.0f);
  const std::size_t bytes = data.size() * sizeof(float);
  ocl::Buffer buf = ctx_.createBuffer(gpus_[0], bytes);
  ocl::Event up = queue_.enqueueWriteBuffer(buf, 0, bytes, data.data());
  ocl::Event k = launchKernel(buf, data.size(), {up});
  ocl::Event down = queue_.enqueueReadBuffer(buf, 0, bytes, data.data(),
                                             /*blocking=*/false, {k});
  EXPECT_EQ(up.engine(), ocl::Engine::HostToDevice);
  EXPECT_EQ(k.engine(), ocl::Engine::Compute);
  EXPECT_EQ(down.engine(), ocl::Engine::DeviceToHost);
}

TEST_F(OclEngines, IndependentWriteOverlapsCompute) {
  // A kernel occupies the compute engine; an independent upload runs on
  // the free H2D DMA engine and starts before the kernel ends — the
  // overlap a single-timeline device model cannot express.
  std::vector<float> a(1 << 18, 1.0f), b(8 << 20, 0.0f);
  ocl::Buffer bufA = ctx_.createBuffer(gpus_[0], a.size() * sizeof(float));
  ocl::Buffer bufB = ctx_.createBuffer(gpus_[0], b.size() * sizeof(float));
  ocl::Event seed = queue_.enqueueWriteBuffer(
      bufA, 0, a.size() * sizeof(float), a.data());
  ocl::Event k = launchKernel(bufA, a.size(), {seed});
  ocl::Event up = queue_.enqueueWriteBuffer(
      bufB, 0, b.size() * sizeof(float), b.data());
  EXPECT_LT(up.startNs(), k.endNs());
  EXPECT_GT(up.endNs(), k.startNs()); // genuinely concurrent intervals
}

TEST_F(OclEngines, DependentCommandNeverStartsBeforeDependency) {
  std::vector<float> data(4 << 20, 1.0f);
  const std::size_t bytes = data.size() * sizeof(float);
  ocl::Buffer buf = ctx_.createBuffer(gpus_[0], bytes);
  ocl::Event up = queue_.enqueueWriteBuffer(buf, 0, bytes, data.data());
  ocl::Event k = launchKernel(buf, data.size(), {up});
  EXPECT_GE(k.startNs(), up.endNs());
  ocl::Event down = queue_.enqueueReadBuffer(buf, 0, bytes, data.data(),
                                             /*blocking=*/false, {k});
  EXPECT_GE(down.startNs(), k.endNs());
}

TEST_F(OclEngines, SameEngineExecutesFifo) {
  // No explicit dependency, but both commands occupy the H2D DMA engine:
  // they serialize FIFO even on an out-of-order queue.
  std::vector<float> data(1 << 20, 1.0f);
  const std::size_t bytes = data.size() * sizeof(float);
  ocl::Buffer buf = ctx_.createBuffer(gpus_[0], bytes);
  ocl::Event e1 = queue_.enqueueWriteBuffer(buf, 0, bytes, data.data());
  ocl::Event e2 = queue_.enqueueWriteBuffer(buf, 0, bytes, data.data());
  EXPECT_GE(e2.startNs(), e1.endNs());
}

TEST_F(OclEngines, FinishWaitsForAllThreeEngines) {
  std::vector<float> a(1 << 18, 1.0f), b(8 << 20, 0.0f);
  std::vector<float> out(1 << 18, 0.0f);
  ocl::Buffer bufA = ctx_.createBuffer(gpus_[0], a.size() * sizeof(float));
  ocl::Buffer bufB = ctx_.createBuffer(gpus_[0], b.size() * sizeof(float));
  ocl::Event seed = queue_.enqueueWriteBuffer(
      bufA, 0, a.size() * sizeof(float), a.data());
  ocl::Event k = launchKernel(bufA, a.size(), {seed});
  ocl::Event down = queue_.enqueueReadBuffer(
      bufA, 0, out.size() * sizeof(float), out.data(),
      /*blocking=*/false, {k});
  ocl::Event up = queue_.enqueueWriteBuffer(
      bufB, 0, b.size() * sizeof(float), b.data());
  const std::uint64_t lastEnd =
      std::max({k.endNs(), down.endNs(), up.endNs()});
  EXPECT_LT(ocl::hostTimeNs(), lastEnd); // enqueues returned immediately
  queue_.finish();
  EXPECT_EQ(ocl::hostTimeNs(), lastEnd); // max over all three engines
}

TEST_F(OclEngines, InOrderQueueSerializesAcrossEngines) {
  // The same command pair on an in-order queue: the independent upload
  // still waits for the kernel (classic single-timeline behavior).
  ocl::CommandQueue inOrder(gpus_[0]);
  std::vector<float> a(1 << 18, 1.0f), b(8 << 20, 0.0f);
  ocl::Buffer bufA = ctx_.createBuffer(gpus_[0], a.size() * sizeof(float));
  ocl::Buffer bufB = ctx_.createBuffer(gpus_[0], b.size() * sizeof(float));
  inOrder.enqueueWriteBuffer(bufA, 0, a.size() * sizeof(float), a.data());
  ocl::Kernel kernel = program_.createKernel("f");
  kernel.setArg(0, bufA);
  kernel.setArg(1, std::uint32_t(a.size()));
  ocl::Event k = inOrder.enqueueNDRange(
      kernel, ocl::NDRange1D{(a.size() + 255) / 256 * 256, 256});
  ocl::Event up = inOrder.enqueueWriteBuffer(
      bufB, 0, b.size() * sizeof(float), b.data());
  EXPECT_GE(up.startNs(), k.endNs());
}

TEST_F(OclTiming, KernelDurationAccumulatesFractionalGroupCycles) {
  // Regression: per-work-group truncation of sumCycles / pesPerUnit
  // under-billed kernels whose groups are narrower than one CU's PE
  // width. A synthetic 1-CU, 8-PE, 1 GHz device makes the arithmetic
  // exact: 1000 groups of max(12/8, 1) = 1.5 cycles accumulate to 1500
  // cycles, not the 1000 the truncating model charged.
  ocl::DeviceSpec spec = ocl::DeviceSpec::teslaT10();
  spec.computeUnits = 1;
  spec.pesPerUnit = 8;
  spec.clockGHz = 1.0;
  spec.memBandwidthGBs = 1e9; // memory never the roofline here
  const ocl::TimingModel model(spec, ocl::Backend::Cuda); // efficiency 1.0

  clc::LaunchStats stats;
  stats.groups.assign(1000, clc::GroupCost{12, 1});
  const auto overhead =
      ocl::BackendProfile::forBackend(ocl::Backend::Cuda).launchOverheadNs;
  EXPECT_EQ(model.kernelDurationNs(stats), overhead + 1500u);

  // Groups with sumCycles < pesPerUnit keep their fractional cost too:
  // 100 groups of max(4/8, 0) = 0.5 cycles bill ceil(50) = 50 ns, where
  // truncation charged zero.
  stats.groups.assign(100, clc::GroupCost{4, 0});
  EXPECT_EQ(model.kernelDurationNs(stats), overhead + 50u);
}

TEST_F(OclTiming, PeerCopyLegsOverlapInsteadOfSumming) {
  // Regression: the staged cross-device copy charged src-D2H plus
  // dst-H2D as a strict sum — the full PCIe latency and wire time
  // twice. The legs pipeline: identical devices pay exactly one leg's
  // latency + wire, the same as a single host transfer.
  ocl::Context ctx({gpus_[0], gpus_[1]});
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  const std::size_t bytes = 4 << 20;
  std::vector<char> data(bytes, 1);
  ocl::Buffer src = ctx.createBuffer(gpus_[0], bytes);
  ocl::Buffer dst = ctx.createBuffer(gpus_[1], bytes);
  ocl::Event up = q0.enqueueWriteBuffer(src, 0, bytes, data.data());
  ocl::Event copy = q1.enqueueCopyBuffer(src, 0, dst, 0, bytes, {up});

  const ocl::TimingModel model(gpus_[0].spec(), ocl::Backend::OpenCL);
  const std::uint64_t oneLeg = model.transferDurationNs(bytes);
  EXPECT_EQ(copy.durationNs(), oneLeg);
  EXPECT_LT(copy.durationNs(), 2 * oneLeg); // the old sum formula

  // Both DMA engines are held for the copy's span: a follow-up upload
  // to the destination cannot start before the copy ends.
  ocl::Event next = q1.enqueueWriteBuffer(dst, 0, bytes, data.data());
  EXPECT_GE(next.startNs(), copy.endNs());
}

TEST_F(OclTiming, MoreComputeUnitsRunFaster) {
  ocl::DeviceSpec big = ocl::DeviceSpec::teslaT10();
  ocl::DeviceSpec half = big;
  half.computeUnits = big.computeUnits / 2;
  ocl::SystemConfig config;
  config.devices = {big, half};
  ocl::configureSystem(config);
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  const auto fast = runMapKernel(gpus[0], ocl::Backend::OpenCL, 1 << 18);
  const auto slow = runMapKernel(gpus[1], ocl::Backend::OpenCL, 1 << 18);
  EXPECT_LT(fast, slow);
}

} // namespace
