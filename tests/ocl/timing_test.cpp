// Tests for the virtual-time model: device timelines, event profiling,
// transfer and kernel duration scaling, backend profiles.
#include <gtest/gtest.h>

#include "ocl/ocl.h"

namespace {

class OclTiming : public ::testing::Test {
protected:
  void SetUp() override {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(4));
    gpus_ = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  }

  std::vector<ocl::Device> gpus_;
};

TEST_F(OclTiming, ConfigureResetsClocks) {
  EXPECT_EQ(ocl::hostTimeNs(), 0u);
  ocl::advanceHostTimeNs(100);
  EXPECT_EQ(ocl::hostTimeNs(), 100u);
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(1));
  EXPECT_EQ(ocl::hostTimeNs(), 0u);
}

TEST_F(OclTiming, TransferDurationScalesWithSize) {
  const ocl::TimingModel model(ocl::DeviceSpec::teslaT10(),
                               ocl::Backend::OpenCL);
  const auto small = model.transferDurationNs(1 << 10);
  const auto large = model.transferDurationNs(64 << 20);
  EXPECT_LT(small, large);
  // 64 MiB over 5.2 GB/s is ~12.9 ms; latency is negligible there.
  EXPECT_NEAR(double(large), 64e6 * (1 << 20) / (5.2e9 * 1e6) * 1e9, 1e6);
  // Small transfers are latency-bound (8 us).
  EXPECT_GT(small, 8'000u);
  EXPECT_LT(small, 9'000u);
}

TEST_F(OclTiming, EventsExposeProfilingTimes) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 20, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GT(e.endNs(), e.startNs());
  EXPECT_GE(e.startNs(), e.queuedNs());
  EXPECT_EQ(e.durationNs(), e.endNs() - e.startNs());
}

TEST_F(OclTiming, InOrderQueueSerializesCommands) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(1 << 16, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e1 = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  ocl::Event e2 = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GE(e2.startNs(), e1.endNs());
}

TEST_F(OclTiming, IndependentDevicesOverlapInVirtualTime) {
  ocl::Context ctx({gpus_[0], gpus_[1]});
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  std::vector<char> data(8 << 20, 0);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());
  ocl::Event e0 = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  ocl::Event e1 = q1.enqueueWriteBuffer(b1, 0, data.size(), data.data());
  // The second transfer starts long before the first ends: the devices'
  // timelines overlap instead of serializing.
  EXPECT_LT(e1.startNs(), e0.endNs());
}

TEST_F(OclTiming, FinishAdvancesHostClock) {
  ocl::Context ctx({gpus_[0]});
  ocl::CommandQueue queue(gpus_[0]);
  std::vector<char> data(16 << 20, 0);
  ocl::Buffer buf = ctx.createBuffer(gpus_[0], data.size());
  ocl::Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_LT(ocl::hostTimeNs(), e.endNs()); // enqueue returns "immediately"
  queue.finish();
  EXPECT_GE(ocl::hostTimeNs(), e.endNs());
}

TEST_F(OclTiming, DependenciesDelayCommandStart) {
  ocl::Context ctx({gpus_[0], gpus_[1]});
  ocl::CommandQueue q0(gpus_[0]);
  ocl::CommandQueue q1(gpus_[1]);
  std::vector<char> data(8 << 20, 0);
  ocl::Buffer b0 = ctx.createBuffer(gpus_[0], data.size());
  ocl::Buffer b1 = ctx.createBuffer(gpus_[1], data.size());
  ocl::Event e0 = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  ocl::Event e1 =
      q1.enqueueWriteBuffer(b1, 0, data.size(), data.data(), {e0});
  EXPECT_GE(e1.startNs(), e0.endNs());
}

std::uint64_t runMapKernel(const ocl::Device& device, ocl::Backend backend,
                           std::size_t n) {
  ocl::Context ctx({device});
  ocl::CommandQueue queue(device, backend);
  ocl::Program program = ctx.createProgram(R"(
    __kernel void f(__global float* data, uint n) {
      size_t i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2.0f + 1.0f;
    }
  )");
  program.build();
  std::vector<float> data(n, 1.0f);
  ocl::Buffer buf = ctx.createBuffer(device, n * sizeof(float));
  queue.enqueueWriteBuffer(buf, 0, n * sizeof(float), data.data());
  ocl::Kernel kernel = program.createKernel("f");
  kernel.setArg(0, buf);
  kernel.setArg(1, std::uint32_t(n));
  ocl::Event e =
      queue.enqueueNDRange(kernel, ocl::NDRange1D{(n + 255) / 256 * 256,
                                                  256});
  return e.durationNs();
}

TEST_F(OclTiming, KernelDurationScalesWithWork) {
  const auto small = runMapKernel(gpus_[0], ocl::Backend::OpenCL, 1 << 12);
  const auto large = runMapKernel(gpus_[1], ocl::Backend::OpenCL, 1 << 18);
  EXPECT_GT(large, small);
  // 64x the work; the fixed launch overhead dominates the small case,
  // so the observed ratio is far below 64 but must still be substantial.
  EXPECT_GT(double(large) / double(small), 4.0);
  EXPECT_LT(double(large) / double(small), 64.0);
}

TEST_F(OclTiming, CudaBackendIsFasterThanOpenCl) {
  const auto opencl = runMapKernel(gpus_[0], ocl::Backend::OpenCL, 1 << 16);
  const auto cuda = runMapKernel(gpus_[1], ocl::Backend::Cuda, 1 << 16);
  EXPECT_LT(cuda, opencl);
  // The calibrated gap is ~1.3x on compute-bound kernels plus the
  // launch-overhead difference; allow a generous window.
  EXPECT_GT(double(opencl) / double(cuda), 1.05);
  EXPECT_LT(double(opencl) / double(cuda), 1.8);
}

TEST_F(OclTiming, MoreComputeUnitsRunFaster) {
  ocl::DeviceSpec big = ocl::DeviceSpec::teslaT10();
  ocl::DeviceSpec half = big;
  half.computeUnits = big.computeUnits / 2;
  ocl::SystemConfig config;
  config.devices = {big, half};
  ocl::configureSystem(config);
  auto gpus = ocl::getPlatforms()[0].devices(ocl::DeviceType::GPU);
  const auto fast = runMapKernel(gpus[0], ocl::Backend::OpenCL, 1 << 18);
  const auto slow = runMapKernel(gpus[1], ocl::Backend::OpenCL, 1 << 18);
  EXPECT_LT(fast, slow);
}

} // namespace
