// Additional VM coverage: control-flow corners, nested data structures,
// and type-system edge cases not exercised by the core suites.
#include <gtest/gtest.h>

#include "clc_test_util.h"

using namespace clc_test;

namespace {

int run1(const std::string& body, int x = 0) {
  const auto program = clc::compile(
      "__kernel void k(__global int* out, int x) {\n" + body + "\n}");
  std::vector<int> out(4, -999);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a, scalarArg(x)}, bufs);
  return out[0];
}

TEST(VmControlFlow, NestedLoopsWithBreakAndContinue) {
  EXPECT_EQ(run1(R"(
    int acc = 0;
    for (int i = 0; i < 5; ++i) {
      for (int j = 0; j < 5; ++j) {
        if (j > i) break;       // inner break only
        if (j == 1) continue;   // skip j==1
        acc += 10 * i + j;
      }
    }
    out[0] = acc;
  )"),
            // i=0: j=0 -> 0; i=1: j=0 -> 10; i=2: j=0,2 -> 20+22
            // i=3: j=0,2,3 -> 30+32+33; i=4: j=0,2,3,4 -> 40+42+43+44
            0 + 10 + 42 + 95 + 169);
}

TEST(VmControlFlow, DoWhileWithContinue) {
  EXPECT_EQ(run1(R"(
    int i = 0;
    int acc = 0;
    do {
      ++i;
      if (i % 2 == 0) continue; // continue re-tests the condition
      acc += i;
    } while (i < 6);
    out[0] = acc;
  )"),
            1 + 3 + 5);
}

TEST(VmControlFlow, EmptyForBodyAndStepSideEffects) {
  EXPECT_EQ(run1(R"(
    int n = 0;
    for (int i = 0; i < 10; n += ++i) { }
    out[0] = n;
  )"),
            55);
}

TEST(VmControlFlow, EarlyReturnFromKernel) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out) {
      size_t i = get_global_id(0);
      out[i] = 1;
      if (i % 2 == 0) return;
      out[i] = 2;
    }
  )");
  std::vector<int> out(6, 0);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 6, 2, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(VmControlFlow, TernaryAsCallArgument) {
  EXPECT_EQ(run1("out[0] = max(x > 0 ? x : -x, 5);", -9), 9);
  EXPECT_EQ(run1("out[0] = max(x > 0 ? x : -x, 5);", 2), 5);
}

TEST(VmData, NestedStructMemberChains) {
  const auto program = clc::compile(R"(
    typedef struct { float x; float y; } P;
    typedef struct { P a; P b; int tag; } Seg;
    __kernel void k(__global Seg* segs, __global float* out) {
      size_t i = get_global_id(0);
      Seg s = segs[i];
      float dx = s.b.x - s.a.x;
      float dy = s.b.y - s.a.y;
      out[i] = sqrt(dx * dx + dy * dy) + (float)s.tag;
      segs[i].a.x = 100.0f; // write through a nested member chain
    }
  )");
  struct P {
    float x, y;
  };
  struct Seg {
    P a, b;
    int tag;
  };
  std::vector<Seg> segs = {{{0, 0}, {3, 4}, 1}, {{1, 1}, {1, 2}, 7}};
  std::vector<float> out(2);
  Buffers bufs;
  auto sa = bufs.add(segs);
  auto oa = bufs.add(out);
  run1D(program, "k", 2, 1, {sa, oa}, bufs);
  EXPECT_FLOAT_EQ(out[0], 6.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(segs[0].a.x, 100.0f);
  EXPECT_FLOAT_EQ(segs[1].a.x, 100.0f);
}

TEST(VmData, ArraysInsideStructs) {
  const auto program = clc::compile(R"(
    typedef struct { int hist[4]; int total; } H;
    __kernel void k(__global H* hs) {
      size_t i = get_global_id(0);
      H h = hs[i];
      h.total = 0;
      for (int k = 0; k < 4; ++k) h.total += h.hist[k];
      hs[i] = h;
    }
  )");
  struct H {
    int hist[4];
    int total;
  };
  std::vector<H> hs = {{{1, 2, 3, 4}, 0}, {{10, 0, 0, 5}, 0}};
  Buffers bufs;
  auto a = bufs.add(hs);
  run1D(program, "k", 2, 1, {a}, bufs);
  EXPECT_EQ(hs[0].total, 10);
  EXPECT_EQ(hs[1].total, 15);
}

TEST(VmData, PointerToStructFieldViaArrow) {
  const auto program = clc::compile(R"(
    typedef struct { int value; int next; } Node;
    __kernel void k(__global Node* nodes, __global int* out) {
      // Walk a tiny linked list laid out in the buffer.
      __global Node* cur = &nodes[0];
      int acc = 0;
      for (int i = 0; i < 10; ++i) {
        acc += cur->value;
        if (cur->next < 0) break;
        cur = &nodes[cur->next];
      }
      out[0] = acc;
    }
  )");
  struct Node {
    int value, next;
  };
  std::vector<Node> nodes = {{5, 2}, {100, -1}, {7, 1}};
  std::vector<int> out(1);
  Buffers bufs;
  auto na = bufs.add(nodes);
  auto oa = bufs.add(out);
  run1D(program, "k", 1, 1, {na, oa}, bufs);
  EXPECT_EQ(out[0], 5 + 7 + 100);
}

TEST(VmData, BoolAndCharArithmetic) {
  EXPECT_EQ(run1(R"(
    bool b = x > 3;
    char c = (char)(x + 1);
    out[0] = (int)b * 100 + (int)c;
  )", 5),
            106);
  EXPECT_EQ(run1(R"(
    bool b = x > 3;
    out[0] = b ? 1 : 0;
  )", 1),
            0);
}

TEST(VmData, SizeofExpressionForm) {
  EXPECT_EQ(run1("float f = 0.0f; out[0] = (int)sizeof f;"), 4);
  EXPECT_EQ(run1("double d = 0.0; out[0] = (int)(sizeof d + sizeof(int));"),
            12);
}

TEST(VmData, NegationOfUnsignedWraps) {
  EXPECT_EQ(run1("uint u = 1u; out[0] = (int)(-u == 0xffffffffu ? 1 : 0);"),
            1);
}

TEST(VmData, CommaFreeMultipleDeclarators) {
  EXPECT_EQ(run1("int a = 1, b = a + 1, c = b * 3; out[0] = c;"), 6);
}

TEST(VmData, WriteThroughPointerParameterChain) {
  const auto program = clc::compile(R"(
    void put(__global int* dst, int offset, int value) {
      dst[offset] = value;
    }
    __kernel void k(__global int* out) {
      put(out, (int)get_global_id(0), 42);
    }
  )");
  std::vector<int> out(4, 0);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 4, 4, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{42, 42, 42, 42}));
}

TEST(VmData, GlobalPointerStoredInPrivateStruct) {
  // Pointers are first-class 64-bit values; storing one in a private
  // struct and loading it back must preserve the segment/space bits.
  const auto program = clc::compile(R"(
    typedef struct { __global int* p; int off; } Ref;
    __kernel void k(__global int* data) {
      Ref r;
      r.p = data;
      r.off = 2;
      r.p[r.off] = 77;
    }
  )");
  std::vector<int> data(4, 0);
  Buffers bufs;
  auto a = bufs.add(data);
  run1D(program, "k", 1, 1, {a}, bufs);
  EXPECT_EQ(data[2], 77);
}

} // namespace
