// Shared helpers for clc tests: compile kernels and run them over typed
// host vectors with minimal ceremony.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "clc/codegen.h"
#include "clc/vm.h"

namespace clc_test {

/// Canonical 64-bit slot for a scalar kernel argument.
template <typename T>
clc::KernelArgValue scalarArg(T value) {
  clc::KernelArgValue arg;
  arg.kind = clc::KernelArgValue::Kind::Scalar;
  if constexpr (std::is_same_v<T, float>) {
    std::uint32_t bits;
    std::memcpy(&bits, &value, 4);
    arg.scalar = bits;
  } else if constexpr (std::is_same_v<T, double>) {
    std::memcpy(&arg.scalar, &value, 8);
  } else if constexpr (std::is_signed_v<T>) {
    arg.scalar = static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
  } else {
    arg.scalar = static_cast<std::uint64_t>(value);
  }
  return arg;
}

template <typename T>
clc::KernelArgValue structArg(const T& value) {
  clc::KernelArgValue arg;
  arg.kind = clc::KernelArgValue::Kind::Struct;
  arg.bytes.resize(sizeof(T));
  std::memcpy(arg.bytes.data(), &value, sizeof(T));
  return arg;
}

inline clc::KernelArgValue localArg(std::uint32_t bytes) {
  clc::KernelArgValue arg;
  arg.kind = clc::KernelArgValue::Kind::Local;
  arg.localSize = bytes;
  return arg;
}

/// Collects buffers and produces matching Buffer args + segment table.
class Buffers {
public:
  template <typename T>
  clc::KernelArgValue add(std::vector<T>& data) {
    clc::Segment seg;
    seg.base = reinterpret_cast<std::uint8_t*>(data.data());
    seg.size = data.size() * sizeof(T);
    segments_.push_back(seg);
    clc::KernelArgValue arg;
    arg.kind = clc::KernelArgValue::Kind::Buffer;
    arg.segmentIndex = static_cast<std::uint32_t>(segments_.size() - 1);
    return arg;
  }

  const std::vector<clc::Segment>& segments() const { return segments_; }

private:
  std::vector<clc::Segment> segments_;
};

/// Compiles and runs a 1-D kernel launch on the calling thread.
inline clc::LaunchStats run1D(const clc::Program& program,
                              const std::string& kernel, std::size_t global,
                              std::size_t local,
                              const std::vector<clc::KernelArgValue>& args,
                              const Buffers& buffers) {
  clc::NDRange range;
  range.dims = 1;
  range.globalSize[0] = global;
  range.localSize[0] = local;
  return clc::executeKernel(program, kernel, range, args,
                            buffers.segments(), nullptr);
}

} // namespace clc_test
