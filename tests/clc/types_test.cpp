#include <gtest/gtest.h>

#include "clc/types.h"

using namespace clc;

namespace {

TEST(Types, ScalarSizes) {
  TypeTable t;
  EXPECT_EQ(t.scalar(ScalarKind::I8)->size(), 1u);
  EXPECT_EQ(t.scalar(ScalarKind::U16)->size(), 2u);
  EXPECT_EQ(t.scalar(ScalarKind::I32)->size(), 4u);
  EXPECT_EQ(t.scalar(ScalarKind::F32)->size(), 4u);
  EXPECT_EQ(t.scalar(ScalarKind::F64)->size(), 8u);
  EXPECT_EQ(t.scalar(ScalarKind::U64)->size(), 8u);
  EXPECT_EQ(t.voidType()->size(), 0u);
}

TEST(Types, ScalarsAreInterned) {
  TypeTable t;
  EXPECT_EQ(t.scalar(ScalarKind::F32), t.floatType());
  EXPECT_EQ(t.scalar(ScalarKind::I32), t.intType());
}

TEST(Types, PointersAreInternedPerSpace) {
  TypeTable t;
  const Type* f = t.floatType();
  const Type* g1 = t.pointerTo(f, AddressSpace::Global);
  const Type* g2 = t.pointerTo(f, AddressSpace::Global);
  const Type* l = t.pointerTo(f, AddressSpace::Local);
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, l);
  EXPECT_EQ(g1->size(), 8u);
  EXPECT_EQ(g1->pointee(), f);
  EXPECT_EQ(g1->addressSpace(), AddressSpace::Global);
}

TEST(Types, ArraysAreInterned) {
  TypeTable t;
  const Type* a1 = t.arrayOf(t.intType(), 16);
  const Type* a2 = t.arrayOf(t.intType(), 16);
  const Type* a3 = t.arrayOf(t.intType(), 8);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(a1->size(), 64u);
  EXPECT_EQ(a1->alignment(), 4u);
}

TEST(Types, StructLayoutWithPadding) {
  TypeTable t;
  // struct { char c; double d; int i; } -> offsets 0, 8, 16; size 24.
  const Type* s = t.declareStruct(
      "S", {{"c", t.scalar(ScalarKind::I8), 0},
            {"d", t.scalar(ScalarKind::F64), 0},
            {"i", t.intType(), 0}});
  EXPECT_EQ(s->fields()[0].offset, 0u);
  EXPECT_EQ(s->fields()[1].offset, 8u);
  EXPECT_EQ(s->fields()[2].offset, 16u);
  EXPECT_EQ(s->size(), 24u);
  EXPECT_EQ(s->alignment(), 8u);
}

TEST(Types, StructLayoutMatchesHostCompiler) {
  struct Host {
    float a;
    int b;
    double c;
    char d;
  };
  TypeTable t;
  const Type* s = t.declareStruct(
      "Host", {{"a", t.floatType(), 0},
               {"b", t.intType(), 0},
               {"c", t.scalar(ScalarKind::F64), 0},
               {"d", t.scalar(ScalarKind::I8), 0}});
  EXPECT_EQ(s->size(), sizeof(Host));
  EXPECT_EQ(s->fields()[0].offset, offsetof(Host, a));
  EXPECT_EQ(s->fields()[1].offset, offsetof(Host, b));
  EXPECT_EQ(s->fields()[2].offset, offsetof(Host, c));
  EXPECT_EQ(s->fields()[3].offset, offsetof(Host, d));
}

TEST(Types, FindField) {
  TypeTable t;
  const Type* s = t.declareStruct("S", {{"x", t.floatType(), 0},
                                        {"y", t.floatType(), 0}});
  ASSERT_NE(s->findField("y"), nullptr);
  EXPECT_EQ(s->findField("y")->offset, 4u);
  EXPECT_EQ(s->findField("z"), nullptr);
}

TEST(Types, StructRedefinitionThrows) {
  TypeTable t;
  t.declareStruct("S", {});
  EXPECT_THROW(t.declareStruct("S", {}), common::InvalidArgument);
}

TEST(Types, ToStringSpellings) {
  TypeTable t;
  EXPECT_EQ(t.floatType()->toString(), "float");
  EXPECT_EQ(t.pointerTo(t.floatType(), AddressSpace::Global)->toString(),
            "__global float*");
  EXPECT_EQ(t.arrayOf(t.intType(), 4)->toString(), "int[4]");
  const Type* s = t.declareStruct("Foo", {});
  EXPECT_EQ(s->toString(), "struct Foo");
}

TEST(Types, EmptyStructHasNonZeroAlignment) {
  TypeTable t;
  const Type* s = t.declareStruct("E", {});
  EXPECT_EQ(s->alignment(), 1u);
  EXPECT_EQ(s->size(), 0u);
}

TEST(Types, NestedStructLayout) {
  TypeTable t;
  const Type* inner = t.declareStruct(
      "Inner", {{"a", t.scalar(ScalarKind::F64), 0}});
  const Type* outer = t.declareStruct(
      "Outer", {{"c", t.scalar(ScalarKind::I8), 0}, {"in", inner, 0}});
  EXPECT_EQ(outer->fields()[1].offset, 8u);
  EXPECT_EQ(outer->size(), 16u);
}

} // namespace
