// Memory-safety and launch-validation behaviour of the VM.
#include <gtest/gtest.h>

#include "clc_test_util.h"

using namespace clc_test;

namespace {

TEST(VmMemory, GlobalOutOfBoundsReadTraps) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* data, int i) { data[0] = data[i]; }
  )");
  std::vector<int> data(4, 0);
  Buffers bufs;
  auto a = bufs.add(data);
  EXPECT_NO_THROW(run1D(program, "k", 1, 1, {a, scalarArg(3)}, bufs));
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, scalarArg(4)}, bufs),
               clc::TrapError);
}

TEST(VmMemory, GlobalOutOfBoundsWriteTraps) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* data, int i) { data[i] = 1; }
  )");
  std::vector<int> data(4, 0);
  Buffers bufs;
  auto a = bufs.add(data);
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, scalarArg(100)}, bufs),
               clc::TrapError);
}

TEST(VmMemory, TrapMessageNamesTheBuffer) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* data) { data[99] = 1; }
  )");
  std::vector<int> data(4, 0);
  Buffers bufs;
  auto a = bufs.add(data);
  try {
    run1D(program, "k", 1, 1, {a}, bufs);
    FAIL() << "expected trap";
  } catch (const clc::TrapError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out of bounds"), std::string::npos) << what;
    EXPECT_NE(what.find("kernel 'k'"), std::string::npos) << what;
  }
}

TEST(VmMemory, NullPointerDereferenceTraps) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* data) {
      __global int* p = 0;
      data[0] = *p;
    }
  )");
  std::vector<int> data(1, 0);
  Buffers bufs;
  auto a = bufs.add(data);
  EXPECT_THROW(run1D(program, "k", 1, 1, {a}, bufs), clc::TrapError);
}

TEST(VmMemory, LocalOutOfBoundsTraps) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out, int i) {
      __local int buf[8];
      buf[i] = 1;
      out[0] = buf[0];
    }
  )");
  std::vector<int> out(1);
  Buffers bufs;
  auto a = bufs.add(out);
  EXPECT_NO_THROW(run1D(program, "k", 1, 1, {a, scalarArg(7)}, bufs));
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, scalarArg(8)}, bufs),
               clc::TrapError);
}

TEST(VmMemory, PrivateArrayOutOfBoundsTraps) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out, int i) {
      int buf[4];
      buf[0] = 0; buf[1] = 1; buf[2] = 2; buf[3] = 3;
      out[0] = buf[i + 1000000];
    }
  )");
  std::vector<int> out(1);
  Buffers bufs;
  auto a = bufs.add(out);
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, scalarArg(0)}, bufs),
               clc::TrapError);
}

TEST(VmMemory, GlobalSizeMustBeDivisibleByLocal) {
  const auto program = clc::compile(
      "__kernel void k(__global int* o) { o[get_global_id(0)] = 1; }");
  std::vector<int> out(10);
  Buffers bufs;
  auto a = bufs.add(out);
  EXPECT_THROW(run1D(program, "k", 10, 4, {a}, bufs),
               common::InvalidArgument);
}

TEST(VmMemory, ZeroSizeRangeRejected) {
  const auto program = clc::compile("__kernel void k() {}");
  Buffers bufs;
  EXPECT_THROW(run1D(program, "k", 0, 1, {}, bufs),
               common::InvalidArgument);
}

TEST(VmMemory, WrongArgumentCountRejected) {
  const auto program = clc::compile(
      "__kernel void k(__global int* a, int n) {}");
  std::vector<int> data(1);
  Buffers bufs;
  auto a = bufs.add(data);
  EXPECT_THROW(run1D(program, "k", 1, 1, {a}, bufs),
               common::InvalidArgument);
}

TEST(VmMemory, UnknownKernelNameRejected) {
  const auto program = clc::compile("__kernel void k() {}");
  Buffers bufs;
  EXPECT_THROW(run1D(program, "nope", 1, 1, {}, bufs),
               common::InvalidArgument);
}

TEST(VmMemory, LocalParamNeedsLocalArg) {
  const auto program = clc::compile(
      "__kernel void k(__local int* scratch) {}");
  Buffers bufs;
  EXPECT_THROW(run1D(program, "k", 1, 1, {scalarArg(0)}, bufs),
               common::InvalidArgument);
}

TEST(VmMemory, BarrierDivergenceIsDetected) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out) {
      if (get_local_id(0) == 0) return; // item 0 skips the barrier
      barrier(CLK_LOCAL_MEM_FENCE);
      out[get_global_id(0)] = 1;
    }
  )");
  std::vector<int> out(4);
  Buffers bufs;
  auto a = bufs.add(out);
  EXPECT_THROW(run1D(program, "k", 4, 4, {a}, bufs), clc::TrapError);
}

TEST(VmMemory, MemCopyOfStructsThroughGlobalMemory) {
  const auto program = clc::compile(R"(
    typedef struct { int a; float b; char c; } Rec;
    __kernel void k(__global Rec* in, __global Rec* out) {
      size_t i = get_global_id(0);
      Rec r = in[i];   // global -> private copy
      r.a += 1;
      out[i] = r;      // private -> global copy
    }
  )");
  struct Rec {
    int a;
    float b;
    char c;
  };
  std::vector<Rec> in = {{1, 2.5f, 'x'}, {10, -1.0f, 'y'}};
  std::vector<Rec> out(2, Rec{0, 0, 0});
  Buffers bufs;
  auto ain = bufs.add(in);
  auto aout = bufs.add(out);
  run1D(program, "k", 2, 1, {ain, aout}, bufs);
  EXPECT_EQ(out[0].a, 2);
  EXPECT_FLOAT_EQ(out[0].b, 2.5f);
  EXPECT_EQ(out[0].c, 'x');
  EXPECT_EQ(out[1].a, 11);
}

TEST(VmMemory, DeepCallChainWorks) {
  const auto program = clc::compile(R"(
    int f0(int x) { return x + 1; }
    int f1(int x) { return f0(x) + 1; }
    int f2(int x) { return f1(x) + 1; }
    int f3(int x) { return f2(x) + 1; }
    int f4(int x) { return f3(x) + 1; }
    __kernel void k(__global int* out) { out[0] = f4(0); }
  )");
  std::vector<int> out(1);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a}, bufs);
  EXPECT_EQ(out[0], 5);
}

TEST(VmMemory, FallingOffNonVoidFunctionTraps) {
  const auto program = clc::compile(R"(
    int f(int x) { if (x > 0) return 1; } // no return on the x<=0 path
    __kernel void k(__global int* out, int x) { out[0] = f(x); }
  )");
  std::vector<int> out(1);
  Buffers bufs;
  auto a = bufs.add(out);
  EXPECT_NO_THROW(run1D(program, "k", 1, 1, {a, scalarArg(1)}, bufs));
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, scalarArg(-1)}, bufs),
               clc::TrapError);
}

TEST(VmMemory, SeparateLocalMemoryPerGroup) {
  // Each group accumulates into its own __local slot; cross-group
  // interference would produce wrong sums.
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out) {
      __local int acc[1];
      if (get_local_id(0) == 0) acc[0] = 0;
      barrier(CLK_LOCAL_MEM_FENCE);
      atomic_add(&acc[0], (int)get_group_id(0) + 1);
      barrier(CLK_LOCAL_MEM_FENCE);
      if (get_local_id(0) == 0) out[get_group_id(0)] = acc[0];
    }
  )");
  std::vector<int> out(4, -1);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 16, 4, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{4, 8, 12, 16}));
}

TEST(VmMemory, MultipleBuffersKeepSeparateBounds) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* small, __global int* big) {
      big[10] = 1;      // fine: big has 16 entries
      small[10] = 1;    // trap: small has 4
    }
  )");
  std::vector<int> small(4), big(16);
  Buffers bufs;
  auto a = bufs.add(small);
  auto b = bufs.add(big);
  EXPECT_THROW(run1D(program, "k", 1, 1, {a, b}, bufs), clc::TrapError);
  EXPECT_EQ(big[10], 1); // the in-bounds write happened first
}

} // namespace
