// Builtin math/integer semantics and numeric edge cases of the VM.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "clc_test_util.h"

using namespace clc_test;

namespace {

/// Runs a one-item kernel that writes a single float result to out[0].
float evalF(const std::string& body, float x = 0.0f, float y = 0.0f) {
  const auto program = clc::compile(
      "__kernel void k(__global float* out, float x, float y) { out[0] = " +
      body + "; }");
  std::vector<float> out(1, -12345.0f);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a, scalarArg(x), scalarArg(y)}, bufs);
  return out[0];
}

int evalI(const std::string& body, int x = 0, int y = 0) {
  const auto program = clc::compile(
      "__kernel void k(__global int* out, int x, int y) { out[0] = " + body +
      "; }");
  std::vector<int> out(1, -12345);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a, scalarArg(x), scalarArg(y)}, bufs);
  return out[0];
}

TEST(VmMath, UnaryFloatBuiltins) {
  EXPECT_FLOAT_EQ(evalF("sqrt(x)", 9.0f), 3.0f);
  EXPECT_FLOAT_EQ(evalF("rsqrt(x)", 4.0f), 0.5f);
  EXPECT_FLOAT_EQ(evalF("sin(x)", 0.0f), 0.0f);
  EXPECT_NEAR(evalF("cos(x)", 0.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(evalF("exp(x)", 1.0f), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(evalF("log(x)", std::exp(2.0f)), 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(evalF("fabs(x)", -3.5f), 3.5f);
  EXPECT_FLOAT_EQ(evalF("floor(x)", 2.7f), 2.0f);
  EXPECT_FLOAT_EQ(evalF("ceil(x)", 2.2f), 3.0f);
  EXPECT_FLOAT_EQ(evalF("trunc(x)", -2.7f), -2.0f);
  EXPECT_FLOAT_EQ(evalF("round(x)", 2.5f), 3.0f);
}

TEST(VmMath, BinaryFloatBuiltins) {
  EXPECT_FLOAT_EQ(evalF("pow(x, y)", 2.0f, 10.0f), 1024.0f);
  EXPECT_FLOAT_EQ(evalF("fmin(x, y)", 1.0f, 2.0f), 1.0f);
  EXPECT_FLOAT_EQ(evalF("fmax(x, y)", 1.0f, 2.0f), 2.0f);
  EXPECT_FLOAT_EQ(evalF("fmod(x, y)", 7.5f, 2.0f), 1.5f);
  EXPECT_FLOAT_EQ(evalF("hypot(x, y)", 3.0f, 4.0f), 5.0f);
  EXPECT_FLOAT_EQ(evalF("copysign(x, y)", 3.0f, -1.0f), -3.0f);
  EXPECT_NEAR(evalF("atan2(x, y)", 1.0f, 1.0f), float(M_PI / 4), 1e-6f);
}

TEST(VmMath, TernaryFloatBuiltins) {
  EXPECT_FLOAT_EQ(evalF("mad(x, y, 1.0f)", 2.0f, 3.0f), 7.0f);
  EXPECT_FLOAT_EQ(evalF("fma(x, y, 1.0f)", 2.0f, 3.0f), 7.0f);
  EXPECT_FLOAT_EQ(evalF("clamp(x, 0.0f, 1.0f)", 1.5f), 1.0f);
  EXPECT_FLOAT_EQ(evalF("clamp(x, 0.0f, 1.0f)", -0.5f), 0.0f);
  EXPECT_FLOAT_EQ(evalF("mix(x, y, 0.25f)", 0.0f, 8.0f), 2.0f);
}

TEST(VmMath, MinMaxAbsIntegers) {
  EXPECT_EQ(evalI("min(x, y)", -3, 5), -3);
  EXPECT_EQ(evalI("max(x, y)", -3, 5), 5);
  EXPECT_EQ(evalI("abs(x)", -7), 7);
  EXPECT_EQ(evalI("clamp(x, 0, 10)", 42), 10);
  EXPECT_EQ(evalI("clamp(x, 0, 10)", -42), 0);
}

TEST(VmMath, MinIsUnsignedWhenOperandsAre) {
  // (uint)-1 is huge, so unsigned min picks 5.
  EXPECT_EQ(evalI("(int)min((uint)x, (uint)y)", -1, 5), 5);
  // Signed min of the same bits picks -1.
  EXPECT_EQ(evalI("min(x, y)", -1, 5), -1);
}

TEST(VmMath, ReinterpretBuiltins) {
  EXPECT_EQ(evalI("as_int(x)", 0) /* x = 0.0f */, 0);
  const float one = 1.0f;
  std::uint32_t oneBits;
  std::memcpy(&oneBits, &one, 4);
  EXPECT_EQ(std::uint32_t(evalI("as_int(x)", 0, 0) + 0), 0u);
  EXPECT_FLOAT_EQ(evalF("as_float(x)", 0, 0), 0.0f);
  // Round-trip: as_float(as_int(v)) == v
  EXPECT_FLOAT_EQ(evalF("as_float(as_int(x))", 3.25f), 3.25f);
}

TEST(VmMath, ConvertBuiltins) {
  EXPECT_EQ(evalI("convert_int(x)", 0, 0), 0);
  EXPECT_FLOAT_EQ(evalF("convert_float(7)"), 7.0f);
  EXPECT_EQ(evalI("(int)convert_uint(7)"), 7);
}

TEST(VmMath, IntegerDivisionSemantics) {
  EXPECT_EQ(evalI("x / y", 7, 2), 3);
  EXPECT_EQ(evalI("x / y", -7, 2), -3); // truncation toward zero
  EXPECT_EQ(evalI("x % y", 7, 2), 1);
  EXPECT_EQ(evalI("x % y", -7, 2), -1);
}

TEST(VmMath, DivisionByZeroTraps) {
  EXPECT_THROW(evalI("x / y", 1, 0), clc::TrapError);
  EXPECT_THROW(evalI("x % y", 1, 0), clc::TrapError);
}

TEST(VmMath, IntMinDividedByMinusOneWraps) {
  EXPECT_EQ(evalI("x / y", std::numeric_limits<int>::min(), -1),
            std::numeric_limits<int>::min());
  EXPECT_EQ(evalI("x % y", std::numeric_limits<int>::min(), -1), 0);
}

TEST(VmMath, ShiftCountsAreMasked) {
  EXPECT_EQ(evalI("x << y", 1, 33), 2);  // 33 & 31 == 1
  EXPECT_EQ(evalI("x >> y", 16, 36), 1); // 36 & 31 == 4
}

TEST(VmMath, SignedShiftRightIsArithmetic) {
  EXPECT_EQ(evalI("x >> y", -8, 1), -4);
  EXPECT_EQ(evalI("(int)((uint)x >> y)", -8, 1), 0x7ffffffc);
}

TEST(VmMath, UnsignedOverflowWraps) {
  EXPECT_EQ(evalI("(int)((uint)x + (uint)y)", -1, 1), 0);
  // 0x80000001 * 2 wraps to 2 in 32 bits.
  EXPECT_EQ(evalI("(int)((uint)x * 2u)",
                  std::numeric_limits<int>::min() | 1),
            2);
}

TEST(VmMath, FloatSpecialValues) {
  EXPECT_TRUE(std::isinf(evalF("x / y", 1.0f, 0.0f)));
  EXPECT_TRUE(std::isnan(evalF("x / y", 0.0f, 0.0f)));
  EXPECT_TRUE(std::isinf(evalF("INFINITY")));
  EXPECT_TRUE(std::isnan(evalF("NAN")));
  EXPECT_FLOAT_EQ(evalF("FLT_MAX"), std::numeric_limits<float>::max());
}

TEST(VmMath, NanComparesFalse) {
  // 0.0f/0.0f is NaN; every ordered comparison with NaN is false.
  EXPECT_EQ(evalI("(0.0f / 0.0f) < 1.0f ? 1 : 0"), 0);
  EXPECT_EQ(evalI("(0.0f / 0.0f) == (0.0f / 0.0f) ? 1 : 0"), 0);
  EXPECT_EQ(evalI("(0.0f / 0.0f) != (0.0f / 0.0f) ? 1 : 0"), 1);
}

TEST(VmMath, FloatToIntConversionClampsInsteadOfUB) {
  EXPECT_EQ(evalI("(int)x", 0, 0), 0);
  EXPECT_EQ(evalI("(int)(x * 1e20f)", 1000000, 0),
            std::numeric_limits<int>::max());
  EXPECT_EQ(evalI("(int)(x * 1e20f)", -1000000, 0),
            std::numeric_limits<int>::min());
  EXPECT_EQ(evalI("(int)(0.0f / 0.0f)"), 0); // NaN -> 0
}

TEST(VmMath, NarrowingIntegerCasts) {
  EXPECT_EQ(evalI("(int)(char)x", 0x1ff), -1);
  EXPECT_EQ(evalI("(int)(uchar)x", 0x1ff), 0xff);
  EXPECT_EQ(evalI("(int)(short)x", 0x1ffff), -1);
  EXPECT_EQ(evalI("(int)(ushort)x", 0x1ffff), 0xffff);
}

TEST(VmMath, DoublePrecisionPath) {
  const auto program = clc::compile(R"(
    __kernel void k(__global double* out, double x) {
      out[0] = sqrt(x);
      out[1] = x / 3.0;
      out[2] = (double)(float)x; // round-trip through float
    }
  )");
  std::vector<double> out(3);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a, scalarArg(2.0)}, bufs);
  EXPECT_DOUBLE_EQ(out[0], std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(out[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(out[2], double(float(2.0)));
}

TEST(VmMath, MandelbrotIterationMatchesHost) {
  // The exact loop the Mandelbrot application uses, checked against a host
  // implementation in float precision.
  const auto program = clc::compile(R"(
    __kernel void iters(__global int* out, float cx, float cy, int maxIter) {
      float zx = 0.0f, zy = 0.0f;
      int n = 0;
      while (zx * zx + zy * zy <= 4.0f && n < maxIter) {
        float t = zx * zx - zy * zy + cx;
        zy = 2.0f * zx * zy + cy;
        zx = t;
        n = n + 1;
      }
      out[get_global_id(0)] = n;
    }
  )");
  const auto host = [](float cx, float cy, int maxIter) {
    float zx = 0, zy = 0;
    int n = 0;
    while (zx * zx + zy * zy <= 4.0f && n < maxIter) {
      const float t = zx * zx - zy * zy + cx;
      zy = 2.0f * zx * zy + cy;
      zx = t;
      ++n;
    }
    return n;
  };
  for (const auto& [cx, cy] : std::initializer_list<std::pair<float, float>>{
           {0.0f, 0.0f}, {-1.0f, 0.3f}, {0.3f, 0.5f}, {-0.75f, 0.1f}}) {
    std::vector<int> out(1);
    Buffers bufs;
    auto a = bufs.add(out);
    run1D(program, "iters", 1, 1,
          {a, scalarArg(cx), scalarArg(cy), scalarArg(64)}, bufs);
    EXPECT_EQ(out[0], host(cx, cy, 64)) << cx << "," << cy;
  }
}

} // namespace
