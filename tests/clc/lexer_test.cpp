#include <gtest/gtest.h>

#include "clc/lexer.h"

using clc::lex;
using clc::TokKind;

namespace {

std::vector<TokKind> kinds(const std::string& source) {
  std::vector<TokKind> out;
  for (const auto& tok : lex(source)) {
    out.push_back(tok.kind);
  }
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokKind::Eof);
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = lex("float foo _bar baz2 int while");
  EXPECT_EQ(tokens[0].kind, TokKind::KwFloat);
  EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokKind::Identifier);
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].kind, TokKind::Identifier);
  EXPECT_EQ(tokens[3].text, "baz2");
  EXPECT_EQ(tokens[4].kind, TokKind::KwInt);
  EXPECT_EQ(tokens[5].kind, TokKind::KwWhile);
}

TEST(Lexer, OpenClAndCudaQualifierSpellings) {
  EXPECT_EQ(kinds("__kernel kernel __global__"),
            (std::vector<TokKind>{TokKind::KwKernel, TokKind::KwKernel,
                                  TokKind::KwKernel, TokKind::Eof}));
  EXPECT_EQ(kinds("__global global __local local __shared__"),
            (std::vector<TokKind>{TokKind::KwGlobal, TokKind::KwGlobal,
                                  TokKind::KwLocal, TokKind::KwLocal,
                                  TokKind::KwLocal, TokKind::Eof}));
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex("0 42 0x1f 0xFF 7u 9l 12ul '\\n' 'A'");
  EXPECT_EQ(tokens[0].intValue, 0u);
  EXPECT_EQ(tokens[1].intValue, 42u);
  EXPECT_EQ(tokens[2].intValue, 0x1fu);
  EXPECT_EQ(tokens[3].intValue, 0xffu);
  EXPECT_EQ(tokens[4].intValue, 7u);
  EXPECT_TRUE(tokens[4].unsignedSuffix);
  EXPECT_TRUE(tokens[5].longSuffix);
  EXPECT_TRUE(tokens[6].unsignedSuffix);
  EXPECT_TRUE(tokens[6].longSuffix);
  EXPECT_EQ(tokens[7].intValue, std::uint64_t('\n'));
  EXPECT_EQ(tokens[8].intValue, std::uint64_t('A'));
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = lex("1.5 2.0f .5f 3e2 1.5e-3f 7f");
  EXPECT_EQ(tokens[0].kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].floatValue, 1.5);
  EXPECT_FALSE(tokens[0].floatSuffix);
  EXPECT_TRUE(tokens[1].floatSuffix);
  EXPECT_DOUBLE_EQ(tokens[2].floatValue, 0.5);
  EXPECT_DOUBLE_EQ(tokens[3].floatValue, 300.0);
  EXPECT_DOUBLE_EQ(tokens[4].floatValue, 0.0015);
  EXPECT_TRUE(tokens[4].floatSuffix);
  // "7f" is an integer 7 with float suffix -> float literal per C99 rules
  // we apply to keep '1f' style constants working.
  EXPECT_EQ(tokens[5].kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[5].floatValue, 7.0);
}

TEST(Lexer, MaximalMunchOperators) {
  EXPECT_EQ(kinds("a+++b"),
            (std::vector<TokKind>{TokKind::Identifier, TokKind::PlusPlus,
                                  TokKind::Plus, TokKind::Identifier,
                                  TokKind::Eof}));
  EXPECT_EQ(kinds("<<= >>= <= >= << >> < >"),
            (std::vector<TokKind>{TokKind::ShlEq, TokKind::ShrEq,
                                  TokKind::LessEq, TokKind::GreaterEq,
                                  TokKind::Shl, TokKind::Shr, TokKind::Less,
                                  TokKind::Greater, TokKind::Eof}));
  EXPECT_EQ(kinds("-> - -- -="),
            (std::vector<TokKind>{TokKind::Arrow, TokKind::Minus,
                                  TokKind::MinusMinus, TokKind::MinusEq,
                                  TokKind::Eof}));
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lex(R"(
    int a; // line comment with * and /* inside
    /* block
       comment */ float b;
    /* nested-looking /* still one comment */ int c;
  )");
  std::vector<TokKind> expected = {
      TokKind::KwInt,   TokKind::Identifier, TokKind::Semicolon,
      TokKind::KwFloat, TokKind::Identifier, TokKind::Semicolon,
      TokKind::KwInt,   TokKind::Identifier, TokKind::Semicolon,
      TokKind::Eof};
  std::vector<TokKind> got;
  for (const auto& t : tokens) got.push_back(t.kind);
  EXPECT_EQ(got, expected);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("int a;\n  float b;");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.column, 5);
  EXPECT_EQ(tokens[3].loc.line, 2);
  EXPECT_EQ(tokens[3].loc.column, 3);
}

TEST(Lexer, LineStartFlag) {
  const auto tokens = lex("#define A 1\nint x;");
  EXPECT_TRUE(tokens[0].atLineStart);  // '#'
  EXPECT_FALSE(tokens[1].atLineStart); // 'define'
  EXPECT_TRUE(tokens[4].atLineStart);  // 'int'
}

TEST(Lexer, ErrorsOnUnterminatedBlockComment) {
  EXPECT_THROW(lex("int a; /* never closed"), clc::CompileError);
}

TEST(Lexer, ErrorsOnBadCharacter) {
  EXPECT_THROW(lex("int a = `1`;"), clc::CompileError);
  EXPECT_THROW(lex("int a = $x;"), clc::CompileError);
}

TEST(Lexer, ErrorsOnMalformedNumbers) {
  EXPECT_THROW(lex("int a = 12abc;"), clc::CompileError);
  EXPECT_THROW(lex("int a = 0xZZ;"), clc::CompileError);
}

TEST(Lexer, ErrorsOnUnterminatedCharLiteral) {
  EXPECT_THROW(lex("int a = 'x"), clc::CompileError);
  EXPECT_THROW(lex("int a = '"), clc::CompileError);
}

TEST(Lexer, LineContinuationInsideMacro) {
  const auto tokens = lex("#define SUM(a,b) \\\n  ((a)+(b))\nint x;");
  // The backslash-newline pair disappears; tokens flow on.
  bool sawInt = false;
  for (const auto& t : tokens) {
    if (t.kind == TokKind::KwInt) sawInt = true;
  }
  EXPECT_TRUE(sawInt);
}

} // namespace
