#include <gtest/gtest.h>

#include "clc_test_util.h"
#include "clc/serialize.h"
#include "common/byte_stream.h"
#include "common/stopwatch.h"

using namespace clc_test;

namespace {

const char* kSource = R"(
  typedef struct { float x; float y; } P;
  float dot2(P a, P b) { return a.x * b.x + a.y * b.y; }
  __kernel void k(__global P* ps, __global float* out, __local float* tmp) {
    size_t i = get_global_id(0);
    tmp[get_local_id(0)] = dot2(ps[i], ps[i]);
    barrier(CLK_LOCAL_MEM_FENCE);
    out[i] = tmp[get_local_id(0)];
  }
)";

TEST(Serialize, RoundTripPreservesStructure) {
  const auto program = clc::compile(kSource);
  const auto bytes = clc::serializeProgram(program);
  const auto restored = clc::deserializeProgram(bytes);

  EXPECT_EQ(restored.sourceHash, program.sourceHash);
  ASSERT_EQ(restored.code.size(), program.code.size());
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    EXPECT_EQ(restored.code[i].op, program.code[i].op) << i;
    EXPECT_EQ(restored.code[i].tag, program.code[i].tag) << i;
    EXPECT_EQ(restored.code[i].a, program.code[i].a) << i;
  }
  EXPECT_EQ(restored.constants, program.constants);
  ASSERT_EQ(restored.functions.size(), program.functions.size());
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    const auto& a = program.functions[i];
    const auto& b = restored.functions[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.frameSize, b.frameSize);
    EXPECT_EQ(a.params.size(), b.params.size());
    EXPECT_EQ(a.returnsStruct, b.returnsStruct);
  }
  ASSERT_EQ(restored.kernels.size(), 1u);
  EXPECT_EQ(restored.kernels[0].name, "k");
  EXPECT_EQ(restored.kernels[0].staticLocalSize,
            program.kernels[0].staticLocalSize);
}

TEST(Serialize, DeserializedProgramExecutesIdentically) {
  const auto program = clc::compile(kSource);
  const auto restored =
      clc::deserializeProgram(clc::serializeProgram(program));

  struct P {
    float x, y;
  };
  std::vector<P> ps = {{1, 2}, {3, 4}, {5, 6}, {0, -1}};
  std::vector<float> out1(4), out2(4);

  for (auto* out : {&out1, &out2}) {
    Buffers bufs;
    auto a = bufs.add(ps);
    auto b = bufs.add(*out);
    run1D(out == &out1 ? program : restored, "k", 4, 2,
          {a, b, localArg(2 * sizeof(float))}, bufs);
  }
  EXPECT_EQ(out1, out2);
  EXPECT_FLOAT_EQ(out1[0], 5.0f);
  EXPECT_FLOAT_EQ(out1[1], 25.0f);
}

TEST(Serialize, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(Serialize, RejectsVersionMismatch) {
  const auto program = clc::compile("__kernel void k() {}");
  auto bytes = clc::serializeProgram(program);
  bytes[4] ^= 0xff; // corrupt the version field
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(Serialize, RejectsTruncatedInput) {
  const auto program = clc::compile(kSource);
  auto bytes = clc::serializeProgram(program);
  for (const std::size_t cut : {bytes.size() / 2, bytes.size() - 1,
                                std::size_t(9)}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + long(cut));
    EXPECT_THROW(clc::deserializeProgram(truncated),
                 common::DeserializeError)
        << "cut at " << cut;
  }
}

TEST(Serialize, RejectsOutOfRangeIndices) {
  const auto program = clc::compile("__kernel void k() {}");
  auto bytes = clc::serializeProgram(program);
  // Find and corrupt the kernel's functionIndex (last 8 bytes hold the
  // function index and staticLocalSize).
  const std::size_t idxPos = bytes.size() - 8;
  bytes[idxPos] = 0xff;
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(Serialize, LoadIsFasterThanCompile) {
  // The property behind the paper's kernel cache claim: deserializing a
  // program must be much cheaper than compiling it from source. We assert
  // a conservative 2x here to keep the test robust on loaded machines;
  // the bench measures the real factor.
  std::string bigSource;
  for (int i = 0; i < 40; ++i) {
    bigSource += "float helper" + std::to_string(i) +
                 "(float x) { return x * " + std::to_string(i + 1) +
                 ".0f + sqrt(x); }\n";
  }
  bigSource += "__kernel void k(__global float* out) { float a = 1.0f;\n";
  for (int i = 0; i < 40; ++i) {
    bigSource += "a += helper" + std::to_string(i) + "(a);\n";
  }
  bigSource += "out[get_global_id(0)] = a; }\n";

  common::Stopwatch compileTimer;
  clc::Program program;
  for (int i = 0; i < 10; ++i) {
    program = clc::compile(bigSource);
  }
  const double compileTime = compileTimer.elapsedSeconds();

  const auto bytes = clc::serializeProgram(program);
  common::Stopwatch loadTimer;
  for (int i = 0; i < 10; ++i) {
    const auto restored = clc::deserializeProgram(bytes);
    ASSERT_EQ(restored.functions.size(), program.functions.size());
  }
  const double loadTime = loadTimer.elapsedSeconds();
  EXPECT_LT(loadTime * 2, compileTime)
      << "compile=" << compileTime << "s load=" << loadTime << "s";
}

} // namespace
