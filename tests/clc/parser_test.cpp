#include <gtest/gtest.h>

#include "clc/parser.h"

using namespace clc;

namespace {

TEST(Parser, EmptyUnit) {
  const auto unit = parse("");
  EXPECT_TRUE(unit->functions.empty());
}

TEST(Parser, SimpleKernelSignature) {
  const auto unit = parse(
      "__kernel void k(__global float* in, __global float* out, int n) {}");
  ASSERT_EQ(unit->functions.size(), 1u);
  const FuncDecl* f = unit->functions[0];
  EXPECT_TRUE(f->isKernel);
  EXPECT_TRUE(f->returnType->isVoid());
  ASSERT_EQ(f->params.size(), 3u);
  EXPECT_TRUE(f->params[0].type->isPointer());
  EXPECT_EQ(f->params[0].type->addressSpace(), AddressSpace::Global);
  EXPECT_EQ(f->params[0].type->pointee()->scalarKind(), ScalarKind::F32);
  EXPECT_EQ(f->params[2].type->scalarKind(), ScalarKind::I32);
}

TEST(Parser, UnsignedSpellings) {
  const auto unit = parse(
      "void f(unsigned int a, unsigned b, unsigned char c, unsigned long d)"
      " {}");
  const auto& p = unit->functions[0]->params;
  EXPECT_EQ(p[0].type->scalarKind(), ScalarKind::U32);
  EXPECT_EQ(p[1].type->scalarKind(), ScalarKind::U32);
  EXPECT_EQ(p[2].type->scalarKind(), ScalarKind::U8);
  EXPECT_EQ(p[3].type->scalarKind(), ScalarKind::U64);
}

TEST(Parser, TypedefStruct) {
  const auto unit = parse(R"(
    typedef struct { float x; float y; int flag; } Point;
    void f(Point p) {}
  )");
  const Type* point = unit->types().findStruct("Point");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->fields().size(), 3u);
  EXPECT_EQ(point->fields()[0].offset, 0u);
  EXPECT_EQ(point->fields()[1].offset, 4u);
  EXPECT_EQ(point->fields()[2].offset, 8u);
  EXPECT_EQ(point->size(), 12u);
  EXPECT_EQ(unit->functions[0]->params[0].type, point);
}

TEST(Parser, StructWithTagAndTypedefName) {
  const auto unit = parse(R"(
    typedef struct Ev { int a; } Event;
    void f(Event e, struct Ev e2) {}
  )");
  EXPECT_EQ(unit->functions[0]->params[0].type,
            unit->functions[0]->params[1].type);
}

TEST(Parser, PlainStructDeclaration) {
  const auto unit = parse(R"(
    struct Node { int value; struct Node* next; };
    void f(struct Node* n) {}
  )");
  const Type* node = unit->types().findStruct("Node");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->fields()[1].type->pointee(), node);
}

TEST(Parser, TypedefOfScalar) {
  const auto unit = parse("typedef float real; void f(real r) {}");
  EXPECT_EQ(unit->functions[0]->params[0].type->scalarKind(),
            ScalarKind::F32);
}

TEST(Parser, ArrayLengthConstantExpressions) {
  const auto unit = parse(R"(
    #define WG 64
    __kernel void k() {
      __local float a[WG];
      float b[2 * WG + 1];
      int c[sizeof(float)];
    }
  )");
  const Stmt* body = unit->functions[0]->bodyStmt;
  ASSERT_EQ(body->body.size(), 3u);
  EXPECT_EQ(body->body[0]->decls[0]->type->arrayLength(), 64u);
  EXPECT_EQ(body->body[0]->decls[0]->space, AddressSpace::Local);
  EXPECT_EQ(body->body[1]->decls[0]->type->arrayLength(), 129u);
  EXPECT_EQ(body->body[2]->decls[0]->type->arrayLength(), 4u);
}

TEST(Parser, RejectsNonPositiveArrayLength) {
  EXPECT_THROW(parse("void f() { int a[0]; }"), CompileError);
  EXPECT_THROW(parse("void f() { int a[-3]; }"), CompileError);
  EXPECT_THROW(parse("void f(int n) { int a[n]; }"), CompileError);
}

TEST(Parser, OperatorPrecedence) {
  // a + b * c parses as a + (b * c)
  const auto unit = parse("int f(int a, int b, int c) { return a + b * c; }");
  const Stmt* ret = unit->functions[0]->bodyStmt->body[0];
  const Expr* e = ret->expr;
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(e->binaryOp, BinaryOp::Add);
  EXPECT_EQ(e->rhs->kind, ExprKind::Binary);
  EXPECT_EQ(e->rhs->binaryOp, BinaryOp::Mul);
}

TEST(Parser, AssignmentIsRightAssociative) {
  const auto unit = parse("void f(int a, int b) { a = b = 1; }");
  const Expr* e = unit->functions[0]->bodyStmt->body[0]->expr;
  ASSERT_EQ(e->kind, ExprKind::Assign);
  EXPECT_EQ(e->rhs->kind, ExprKind::Assign);
}

TEST(Parser, TernaryNesting) {
  const auto unit =
      parse("int f(int a) { return a ? 1 : a ? 2 : 3; }");
  const Expr* e = unit->functions[0]->bodyStmt->body[0]->expr;
  ASSERT_EQ(e->kind, ExprKind::Ternary);
  EXPECT_EQ(e->ternaryElse->kind, ExprKind::Ternary);
}

TEST(Parser, CastVersusParenthesizedExpression) {
  const auto unit = parse(R"(
    typedef struct { int v; } S;
    int f(float x, int y) {
      int a = (int)x;       // cast
      int b = (y) + 1;      // parens
      float c = (float)(y + 1);
      return a + b + (int)c;
    }
  )");
  const Stmt* body = unit->functions[0]->bodyStmt;
  EXPECT_EQ(body->body[0]->decls[0]->init->kind, ExprKind::Cast);
  EXPECT_EQ(body->body[1]->decls[0]->init->kind, ExprKind::Binary);
}

TEST(Parser, ArrowDesugarsToDerefMember) {
  const auto unit = parse(R"(
    typedef struct { int v; } S;
    int f(__global S* s) { return s->v; }
  )");
  const Expr* e = unit->functions[0]->bodyStmt->body[0]->expr;
  ASSERT_EQ(e->kind, ExprKind::Member);
  EXPECT_EQ(e->lhs->kind, ExprKind::Unary);
  EXPECT_EQ(e->lhs->unaryOp, UnaryOp::Deref);
}

TEST(Parser, PrototypeThenDefinitionMerges) {
  const auto unit = parse(R"(
    float helper(float x);
    __kernel void k(__global float* out) { out[0] = helper(1.0f); }
    float helper(float x) { return x * 2.0f; }
  )");
  // Exactly two functions, and 'helper' has a body.
  ASSERT_EQ(unit->functions.size(), 2u);
  const FuncDecl* helper = unit->findFunction("helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_NE(helper->bodyStmt, nullptr);
}

TEST(Parser, RejectsRedefinition) {
  EXPECT_THROW(parse("void f() {} void f() {}"), CompileError);
  EXPECT_THROW(
      parse("typedef struct { int a; } S; typedef struct { int b; } S;"),
      CompileError);
}

TEST(Parser, RejectsKernelQualifierInsideFunction) {
  EXPECT_THROW(parse("void f() { __kernel int x; }"), CompileError);
}

TEST(Parser, RejectsSwitchAndGoto) {
  EXPECT_THROW(parse("void f(int a) { switch (a) { default: break; } }"),
               CompileError);
  EXPECT_THROW(parse("void f() { goto end; end:; }"), CompileError);
}

TEST(Parser, SyntaxErrorsCarryLocations) {
  try {
    parse("void f() {\n  int a = ;\n}");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.loc().line, 2);
    EXPECT_GT(e.loc().column, 1);
  }
}

TEST(Parser, MissingSemicolonIsAnError) {
  EXPECT_THROW(parse("void f() { int a = 1 }"), CompileError);
  EXPECT_THROW(parse("void f() { return }"), CompileError);
}

TEST(Parser, UnbalancedBracesAreAnError) {
  EXPECT_THROW(parse("void f() { if (1) { }"), CompileError);
}

TEST(Parser, MultipleDeclaratorsPerStatement) {
  const auto unit = parse("void f() { int a = 1, b, c = 2; }");
  const Stmt* decl = unit->functions[0]->bodyStmt->body[0];
  ASSERT_EQ(decl->decls.size(), 3u);
  EXPECT_NE(decl->decls[0]->init, nullptr);
  EXPECT_EQ(decl->decls[1]->init, nullptr);
  EXPECT_NE(decl->decls[2]->init, nullptr);
}

TEST(Parser, ForWithDeclarationInit) {
  const auto unit =
      parse("void f() { for (int i = 0, j = 1; i < 4; ++i) { } }");
  const Stmt* forStmt = unit->functions[0]->bodyStmt->body[0];
  ASSERT_EQ(forStmt->kind, StmtKind::For);
  ASSERT_NE(forStmt->forInit, nullptr);
  EXPECT_EQ(forStmt->forInit->kind, StmtKind::Decl);
  EXPECT_EQ(forStmt->forInit->decls.size(), 2u);
}

TEST(Parser, EmptyForHeader) {
  const auto unit = parse("void f() { for (;;) { break; } }");
  const Stmt* forStmt = unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(forStmt->forInit, nullptr);
  EXPECT_EQ(forStmt->expr, nullptr);
  EXPECT_EQ(forStmt->forStep, nullptr);
}

TEST(Parser, FunctionParameterArrayDecays) {
  const auto unit = parse("void f(__global float data[], int n) {}");
  EXPECT_TRUE(unit->functions[0]->params[0].type->isPointer());
}

TEST(Parser, SizeofForms) {
  const auto unit = parse(R"(
    typedef struct { double d; int i; } S;
    void f() {
      int a = sizeof(float);
      int b = sizeof(S);
      int c = sizeof(__global int*);
    }
  )");
  const Stmt* body = unit->functions[0]->bodyStmt;
  EXPECT_EQ(body->body[0]->decls[0]->init->writtenType->size(), 4u);
  EXPECT_EQ(body->body[1]->decls[0]->init->writtenType->size(), 16u);
  EXPECT_EQ(body->body[2]->decls[0]->init->writtenType->size(), 8u);
}

} // namespace
