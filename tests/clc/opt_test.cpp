// Tests for the bytecode optimizer (clc/opt.h).
//
// Two layers:
//  * differential tests: every corpus kernel (hand-written plus the real
//    mandelbrot/osem device code) is compiled once per optimization level
//    and launched on identical inputs; output buffers must be bit-identical
//    and the simulated-time LaunchStats (total cycles, per-group sum/max,
//    memory traffic) must be invariant — only the dynamic instruction
//    count may shrink.
//  * per-pass unit tests on hand-written bytecode, pass-selected through
//    OptOptions, asserting the exact rewrite and that the cycle-cost table
//    still sums to the cost of the original sequence.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "clc/codegen.h"
#include "clc/opt.h"
#include "clc/serialize.h"
#include "clc/vm.h"
#include "clc_test_util.h"
#include "common/byte_stream.h"

namespace {

using clc::Instr;
using clc::Op;
using clc::TypeTag;

std::string readRepoFile(const std::string& relative) {
  const std::string path = std::string(SKELCL_REPRO_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- differential harness ---------------------------------------------------

/// One concrete kernel launch; buffers are deep-copied per run so every
/// optimization level starts from identical inputs.
struct Launch {
  std::string kernel;
  clc::NDRange range;
  std::vector<clc::KernelArgValue> args;
  std::vector<std::vector<std::uint8_t>> buffers;

  void shape1D(std::size_t global, std::size_t local) {
    range.dims = 1;
    range.globalSize[0] = global;
    range.localSize[0] = local;
  }
  void shape2D(std::size_t gx, std::size_t gy, std::size_t lx,
               std::size_t ly) {
    range.dims = 2;
    range.globalSize[0] = gx;
    range.globalSize[1] = gy;
    range.localSize[0] = lx;
    range.localSize[1] = ly;
  }

  template <typename T>
  void addBuffer(const std::vector<T>& data) {
    std::vector<std::uint8_t> bytes(data.size() * sizeof(T));
    std::memcpy(bytes.data(), data.data(), bytes.size());
    clc::KernelArgValue arg;
    arg.kind = clc::KernelArgValue::Kind::Buffer;
    arg.segmentIndex = std::uint32_t(buffers.size());
    buffers.push_back(std::move(bytes));
    args.push_back(std::move(arg));
  }
  template <typename T>
  void addScalar(T value) {
    args.push_back(clc_test::scalarArg(value));
  }
  template <typename T>
  void addStruct(const T& value) {
    args.push_back(clc_test::structArg(value));
  }
  void addLocal(std::uint32_t bytes) {
    args.push_back(clc_test::localArg(bytes));
  }
};

struct RunResult {
  std::vector<std::vector<std::uint8_t>> buffers;
  clc::LaunchStats stats;
};

RunResult runLaunch(const clc::Program& program, const Launch& launch) {
  RunResult r;
  r.buffers = launch.buffers;
  std::vector<clc::Segment> segments;
  for (auto& b : r.buffers) {
    segments.push_back(clc::Segment{b.data(), b.size()});
  }
  r.stats = clc::executeKernel(program, launch.kernel, launch.range,
                               launch.args, segments, nullptr);
  return r;
}

/// The timing-invariance contract: everything the ocl timing model reads
/// must match; only the host-side dispatch count may differ.
void expectTimingInvariant(const clc::LaunchStats& base,
                           const clc::LaunchStats& opt) {
  EXPECT_EQ(opt.totalCycles, base.totalCycles);
  EXPECT_EQ(opt.globalBytesRead, base.globalBytesRead);
  EXPECT_EQ(opt.globalBytesWritten, base.globalBytesWritten);
  EXPECT_EQ(opt.atomicOps, base.atomicOps);
  EXPECT_EQ(opt.barrierWaits, base.barrierWaits);
  ASSERT_EQ(opt.groups.size(), base.groups.size());
  for (std::size_t g = 0; g < base.groups.size(); ++g) {
    EXPECT_EQ(opt.groups[g].sumCycles, base.groups[g].sumCycles) << "group " << g;
    EXPECT_EQ(opt.groups[g].maxCycles, base.groups[g].maxCycles) << "group " << g;
  }
}

/// Compiles `source` at O0 and at every higher level, runs `launch` on
/// each, and checks bit-identical buffers + invariant simulated time.
void expectDifferential(const std::string& source, const Launch& launch) {
  clc::Program base = clc::compile(source);
  clc::optimize(base, clc::OptLevel::O0);
  const RunResult o0 = runLaunch(base, launch);

  for (const clc::OptLevel level : {clc::OptLevel::O1, clc::OptLevel::O2}) {
    SCOPED_TRACE("O" + std::to_string(int(level)));
    clc::Program p = clc::compile(source);
    clc::optimize(p, level);
    EXPECT_EQ(p.optLevel, std::uint8_t(level));
    const RunResult r = runLaunch(p, launch);
    ASSERT_EQ(r.buffers.size(), o0.buffers.size());
    for (std::size_t i = 0; i < o0.buffers.size(); ++i) {
      EXPECT_EQ(r.buffers[i], o0.buffers[i]) << "buffer " << i;
    }
    expectTimingInvariant(o0.stats, r.stats);
    // The whole point: fewer dispatched instructions, same simulated time.
    EXPECT_LE(r.stats.instructions, o0.stats.instructions);
  }
}

// --- differential corpus: hand-written kernels ------------------------------

TEST(OptDifferential, SaxpyLoopWithCompoundAssign) {
  const std::string source = R"(
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
  int i = (int)get_global_id(0);
  if (i >= n) return;
  float acc = 0.0f;
  for (int k = 0; k <= i; ++k) {
    acc += a * x[k];
  }
  y[i] = acc + y[i];
}
)";
  Launch l;
  l.kernel = "saxpy";
  l.shape1D(16, 4);
  std::vector<float> y(16), x(16);
  for (int i = 0; i < 16; ++i) {
    y[i] = 0.25f * float(i) - 1.0f;
    x[i] = float(i * i) * 0.125f;
  }
  l.addBuffer(y);
  l.addBuffer(x);
  l.addScalar(1.5f);
  l.addScalar(std::int32_t(13));
  expectDifferential(source, l);
}

TEST(OptDifferential, UnsignedDivRemByPowerOfTwo) {
  const std::string source = R"(
__kernel void intops(__global uint* out, __global const uint* in, uint n) {
  uint i = (uint)get_global_id(0);
  if (i < n) {
    uint v = in[i];
    uint a = v / 8u;        /* -> shr  */
    uint b = v % 16u;       /* -> and  */
    uint c = v * 4u;        /* -> shl  */
    int s = (int)v - 1000;
    int d = s / 4;          /* signed: must NOT be strength-reduced */
    int e = s % 8;
    out[i] = a + b + c + (v / 3u) + (uint)(d + e);
  }
}
)";
  Launch l;
  l.kernel = "intops";
  l.shape1D(32, 8);
  std::vector<std::uint32_t> out(32, 0), in(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    in[i] = i * 977u + 31u;
  }
  l.addBuffer(out);
  l.addBuffer(in);
  l.addScalar(std::uint32_t(30));
  expectDifferential(source, l);
}

TEST(OptDifferential, TernaryAndShortCircuitLogic) {
  const std::string source = R"(
__kernel void logic(__global int* out, __global const int* in, int n) {
  int i = (int)get_global_id(0);
  if (i >= n) return;
  int v = in[i];
  int r = (v > 10 && v < 100) ? v * 2
                              : ((v < 0 || v == 5) ? -v : v + 1);
  out[i] = r;
}
)";
  Launch l;
  l.kernel = "logic";
  l.shape1D(16, 4);
  std::vector<std::int32_t> out(16, -7), in = {5,  -3, 42, 150, 0,  11, 99, 100,
                                               -1, 10, 7,  1000, 5, 64, -64, 2};
  l.addBuffer(out);
  l.addBuffer(in);
  l.addScalar(std::int32_t(16));
  expectDifferential(source, l);
}

TEST(OptDifferential, PointerArithmeticWalk) {
  const std::string source = R"(
__kernel void walk(__global float* out, __global const float* in, int n) {
  int i = (int)get_global_id(0);
  __global const float* p = in + i;
  float s = 0.0f;
  for (int k = i; k < n; k += 2) {
    s += *p;
    p += 2;
  }
  out[i] = s;
}
)";
  Launch l;
  l.kernel = "walk";
  l.shape1D(8, 4);
  std::vector<float> out(8, 0.0f), in(16);
  for (int i = 0; i < 16; ++i) {
    in[i] = 1.0f / float(i + 1);
  }
  l.addBuffer(out);
  l.addBuffer(in);
  l.addScalar(std::int32_t(16));
  expectDifferential(source, l);
}

TEST(OptDifferential, ConstantExpressionsAndKnownBranches) {
  const std::string source = R"(
__kernel void consts(__global int* out) {
  int i = (int)get_global_id(0);
  int a = 3 * 7 + (1 << 4);
  if (2 > 1) {
    a += 5;
  } else {
    a -= 100;
  }
  int b = (12 / 4) * (9 % 5);
  out[i] = a + b + i;
}
)";
  Launch l;
  l.kernel = "consts";
  l.shape1D(8, 8);
  l.addBuffer(std::vector<std::int32_t>(8, 0));
  expectDifferential(source, l);
}

TEST(OptDifferential, ConversionsAndMathBuiltins) {
  const std::string source = R"(
__kernel void convmath(__global float* out, __global const float* in, int n) {
  int i = (int)get_global_id(0);
  if (i < n) {
    float v = in[i];
    float w = sqrt(fabs(v)) + (float)(i % 4) * 0.5f;
    out[i] = fmin(w, 100.0f) + (float)((uint)i / 2u);
  }
}
)";
  Launch l;
  l.kernel = "convmath";
  l.shape1D(16, 4);
  std::vector<float> out(16, 0.0f), in(16);
  for (int i = 0; i < 16; ++i) {
    in[i] = (i % 2 ? -1.0f : 1.0f) * float(i) * 3.25f;
  }
  l.addBuffer(out);
  l.addBuffer(in);
  l.addScalar(std::int32_t(15));
  expectDifferential(source, l);
}

TEST(OptDifferential, AtomicHistogram) {
  const std::string source = R"(
__kernel void hist(__global int* bins, __global const int* in, int n) {
  int i = (int)get_global_id(0);
  if (i < n) {
    atomic_add(&bins[in[i] & 7], 1);
  }
}
)";
  Launch l;
  l.kernel = "hist";
  l.shape1D(64, 8);
  std::vector<std::int32_t> bins(8, 0), in(64);
  for (int i = 0; i < 64; ++i) {
    in[i] = i * 31 + 7;
  }
  l.addBuffer(bins);
  l.addBuffer(in);
  l.addScalar(std::int32_t(60));
  expectDifferential(source, l);
}

TEST(OptDifferential, BarrierTreeReduction) {
  const std::string source = R"(
__kernel void reduce(__global float* out, __global const float* in,
                     __local float* tmp) {
  int lid = (int)get_local_id(0);
  int gid = (int)get_global_id(0);
  int lsz = (int)get_local_size(0);
  tmp[lid] = in[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = lsz / 2; s > 0; s /= 2) {
    if (lid < s) {
      tmp[lid] = tmp[lid] + tmp[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    out[gid / lsz] = tmp[0];
  }
}
)";
  Launch l;
  l.kernel = "reduce";
  l.shape1D(32, 8);
  std::vector<float> out(4, 0.0f), in(32);
  for (int i = 0; i < 32; ++i) {
    in[i] = float(i) * 0.75f - 4.0f;
  }
  l.addBuffer(out);
  l.addBuffer(in);
  l.addLocal(8 * sizeof(float));
  expectDifferential(source, l);
}

// --- differential corpus: the real example kernels --------------------------

TEST(OptDifferential, MandelbrotKernel) {
  const std::string source =
      readRepoFile("src/mandelbrot/kernels/mandelbrot_opencl.cl");
  ASSERT_FALSE(source.empty());
  const int width = 16;
  const int height = 8;
  Launch l;
  l.kernel = "mandelbrot";
  l.shape2D(std::size_t(width), std::size_t(height), 4, 4);
  l.addBuffer(std::vector<std::int32_t>(std::size_t(width) * height, -1));
  l.addScalar(std::int32_t(width));
  l.addScalar(std::int32_t(height));
  l.addScalar(-2.0f);
  l.addScalar(-1.0f);
  l.addScalar(3.0f / float(width));
  l.addScalar(2.0f / float(height));
  l.addScalar(std::int32_t(64));
  expectDifferential(source, l);

  // The headline claim: the hot loop really got shorter at O2.
  clc::Program o0 = clc::compile(source);
  clc::optimize(o0, clc::OptLevel::O0);
  clc::Program o2 = clc::compile(source);
  clc::optimize(o2, clc::OptLevel::O2);
  const clc::LaunchStats s0 = runLaunch(o0, l).stats;
  const clc::LaunchStats s2 = runLaunch(o2, l).stats;
  EXPECT_LT(s2.instructions, s0.instructions);
}

TEST(OptDifferential, OsemUpdateAndAddImages) {
  const std::string source = readRepoFile("src/osem/kernels/osem_opencl.cl");
  ASSERT_FALSE(source.empty());
  std::vector<float> f(64), c(64);
  for (int i = 0; i < 64; ++i) {
    f[i] = 0.5f + 0.01f * float(i);
    c[i] = (i % 5 == 0) ? 0.0f : 1.0f + 0.125f * float(i % 7);
  }
  {
    Launch l;
    l.kernel = "update_image";
    l.shape1D(32, 8);
    l.addBuffer(f);
    l.addBuffer(c);
    l.addScalar(std::uint32_t(16));
    l.addScalar(std::uint32_t(32));
    expectDifferential(source, l);
  }
  {
    Launch l;
    l.kernel = "add_images";
    l.shape1D(32, 8);
    l.addBuffer(f);                  // dst
    l.addScalar(std::uint32_t(8));   // offset
    l.addBuffer(c);                  // src
    l.addScalar(std::uint32_t(24));  // n
    expectDifferential(source, l);
  }
}

TEST(OptDifferential, OsemComputeErrorImage) {
  const std::string source = readRepoFile("src/osem/kernels/osem_opencl.cl");
  ASSERT_FALSE(source.empty());
  struct Event {
    float x1, y1, z1, x2, y2, z2;
  };
  struct OsemDims {
    std::int32_t nx, ny, nz;
    float voxelSize;
  };
  const OsemDims dims{4, 4, 4, 1.0f};
  std::vector<Event> events;
  for (int i = 0; i < 8; ++i) {
    const float t = float(i) * 0.37f;
    events.push_back(Event{-2.0f + 0.3f * t, -2.0f, 0.2f * t,
                           1.9f, 1.7f - 0.2f * t, -0.3f * t});
  }
  std::vector<float> f(64, 1.0f), c(64, 0.0f);
  for (int i = 0; i < 64; ++i) {
    f[i] = 0.75f + 0.02f * float(i % 9);
  }
  Launch l;
  l.kernel = "compute_error_image";
  l.shape1D(4, 2);
  l.addBuffer(events);
  l.addScalar(std::uint32_t(events.size()));
  l.addBuffer(f);
  l.addBuffer(c);
  l.addStruct(dims);
  expectDifferential(source, l);
}

// --- per-pass unit tests on hand-written bytecode ---------------------------

Instr I(Op op, TypeTag tag = TypeTag::I32, std::int32_t a = 0) {
  return Instr{op, tag, a};
}

/// Wraps straight-line code into a single-kernel program.
clc::Program makeProgram(std::vector<Instr> code,
                         std::vector<std::uint64_t> constants,
                         std::uint32_t frameSize = 64) {
  clc::Program p;
  p.code = std::move(code);
  p.constants = std::move(constants);
  clc::FunctionInfo f;
  f.name = "k";
  f.codeEnd = std::uint32_t(p.code.size());
  f.frameSize = frameSize;
  f.isKernel = true;
  p.functions.push_back(std::move(f));
  clc::KernelInfo k;
  k.name = "k";
  p.kernels.push_back(std::move(k));
  return p;
}

std::uint64_t derivedCostSum(const clc::Program& p) {
  std::uint64_t sum = 0;
  for (const Instr& in : p.code) {
    sum += clc::instrCycleCost(in);
  }
  return sum;
}

std::uint64_t tableCostSum(const clc::Program& p) {
  std::uint64_t sum = 0;
  for (const std::uint32_t c : p.cycleCosts) {
    sum += c;
  }
  return sum;
}

clc::OptOptions only(bool folding, bool algebraic, bool deadCode, bool fuse) {
  clc::OptOptions o;
  o.constantFolding = folding;
  o.algebraic = algebraic;
  o.deadCode = deadCode;
  o.fuse = fuse;
  return o;
}

TEST(OptPass, ConstantFoldAdd) {
  clc::Program p = makeProgram({I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::PushConst, TypeTag::I32, 1),
                                I(Op::Add, TypeTag::I32),
                                I(Op::StoreFrame, TypeTag::I32, 0),
                                I(Op::Ret)},
                               {2, 3});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(true, false, false, false));
  EXPECT_EQ(stats.foldedInstrs, 1u);
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[0].op, Op::PushConst);
  EXPECT_EQ(p.constants[std::size_t(p.code[0].a)], 5u);
  EXPECT_EQ(p.code[1].op, Op::StoreFrame);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, PropagatesFrameConstantThroughStore) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::I32, 0),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Store, TypeTag::I32),
                                I(Op::PushFrameAddr, TypeTag::I32, 8),
                                I(Op::PushFrameAddr, TypeTag::I32, 0),
                                I(Op::Load, TypeTag::I32),
                                I(Op::Store, TypeTag::I32),
                                I(Op::Ret)},
                               {7});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(true, false, false, false));
  EXPECT_EQ(stats.propagatedLoads, 1u);
  for (const Instr& in : p.code) {
    EXPECT_NE(in.op, Op::Load) << "frame load should be a constant now";
  }
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, IdentityAddZeroU64) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 8),
                                I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Load, TypeTag::U64),
                                I(Op::PushConst, TypeTag::U64, 0),
                                I(Op::Add, TypeTag::U64),
                                I(Op::Store, TypeTag::U64),
                                I(Op::Ret)},
                               {0});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, true, false, false));
  EXPECT_EQ(stats.simplifiedInstrs, 1u);
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[2].op, Op::Load);
  EXPECT_EQ(p.code[3].op, Op::Store);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, StrengthReduceMulToShift) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 8),
                                I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Load, TypeTag::I32),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Mul, TypeTag::I32),
                                I(Op::Store, TypeTag::I32),
                                I(Op::Ret)},
                               {8});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, true, false, false));
  EXPECT_EQ(stats.simplifiedInstrs, 1u);
  EXPECT_EQ(p.code[4].op, Op::Shl);
  EXPECT_EQ(p.constants[std::size_t(p.code[3].a)], 3u) << "shift amount";
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, StrengthReduceUnsignedDivAndRem) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 8),
                                I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Load, TypeTag::U32),
                                I(Op::PushConst, TypeTag::U32, 0),
                                I(Op::Div, TypeTag::U32),
                                I(Op::PushConst, TypeTag::U32, 0),
                                I(Op::Rem, TypeTag::U32),
                                I(Op::Store, TypeTag::U32),
                                I(Op::Ret)},
                               {16});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, true, false, false));
  EXPECT_EQ(stats.simplifiedInstrs, 2u);
  EXPECT_EQ(p.code[4].op, Op::Shr);
  EXPECT_EQ(p.constants[std::size_t(p.code[3].a)], 4u);
  EXPECT_EQ(p.code[6].op, Op::BitAnd);
  EXPECT_EQ(p.constants[std::size_t(p.code[5].a)], 15u);
  // Div cost 8 rides on the cheap Shr: totals must still match.
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, SignedDivisionIsNotStrengthReduced) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 8),
                                I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Load, TypeTag::I32),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Div, TypeTag::I32),
                                I(Op::Store, TypeTag::I32),
                                I(Op::Ret)},
                               {4});
  const clc::OptStats stats = clc::optimizeWith(p, only(false, true, false, false));
  EXPECT_EQ(stats.simplifiedInstrs, 0u);
  EXPECT_EQ(p.code[4].op, Op::Div) << "rounds toward zero, shift would floor";
}

TEST(OptPass, RemovesPushPopPairs) {
  clc::Program p = makeProgram({I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Pop),
                                I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Pop),
                                I(Op::Ret)},
                               {42});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, false, true, false));
  EXPECT_EQ(stats.removedInstrs, 4u);
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, Op::Ret);
  // All removed cycles now ride on Ret.
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, FoldsKnownBranchAndDropsUnreachable) {
  clc::Program p = makeProgram({I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Jz, TypeTag::I32, 3),
                                I(Op::Trap, TypeTag::I32, 1),
                                I(Op::Ret)},
                               {0});
  const clc::OptStats stats = clc::optimizeWith(p, only(true, false, true, false));
  EXPECT_EQ(stats.foldedBranches, 1u);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].op, Op::Jmp);
  EXPECT_EQ(p.code[0].a, 1);
  EXPECT_EQ(p.code[1].op, Op::Ret);
  // Push + Jz cycles live on the Jmp; the unreachable Trap is cost-free.
  EXPECT_EQ(tableCostSum(p),
            clc::opCycleCost(Op::PushConst) + clc::opCycleCost(Op::Jz) +
                clc::opCycleCost(Op::Ret));
}

TEST(OptPass, FusesLoadFrame) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 4),
                                I(Op::Load, TypeTag::F32),
                                I(Op::Ret)},
                               {});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, false, false, true));
  EXPECT_GE(stats.fusedInstrs, 1u);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].op, Op::LoadFrame);
  EXPECT_EQ(p.code[0].tag, TypeTag::F32);
  EXPECT_EQ(p.code[0].a, 4);
  EXPECT_EQ(p.cycleCosts[0],
            clc::opCycleCost(Op::PushFrameAddr) + clc::opCycleCost(Op::Load));
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, FusesStoreFrameAcrossRegion) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 8),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Store, TypeTag::I32),
                                I(Op::Ret)},
                               {9});
  const std::uint64_t before = derivedCostSum(p);
  clc::optimizeWith(p, only(false, false, false, true));
  ASSERT_EQ(p.code.size(), 3u);
  // The PushConst itself fuses with nothing (Store is not a binop), so the
  // shape is [PushConst, StoreFrame, Ret].
  EXPECT_EQ(p.code[0].op, Op::PushConst);
  EXPECT_EQ(p.code[1].op, Op::StoreFrame);
  EXPECT_EQ(p.code[1].a, 8);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, FusesIncrementIdiom) {
  // x += 1 as codegen emits it: addr, dup, load, const, add, store.
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 16),
                                I(Op::Dup),
                                I(Op::Load, TypeTag::I32),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Add, TypeTag::I32),
                                I(Op::Store, TypeTag::I32),
                                I(Op::Ret)},
                               {1});
  const std::uint64_t before = derivedCostSum(p);
  clc::optimizeWith(p, only(false, false, false, true));
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[0].op, Op::LoadFrame);
  EXPECT_EQ(p.code[0].a, 16);
  EXPECT_EQ(p.code[1].op, Op::BinConst) << "push+add fuse in a later round";
  EXPECT_EQ(clc::embeddedOp(p.code[1].a), Op::Add);
  EXPECT_EQ(p.code[2].op, Op::StoreFrame);
  EXPECT_EQ(p.code[2].a, 16);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, FusesCompareJump) {
  clc::Program p = makeProgram({I(Op::PushFrameAddr, TypeTag::Ptr, 0),
                                I(Op::Load, TypeTag::I32),
                                I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::CmpLt, TypeTag::I32),
                                I(Op::Jz, TypeTag::I32, 5),
                                I(Op::Ret)},
                               {5});
  const std::uint64_t before = derivedCostSum(p);
  clc::optimizeWith(p, only(false, false, false, true));
  // [LoadFrame, PushConst, CmpJz, Ret]; the compare feeding the jump is
  // deliberately NOT embedded into BinConst.
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[0].op, Op::LoadFrame);
  EXPECT_EQ(p.code[1].op, Op::PushConst);
  EXPECT_EQ(p.code[2].op, Op::CmpJz);
  EXPECT_EQ(clc::cmpFromJump(p.code[2].a), Op::CmpLt);
  EXPECT_EQ(clc::cmpJumpTarget(p.code[2].a), 3);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, FusesBinConstFrameBinLoadBinMulAdd) {
  clc::Program p = makeProgram({I(Op::PushConst, TypeTag::I32, 0),
                                I(Op::Mul, TypeTag::I32),
                                I(Op::LoadFrame, TypeTag::F32, 8),
                                I(Op::Sub, TypeTag::F32),
                                I(Op::Load, TypeTag::F32),
                                I(Op::Add, TypeTag::F32),
                                I(Op::Mul, TypeTag::F32),
                                I(Op::Add, TypeTag::F32),
                                I(Op::Ret)},
                               {3});
  const std::uint64_t before = derivedCostSum(p);
  clc::optimizeWith(p, only(false, false, false, true));
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[0].op, Op::BinConst);
  EXPECT_EQ(clc::embeddedOp(p.code[0].a), Op::Mul);
  EXPECT_EQ(p.code[1].op, Op::FrameBin);
  EXPECT_EQ(clc::embeddedOp(p.code[1].a), Op::Sub);
  EXPECT_EQ(clc::embeddedOperand(p.code[1].a), 8);
  EXPECT_EQ(p.code[2].op, Op::LoadBin);
  EXPECT_EQ(Op(p.code[2].a), Op::Add);
  EXPECT_EQ(p.code[3].op, Op::MulAdd);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, DeadFrameStoreBecomesPop) {
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::I32, 0),
                                I(Op::StoreFrame, TypeTag::I32, 16),
                                I(Op::Ret)},
                               {});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats = clc::optimizeWith(p, only(false, false, true, true));
  EXPECT_EQ(stats.deadStores, 1u);
  // Store of a never-read slot became a Pop; the load+pop pair then
  // vanished entirely, leaving the cycles on Ret.
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, Op::Ret);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, StoreFrameReadBackStaysLive) {
  // Two reads of the spilled slot: store->load forwarding must not fire,
  // and the dead-store pass must see the reads — which fuse into a
  // FrameBin2 — and keep the store.
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::I32, 0),
                                I(Op::StoreFrame, TypeTag::I32, 16),
                                I(Op::LoadFrame, TypeTag::I32, 16),
                                I(Op::LoadFrame, TypeTag::I32, 16),
                                I(Op::Add, TypeTag::I32),
                                I(Op::StoreFrame, TypeTag::I32, 0),
                                I(Op::Ret)},
                               {});
  const clc::OptStats stats = clc::optimizeWith(p, only(false, false, true, true));
  EXPECT_EQ(stats.deadStores, 0u);
  EXPECT_EQ(stats.forwardedStores, 0u);
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[1].op, Op::StoreFrame);
  EXPECT_EQ(p.code[2].op, Op::FrameBin2);
}

TEST(OptPass, FusesFrameBin2) {
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::F32, 0),
                                I(Op::LoadFrame, TypeTag::F32, 4),
                                I(Op::Mul, TypeTag::F32),
                                I(Op::StoreFrame, TypeTag::F32, 8),
                                I(Op::Ret)},
                               {});
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats =
      clc::optimizeWith(p, only(false, false, false, true));
  EXPECT_GE(stats.fusedInstrs, 2u);
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[0].op, Op::FrameBin2);
  EXPECT_EQ(clc::frame2Op(p.code[0].a), Op::Mul);
  EXPECT_EQ(clc::frame2X(p.code[0].a), 0);
  EXPECT_EQ(clc::frame2Y(p.code[0].a), 4);
  // LoadFrame (3) + LoadFrame (3) + Mul (1) all ride on one instruction.
  EXPECT_EQ(p.cycleCosts[0], 7u);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, ThreadsConstantConditionDiamonds) {
  // The codegen shape for `if (a && b)`: each arm pushes 0/1 and the
  // merged value is compared against 0. Fusion builds the CmpJz head;
  // threading then collapses both arms into direct jumps, each charged
  // the cycles of the path it replaced, and the orphaned head dies.
  clc::Program p = makeProgram(
      {I(Op::LoadFrame, TypeTag::I32, 0),
       I(Op::Jnz, TypeTag::I32, 4),
       I(Op::PushConst, TypeTag::I32, 0), // false arm
       I(Op::Jmp, TypeTag::I32, 5),
       I(Op::PushConst, TypeTag::I32, 1), // true arm, falls into the head
       I(Op::PushConst, TypeTag::I32, 0), // head: merged value != 0 ?
       I(Op::CmpJz, TypeTag::I32, clc::encodeCmpJump(Op::CmpNe, 9)),
       I(Op::PushConst, TypeTag::I32, 1), // body
       I(Op::StoreFrame, TypeTag::I32, 0),
       I(Op::Ret)},
      {0, 1});
  const clc::OptStats stats =
      clc::optimizeWith(p, only(false, false, true, true));
  EXPECT_EQ(stats.foldedBranches, 2u);
  ASSERT_EQ(p.code.size(), 7u);
  EXPECT_EQ(p.code[2].op, Op::Jmp);
  EXPECT_EQ(p.code[2].a, 6) << "false arm jumps past the body";
  EXPECT_EQ(p.code[3].op, Op::Jmp);
  EXPECT_EQ(p.code[3].a, 4) << "true arm jumps into the body";
  // push (1) + jmp (1) + head push (1) + cmp_jz (2) on the false arm;
  // the fall-through true arm had no jmp of its own.
  EXPECT_EQ(p.cycleCosts[2], 5u);
  EXPECT_EQ(p.cycleCosts[3], 4u);
}

TEST(OptPass, ForwardsSpillReloadPair) {
  // A value spilled to slot 8 and reloaded exactly once while unrelated
  // slots are written in between stays on the operand stack.
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::F32, 0),
                                I(Op::StoreFrame, TypeTag::F32, 8),
                                I(Op::PushConst, TypeTag::F32, 0),
                                I(Op::StoreFrame, TypeTag::F32, 16),
                                I(Op::LoadFrame, TypeTag::F32, 8),
                                I(Op::StoreFrame, TypeTag::F32, 0),
                                I(Op::Ret)},
                               {0x40000000ull}); // 2.0f
  const std::uint64_t before = derivedCostSum(p);
  const clc::OptStats stats =
      clc::optimizeWith(p, only(false, false, false, true));
  EXPECT_EQ(stats.forwardedStores, 1u);
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[1].op, Op::PushConst);
  EXPECT_EQ(p.code[3].op, Op::StoreFrame);
  EXPECT_EQ(p.code[3].a, 0);
  EXPECT_EQ(tableCostSum(p), before);
}

TEST(OptPass, DoesNotForwardAcrossNonCanonicalProducer) {
  // An U8 load leaves a zero-extended slot, but here the producer tag (I8,
  // sign-extending) differs from the store's U8 round-trip, so skipping
  // the spill/reload could change the bits: the pair must stay.
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::I8, 0),
                                I(Op::StoreFrame, TypeTag::U8, 8),
                                I(Op::LoadFrame, TypeTag::U8, 8),
                                I(Op::StoreFrame, TypeTag::U8, 1),
                                I(Op::Ret)},
                               {});
  const clc::OptStats stats =
      clc::optimizeWith(p, only(false, false, false, true));
  EXPECT_EQ(stats.forwardedStores, 0u);
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[1].op, Op::StoreFrame);
}

TEST(OptPass, OptLevelZeroLeavesProgramUntouched) {
  const std::string source = "__kernel void k(__global int* d) { d[0] = 1 + 2; }";
  clc::Program p = clc::compile(source);
  const std::vector<Instr> original = p.code;
  clc::optimize(p, clc::OptLevel::O0);
  EXPECT_EQ(p.optLevel, 0u);
  EXPECT_TRUE(p.cycleCosts.empty());
  ASSERT_EQ(p.code.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(p.code[i].op, original[i].op);
    EXPECT_EQ(p.code[i].a, original[i].a);
  }
}

// --- serialization of optimized programs ------------------------------------

TEST(OptSerialize, RoundTripsOptimizedProgram) {
  const std::string source =
      readRepoFile("src/mandelbrot/kernels/mandelbrot_opencl.cl");
  clc::Program p = clc::compile(source);
  clc::optimize(p, clc::OptLevel::O2);
  ASSERT_EQ(p.cycleCosts.size(), p.code.size());

  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  const clc::Program q = clc::deserializeProgram(bytes);
  EXPECT_EQ(q.optLevel, 2u);
  EXPECT_EQ(q.constants, p.constants);
  EXPECT_EQ(q.cycleCosts, p.cycleCosts);
  ASSERT_EQ(q.code.size(), p.code.size());
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    EXPECT_EQ(q.code[i].op, p.code[i].op);
    EXPECT_EQ(q.code[i].tag, p.code[i].tag);
    EXPECT_EQ(q.code[i].a, p.code[i].a);
  }
}

TEST(OptSerialize, RejectsFrameOffsetOutOfBounds) {
  clc::Program p = makeProgram({I(Op::LoadFrame, TypeTag::I32, 60),
                                I(Op::Ret)},
                               {}, /*frameSize=*/8);
  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(OptSerialize, RejectsUnknownOpcode) {
  clc::Program p = makeProgram({I(Op(std::uint8_t(clc::kMaxOp) + 1)),
                                I(Op::Ret)},
                               {});
  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(OptSerialize, RejectsMalformedBinConst) {
  // Operand index 5 with only one pool constant.
  clc::Program p = makeProgram({I(Op::BinConst, TypeTag::I32,
                                  clc::encodeEmbedOp(Op::Add, 5)),
                                I(Op::Ret)},
                               {1});
  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(OptSerialize, RejectsMalformedFrameBin2) {
  // Second frame offset reaches past the 8-byte frame.
  clc::Program p = makeProgram({I(Op::FrameBin2, TypeTag::I32,
                                  clc::encodeFrame2(Op::Add, 0, 60)),
                                I(Op::Pop),
                                I(Op::Ret)},
                               {}, /*frameSize=*/8);
  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

TEST(OptSerialize, RejectsMismatchedCycleTable) {
  clc::Program p = makeProgram({I(Op::Ret)}, {});
  p.cycleCosts = {1, 2, 3}; // wrong length for one instruction
  const std::vector<std::uint8_t> bytes = clc::serializeProgram(p);
  EXPECT_THROW(clc::deserializeProgram(bytes), common::DeserializeError);
}

} // namespace
