#include <gtest/gtest.h>

#include "clc/parser.h"
#include "clc/sema.h"

using namespace clc;

namespace {

/// Parses and analyzes; returns the unit for inspection.
std::unique_ptr<TranslationUnit> check(const std::string& source) {
  auto unit = parse(source);
  analyze(*unit);
  return unit;
}

void expectError(const std::string& source, const std::string& fragment) {
  try {
    check(source);
    FAIL() << "expected CompileError containing '" << fragment << "'";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(Sema, AcceptsWellTypedKernel) {
  EXPECT_NO_THROW(check(R"(
    __kernel void k(__global float* in, __global float* out, int n) {
      int i = get_global_id(0);
      if (i < n) out[i] = in[i] * 2.0f;
    }
  )"));
}

TEST(Sema, UnknownIdentifier) {
  expectError("void f() { int a = b; }", "unknown identifier 'b'");
}

TEST(Sema, UnknownFunction) {
  expectError("void f() { g(); }", "unknown function 'g'");
}

TEST(Sema, PrototypeWithoutDefinitionCannotBeCalled) {
  expectError("float h(float x); void f() { h(1.0f); }", "never defined");
}

TEST(Sema, ArgumentCountMismatch) {
  expectError("float h(float x) { return x; } void f() { h(1.0f, 2.0f); }",
              "expects 1 arguments");
}

TEST(Sema, RecursionIsRejected) {
  expectError("int f(int n) { return n == 0 ? 1 : n * f(n - 1); }",
              "recursion");
  expectError(
      "int a(int n); int b(int n) { return a(n); } int a(int n) { return "
      "b(n); }",
      "recursion");
}

TEST(Sema, KernelMustReturnVoid) {
  EXPECT_THROW(check("__kernel float k() { return 1.0f; }"), CompileError);
}

TEST(Sema, KernelCannotBeCalledFromDeviceCode) {
  expectError(
      "__kernel void k() {} __kernel void k2() { k(); }",
      "cannot be called");
}

TEST(Sema, ExplicitPrivatePointerKernelParamRejected) {
  expectError("__kernel void k(__private float* p) {}",
              "must be __global, __local or __constant");
}

TEST(Sema, LocalVariableOnlyInKernels) {
  expectError("void helper() { __local float buf[8]; }",
              "only allowed in kernel");
}

TEST(Sema, LocalVariableCannotBeInitialized) {
  expectError("__kernel void k() { __local int x = 3; }",
              "cannot be initialized");
}

TEST(Sema, BreakOutsideLoop) {
  expectError("void f() { break; }", "'break' outside of a loop");
  expectError("void f() { continue; }", "'continue' outside of a loop");
}

TEST(Sema, ReturnTypeChecks) {
  expectError("int f() { return; }", "must return a value");
  expectError("void f() { return 3; }", "cannot return a value");
}

TEST(Sema, AssignmentToRValueRejected) {
  expectError("void f(int a, int b) { (a + b) = 3; }", "not an lvalue");
  expectError("void f() { 4 = 3; }", "not an lvalue");
}

TEST(Sema, ArrayAssignmentRejected) {
  expectError("void f() { int a[3]; int b[3]; a = b; }",
              "cannot assign to an array");
}

TEST(Sema, StructTypeMismatch) {
  expectError(R"(
    typedef struct { int a; } S;
    typedef struct { int a; } T;
    void f() { S s; T t; s = t; }
  )",
              "assigning");
}

TEST(Sema, MemberAccessOnNonStruct) {
  expectError("void f(int a) { int b = a.x; }", "member access on non-struct");
}

TEST(Sema, UnknownField) {
  expectError(R"(
    typedef struct { int a; } S;
    void f(S s) { int b = s.bogus; }
  )",
              "no field 'bogus'");
}

TEST(Sema, DereferenceNonPointer) {
  expectError("void f(int a) { int b = *a; }", "cannot dereference");
}

TEST(Sema, IndexNonPointer) {
  expectError("void f(int a) { int b = a[0]; }", "cannot index");
}

TEST(Sema, PointerSubtractionTypeMismatch) {
  expectError(
      "void f(__global int* a, __global float* b) { long d = a - b; }",
      "different types");
}

TEST(Sema, ModuloOnFloatRejected) {
  expectError("void f(float a) { float b = a % 2.0f; }", "integer operands");
}

TEST(Sema, ShiftOnFloatRejected) {
  expectError("void f(float a) { float b = a << 1; }", "integer operands");
}

TEST(Sema, RedeclarationInSameScope) {
  expectError("void f() { int a; float a; }", "redeclaration");
}

TEST(Sema, ShadowingInInnerScopeIsAllowed) {
  EXPECT_NO_THROW(check("void f() { int a = 1; { float a = 2.0f; } }"));
}

TEST(Sema, DuplicateParameter) {
  expectError("void f(int a, float a) {}", "duplicate parameter");
}

TEST(Sema, BuiltinOverloadMismatch) {
  expectError("void f(__global int* p) { float x = sqrt(p); }",
              "no matching overload");
}

TEST(Sema, BarrierOnlyInKernel) {
  expectError(
      "void helper() { barrier(CLK_LOCAL_MEM_FENCE); } __kernel void k() { "
      "helper(); }",
      "barrier");
}

TEST(Sema, CudaThreadIdxResolves) {
  EXPECT_NO_THROW(check(R"(
    __global__ void k(float* data) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      data[i] = (float)(gridDim.x + threadIdx.y + threadIdx.z);
    }
  )"));
}

TEST(Sema, CudaThreadIdxBadComponent) {
  expectError("__global__ void k(float* d) { int i = threadIdx.w; }",
              "unknown component");
}

TEST(Sema, UserVariableShadowsCudaBuiltinName) {
  // A declared variable named threadIdx wins over the dialect builtin.
  expectError(R"(
    typedef struct { int x; } S;
    __global__ void k(float* d) {
      S threadIdx;
      threadIdx.x = 1;
      int i = threadIdx.y; // now a real member lookup -> no field 'y'
    }
  )",
              "no field 'y'");
}

TEST(Sema, VoidPointerDerefRejected) {
  // 'void*' parameters are representable; dereferencing them is not.
  expectError("void f(__global void* p) { *p; }", "void pointer");
}

TEST(Sema, TernaryBranchMismatch) {
  expectError(R"(
    typedef struct { int a; } S;
    void f(int c, S s, __global int* p) { int x = c ? s : p; }
  )",
              "ternary");
}

TEST(Sema, ConditionMustBeScalar) {
  expectError(R"(
    typedef struct { int a; } S;
    void f(S s) { if (s) {} }
  )",
              "condition must be arithmetic");
}

TEST(Sema, ImplicitConversionsInsertCasts) {
  const auto unit = check("float f(int a) { return a; }");
  const Stmt* ret = unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(ret->expr->kind, ExprKind::Cast);
  EXPECT_EQ(ret->expr->type->scalarKind(), ScalarKind::F32);
}

TEST(Sema, UsualArithmeticConversions) {
  const auto unit = check(R"(
    void f(char c, short s, int i, uint u, long l, float fl, double d) {
      int r1 = c + s;
      uint r2 = i + u;
      long r3 = i + l;
      float r4 = i + fl;
      double r5 = fl + d;
    }
  )");
  const auto& body = unit->functions[0]->bodyStmt->body;
  EXPECT_EQ(body[0]->decls[0]->init->type->scalarKind(), ScalarKind::I32);
  EXPECT_EQ(body[1]->decls[0]->init->type->scalarKind(), ScalarKind::U32);
  EXPECT_EQ(body[2]->decls[0]->init->type->scalarKind(), ScalarKind::I64);
  EXPECT_EQ(body[3]->decls[0]->init->type->scalarKind(), ScalarKind::F32);
  EXPECT_EQ(body[4]->decls[0]->init->type->scalarKind(), ScalarKind::F64);
}

TEST(Sema, ComparisonYieldsInt) {
  const auto unit = check("void f(float a, float b) { int r = a < b; }");
  const Stmt* decl = unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(decl->decls[0]->init->type->scalarKind(), ScalarKind::I32);
}

TEST(Sema, AddressOfGlobalElementHasGlobalSpace) {
  const auto unit = check(
      "void f(__global int* p) { __global int* q = &p[3]; }");
  const Stmt* decl = unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(decl->decls[0]->init->type->addressSpace(), AddressSpace::Global);
}

TEST(Sema, MinMaxResolveByType) {
  const auto unit = check(R"(
    void f(int i, uint u, float x, double d) {
      int a = min(i, 3);
      float b = min(x, 1.0f);
      double c = max(d, 0.5);
      float m = fmax(x, 2.0f);
    }
  )");
  const auto& body = unit->functions[0]->bodyStmt->body;
  EXPECT_EQ(body[0]->decls[0]->init->type->scalarKind(), ScalarKind::I32);
  EXPECT_EQ(body[1]->decls[0]->init->type->scalarKind(), ScalarKind::F32);
  EXPECT_EQ(body[2]->decls[0]->init->type->scalarKind(), ScalarKind::F64);
}

TEST(Sema, AtomicsAcceptAnyAddressSpace) {
  // The VM resolves the pointee's actual space at run time, which is
  // what lets CUDA-dialect device functions use unqualified pointers.
  EXPECT_NO_THROW(check(
      "__kernel void k(__global int* p) { atomic_add(&p[0], 1); }"));
  EXPECT_NO_THROW(check("void f(int x) { atomic_add(&x, 1); }"));
  expectError("void f(float x) { atomic_cmpxchg(&x, 1, 2); }",
              "no matching overload");
}

TEST(Sema, CudaAtomicAddOnFloatPointerMapsToExtension) {
  EXPECT_NO_THROW(check(
      "__kernel void k(__global float* p) { atomicAdd(&p[0], 1.0f); }"));
}

} // namespace
