// Code-generation structure tests: frame layout, parameter metadata,
// constant pooling, kernel-local memory accounting, disassembly.
#include <gtest/gtest.h>

#include "clc/codegen.h"

using namespace clc;

namespace {

TEST(Codegen, KernelParamMetadata) {
  const auto program = compile(R"(
    typedef struct { float a; float b; } Pair;
    __kernel void k(__global float* buf, __local int* scratch,
                    float x, int n, Pair p) {}
  )");
  const FunctionInfo* f = program.findFunction("k");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->params.size(), 5u);
  EXPECT_EQ(f->params[0].kind, ParamKind::GlobalPtr);
  EXPECT_EQ(f->params[1].kind, ParamKind::LocalPtr);
  EXPECT_EQ(f->params[2].kind, ParamKind::Scalar);
  EXPECT_EQ(f->params[2].scalarTag, TypeTag::F32);
  EXPECT_EQ(f->params[3].kind, ParamKind::Scalar);
  EXPECT_EQ(f->params[3].scalarTag, TypeTag::I32);
  EXPECT_EQ(f->params[4].kind, ParamKind::Struct);
  EXPECT_EQ(f->params[4].size, 8u);
  // Offsets are distinct and aligned.
  EXPECT_EQ(f->params[0].frameOffset % 8, 0u);
  EXPECT_NE(f->params[0].frameOffset, f->params[1].frameOffset);
}

TEST(Codegen, FrameSizeCoversLocals) {
  const auto program = compile(R"(
    __kernel void k() {
      float a[32];
      double d;
      int i;
    }
  )");
  const FunctionInfo* f = program.findFunction("k");
  ASSERT_NE(f, nullptr);
  EXPECT_GE(f->frameSize, 32u * 4 + 8 + 4);
  EXPECT_EQ(f->frameSize % 8, 0u);
}

TEST(Codegen, StaticLocalSizeAccounted) {
  const auto program = compile(R"(
    __kernel void k() {
      __local float tile[64];
      __local int flags[8];
    }
  )");
  ASSERT_EQ(program.kernels.size(), 1u);
  EXPECT_GE(program.kernels[0].staticLocalSize, 64u * 4 + 8 * 4);
  // __local storage must not inflate the private frame.
  const FunctionInfo* f = program.findFunction("k");
  EXPECT_LT(f->frameSize, 64u * 4);
}

TEST(Codegen, ConstantsArePooled) {
  const auto program = compile(R"(
    __kernel void k(__global int* out) {
      out[0] = 42 + 42 + 42;
      out[1] = 42;
    }
  )");
  // 42 appears once in the pool.
  std::size_t count42 = 0;
  for (const std::uint64_t c : program.constants) {
    if (c == 42) ++count42;
  }
  EXPECT_EQ(count42, 1u);
}

TEST(Codegen, KernelsAndHelpersAllHaveCode) {
  const auto program = compile(R"(
    float helper(float x) { return x + 1.0f; }
    __kernel void a(__global float* d) { d[0] = helper(1.0f); }
    __kernel void b(__global float* d) { d[0] = helper(2.0f); }
  )");
  EXPECT_EQ(program.functions.size(), 3u);
  EXPECT_EQ(program.kernels.size(), 2u);
  for (const auto& f : program.functions) {
    EXPECT_LT(f.codeStart, f.codeEnd) << f.name;
  }
  // Code ranges are disjoint and ordered.
  for (std::size_t i = 1; i < program.functions.size(); ++i) {
    EXPECT_LE(program.functions[i - 1].codeEnd,
              program.functions[i].codeStart);
  }
}

TEST(Codegen, ReturnFlagsAreSet) {
  const auto program = compile(R"(
    typedef struct { int a; int b; } S;
    int scalarRet(int x) { return x; }
    S structRet(int x) { S s; s.a = x; s.b = x; return s; }
    void voidRet() {}
    __kernel void k() { voidRet(); }
  )");
  EXPECT_TRUE(program.findFunction("scalarRet")->returnsValue);
  EXPECT_FALSE(program.findFunction("scalarRet")->returnsStruct);
  EXPECT_TRUE(program.findFunction("structRet")->returnsStruct);
  EXPECT_EQ(program.findFunction("structRet")->returnSize, 8u);
  EXPECT_FALSE(program.findFunction("voidRet")->returnsValue);
}

TEST(Codegen, DisassemblyIsReadable) {
  const auto program = compile(R"(
    __kernel void k(__global float* data, uint n) {
      size_t i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2.0f;
    }
  )");
  const std::string disasm = disassemble(program);
  EXPECT_NE(disasm.find("kernel k"), std::string::npos) << disasm;
  EXPECT_NE(disasm.find("call_builtin"), std::string::npos);
  EXPECT_NE(disasm.find("mul.f32"), std::string::npos);
  EXPECT_NE(disasm.find("store.f32"), std::string::npos);
  EXPECT_NE(disasm.find("jz"), std::string::npos);
}

TEST(Codegen, ShortCircuitGeneratesBranches) {
  const auto program = compile(R"(
    __kernel void k(__global int* d, int a, int b) {
      if (a > 0 && b > 0) d[0] = 1;
    }
  )");
  std::size_t branches = 0;
  for (const Instr& instr : program.code) {
    if (instr.op == Op::Jz || instr.op == Op::Jnz || instr.op == Op::Jmp) {
      ++branches;
    }
  }
  EXPECT_GE(branches, 3u); // two guards + the if
}

TEST(Codegen, BarrierCompilesToBarrierOp) {
  const auto program = compile(R"(
    __kernel void k() {
      __local int t[2];
      t[get_local_id(0) & 1] = 1;
      barrier(CLK_LOCAL_MEM_FENCE);
    }
  )");
  bool found = false;
  for (const Instr& instr : program.code) {
    if (instr.op == Op::Barrier) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Codegen, StructCopyUsesMemCopy) {
  const auto program = compile(R"(
    typedef struct { float x; float y; float z; } V3;
    __kernel void k(__global V3* data) {
      V3 a = data[0];
      V3 b = a;
      data[1] = b;
    }
  )");
  std::size_t memcopies = 0;
  for (const Instr& instr : program.code) {
    if (instr.op == Op::MemCopy) {
      EXPECT_EQ(instr.a, 12);
      ++memcopies;
    }
  }
  EXPECT_EQ(memcopies, 3u);
}

TEST(Codegen, SourceHashIsStable) {
  const std::string src = "__kernel void k() {}";
  EXPECT_EQ(compile(src).sourceHash, compile(src).sourceHash);
  EXPECT_NE(compile(src).sourceHash,
            compile(src + " // changed").sourceHash);
}

} // namespace
