// End-to-end kernel execution tests: compile OpenCL-C source and check the
// memory effects of running it over an ND-range.
#include <gtest/gtest.h>

#include <numeric>

#include "clc_test_util.h"

using namespace clc_test;

namespace {

TEST(VmExec, CopyKernel) {
  const auto program = clc::compile(R"(
    __kernel void copy(__global const float* in, __global float* out) {
      size_t i = get_global_id(0);
      out[i] = in[i];
    }
  )");
  std::vector<float> in(64), out(64, 0.0f);
  std::iota(in.begin(), in.end(), 1.0f);
  Buffers bufs;
  auto a = bufs.add(in);
  auto b = bufs.add(out);
  run1D(program, "copy", 64, 16, {a, b}, bufs);
  EXPECT_EQ(in, out);
}

TEST(VmExec, SaxpyWithScalarArg) {
  const auto program = clc::compile(R"(
    __kernel void saxpy(float a, __global const float* x,
                        __global const float* y, __global float* out) {
      int i = get_global_id(0);
      out[i] = a * x[i] + y[i];
    }
  )");
  std::vector<float> x(128), y(128), out(128);
  for (int i = 0; i < 128; ++i) {
    x[i] = float(i);
    y[i] = float(2 * i);
  }
  Buffers bufs;
  auto ax = bufs.add(x);
  auto ay = bufs.add(y);
  auto aout = bufs.add(out);
  run1D(program, "saxpy", 128, 32, {scalarArg(3.0f), ax, ay, aout}, bufs);
  for (int i = 0; i < 128; ++i) {
    EXPECT_FLOAT_EQ(out[i], 3.0f * x[i] + y[i]) << i;
  }
}

TEST(VmExec, WorkItemQueries) {
  const auto program = clc::compile(R"(
    __kernel void ids(__global int* gid, __global int* lid,
                      __global int* grp, __global int* sizes) {
      int i = get_global_id(0);
      gid[i] = (int)get_global_id(0);
      lid[i] = (int)get_local_id(0);
      grp[i] = (int)get_group_id(0);
      if (i == 0) {
        sizes[0] = (int)get_global_size(0);
        sizes[1] = (int)get_local_size(0);
        sizes[2] = (int)get_num_groups(0);
        sizes[3] = (int)get_work_dim();
      }
    }
  )");
  std::vector<int> gid(24), lid(24), grp(24), sizes(4);
  Buffers bufs;
  auto a = bufs.add(gid);
  auto b = bufs.add(lid);
  auto c = bufs.add(grp);
  auto d = bufs.add(sizes);
  run1D(program, "ids", 24, 8, {a, b, c, d}, bufs);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(gid[i], i);
    EXPECT_EQ(lid[i], i % 8);
    EXPECT_EQ(grp[i], i / 8);
  }
  EXPECT_EQ(sizes, (std::vector<int>{24, 8, 3, 1}));
}

TEST(VmExec, ForLoopBreakContinue) {
  const auto program = clc::compile(R"(
    __kernel void sums(__global int* out) {
      int i = get_global_id(0);
      int acc = 0;
      for (int k = 0; k < 100; ++k) {
        if (k % 2 == 1) continue;   // only even k
        if (k >= 10) break;          // 0,2,4,6,8
        acc += k;
      }
      out[i] = acc;
    }
  )");
  std::vector<int> out(4, -1);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "sums", 4, 4, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{20, 20, 20, 20}));
}

TEST(VmExec, WhileAndDoWhile) {
  const auto program = clc::compile(R"(
    __kernel void loops(__global int* out) {
      int n = (int)get_global_id(0) + 1;
      int w = 0;
      int k = 0;
      while (k < n) { w += 2; ++k; }
      int d = 0;
      int j = 10;
      do { d += 1; --j; } while (j > 100);  // executes exactly once
      out[get_global_id(0)] = w + d;
    }
  )");
  std::vector<int> out(5);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "loops", 5, 1, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{3, 5, 7, 9, 11}));
}

TEST(VmExec, HelperFunctionCall) {
  const auto program = clc::compile(R"(
    float square(float x) { return x * x; }
    float add3(float a, float b, float c) { return a + b + c; }
    __kernel void k(__global float* out) {
      size_t i = get_global_id(0);
      out[i] = add3(square((float)i), 1.0f, square(2.0f));
    }
  )");
  std::vector<float> out(8);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 8, 4, {a}, bufs);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(out[i], float(i) * float(i) + 1.0f + 4.0f);
  }
}

TEST(VmExec, StructByValueAndReturn) {
  const auto program = clc::compile(R"(
    typedef struct { float re; float im; } complex;
    complex cmul(complex a, complex b) {
      complex r;
      r.re = a.re * b.re - a.im * b.im;
      r.im = a.re * b.im + a.im * b.re;
      return r;
    }
    __kernel void k(__global complex* data, complex factor) {
      size_t i = get_global_id(0);
      data[i] = cmul(data[i], factor);
    }
  )");
  struct Complex {
    float re, im;
  };
  std::vector<Complex> data = {{1, 0}, {0, 1}, {2, 3}, {-1, -1}};
  const Complex factor{0, 1}; // multiply by i
  Buffers bufs;
  auto a = bufs.add(data);
  run1D(program, "k", 4, 2, {a, structArg(factor)}, bufs);
  EXPECT_FLOAT_EQ(data[0].re, 0);
  EXPECT_FLOAT_EQ(data[0].im, 1);
  EXPECT_FLOAT_EQ(data[1].re, -1);
  EXPECT_FLOAT_EQ(data[1].im, 0);
  EXPECT_FLOAT_EQ(data[2].re, -3);
  EXPECT_FLOAT_EQ(data[2].im, 2);
}

TEST(VmExec, BarrierLocalMemoryReverse) {
  // Classic work-group shuffle: stage into __local, barrier, read reversed.
  const auto program = clc::compile(R"(
    __kernel void reverse(__global const int* in, __global int* out,
                          __local int* scratch) {
      int lid = (int)get_local_id(0);
      int gid = (int)get_global_id(0);
      int n = (int)get_local_size(0);
      scratch[lid] = in[gid];
      barrier(CLK_LOCAL_MEM_FENCE);
      out[gid] = scratch[n - 1 - lid];
    }
  )");
  std::vector<int> in(32), out(32);
  std::iota(in.begin(), in.end(), 0);
  Buffers bufs;
  auto a = bufs.add(in);
  auto b = bufs.add(out);
  run1D(program, "reverse", 32, 8, {a, b, localArg(8 * sizeof(int))}, bufs);
  for (int i = 0; i < 32; ++i) {
    const int group = i / 8;
    const int lane = i % 8;
    EXPECT_EQ(out[i], in[group * 8 + (7 - lane)]) << i;
  }
}

TEST(VmExec, StaticLocalArray) {
  const auto program = clc::compile(R"(
    __kernel void sumgroup(__global const int* in, __global int* out) {
      __local int scratch[16];
      int lid = (int)get_local_id(0);
      scratch[lid] = in[get_global_id(0)];
      barrier(CLK_LOCAL_MEM_FENCE);
      if (lid == 0) {
        int acc = 0;
        for (int k = 0; k < 16; ++k) acc += scratch[k];
        out[get_group_id(0)] = acc;
      }
    }
  )");
  std::vector<int> in(32, 1), out(2, 0);
  Buffers bufs;
  auto a = bufs.add(in);
  auto b = bufs.add(out);
  run1D(program, "sumgroup", 32, 16, {a, b}, bufs);
  EXPECT_EQ(out, (std::vector<int>{16, 16}));
}

TEST(VmExec, GlobalAtomicCounter) {
  const auto program = clc::compile(R"(
    __kernel void count(__global int* counter, __global int* slots) {
      int my = atomic_add(&counter[0], 1);
      slots[my] = 1;
    }
  )");
  std::vector<int> counter(1, 0), slots(64, 0);
  Buffers bufs;
  auto a = bufs.add(counter);
  auto b = bufs.add(slots);
  run1D(program, "count", 64, 16, {a, b}, bufs);
  EXPECT_EQ(counter[0], 64);
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 64);
}

TEST(VmExec, PointerArithmeticAndDeref) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* data, int n) {
      if (get_global_id(0) != 0) return;
      __global int* p = data;
      __global int* end = data + n;
      int acc = 0;
      while (p != end) {
        acc += *p;
        p++;
      }
      data[0] = acc;
    }
  )");
  std::vector<int> data = {1, 2, 3, 4, 5};
  Buffers bufs;
  auto a = bufs.add(data);
  run1D(program, "k", 1, 1, {a, scalarArg(5)}, bufs);
  EXPECT_EQ(data[0], 15);
}

TEST(VmExec, TernaryAndLogicalShortCircuit) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out, __global int* sideEffect) {
      int i = (int)get_global_id(0);
      // The right operand of && must not evaluate when the left is false:
      // otherwise it would trip the out-of-bounds trap on sideEffect.
      int guarded = (i < 1) && (sideEffect[i] == 0);
      out[i] = (i % 2 == 0) ? 10 + guarded : -10;
    }
  )");
  std::vector<int> out(6, 0), sideEffect(1, 0);
  Buffers bufs;
  auto a = bufs.add(out);
  auto b = bufs.add(sideEffect);
  run1D(program, "k", 6, 2, {a, b}, bufs);
  EXPECT_EQ(out, (std::vector<int>{11, -10, 10, -10, 10, -10}));
}

TEST(VmExec, CompoundAssignmentOperators) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* v, __global float* f) {
      if (get_global_id(0) != 0) return;
      v[0] += 5; v[1] -= 3; v[2] *= 4; v[3] /= 2; v[4] %= 3;
      v[5] <<= 2; v[6] >>= 1; v[7] &= 6; v[8] |= 9; v[9] ^= 5;
      f[0] += 0.5f; f[1] *= 2.0f; f[2] /= 4.0f;
    }
  )");
  std::vector<int> v = {1, 10, 3, 9, 10, 1, 8, 7, 2, 3};
  std::vector<float> f = {1.0f, 3.0f, 10.0f};
  Buffers bufs;
  auto a = bufs.add(v);
  auto b = bufs.add(f);
  run1D(program, "k", 1, 1, {a, b}, bufs);
  EXPECT_EQ(v, (std::vector<int>{6, 7, 12, 4, 1, 4, 4, 6, 11, 6}));
  EXPECT_FLOAT_EQ(f[0], 1.5f);
  EXPECT_FLOAT_EQ(f[1], 6.0f);
  EXPECT_FLOAT_EQ(f[2], 2.5f);
}

TEST(VmExec, IncrementDecrementSemantics) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out) {
      if (get_global_id(0) != 0) return;
      int a = 5;
      out[0] = a++;  // 5, a=6
      out[1] = ++a;  // 7
      out[2] = a--;  // 7, a=6
      out[3] = --a;  // 5
      out[4] = a;    // 5
      __global int* p = out;
      p++;
      *p = 100;      // out[1] = 100
    }
  )");
  std::vector<int> out(5, 0);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 1, 1, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{5, 100, 7, 5, 5}));
}

TEST(VmExec, PrivateArraysAndStructs) {
  const auto program = clc::compile(R"(
    typedef struct { int x; int y; } pair;
    __kernel void k(__global int* out) {
      int i = (int)get_global_id(0);
      int hist[4];
      for (int k = 0; k < 4; ++k) hist[k] = 0;
      for (int k = 0; k < 12; ++k) hist[k % 4] += 1;
      pair p;
      p.x = hist[0];
      p.y = hist[3];
      pair q = p;
      q.y += i;
      out[i] = q.x * 10 + q.y;
    }
  )");
  std::vector<int> out(3, 0);
  Buffers bufs;
  auto a = bufs.add(out);
  run1D(program, "k", 3, 1, {a}, bufs);
  EXPECT_EQ(out, (std::vector<int>{33, 34, 35}));
}

TEST(VmExec, TwoDimensionalRange) {
  const auto program = clc::compile(R"(
    __kernel void k(__global int* out, int width) {
      size_t x = get_global_id(0);
      size_t y = get_global_id(1);
      out[y * width + x] = (int)(x + 100 * y);
    }
  )");
  const int width = 8, height = 4;
  std::vector<int> out(width * height, -1);
  Buffers bufs;
  auto a = bufs.add(out);
  clc::NDRange range;
  range.dims = 2;
  range.globalSize[0] = width;
  range.globalSize[1] = height;
  range.localSize[0] = 4;
  range.localSize[1] = 2;
  clc::executeKernel(program, "k", range, {a, scalarArg(width)},
                     bufs.segments(), nullptr);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      EXPECT_EQ(out[y * width + x], x + 100 * y);
    }
  }
}

TEST(VmExec, CudaDialectKernel) {
  // The same VM runs CUDA-flavoured source: __global__, threadIdx, etc.
  const auto program = clc::compile(R"(
    __global__ void scale(float* data, float s, int n) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      if (i < n) data[i] = data[i] * s;
    }
  )");
  std::vector<float> data(10, 2.0f);
  Buffers bufs;
  auto a = bufs.add(data);
  run1D(program, "scale", 10, 5, {a, scalarArg(1.5f), scalarArg(10)}, bufs);
  for (float v : data) {
    EXPECT_FLOAT_EQ(v, 3.0f);
  }
}

TEST(VmExec, LaunchStatsArePopulated) {
  const auto program = clc::compile(R"(
    __kernel void k(__global float* data) {
      size_t i = get_global_id(0);
      data[i] = data[i] * 2.0f + 1.0f;
    }
  )");
  std::vector<float> data(64, 1.0f);
  Buffers bufs;
  auto a = bufs.add(data);
  const auto stats = run1D(program, "k", 64, 16, {a}, bufs);
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_GT(stats.totalCycles, stats.instructions / 2);
  EXPECT_EQ(stats.globalBytesRead, 64 * 4u);
  EXPECT_EQ(stats.globalBytesWritten, 64 * 4u);
  EXPECT_EQ(stats.groups.size(), 4u);
  for (const auto& g : stats.groups) {
    EXPECT_GT(g.sumCycles, 0u);
    EXPECT_GE(g.sumCycles, g.maxCycles);
  }
}

} // namespace
