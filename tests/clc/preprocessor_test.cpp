#include <gtest/gtest.h>

#include "clc/lexer.h"

using clc::lexAndPreprocess;
using clc::TokKind;

namespace {

std::vector<std::string> texts(const std::string& source) {
  std::vector<std::string> out;
  for (const auto& tok : lexAndPreprocess(source)) {
    if (tok.kind == TokKind::Eof) break;
    out.push_back(tok.text.empty() ? std::string(clc::tokKindName(tok.kind))
                                   : tok.text);
  }
  return out;
}

TEST(Preprocessor, ObjectMacroExpands) {
  const auto tokens = lexAndPreprocess("#define N 128\nint a = N;");
  // int a = 128 ;
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokKind::IntLiteral);
  EXPECT_EQ(tokens[3].intValue, 128u);
}

TEST(Preprocessor, MacroBodyCanReferenceOtherMacros) {
  const auto tokens =
      lexAndPreprocess("#define A B\n#define B 7\nint x = A;");
  EXPECT_EQ(tokens[3].intValue, 7u);
}

TEST(Preprocessor, FunctionMacroSubstitutesArguments) {
  const auto tokens = lexAndPreprocess(
      "#define ADD(x, y) ((x) + (y))\nint v = ADD(1, 2);");
  std::vector<TokKind> got;
  for (const auto& t : tokens) got.push_back(t.kind);
  // int v = ( ( 1 ) + ( 2 ) ) ; <eof>
  const std::vector<TokKind> expected = {
      TokKind::KwInt,      TokKind::Identifier, TokKind::Eq,
      TokKind::LParen,     TokKind::LParen,     TokKind::IntLiteral,
      TokKind::RParen,     TokKind::Plus,       TokKind::LParen,
      TokKind::IntLiteral, TokKind::RParen,     TokKind::RParen,
      TokKind::Semicolon,  TokKind::Eof};
  EXPECT_EQ(got, expected);
}

TEST(Preprocessor, FunctionMacroArgsMayContainCommasInParens) {
  const auto tokens = lexAndPreprocess(
      "#define FIRST(a, b) a\nint v = FIRST(f(1, 2), 3);");
  // Expands to f(1, 2)
  bool sawF = false;
  for (const auto& t : tokens) {
    if (t.kind == TokKind::Identifier && t.text == "f") sawF = true;
  }
  EXPECT_TRUE(sawF);
}

TEST(Preprocessor, FunctionMacroNameWithoutCallIsLeftAlone) {
  const auto tokens = lexAndPreprocess("#define M(x) x\nint M;");
  EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
  EXPECT_EQ(tokens[1].text, "M");
}

TEST(Preprocessor, UndefRemovesMacro) {
  const auto tokens = lexAndPreprocess(
      "#define N 1\n#undef N\nint N;");
  EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
  EXPECT_EQ(tokens[1].text, "N");
}

TEST(Preprocessor, IfdefSelectsBranch) {
  const auto t1 = texts("#define A 1\n#ifdef A\nint x;\n#else\nfloat y;\n#endif");
  EXPECT_EQ(t1, (std::vector<std::string>{"int", "x", "';'"}));
  const auto t2 = texts("#ifdef A\nint x;\n#else\nfloat y;\n#endif");
  EXPECT_EQ(t2, (std::vector<std::string>{"float", "y", "';'"}));
}

TEST(Preprocessor, IfndefWorks) {
  const auto t = texts("#ifndef MISSING\nint x;\n#endif");
  EXPECT_EQ(t, (std::vector<std::string>{"int", "x", "';'"}));
}

TEST(Preprocessor, NestedConditionals) {
  const auto t = texts(
      "#define A 1\n#ifdef A\n#ifdef B\nint wrong;\n#else\nint right;\n"
      "#endif\n#endif");
  EXPECT_EQ(t, (std::vector<std::string>{"int", "right", "';'"}));
}

TEST(Preprocessor, DefinesInsideInactiveBranchAreSkipped) {
  const auto t = texts("#ifdef MISSING\n#define X 1\n#endif\nint X;");
  EXPECT_EQ(t, (std::vector<std::string>{"int", "X", "';'"}));
}

TEST(Preprocessor, PragmaIsIgnored) {
  const auto t = texts(
      "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;");
  EXPECT_EQ(t, (std::vector<std::string>{"int", "x", "';'"}));
}

TEST(Preprocessor, PredefinedOpenClMacros) {
  const auto tokens = lexAndPreprocess("int f = CLK_LOCAL_MEM_FENCE;");
  EXPECT_EQ(tokens[3].kind, TokKind::IntLiteral);
  EXPECT_EQ(tokens[3].intValue, 1u);
  const auto pi = lexAndPreprocess("float p = M_PI_F;");
  EXPECT_EQ(pi[3].kind, TokKind::FloatLiteral);
  EXPECT_NEAR(pi[3].floatValue, 3.14159274, 1e-6);
}

TEST(Preprocessor, ErrorsOnUnterminatedIf) {
  EXPECT_THROW(lexAndPreprocess("#ifdef A\nint x;"), clc::CompileError);
}

TEST(Preprocessor, ErrorsOnDanglingElseOrEndif) {
  EXPECT_THROW(lexAndPreprocess("#else\n"), clc::CompileError);
  EXPECT_THROW(lexAndPreprocess("#endif\n"), clc::CompileError);
}

TEST(Preprocessor, ErrorsOnWrongArgumentCount) {
  EXPECT_THROW(lexAndPreprocess("#define M(a,b) a\nint x = M(1);"),
               clc::CompileError);
}

TEST(Preprocessor, ErrorsOnUnknownDirective) {
  EXPECT_THROW(lexAndPreprocess("#include <foo.h>\n"), clc::CompileError);
}

TEST(Preprocessor, RecursiveMacroIsCaught) {
  EXPECT_THROW(lexAndPreprocess("#define A A\nint x = A;"),
               clc::CompileError);
}

TEST(Preprocessor, MultiLineMacroViaContinuation) {
  const auto tokens = lexAndPreprocess(
      "#define BIG(x) \\\n  ((x) * \\\n   (x))\nint v = BIG(3);");
  std::size_t parens = 0;
  for (const auto& t : tokens) {
    if (t.kind == TokKind::LParen) ++parens;
  }
  EXPECT_EQ(parens, 3u);
}

} // namespace
