# Embeds a kernel source file into a generated C++ header as a raw string
# constant. The original file stays a plain .cl file so the benchmark
# harness can count its lines of code the same way it counts host code.
function(embed_cl_source cl_file var_name)
  file(READ ${cl_file} content)
  get_filename_component(base ${cl_file} NAME_WE)
  set(generated "${CMAKE_CURRENT_BINARY_DIR}/generated/${base}_source.h")
  file(WRITE ${generated}
       "// Generated from ${cl_file} - do not edit.\n"
       "#pragma once\n\n"
       "inline constexpr char ${var_name}[] = R\"CLCSRC(\n${content})CLCSRC\";\n")
  set_property(DIRECTORY APPEND PROPERTY CMAKE_CONFIGURE_DEPENDS ${cl_file})
endfunction()
