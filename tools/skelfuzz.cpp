// skelfuzz — differential schedule-fuzzing and fault-replay driver for
// the simulated SkelCL runtime.
//
//   skelfuzz [--seeds N] [--gpus G] [--scenario NAME]
//       Run each scenario once under the FIFO baseline and under N
//       seeded shuffle schedules (SKELCL_SCHEDULE=shuffle). Any
//       difference in outputs, total kernel cycles, transferred bytes,
//       or per-engine busy time is an invariant violation.
//
//   skelfuzz --plan PLAN [--fault-seed S] [--rounds R] [--gpus G]
//       Arm the fault injector with PLAN (SKELCL_FAULT_PLAN grammar) and
//       run R rounds of a block-distributed map workload twice, catching
//       every typed failure. The two runs must produce identical failure
//       sequences and byte-identical fired-fault logs.
//
//   skelfuzz --tenants N [--seeds S] [--gpus G]
//       Differential multi-tenant schedule fuzzing: run every tenant's
//       jobs solo (single-tenant FIFO server) to get a baseline, then
//       run all N tenants through one shared JobServer under every
//       scheduling policy and S seeded shuffle schedules. Every job's
//       output must stay byte-identical to its solo run no matter which
//       policy interleaves the tenants or which schedule the devices
//       pick.
//
// Exit status: 0 when every invariant holds, 1 on a violation, 2 on
// usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "ocl/fault.h"
#include "service/service.h"
#include "skelcl/skelcl.h"
#include "trace/analysis.h"
#include "trace/recorder.h"

namespace {

using skelcl::Arguments;
using skelcl::Distribution;
using skelcl::Map;
using skelcl::Reduce;
using skelcl::Vector;
using skelcl::Zip;

int usage() {
  std::fprintf(
      stderr,
      "usage: skelfuzz [--seeds N] [--gpus G] [--scenario NAME]\n"
      "       skelfuzz --plan PLAN [--fault-seed S] [--rounds R]"
      " [--gpus G]\n"
      "       skelfuzz --tenants N [--seeds S] [--gpus G]\n"
      "scenarios: map-zip, block-map, combine, dot, stencil, csr\n");
  return 2;
}

/// Everything a schedule may not change about a scenario run.
struct Observation {
  std::vector<float> floats;
  std::vector<int> ints;
  std::uint64_t kernelCycles = 0;
  std::uint64_t h2dBytes = 0;
  std::uint64_t d2hBytes = 0;
  std::vector<std::uint64_t> engineBusyNs;

  friend bool operator==(const Observation& a, const Observation& b) {
    return a.floats == b.floats && a.ints == b.ints &&
           a.kernelCycles == b.kernelCycles && a.h2dBytes == b.h2dBytes &&
           a.d2hBytes == b.d2hBytes && a.engineBusyNs == b.engineBusyNs;
  }
};

struct Scenario {
  const char* name;
  std::function<void(Observation&)> body;
};

void mapZip(Observation& obs) {
  Map<float> scale("float fzscale(float x) { return 2.0f * x - 1.0f; }");
  Zip<float> mix("float fzmix(float a, float b) { return a * b + a; }");
  const std::size_t n = 5000;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float(i % 113) * 0.25f;
    b[i] = float(i % 41) - 3.0f;
  }
  Vector<float> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  obs.floats = mix(scale(va), vb).hostData();
}

void blockMap(Observation& obs) {
  Map<float> heavy(
      "float fzheavy(float x) {"
      "  float acc = x;"
      "  for (int k = 0; k < 12; ++k) acc = acc * 1.0002f + 0.25f;"
      "  return acc;"
      "}");
  std::vector<float> data(1 << 15);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = float(i % 2048) * 0.0625f;
  }
  Vector<float> input(data);
  input.setDistribution(Distribution::Block);
  obs.floats = heavy(input).hostData();
}

void combine(Observation& obs) {
  Map<int, void> bump(
      "void fzbump(int idx, __global int* data) { data[idx] += idx + 1; }");
  Vector<int> indices = skelcl::indexVector(256);
  indices.setDistribution(Distribution::Block);
  Vector<int> data(256, 0);
  data.setDistribution(Distribution::Copy);
  Arguments args;
  args.push(data);
  bump(indices, args);
  data.dataOnDevicesModified();
  data.setDistribution(Distribution::Block,
                       "int fzadd(int a, int b) { return a + b; }");
  obs.ints = data.hostData();
}

void dot(Observation& obs) {
  Reduce<float> sum("float fzsum(float x, float y) { return x + y; }");
  Zip<float> mult("float fzmul(float x, float y) { return x * y; }");
  const std::size_t n = 4096;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = float((i * 37 + 11) % 16);
    b[i] = float((i * 53 + 7) % 16);
  }
  Vector<float> va(a), vb(b);
  va.setDistribution(Distribution::Block);
  obs.floats.push_back(sum(mult(va, vb)).getValue());
}

void stencilScenario(Observation& obs) {
  // 2D heat step on a grid whose row count (211) is divisible by no
  // device count > 1, so every chunk boundary needs a halo exchange.
  skelcl::Stencil<float> heat(
      "float fzheat(__global const float* w, uint st) {"
      "  return 0.25f * (w[1] + w[(int)st] + w[(int)st + 2]"
      "                  + w[2 * (int)st + 1]);"
      "}",
      skelcl::StencilShape{1, skelcl::Boundary::Clamp, 16});
  std::vector<float> grid(211 * 16);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = float((i * 2654435761u) % 1000) / 997.0f;
  }
  Vector<float> v(grid);
  for (int it = 0; it < 3; ++it) {
    v = heat(v);
  }
  obs.floats = v.hostData();
}

void csrScenario(Observation& obs) {
  // CSR with deliberately degenerate rows: empty rows, one full row, and
  // duplicate column entries, on a prime row count.
  const std::size_t rows = 67, cols = 31;
  std::vector<std::uint32_t> rowPtr = {0}, colIdx;
  std::vector<int> vals;
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % 7 == 0) {
      // empty row
    } else if (r == 13) {
      for (std::uint32_t c = 0; c < cols; ++c) { // full row
        colIdx.push_back(c);
        vals.push_back(int(c) - 5);
      }
    } else {
      for (int k = 0; k < int(r % 5) + 1; ++k) {
        // every second entry duplicates the previous column
        const std::uint32_t c = (k % 2 == 1 && !colIdx.empty())
                                    ? colIdx.back()
                                    : std::uint32_t((r * 17 + k * 7) % cols);
        colIdx.push_back(c);
        vals.push_back(int((r + k) % 9) - 4);
      }
    }
    rowPtr.push_back(std::uint32_t(colIdx.size()));
  }
  skelcl::CsrMatrix<int> m(rows, cols, rowPtr, colIdx, vals);
  skelcl::SparseGather<int> spmv(
      "int fzspg(int a, int xj) { return a * xj; }",
      "int fzspc(int a, int b) { return a + b; }", "0");
  std::vector<int> x(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    x[i] = int(i % 11) - 5;
  }
  Vector<int> xs(x);
  obs.ints = spmv(m, xs).hostData();
}

const Scenario kScenarios[] = {
    {"map-zip", mapZip},
    {"block-map", blockMap},
    {"combine", combine},
    {"dot", dot},
    {"stencil", stencilScenario},
    {"csr", csrScenario},
};

/// One init()..terminate() cycle under the given schedule; seed 0 is the
/// FIFO baseline.
Observation runOnce(const Scenario& scenario, std::uint32_t gpus,
                    std::uint64_t seed) {
  if (seed == 0) {
    ::setenv("SKELCL_SCHEDULE", "fifo", 1);
    ::unsetenv("SKELCL_SCHEDULE_SEED");
  } else {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(seed).c_str(), 1);
  }
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  trace::Recorder::instance().start();

  Observation obs;
  scenario.body(obs);

  auto& runtime = skelcl::detail::Runtime::instance();
  for (std::size_t d = 0; d < skelcl::deviceCount(); ++d) {
    obs.kernelCycles += runtime.queue(d).cumulativeKernelCycles();
  }
  const trace::Report report =
      trace::analyze(trace::Recorder::instance().stop());
  obs.h2dBytes = report.h2dBytes;
  obs.d2hBytes = report.d2hBytes;
  for (const trace::DeviceReport& dev : report.devices) {
    for (std::size_t e = 0; e < ocl::kEngineCount; ++e) {
      obs.engineBusyNs.push_back(dev.engines[e].busyNs);
    }
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SCHEDULE");
  ::unsetenv("SKELCL_SCHEDULE_SEED");
  return obs;
}

int fuzzSchedules(std::uint64_t seeds, std::uint32_t gpus,
                  const std::string& only) {
  int violations = 0;
  bool matched = false;
  for (const Scenario& scenario : kScenarios) {
    if (!only.empty() && only != scenario.name) continue;
    matched = true;
    runOnce(scenario, gpus, 0); // warm the kernel cache
    const Observation baseline = runOnce(scenario, gpus, 0);
    std::uint64_t bad = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Observation shuffled = runOnce(scenario, gpus, seed);
      if (!(shuffled == baseline)) {
        ++bad;
        std::fprintf(stderr,
                     "FAIL: %s diverges from the FIFO baseline under "
                     "shuffle seed %llu\n",
                     scenario.name, (unsigned long long)seed);
      }
    }
    std::printf("%-10s %llu seeds, %llu violation(s), "
                "kernel cycles %llu, h2d %llu B, d2h %llu B\n",
                scenario.name, (unsigned long long)seeds,
                (unsigned long long)bad,
                (unsigned long long)baseline.kernelCycles,
                (unsigned long long)baseline.h2dBytes,
                (unsigned long long)baseline.d2hBytes);
    violations += int(bad);
  }
  if (!matched) {
    std::fprintf(stderr, "unknown scenario '%s'\n", only.c_str());
    return 2;
  }
  return violations == 0 ? 0 : 1;
}

/// Fault-replay mode: the same (plan, seed, workload) must fail in the
/// same places with the same fired-fault log, run after run.
int replayFaults(const std::string& plan, std::uint64_t faultSeed,
                 std::uint64_t rounds, std::uint32_t gpus) {
  auto cycle = [&](std::vector<std::string>& failures,
                   std::vector<ocl::Fault>& log) {
    ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
    skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
    ocl::FaultInjector::instance().configure(plan, faultSeed);
    for (std::uint64_t round = 0; round < rounds; ++round) {
      try {
        Map<int> inc("int fzinc(int x) { return x + 1; }");
        std::vector<int> data(512);
        std::iota(data.begin(), data.end(), int(round));
        Vector<int> input(data);
        input.setDistribution(Distribution::Block);
        Vector<int> out = inc(input);
        (void)out.hostData();
        failures.push_back("round " + std::to_string(round) + ": ok");
      } catch (const ocl::ClError& e) {
        failures.push_back("round " + std::to_string(round) + ": " +
                           e.what());
      } catch (const common::Error& e) {
        failures.push_back("round " + std::to_string(round) + ": " +
                           e.what());
      }
    }
    log = ocl::FaultInjector::instance().firedLog();
    ocl::FaultInjector::instance().reset();
    skelcl::terminate();
  };

  std::vector<std::string> firstFailures, secondFailures;
  std::vector<ocl::Fault> firstLog, secondLog;
  cycle(firstFailures, firstLog);
  cycle(secondFailures, secondLog);

  for (const std::string& line : firstFailures) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("plan \"%s\" seed %llu: %zu fault(s) fired\n", plan.c_str(),
              (unsigned long long)faultSeed, firstLog.size());
  if (firstFailures != secondFailures || !(firstLog == secondLog)) {
    std::fprintf(stderr,
                 "FAIL: the second run did not replay the first "
                 "(%zu vs %zu faults)\n",
                 firstLog.size(), secondLog.size());
    return 1;
  }
  std::printf("replay: byte-identical across two runs\n");
  return 0;
}

// --- multi-tenant differential fuzzing ------------------------------------

namespace srv = skelcl::service;

/// One tenant job for the multi-tenant mode: a map/zip chain over data
/// seeded by (tenant, job), block-distributed so every device runs a
/// piece. All jobs share one programKey, so batching coalesces them
/// across tenants — exactly the interleaving under test.
srv::Job tenantJob(std::size_t tenant, std::size_t jobIndex,
                   std::vector<float>* sink) {
  srv::Job job;
  job.programKey = "fz-tenant";
  auto holder = std::make_shared<Vector<float>>();
  job.work = [=](srv::JobContext& ctx) {
    Map<float> scale(
        "float fztscale(float x) { return 1.5f * x - 2.0f; }");
    Zip<float> mix("float fztmix(float a, float b) { return a * b + b; }");
    const std::size_t n = 3000 + 128 * tenant;
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = float((i + 17 * tenant + 5 * jobIndex) % 101) * 0.125f;
      b[i] = float((i * 3 + tenant + jobIndex) % 53) - 11.0f;
    }
    Vector<float> va(std::move(a));
    Vector<float> vb(std::move(b));
    va.setDistribution(Distribution::Block);
    vb.setDistribution(Distribution::Block);
    *holder = mix(scale(va), vb);
    ctx.defer(*holder);
  };
  job.consume = [=] { *sink = holder->hostData(); };
  return job;
}

/// One init()..terminate() cycle running `tenants` tenants' jobs through
/// a shared server. tenantCount == 1 with tenant `only` is the solo
/// baseline. Returns outputs indexed [tenant][job].
std::vector<std::vector<std::vector<float>>>
runTenantCycle(std::size_t tenants, std::size_t jobsPerTenant,
               std::uint32_t gpus, std::uint64_t scheduleSeed,
               srv::Policy policy, std::size_t soloTenant) {
  if (scheduleSeed == 0) {
    ::setenv("SKELCL_SCHEDULE", "fifo", 1);
    ::unsetenv("SKELCL_SCHEDULE_SEED");
  } else {
    ::setenv("SKELCL_SCHEDULE", "shuffle", 1);
    ::setenv("SKELCL_SCHEDULE_SEED", std::to_string(scheduleSeed).c_str(),
             1);
  }
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));

  const bool solo = soloTenant != ~std::size_t(0);
  std::vector<std::vector<std::vector<float>>> outputs(
      solo ? 1 : tenants,
      std::vector<std::vector<float>>(jobsPerTenant));
  {
    srv::ServiceConfig config;
    config.policy = policy;
    srv::JobServer server(config);
    std::vector<srv::Session*> sessions;
    const std::size_t first = solo ? soloTenant : 0;
    const std::size_t count = solo ? 1 : tenants;
    for (std::size_t t = 0; t < count; ++t) {
      // Distinct weights and priorities so fair-share and priority
      // actually reorder the interleaving.
      sessions.push_back(&server.openSession(
          "fz" + std::to_string(first + t), 1.0 + double(t % 3),
          int(t % 2)));
    }
    for (std::size_t j = 0; j < jobsPerTenant; ++j) {
      for (std::size_t t = 0; t < count; ++t) {
        sessions[t]->submit(
            tenantJob(first + t, j, &outputs[t][j]));
      }
    }
    server.pump();
  }
  skelcl::terminate();
  ::unsetenv("SKELCL_SCHEDULE");
  ::unsetenv("SKELCL_SCHEDULE_SEED");
  return outputs;
}

int fuzzTenants(std::size_t tenants, std::uint64_t seeds,
                std::uint32_t gpus) {
  const std::size_t jobsPerTenant = 3;
  // Solo baselines: each tenant alone on the machine, FIFO, FIFO
  // device schedule (one warm-up cycle populates the kernel cache).
  runTenantCycle(tenants, jobsPerTenant, gpus, 0, srv::Policy::Fifo, 0);
  std::vector<std::vector<std::vector<float>>> solo(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    solo[t] = std::move(runTenantCycle(tenants, jobsPerTenant, gpus, 0,
                                       srv::Policy::Fifo, t)[0]);
  }

  const srv::Policy policies[] = {srv::Policy::Fifo,
                                  srv::Policy::FairShare,
                                  srv::Policy::Priority};
  int violations = 0;
  for (const srv::Policy policy : policies) {
    std::uint64_t bad = 0;
    for (std::uint64_t seed = 0; seed <= seeds; ++seed) {
      const auto shared = runTenantCycle(tenants, jobsPerTenant, gpus,
                                         seed, policy, ~std::size_t(0));
      for (std::size_t t = 0; t < tenants; ++t) {
        for (std::size_t j = 0; j < jobsPerTenant; ++j) {
          if (shared[t][j] != solo[t][j]) {
            ++bad;
            std::fprintf(stderr,
                         "FAIL: tenant %zu job %zu diverges from its "
                         "solo run under policy %s, schedule seed %llu\n",
                         t, j, srv::policyName(policy),
                         (unsigned long long)seed);
          }
        }
      }
    }
    std::printf("policy %-8s %zu tenant(s) x %zu job(s), %llu "
                "schedule(s), %llu violation(s)\n",
                srv::policyName(policy), tenants, jobsPerTenant,
                (unsigned long long)(seeds + 1), (unsigned long long)bad);
    violations += int(bad);
  }
  return violations == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 8;
  std::uint64_t rounds = 6;
  std::uint64_t faultSeed = 0;
  std::uint32_t gpus = 4;
  std::size_t tenants = 0;
  std::string plan;
  std::string scenario;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return usage();
      seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--gpus") {
      const char* v = next();
      if (!v) return usage();
      gpus = std::uint32_t(std::strtoul(v, nullptr, 10));
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return usage();
      scenario = v;
    } else if (arg == "--plan") {
      const char* v = next();
      if (!v) return usage();
      plan = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return usage();
      faultSeed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (!v) return usage();
      rounds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tenants") {
      const char* v = next();
      if (!v) return usage();
      tenants = std::strtoull(v, nullptr, 10);
    } else {
      return usage();
    }
  }
  if (seeds == 0 || gpus == 0 || rounds == 0) return usage();

  try {
    if (!plan.empty()) {
      return replayFaults(plan, faultSeed, rounds, gpus);
    }
    if (tenants > 0) {
      // The tenant mode reuses --seeds as the shuffle-schedule count;
      // keep it small by default (3 policies x (seeds+1) cycles).
      return fuzzTenants(tenants, std::min<std::uint64_t>(seeds, 4),
                         gpus);
    }
    return fuzzSchedules(seeds, gpus, scenario);
  } catch (const common::Error& e) {
    std::fprintf(stderr, "skelfuzz: %s\n", e.what());
    return 1;
  }
}
