// clcc — standalone driver for the clc OpenCL-C compiler.
//
//   clcc file.cl             check: compile and report diagnostics
//   clcc --disasm file.cl    print the compiled bytecode
//   clcc --info file.cl      list kernels, parameters, frame sizes
//   clcc --emit out.clcbin file.cl   write the serialized binary
//
// Exit code 0 on success, 1 on compile errors, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "clc/codegen.h"
#include "clc/diag.h"
#include "clc/serialize.h"
#include "common/byte_stream.h"

namespace {

void printInfo(const clc::Program& program) {
  std::printf("functions: %zu, kernels: %zu, code: %zu instrs, "
              "constants: %zu\n",
              program.functions.size(), program.kernels.size(),
              program.code.size(), program.constants.size());
  for (const clc::KernelInfo& kernel : program.kernels) {
    const clc::FunctionInfo& f = program.functions[kernel.functionIndex];
    std::printf("kernel %s (frame %u bytes, static __local %u bytes)\n",
                kernel.name.c_str(), f.frameSize, kernel.staticLocalSize);
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      const clc::ParamInfo& p = f.params[i];
      const char* kind = "?";
      switch (p.kind) {
        case clc::ParamKind::GlobalPtr: kind = "__global pointer"; break;
        case clc::ParamKind::LocalPtr: kind = "__local pointer"; break;
        case clc::ParamKind::Scalar: kind = "scalar"; break;
        case clc::ParamKind::Struct: kind = "struct (by value)"; break;
      }
      std::printf("  arg %zu: %-18s %s (%u bytes)\n", i, kind,
                  p.name.c_str(), p.size);
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: clcc [--disasm | --info | --emit <out>] <file.cl>\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  bool disasm = false;
  bool info = false;
  std::string emitPath;
  std::string inputPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--disasm") {
      disasm = true;
    } else if (arg == "--info") {
      info = true;
    } else if (arg == "--emit") {
      if (++i >= argc) {
        return usage();
      }
      emitPath = argv[i];
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (inputPath.empty()) {
      inputPath = arg;
    } else {
      return usage();
    }
  }
  if (inputPath.empty()) {
    return usage();
  }

  std::string source;
  try {
    const auto bytes = common::readFile(inputPath);
    source.assign(bytes.begin(), bytes.end());
  } catch (const common::IoError& e) {
    std::fprintf(stderr, "clcc: %s\n", e.what());
    return 2;
  }

  clc::Program program;
  try {
    program = clc::compile(source);
  } catch (const clc::CompileError& e) {
    std::fputs(clc::renderContext(source, e.loc(), e.message()).c_str(),
               stderr);
    return 1;
  }

  if (!emitPath.empty()) {
    common::writeFile(emitPath, clc::serializeProgram(program));
    std::printf("wrote %s\n", emitPath.c_str());
  }
  if (info) {
    printInfo(program);
  }
  if (disasm) {
    std::fputs(clc::disassemble(program).c_str(), stdout);
  }
  if (!info && !disasm && emitPath.empty()) {
    std::printf("%s: ok (%zu kernels, %zu instructions)\n",
                inputPath.c_str(), program.kernels.size(),
                program.code.size());
  }
  return 0;
}
