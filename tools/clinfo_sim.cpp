// clinfo-sim — prints the simulated OpenCL platform the way clinfo would,
// including the timing-model parameters each device runs with.
#include <cstdio>

#include "ocl/ocl.h"

int main() {
  for (const auto& platform : ocl::getPlatforms()) {
    std::printf("Platform: %s\n", platform.name().c_str());
    const auto devices = platform.devices();
    std::printf("  Devices: %zu\n\n", devices.size());
    for (const auto& device : devices) {
      const auto& spec = device.spec();
      std::printf("  [%u] %s (%s)\n", device.index(), spec.name.c_str(),
                  ocl::deviceTypeName(spec.type));
      std::printf("      vendor:            %s\n", spec.vendor.c_str());
      std::printf("      compute units:     %u x %u PEs = %u cores\n",
                  spec.computeUnits, spec.pesPerUnit,
                  spec.computeUnits * spec.pesPerUnit);
      std::printf("      clock:             %.2f GHz\n", spec.clockGHz);
      std::printf("      global memory:     %.1f GiB @ %.0f GB/s\n",
                  double(spec.globalMemBytes) / double(1ull << 30),
                  spec.memBandwidthGBs);
      std::printf("      local memory:      %llu KiB\n",
                  (unsigned long long)(spec.localMemBytes >> 10));
      std::printf("      max work-group:    %u\n", spec.maxWorkGroupSize);
      std::printf("      host link:         %.1f us + %.1f GB/s\n",
                  spec.pcieLatencyUs, spec.pcieBandwidthGBs);
      std::printf("      allocated:         %llu bytes\n\n",
                  (unsigned long long)device.state().allocatedBytes());
    }
  }
  return 0;
}
