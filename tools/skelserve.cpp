// skelserve — in-process multi-tenant job-server driver for the
// simulated SkelCL runtime.
//
//   skelserve [--tenants N] [--jobs J] [--gpus G]
//             [--policy fifo|fair|priority] [--queue-cap C] [--batch 0|1]
//             [--pump] [--n ELEMENTS] [--trace FILE]
//
// Spawns one client thread per tenant (or, with --pump, submits
// everything up front and runs the deterministic caller-thread
// dispatcher), pushes J map/zip jobs per tenant through a JobServer,
// and prints the per-tenant accounting table (jobs, device-cycles,
// bytes moved, queue wait, latency) plus the dispatcher's batching
// stats. --trace records the run for `skeltrace report`, whose tenant
// section is fed by the same accounting. Environment knobs
// (SKELCL_SERVICE_POLICY, SKELCL_SERVICE_QUEUE_CAP, ...) provide the
// defaults; flags override.
//
// Exit status: 0 when every job completed with the expected checksum,
// 1 on any failed job or checksum mismatch, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "skelcl/skelcl.h"
#include "trace/recorder.h"
#include "trace/serialize.h"

namespace {

namespace service = skelcl::service;

int usage() {
  std::fprintf(
      stderr,
      "usage: skelserve [--tenants N] [--jobs J] [--gpus G]\n"
      "                 [--policy fifo|fair|priority] [--queue-cap C]\n"
      "                 [--batch 0|1] [--pump] [--n ELEMENTS]"
      " [--trace FILE]\n");
  return 2;
}

struct JobResult {
  skelcl::Vector<float> result;
  float checksum = 0;
  bool checked = false;
};

/// Deterministic map/zip chain for tenant `t`, job `j`, pinned to a GPU
/// derived from both — the same function the expected-value check
/// recomputes on the host.
service::Job makeJob(std::size_t t, std::size_t j, std::size_t n,
                     std::size_t gpus,
                     const std::shared_ptr<JobResult>& out) {
  service::Job job;
  job.programKey = "skelserve-mapzip";
  job.work = [=](service::JobContext& ctx) {
    skelcl::Zip<float> mult(
        "float svcmul(float x, float y) { return x * y; }");
    skelcl::Map<float> scale(
        "float svcscale(float x) { return 0.5f * x + 1.0f; }");
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = float((i + 3 * t + j) % 31) * 0.25f;
      b[i] = float((i * 7 + t + 5 * j) % 29) * 0.5f;
    }
    skelcl::Vector<float> va(std::move(a));
    skelcl::Vector<float> vb(std::move(b));
    const std::size_t gpu = (t * 3 + j) % gpus;
    va.setDistribution(skelcl::Distribution::Single, gpu);
    vb.setDistribution(skelcl::Distribution::Single, gpu);
    out->result = scale(mult(va, vb));
    ctx.defer(out->result);
  };
  job.consume = [=] {
    const std::vector<float>& data = out->result.hostData();
    float sum = 0;
    for (std::size_t i = 0; i < data.size(); i += 97) {
      sum += data[i];
    }
    float expected = 0;
    for (std::size_t i = 0; i < n; i += 97) {
      const float a = float((i + 3 * t + j) % 31) * 0.25f;
      const float b = float((i * 7 + t + 5 * j) % 29) * 0.5f;
      expected += 0.5f * (a * b) + 1.0f;
    }
    out->checksum = sum;
    out->checked = sum == expected;
  };
  return job;
}

} // namespace

int main(int argc, char** argv) {
  std::size_t tenants = 3;
  std::size_t jobs = 8;
  std::uint32_t gpus = 4;
  std::size_t n = std::size_t(1) << 14;
  bool pumpMode = false;
  std::string tracePath;
  service::ServiceConfig config = service::ServiceConfig::fromEnv();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--tenants" && (v = next())) {
      tenants = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs" && (v = next())) {
      jobs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--gpus" && (v = next())) {
      gpus = std::uint32_t(std::strtoul(v, nullptr, 10));
    } else if (arg == "--n" && (v = next())) {
      n = std::strtoull(v, nullptr, 10);
    } else if (arg == "--policy" && (v = next())) {
      config.policy = service::policyFromString(v);
    } else if (arg == "--queue-cap" && (v = next())) {
      config.queueCap = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch" && (v = next())) {
      config.batching = std::strcmp(v, "0") != 0;
    } else if (arg == "--trace" && (v = next())) {
      tracePath = v;
    } else if (arg == "--pump") {
      pumpMode = true;
    } else {
      return usage();
    }
  }
  if (tenants == 0 || jobs == 0 || gpus == 0 || n == 0 ||
      config.queueCap == 0) {
    return usage();
  }

  if (std::getenv("SKELCL_CACHE_DIR") == nullptr) {
    ::setenv("SKELCL_CACHE_DIR", "/tmp/skelcl-skelserve-cache", 1);
  }
  ocl::configureSystem(ocl::SystemConfig::teslaS1070(gpus));
  skelcl::init(skelcl::DeviceSelection::nGPUs(gpus));
  if (!tracePath.empty()) {
    trace::Recorder::instance().start();
  }

  bool ok = true;
  try {
    service::JobServer server(config);
    std::vector<service::Session*> sessions;
    for (std::size_t t = 0; t < tenants; ++t) {
      // Demo mix: even tenants carry double fair-share weight, and the
      // last tenant runs at elevated priority.
      const double weight = (t % 2 == 0) ? 2.0 : 1.0;
      const int priority = (t + 1 == tenants) ? 1 : 0;
      sessions.push_back(&server.openSession(
          "tenant-" + std::string(1, char('a' + t % 26)), weight,
          priority));
    }

    std::vector<std::vector<std::shared_ptr<JobResult>>> results(tenants);
    std::vector<std::vector<service::JobHandle>> handles(tenants);
    std::uint64_t backpressure = 0;

    if (pumpMode) {
      for (std::size_t j = 0; j < jobs; ++j) {
        for (std::size_t t = 0; t < tenants; ++t) {
          auto out = std::make_shared<JobResult>();
          results[t].push_back(out);
          handles[t].push_back(
              sessions[t]->submit(makeJob(t, j, n, gpus, out)));
        }
      }
      server.pump();
    } else {
      server.start();
      std::vector<std::thread> clients;
      std::mutex backpressureLock;
      for (std::size_t t = 0; t < tenants; ++t) {
        results[t].resize(jobs);
        handles[t].resize(jobs);
        clients.emplace_back([&, t] {
          for (std::size_t j = 0; j < jobs; ++j) {
            auto out = std::make_shared<JobResult>();
            results[t][j] = out;
            while (true) {
              try {
                handles[t][j] =
                    sessions[t]->submit(makeJob(t, j, n, gpus, out));
                break;
              } catch (const service::ServiceOverload&) {
                {
                  std::lock_guard lock(backpressureLock);
                  ++backpressure;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
              }
            }
          }
        });
      }
      for (std::thread& client : clients) {
        client.join();
      }
      server.stop();
    }

    std::printf("skelserve: %zu tenant(s) x %zu job(s), %u GPU(s), "
                "policy %s, queue cap %zu, batching %s%s\n",
                tenants, jobs, gpus, service::policyName(config.policy),
                config.queueCap, config.batching ? "on" : "off",
                pumpMode ? ", pump mode" : "");
    std::printf("%-12s %6s %4s %5s %6s %8s %14s %12s %13s %13s\n",
                "tenant", "weight", "prio", "jobs", "failed", "rejects",
                "cycles", "bytes", "avg wait ms", "avg lat ms");
    const auto stats = server.tenantStats();
    for (std::size_t t = 0; t < stats.size(); ++t) {
      const auto& row = stats[t];
      std::uint64_t latencyNs = 0;
      std::uint64_t doneJobs = 0;
      for (const service::JobHandle& handle : handles[t]) {
        if (handle.valid() && handle.done()) {
          latencyNs += handle.stats().latencyNs();
          ++doneJobs;
        }
      }
      std::printf(
          "%-12s %6.1f %4d %5llu %6llu %8llu %14llu %12llu %13.3f "
          "%13.3f\n",
          row.tenant.c_str(), row.weight, row.priority,
          (unsigned long long)row.completed,
          (unsigned long long)row.failed,
          (unsigned long long)row.rejected,
          (unsigned long long)row.deviceCycles,
          (unsigned long long)row.bytesMoved,
          row.completed == 0
              ? 0.0
              : double(row.queueWaitNs) / double(row.completed) * 1e-6,
          doneJobs == 0 ? 0.0
                        : double(latencyNs) / double(doneJobs) * 1e-6);
      if (row.failed != 0) {
        ok = false;
      }
    }
    const auto server_stats = server.serverStats();
    std::printf("dispatcher: %llu batch(es), %llu job(s), max batch %llu, "
                "%llu coalesced, %llu backpressure retr%s\n",
                (unsigned long long)server_stats.batches,
                (unsigned long long)server_stats.jobsExecuted,
                (unsigned long long)server_stats.maxBatch,
                (unsigned long long)server_stats.coalescedJobs,
                (unsigned long long)backpressure,
                backpressure == 1 ? "y" : "ies");

    for (std::size_t t = 0; t < tenants; ++t) {
      for (std::size_t j = 0; j < results[t].size(); ++j) {
        if (results[t][j] == nullptr || !results[t][j]->checked) {
          std::fprintf(stderr, "FAIL: tenant %zu job %zu checksum\n", t,
                       j);
          ok = false;
        }
      }
    }
  } catch (const common::Error& e) {
    std::fprintf(stderr, "skelserve: %s\n", e.what());
    ok = false;
  }

  if (!tracePath.empty()) {
    try {
      trace::writeTraceFile(tracePath, trace::Recorder::instance().stop());
      std::printf("trace: %s\n", tracePath.c_str());
    } catch (const common::Error& e) {
      std::fprintf(stderr, "cannot write trace: %s\n", e.what());
      ok = false;
    }
  }
  skelcl::terminate();
  return ok ? 0 : 1;
}
