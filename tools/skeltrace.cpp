// skeltrace — analyzer for SkelCL trace files (SKELCL_TRACE=<path>).
//
//   skeltrace <trace>                  utilization/overlap report
//   skeltrace --json <trace> [-o out]  convert binary trace to Chrome JSON
//   skeltrace --check <ooo> <ser>      assert the out-of-order trace
//                                      overlaps transfers with compute and
//                                      the serialized one does not
//   skeltrace --check-cluster <trace>  assert the trace shows real
//                                      cross-node traffic and that the
//                                      energy ledger reconciles
//
// Report mode reads the compact binary format (and also accepts a path
// that fails binary parsing only if it was written as binary). --check is
// what the perf-smoke suite runs over bench_ablation_overlap's traces.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/byte_stream.h"
#include "common/error.h"
#include "trace/analysis.h"
#include "trace/chrome_export.h"
#include "trace/serialize.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: skeltrace [--top N] <trace>\n"
      "       skeltrace --json <trace> [-o <out.json>]\n"
      "       skeltrace --check <overlapped.trace> <serialized.trace>\n"
      "       skeltrace --check-cluster <cluster.trace>\n");
  return 2;
}

trace::Trace load(const std::string& path) {
  return trace::readTraceFile(path);
}

int report(const std::string& path, std::size_t topN) {
  const trace::Report r = trace::analyze(load(path));
  std::fputs(trace::formatReport(r, topN).c_str(), stdout);
  return 0;
}

int toJson(const std::string& path, const std::string& out) {
  const std::string json = trace::chromeJson(load(path));
  if (out.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  common::writeFile(out, std::vector<std::uint8_t>(json.begin(),
                                                   json.end()));
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), json.size());
  return 0;
}

/// The ablation contract: out-of-order queues must hide a real fraction
/// of DMA time behind compute, in-order queues must hide (almost) none,
/// and out-of-order must beat in-order. "Almost" leaves room for
/// interval-merge rounding; genuine in-order traces measure exactly 0.
int check(const std::string& oooPath, const std::string& serPath) {
  const trace::Report ooo = trace::analyze(load(oooPath));
  const trace::Report ser = trace::analyze(load(serPath));
  std::printf("overlap ratio: out-of-order %.4f, serialized %.4f\n",
              ooo.overlapRatio, ser.overlapRatio);
  bool ok = true;
  if (!(ooo.overlapRatio > 0.0)) {
    std::fprintf(stderr,
                 "FAIL: out-of-order trace shows no transfer/compute "
                 "overlap (%s)\n",
                 oooPath.c_str());
    ok = false;
  }
  if (ser.overlapRatio > 0.02) {
    std::fprintf(stderr,
                 "FAIL: serialized trace overlaps %.4f of DMA time; "
                 "expected ~0 (%s)\n",
                 ser.overlapRatio, serPath.c_str());
    ok = false;
  }
  if (!(ooo.overlapRatio > ser.overlapRatio)) {
    std::fprintf(stderr,
                 "FAIL: out-of-order overlap (%.4f) not above "
                 "serialized (%.4f)\n",
                 ooo.overlapRatio, ser.overlapRatio);
    ok = false;
  }
  std::puts(ok ? "CHECK PASSED" : "CHECK FAILED");
  return ok ? 0 : 1;
}

/// The cluster contract, run over bench_cluster's multi-node trace:
///  * the machine really had >= 2 nodes;
///  * cross-node traffic flowed, and the "internode_bytes" counter agrees
///    byte-for-byte with the copy_node_in commands it summarizes;
///  * the energy ledger reconciles: per-node joules sum to the machine
///    total, and an independent recompute from DeviceInfo power envelopes
///    x busy time x DMA bytes lands within 1% of the analyzer's answer.
int checkCluster(const std::string& path) {
  const trace::Trace t = load(path);
  const trace::Report r = trace::analyze(t);
  bool ok = true;

  if (r.nodes.size() < 2) {
    std::fprintf(stderr, "FAIL: trace spans %zu node(s); expected >= 2\n",
                 r.nodes.size());
    ok = false;
  }

  std::uint64_t nodeInBytes = 0;
  for (const trace::CommandRecord& c : t.commands) {
    if (t.str(c.name) == "copy_node_in") {
      nodeInBytes += c.bytes;
    }
  }
  if (r.internodeBytes == 0) {
    std::fprintf(stderr, "FAIL: no cross-node traffic recorded\n");
    ok = false;
  } else if (r.internodeBytes != nodeInBytes) {
    std::fprintf(stderr,
                 "FAIL: internode_bytes counter (%llu) != summed "
                 "copy_node_in bytes (%llu)\n",
                 (unsigned long long)r.internodeBytes,
                 (unsigned long long)nodeInBytes);
    ok = false;
  }

  double nodeSumJ = 0.0;
  for (const trace::NodeReport& n : r.nodes) {
    nodeSumJ += n.energyJ;
  }
  // Devices that never ran a command carry no energy in the report;
  // recompute over the active set only, on the same whole-span idle
  // basis the analyzer documents.
  double recomputedNj = 0.0;
  for (const trace::DeviceReport& d : r.devices) {
    for (const trace::DeviceInfo& info : t.devices) {
      if (info.index == d.device) {
        recomputedNj +=
            info.idlePowerW * double(r.spanNs) +
            (info.busyPowerW - info.idlePowerW) *
                double(d.engines[0].busyNs) +
            info.transferNjPerByte * double(d.dmaBytes);
      }
    }
  }
  const double recomputedJ = recomputedNj * 1e-9;
  if (!(r.totalEnergyJ > 0.0)) {
    std::fprintf(stderr, "FAIL: trace carries no energy data\n");
    ok = false;
  } else {
    if (std::abs(nodeSumJ - r.totalEnergyJ) > 0.01 * r.totalEnergyJ) {
      std::fprintf(stderr,
                   "FAIL: per-node energy (%.3f J) does not sum to the "
                   "machine total (%.3f J)\n",
                   nodeSumJ, r.totalEnergyJ);
      ok = false;
    }
    if (std::abs(recomputedJ - r.totalEnergyJ) > 0.01 * r.totalEnergyJ) {
      std::fprintf(stderr,
                   "FAIL: independent energy recompute (%.3f J) is more "
                   "than 1%% from the analyzer total (%.3f J)\n",
                   recomputedJ, r.totalEnergyJ);
      ok = false;
    }
  }

  std::printf("nodes %zu  internode bytes %llu  energy %.3f J  "
              "perf-per-watt %.3e cycles/J\n",
              r.nodes.size(), (unsigned long long)r.internodeBytes,
              r.totalEnergyJ, r.perfPerWatt);
  std::puts(ok ? "CHECK PASSED" : "CHECK FAILED");
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  std::string mode = "report";
  std::string out;
  std::size_t topN = 10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      mode = "json";
    } else if (arg == "--check") {
      mode = "check";
    } else if (arg == "--check-cluster") {
      mode = "check-cluster";
    } else if (arg == "-o" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      topN = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "skeltrace: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  try {
    if (mode == "check") {
      if (paths.size() != 2) {
        return usage();
      }
      return check(paths[0], paths[1]);
    }
    if (paths.size() != 1) {
      return usage();
    }
    if (mode == "check-cluster") {
      return checkCluster(paths[0]);
    }
    if (mode == "json") {
      return toJson(paths[0], out);
    }
    return report(paths[0], topN);
  } catch (const common::Error& e) {
    std::fprintf(stderr, "skeltrace: %s\n", e.what());
    return 1;
  }
}
