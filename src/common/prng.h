// Deterministic pseudo-random number generation (splitmix64 + xoshiro256**)
// used by workload generators (PET event sampling, test data). Determinism
// matters: every experiment in EXPERIMENTS.md must be re-runnable bit-for-bit.
#pragma once

#include <cstdint>

namespace common {

/// splitmix64: used to seed xoshiro and for cheap stateless mixing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double nextDouble() noexcept {
    return double(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float nextFloat() noexcept {
    return float(next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) without modulo bias for small bounds
  /// (simple rejection-free scaling; bias is < 2^-32 for bound < 2^32).
  std::uint64_t nextBelow(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : (next() % bound);
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

} // namespace common
