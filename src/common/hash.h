// Hashing utilities.
//
// FNV-1a is used for fast in-memory hashing (e.g. hash tables keyed by
// kernel source). SHA-256 is used where collision resistance matters: the
// on-disk kernel cache keys compiled binaries by the SHA-256 of their
// source text and build options, mirroring how real OpenCL binary caches
// (and SkelCL's own disk cache) key entries.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace common {

/// 64-bit FNV-1a over an arbitrary byte range.
std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept;

inline std::uint64_t fnv1a64(std::string_view s) noexcept {
  return fnv1a64(s.data(), s.size());
}

/// Incremental SHA-256. Minimal, self-contained implementation (FIPS 180-4).
class Sha256 {
public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view s) noexcept { update(s.data(), s.size()); }

  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before further use.
  std::array<std::uint8_t, 32> digest() noexcept;

  /// Convenience: hex digest of a single buffer.
  static std::string hexDigest(std::string_view data);

private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  std::uint64_t totalLen_ = 0;
};

/// Lower-case hex encoding of a byte array.
std::string toHex(const std::uint8_t* data, std::size_t size);

} // namespace common
