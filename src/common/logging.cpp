#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/string_util.h"

namespace common {

namespace {

LogLevel initialLevel() {
  const char* env = std::getenv("SKELCL_LOG");
  if (env == nullptr) {
    return LogLevel::Warn;
  }
  const std::string value = toLower(env);
  if (value == "off" || value == "none") return LogLevel::Off;
  if (value == "error") return LogLevel::Error;
  if (value == "warn" || value == "warning") return LogLevel::Warn;
  if (value == "info") return LogLevel::Info;
  if (value == "debug") return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<int> g_level{static_cast<int>(initialLevel())};
std::mutex g_outputMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Off: break;
  }
  return "?";
}

} // namespace

void setLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void logLine(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_outputMutex);
  std::fprintf(stderr, "[skelcl %s] %s\n", levelName(level), message.c_str());
}

} // namespace detail

} // namespace common
