// Fixed-size worker pool used by the ocl executor to run work-groups of a
// kernel launch in parallel on the host.
//
// The pool degrades gracefully on single-core machines: with one worker,
// parallelFor runs inline on the calling thread and no task ever blocks
// waiting for a second core.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace common {

class ThreadPool {
public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return threads_.size(); }

  /// Runs body(i) for i in [0, count), distributing chunks over the pool.
  /// Blocks until every index has completed. Exceptions from the body are
  /// rethrown on the calling thread (the first one captured wins).
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Singleton pool shared by all simulated devices.
  static ThreadPool& global();

private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

} // namespace common
