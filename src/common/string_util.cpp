#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace common {

std::string_view trim(std::string_view s) noexcept {
  const auto isSpace = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && isSpace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && isSpace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      return parts;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool startsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos || from.empty()) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::size_t countLinesOfCode(std::string_view source) {
  std::size_t loc = 0;
  bool inBlockComment = false;
  std::size_t lineStart = 0;
  const auto countLine = [&](std::string_view line) {
    // Strip comments while respecting the running block-comment state.
    std::string code;
    std::size_t i = 0;
    bool inString = false;
    char stringDelim = '"';
    while (i < line.size()) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (inBlockComment) {
        if (c == '*' && next == '/') {
          inBlockComment = false;
          i += 2;
          continue;
        }
        ++i;
        continue;
      }
      if (inString) {
        code.push_back(c);
        if (c == '\\' && i + 1 < line.size()) {
          code.push_back(next);
          i += 2;
          continue;
        }
        if (c == stringDelim) {
          inString = false;
        }
        ++i;
        continue;
      }
      if (c == '/' && next == '/') {
        break; // Rest of the line is a comment.
      }
      if (c == '/' && next == '*') {
        inBlockComment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        inString = true;
        stringDelim = c;
      }
      code.push_back(c);
      ++i;
    }
    if (!trim(code).empty()) {
      ++loc;
    }
  };

  for (std::size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      countLine(source.substr(lineStart, i - lineStart));
      lineStart = i + 1;
    }
  }
  return loc;
}

} // namespace common
