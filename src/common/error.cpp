#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace common::detail {

void checkFailed(const char* condition, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d %s\n", condition, file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

} // namespace common::detail
