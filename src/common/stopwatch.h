// Wall-clock stopwatch for host-side measurements (kernel build vs cache
// load, benchmark wall time next to the simulator's virtual time).
#pragma once

#include <chrono>

namespace common {

class Stopwatch {
public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsedMillis() const noexcept { return elapsedSeconds() * 1e3; }
  double elapsedMicros() const noexcept { return elapsedSeconds() * 1e6; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

} // namespace common
