// Leveled logging. SkelCL itself shipped a logger; ours mirrors that:
// severity filtering via SKELCL_LOG (error|warn|info|debug) or setLevel().
#pragma once

#include <sstream>
#include <string>

namespace common {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Sets the global level; also read once from env SKELCL_LOG at startup.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

namespace detail {
void logLine(LogLevel level, const std::string& message);
}

#define COMMON_LOG(level, expr)                                                \
  do {                                                                         \
    if (static_cast<int>(level) <=                                             \
        static_cast<int>(::common::logLevel())) {                              \
      std::ostringstream common_log_stream_;                                   \
      common_log_stream_ << expr;                                              \
      ::common::detail::logLine(level, common_log_stream_.str());              \
    }                                                                          \
  } while (false)

#define LOG_ERROR(expr) COMMON_LOG(::common::LogLevel::Error, expr)
#define LOG_WARN(expr) COMMON_LOG(::common::LogLevel::Warn, expr)
#define LOG_INFO(expr) COMMON_LOG(::common::LogLevel::Info, expr)
#define LOG_DEBUG(expr) COMMON_LOG(::common::LogLevel::Debug, expr)

} // namespace common
