// Uniform environment-variable parsing for the runtime's configuration
// knobs (SKELCL_SERIALIZE, SKELCL_TRANSFER_CHUNKS, SKELCL_TRACE, ...).
//
// Flag semantics are normalized across every knob: an unset variable
// yields the fallback; "", "0", "false", "off" and "no" (case-
// insensitive) are false; every other value is true. Numeric helpers
// fall back on unset *or unparsable* values, so a typo degrades to the
// documented default instead of silently becoming zero. "Unparsable"
// is strict: empty or whitespace-only values, trailing garbage after
// the number ("12abc"), and out-of-range magnitudes all take the
// fallback rather than a half-parsed or saturated value.
#pragma once

#include <string>

namespace common {

/// Boolean knob with consistent 0/1/true/false handling (see above).
bool envFlag(const char* name, bool fallback = false);

/// Integer knob; returns `fallback` when unset or not a number.
long long envInt(const char* name, long long fallback);

/// Floating-point knob; returns `fallback` when unset or not a number.
double envDouble(const char* name, double fallback);

/// String knob; returns `fallback` when unset (an empty value is kept).
std::string envStr(const char* name, const std::string& fallback = "");

} // namespace common
