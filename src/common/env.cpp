#include "common/env.h"

#include <cctype>
#include <cstdlib>

namespace common {

namespace {

std::string lowered(const char* value) {
  std::string s(value);
  for (char& c : s) {
    c = char(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

} // namespace

bool envFlag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  const std::string v = lowered(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

long long envInt(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end == value ? fallback : parsed;
}

double envDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

std::string envStr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

} // namespace common
