#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace common {

namespace {

std::string lowered(const char* value) {
  std::string s(value);
  for (char& c : s) {
    c = char(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// True when `rest` holds nothing but whitespace — the only thing allowed
/// to trail a numeric value. "12abc" or "1.5.3" fall back to the default
/// instead of being silently half-parsed.
bool onlyWhitespace(const char* rest) {
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) {
      return false;
    }
    ++rest;
  }
  return true;
}

} // namespace

bool envFlag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  const std::string v = lowered(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

long long envInt(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || errno == ERANGE || !onlyWhitespace(end)) {
    return fallback;
  }
  return parsed;
}

double envDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || errno == ERANGE || !onlyWhitespace(end)) {
    return fallback;
  }
  return parsed;
}

std::string envStr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

} // namespace common
