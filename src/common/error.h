// Error handling primitives shared by all modules.
//
// Follows the C++ Core Guidelines: errors that the caller can reasonably
// handle are reported via exceptions derived from `common::Error`;
// violations of internal invariants (bugs) abort via CHECK macros so they
// are never silently swallowed.
#pragma once

#include <stdexcept>
#include <string>

namespace common {

/// Base class for every exception thrown by this project.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (e.g. mismatched vector sizes passed to a Zip skeleton).
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (kernel cache files, trace dumps, ...).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void checkFailed(const char* condition, const char* file,
                              int line, const std::string& message);
} // namespace detail

} // namespace common

/// Internal invariant check: aborts with a diagnostic when violated.
/// Use for conditions that indicate a bug in *this* library, never for
/// conditions a user of the library could trigger with bad input.
#define COMMON_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::common::detail::checkFailed(#cond, __FILE__, __LINE__, "");            \
    }                                                                          \
  } while (false)

#define COMMON_CHECK_MSG(cond, msg)                                            \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::common::detail::checkFailed(#cond, __FILE__, __LINE__, (msg));         \
    }                                                                          \
  } while (false)

/// Precondition check on public API boundaries: throws InvalidArgument.
#define COMMON_EXPECTS(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      throw ::common::InvalidArgument(                                         \
          std::string("precondition failed: ") + (msg));                       \
    }                                                                          \
  } while (false)
