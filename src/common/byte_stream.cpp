#include "common/byte_stream.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace common {

void writeFile(const std::string& path,
               const std::vector<std::uint8_t>& bytes) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("cannot open for writing: " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw IoError("short write to: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    throw IoError("rename failed: " + tmp.string() + " -> " + path + ": " +
                  ec.message());
  }
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw IoError("cannot open for reading: " + path);
  }
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) {
    throw IoError("short read from: " + path);
  }
  return bytes;
}

bool fileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

} // namespace common
