#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace common {

namespace {

/// Heap-allocated state shared between the caller and queued helper
/// tasks. Helpers may dequeue after parallelFor already returned (when
/// the caller drained all indices itself); the shared_ptr keeps the job
/// alive so such stragglers exit harmlessly.
struct Job {
  explicit Job(std::size_t count, std::function<void(std::size_t)> body)
      : count(count), body(std::move(body)) {}

  const std::size_t count;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex errorMutex;
  std::exception_ptr error;
  std::mutex doneMutex;
  std::condition_variable doneCv;

  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(errorMutex);
        if (!error) {
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard lock(doneMutex);
        doneCv.notify_all();
      }
    }
  }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallelFor, so a pool on an
  // N-core machine spawns N-1 workers.
  for (std::size_t i = 1; i < threads; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  auto job = std::make_shared<Job>(count, body);
  const std::size_t helpers = std::min(threads_.size(), count - 1);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.push([job] { job->run(); });
    }
  }
  cv_.notify_all();

  job->run(); // The caller works too.

  {
    std::unique_lock lock(job->doneMutex);
    job->doneCv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
  }

  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace common
