// Binary (de)serialization streams.
//
// Used by the clc bytecode serializer that backs SkelCL's on-disk kernel
// cache. Encoding is little-endian and versioned by the callers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace common {

/// Append-only binary writer.
class ByteWriter {
public:
  /// Raw bytes written so far.
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> takeBytes() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

  void writeBytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "write<T> requires a trivially copyable type");
    writeBytes(&value, sizeof(T));
  }

  void writeString(std::string_view s) {
    write<std::uint64_t>(s.size());
    writeBytes(s.data(), s.size());
  }

  template <typename T>
  void writeVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(v.size());
    writeBytes(v.data(), v.size() * sizeof(T));
  }

private:
  std::vector<std::uint8_t> bytes_;
};

/// Thrown when a reader runs past the end of its buffer or finds a
/// malformed length field — e.g. a corrupted kernel-cache entry.
class DeserializeError : public Error {
public:
  explicit DeserializeError(const std::string& what) : Error(what) {}
};

/// Sequential binary reader over a borrowed buffer.
class ByteReader {
public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) noexcept
      : ByteReader(bytes.data(), bytes.size()) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool atEnd() const noexcept { return pos_ == size_; }

  void readBytes(void* out, std::size_t size) {
    if (size > remaining()) {
      throw DeserializeError("byte stream truncated");
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    readBytes(&value, sizeof(T));
    return value;
  }

  std::string readString() {
    const auto n = read<std::uint64_t>();
    if (n > remaining()) {
      throw DeserializeError("string length exceeds stream size");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> readVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    if (n * sizeof(T) > remaining()) {
      throw DeserializeError("vector length exceeds stream size");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    readBytes(v.data(), v.size() * sizeof(T));
    return v;
  }

private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes `bytes` to `path` atomically (via a temp file + rename).
void writeFile(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Reads the whole file; throws IoError when the file cannot be read.
std::vector<std::uint8_t> readFile(const std::string& path);

/// True when `path` names an existing regular file.
bool fileExists(const std::string& path);

} // namespace common
