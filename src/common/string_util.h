// Small string helpers shared by the clc front end, SkelCL's source-merge
// code generator, and the LoC counter used by the benchmark harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace common {

std::string_view trim(std::string_view s) noexcept;
std::vector<std::string> split(std::string_view s, char sep);
bool startsWith(std::string_view s, std::string_view prefix) noexcept;
bool endsWith(std::string_view s, std::string_view suffix) noexcept;
std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to);
std::string toLower(std::string_view s);

/// Joins parts with the given separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Counts non-blank, non-comment-only lines of C/C++ source. This is the
/// single LoC metric used for every "program size" figure we reproduce,
/// applied uniformly to all implementations (Figs. 1 and 2 of the paper).
std::size_t countLinesOfCode(std::string_view source);

} // namespace common
