#include "cuda/runtime.h"

namespace cuda {

namespace {

struct DeviceCtx {
  ocl::Device device;
  ocl::Context context;
  ocl::CommandQueue queue;
};

std::vector<DeviceCtx> discoverContexts() {
  std::vector<DeviceCtx> out;
  for (const auto& platform : ocl::getPlatforms()) {
    for (const auto& device : platform.devices(ocl::DeviceType::GPU)) {
      DeviceCtx ctx;
      ctx.device = device;
      ctx.context = ocl::Context({device});
      ctx.queue = ocl::CommandQueue(device, ocl::Backend::Cuda);
      out.push_back(std::move(ctx));
    }
  }
  return out;
}

std::vector<DeviceCtx>& contexts() {
  static std::vector<DeviceCtx> ctxs = discoverContexts();
  return ctxs;
}

thread_local int t_currentDevice = 0;

DeviceCtx& current() {
  auto& ctxs = contexts();
  COMMON_EXPECTS(!ctxs.empty(), "no CUDA-capable (GPU) devices");
  COMMON_EXPECTS(t_currentDevice >= 0 &&
                     std::size_t(t_currentDevice) < ctxs.size(),
                 "current device index out of range");
  return ctxs[std::size_t(t_currentDevice)];
}

} // namespace

void reset() {
  contexts() = discoverContexts();
  t_currentDevice = 0;
}

int getDeviceCount() { return int(contexts().size()); }

void setDevice(int index) {
  COMMON_EXPECTS(index >= 0 && index < getDeviceCount(),
                 "cuda::setDevice index out of range");
  t_currentDevice = index;
}

int getDevice() { return t_currentDevice; }

DeviceMemory::DeviceMemory(std::size_t bytes)
    : buffer_(current().context.createBuffer(current().device, bytes)) {}

void memcpyHostToDevice(DeviceMemory& dst, const void* src,
                        std::size_t bytes) {
  memcpyHostToDevice(dst, 0, src, bytes);
}

void memcpyHostToDevice(DeviceMemory& dst, std::size_t dstOffset,
                        const void* src, std::size_t bytes) {
  // CUDA's plain cudaMemcpy is synchronous; keep that semantic.
  ocl::CommandQueue queue(dst.buffer().device(), ocl::Backend::Cuda);
  queue.enqueueWriteBuffer(dst.buffer(), dstOffset, bytes, src).wait();
}

void memcpyHostToDeviceAsync(DeviceMemory& dst, const void* src,
                             std::size_t bytes) {
  ocl::CommandQueue queue(dst.buffer().device(), ocl::Backend::Cuda);
  queue.enqueueWriteBuffer(dst.buffer(), 0, bytes, src);
}

void memcpyDeviceToHost(void* dst, const DeviceMemory& src,
                        std::size_t bytes) {
  memcpyDeviceToHost(dst, src, 0, bytes);
}

void memcpyDeviceToHost(void* dst, const DeviceMemory& src,
                        std::size_t srcOffset, std::size_t bytes) {
  ocl::CommandQueue queue(src.buffer().device(), ocl::Backend::Cuda);
  queue.enqueueReadBuffer(src.buffer(), srcOffset, bytes, dst,
                          /*blocking=*/true);
}

void memcpyDeviceToDevice(DeviceMemory& dst, const DeviceMemory& src,
                          std::size_t bytes) {
  memcpyDeviceToDevice(dst, 0, src, 0, bytes);
}

void memcpyDeviceToDevice(DeviceMemory& dst, std::size_t dstOffset,
                          const DeviceMemory& src, std::size_t srcOffset,
                          std::size_t bytes) {
  ocl::CommandQueue queue(dst.buffer().device(), ocl::Backend::Cuda);
  queue.enqueueCopyBuffer(src.buffer(), srcOffset, dst.buffer(), dstOffset,
                          bytes)
      .wait();
}

void deviceSynchronize() { current().queue.finish(); }

std::uint64_t clockNs() { return ocl::hostTimeNs(); }

Module Module::compile(const std::string& source) {
  Module module;
  module.program_ = ocl::Program::fromSource(source);
  module.program_.build();
  return module;
}

KernelFunction Module::function(const std::string& name) const {
  return KernelFunction(program_.createKernel(name));
}

namespace detail {

void setLaunchArg(ocl::Kernel& kernel, std::size_t index,
                  const DeviceMemory& mem) {
  kernel.setArg(index, mem.buffer());
}

ocl::Event launchImpl(ocl::Kernel& kernel, Dim3 grid, Dim3 block) {
  clc::NDRange range;
  range.dims = (grid.z * block.z > 1) ? 3 : (grid.y * block.y > 1) ? 2 : 1;
  range.globalSize[0] = std::size_t(grid.x) * block.x;
  range.globalSize[1] = std::size_t(grid.y) * block.y;
  range.globalSize[2] = std::size_t(grid.z) * block.z;
  range.localSize[0] = block.x;
  range.localSize[1] = block.y;
  range.localSize[2] = block.z;
  return current().queue.enqueueNDRange(kernel, range);
}

} // namespace detail

} // namespace cuda
