// CUDA-runtime-style host API over the simulated devices.
//
// Stands in for the paper's CUDA baselines. The shape follows the CUDA
// runtime API (cudaSetDevice / cudaMalloc / cudaMemcpy / <<<grid,block>>>
// launches / cudaDeviceSynchronize); kernels are written in the CUDA
// dialect of clc (__global__, threadIdx.x, __syncthreads, atomicAdd) and
// "compiled ahead of time" at Module::compile, mirroring nvcc: by launch
// time there is no source handling left. Commands run on the device's
// virtual timeline with the CUDA backend profile (higher efficiency,
// lower launch overhead — the calibrated gap the paper attributes to
// toolchain maturity; see ocl/timing_model.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocl/ocl.h"

namespace cuda {

/// Number of simulated CUDA-capable devices (GPUs only).
int getDeviceCount();

/// Re-discovers devices after ocl::configureSystem changed the machine.
void reset();

/// Selects the calling thread's current device (cudaSetDevice).
void setDevice(int index);
int getDevice();

/// RAII device allocation (cudaMalloc / cudaFree).
class DeviceMemory {
public:
  DeviceMemory() = default;
  /// Allocates on the *current* device.
  explicit DeviceMemory(std::size_t bytes);

  bool valid() const noexcept { return buffer_.valid(); }
  std::size_t size() const { return buffer_.size(); }
  const ocl::Buffer& buffer() const noexcept { return buffer_; }

private:
  ocl::Buffer buffer_;
};

/// cudaMemcpy analogues. Operate on the device owning the memory. The
/// offset variants stand in for CUDA's device-pointer arithmetic
/// (cudaMemcpy(ptr + off, ...)).
void memcpyHostToDevice(DeviceMemory& dst, const void* src,
                        std::size_t bytes);
void memcpyHostToDevice(DeviceMemory& dst, std::size_t dstOffset,
                        const void* src, std::size_t bytes);
/// cudaMemcpyAsync analogue: returns immediately; the copy completes on
/// the device timeline (synchronize with deviceSynchronize()). Stands in
/// for the overlap the paper's one-host-thread-per-GPU CUDA code gets.
void memcpyHostToDeviceAsync(DeviceMemory& dst, const void* src,
                             std::size_t bytes);
void memcpyDeviceToHost(void* dst, const DeviceMemory& src,
                        std::size_t bytes);
void memcpyDeviceToHost(void* dst, const DeviceMemory& src,
                        std::size_t srcOffset, std::size_t bytes);
void memcpyDeviceToDevice(DeviceMemory& dst, const DeviceMemory& src,
                          std::size_t bytes);
void memcpyDeviceToDevice(DeviceMemory& dst, std::size_t dstOffset,
                          const DeviceMemory& src, std::size_t srcOffset,
                          std::size_t bytes);

/// Blocks the virtual host until the current device drains.
void deviceSynchronize();

/// Virtual-clock stamp (nanoseconds); use around a region to measure the
/// simulated runtime the way cudaEvent timing would.
std::uint64_t clockNs();

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;
  Dim3() = default;
  Dim3(std::uint32_t x_, std::uint32_t y_ = 1, std::uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}
};

class KernelFunction;

/// A compiled module (stands in for the fatbin nvcc embeds in a binary).
class Module {
public:
  /// Compiles CUDA-dialect source. Call once at startup; launches never
  /// touch source again (that is the nvcc model, unlike OpenCL).
  static Module compile(const std::string& source);

  KernelFunction function(const std::string& name) const;

private:
  ocl::Program program_;
};

class KernelFunction {
public:
  KernelFunction() = default;
  explicit KernelFunction(ocl::Kernel kernel) : kernel_(std::move(kernel)) {}

  ocl::Kernel& kernel() noexcept { return kernel_; }

private:
  ocl::Kernel kernel_;
};

namespace detail {
void setLaunchArg(ocl::Kernel& kernel, std::size_t index,
                  const DeviceMemory& mem);
template <typename T>
void setLaunchArg(ocl::Kernel& kernel, std::size_t index, const T& value) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double> ||
                std::is_same_v<T, std::int32_t> ||
                std::is_same_v<T, std::uint32_t> ||
                std::is_same_v<T, std::int64_t> ||
                std::is_same_v<T, std::uint64_t>) {
    kernel.setArg(index, value);
  } else if constexpr (std::is_integral_v<T>) {
    kernel.setArg(index, static_cast<std::int32_t>(value));
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "kernel arguments must be trivially copyable");
    kernel.setArgBytes(index, &value, sizeof(T));
  }
}

ocl::Event launchImpl(ocl::Kernel& kernel, Dim3 grid, Dim3 block);
} // namespace detail

/// kernel<<<grid, block>>>(args...) analogue. Blocking variant below.
template <typename... Args>
ocl::Event launch(KernelFunction& fn, Dim3 grid, Dim3 block,
                  const Args&... args) {
  std::size_t index = 0;
  (detail::setLaunchArg(fn.kernel(), index++, args), ...);
  return detail::launchImpl(fn.kernel(), grid, block);
}

} // namespace cuda
