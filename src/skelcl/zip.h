// The Zip skeleton (paper Sec. III-B, Eq. 2):
//
//   zip (+) [x0, ...], [y0, ...] = [x0 + y0, ...]
//
// "Thus, it is a generalized dyadic form of Map. By chaining Zip
//  skeletons, variadic forms of Map can be implemented."
//
// Invocation is lazy (see detail/expr.h): the size check and operand
// geometry alignment still happen at the call site, but the kernel only
// launches when the result is consumed — deferred Map producers feeding
// either operand are absorbed into the zip kernel (detail/fusion.h).
#pragma once

#include <string>

#include "skelcl/arguments.h"
#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/error.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename Tin, typename Tout = Tin>
class Zip {
public:
  explicit Zip(std::string source)
      : source_(std::move(source)),
        funcName_(detail::userFunctionName(source_)) {}

  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  Vector<Tout> operator()(const Vector<Tin>& left,
                          const Vector<Tin>& right) {
    return (*this)(left, right, Arguments{});
  }

  Vector<Tout> operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                          const Arguments& args) {
    Vector<Tout> output;
    run(left, right, args, output, /*explicitOutput=*/false);
    return output;
  }

  /// Explicit-output form, e.g. the OSEM update step `update(f, c, f)`
  /// where the output aliases the left input.
  void operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                  Vector<Tout>& output) {
    run(left, right, Arguments{}, output, /*explicitOutput=*/true);
  }

  void operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                  const Arguments& args, Vector<Tout>& output) {
    run(left, right, args, output, /*explicitOutput=*/true);
  }

private:
  void run(const Vector<Tin>& left, const Vector<Tin>& right,
           const Arguments& args, Vector<Tout>& output,
           bool explicitOutput) {
    // The call-site span: covers node construction (and, on the eager
    // paths, the whole launch). Fused evaluation emits its own span.
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Zip",
                               trace::kNoDevice, left.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (left.size() != right.size()) {
      // Typed: callers can catch ZipSizeMismatch and read both sizes
      // and distributions instead of parsing the message.
      throw ZipSizeMismatch(left.size(), right.size(),
                            left.state().distribution(),
                            right.state().distribution());
    }
    auto node = detail::makeExprNode(
        detail::ExprNode::Op::Zip, source_, funcName_, args,
        workGroupSize_, {left.stateHandle(), right.stateHandle()},
        typeName<Tout>(), sizeof(Tout), left.size());
    if (!explicitOutput && detail::deferrable(args)) {
      detail::deferNode(node, output.stateHandle());
    } else {
      detail::evaluateNodeInto(node, output.stateHandle());
    }
  }

  std::string source_;
  std::string funcName_;
  std::size_t workGroupSize_ = 0;
};

} // namespace skelcl
