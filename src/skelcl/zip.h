// The Zip skeleton (paper Sec. III-B, Eq. 2):
//
//   zip (+) [x0, ...], [y0, ...] = [x0 + y0, ...]
//
// "Thus, it is a generalized dyadic form of Map. By chaining Zip
//  skeletons, variadic forms of Map can be implemented."
#pragma once

#include <string>

#include "skelcl/arguments.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/error.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename Tin, typename Tout = Tin>
class Zip {
public:
  explicit Zip(std::string source)
      : source_(std::move(source)),
        funcName_(detail::userFunctionName(source_)) {}

  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  Vector<Tout> operator()(const Vector<Tin>& left,
                          const Vector<Tin>& right) {
    return (*this)(left, right, Arguments{});
  }

  Vector<Tout> operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                          const Arguments& args) {
    Vector<Tout> output;
    run(left, right, args, output);
    return output;
  }

  /// Explicit-output form, e.g. the OSEM update step `update(f, c, f)`
  /// where the output aliases the left input.
  void operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                  Vector<Tout>& output) {
    run(left, right, Arguments{}, output);
  }

  void operator()(const Vector<Tin>& left, const Vector<Tin>& right,
                  const Arguments& args, Vector<Tout>& output) {
    run(left, right, args, output);
  }

private:
  void run(const Vector<Tin>& left, const Vector<Tin>& right,
           const Arguments& args, Vector<Tout>& output) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Zip",
                               trace::kNoDevice, left.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (left.size() != right.size()) {
      // Typed: callers can catch ZipSizeMismatch and read both sizes
      // and distributions instead of parsing the message.
      throw ZipSizeMismatch(left.size(), right.size(),
                            left.state().distribution(),
                            right.state().distribution());
    }

    left.state().ensureOnDevices();
    // Align the right operand with the left's distribution *and* exact
    // chunk geometry. A mere enum comparison is not enough: two block
    // partitions made at different times may disagree under measured
    // weights, and two single distributions may sit on different
    // devices; the kernel zips corresponding chunks element-wise, so
    // the geometries must be identical.
    if (static_cast<const void*>(&right.state()) !=
        static_cast<const void*>(&left.state())) {
      right.state().matchLayout(left.state().distribution(),
                                left.state().singleDeviceIndex(),
                                left.state().chunks());
    }
    args.prepare();

    const bool aliasesLeft =
        static_cast<const void*>(&output.state()) ==
        static_cast<const void*>(&left.state());
    const bool aliasesRight =
        static_cast<const void*>(&output.state()) ==
        static_cast<const void*>(&right.state());
    if (!aliasesLeft && !aliasesRight) {
      output.state().allocateLike(left.state());
    }

    ocl::Program& program = program_(args);
    // Per-device chunks are disjoint, so any visit order is legal (the
    // schedule fuzzer shuffles it); a fault on one device reports which.
    const auto& chunks = left.state().chunks();
    for (std::size_t idx : runtime.chunkVisitOrder(chunks.size())) {
      const detail::Chunk& chunk = chunks[idx];
      if (chunk.count == 0) {
        continue;
      }
      try {
        const auto& device = runtime.devices()[chunk.deviceIndex];
        ocl::Kernel kernel = program.createKernel("skelcl_zip");
        std::size_t arg = 0;
        kernel.setArg(arg++, chunk.buffer);
        kernel.setArg(arg++,
                      right.state().chunkForDevice(chunk.deviceIndex).buffer);
        kernel.setArg(
            arg++,
            output.state().chunkForDevice(chunk.deviceIndex).buffer);
        kernel.setArg(arg++, std::uint32_t(chunk.count));
        args.apply(kernel, arg, chunk.deviceIndex);

        // Depend on both operands' uploads — piecewise where split, so
        // sub-launches pipeline against whichever transfer streams last —
        // plus vector arguments and the aliased output's last writer.
        const bool sameState =
            static_cast<const void*>(&right.state()) ==
            static_cast<const void*>(&left.state());
        const detail::UploadPieces leftPieces =
            left.state().takeUploadPieces(chunk.deviceIndex);
        const detail::UploadPieces rightPieces =
            sameState ? detail::UploadPieces{}
                      : right.state().takeUploadPieces(chunk.deviceIndex);
        std::vector<ocl::Event> deps;
        if (leftPieces.empty()) {
          detail::appendEvent(deps, chunk.ready);
        }
        if (!sameState && rightPieces.empty()) {
          detail::appendEvent(
              deps, right.state().readyEventOn(chunk.deviceIndex));
        }
        args.collectDeps(deps, chunk.deviceIndex);

        const std::size_t wg =
            detail::effectiveWorkGroupSize(workGroupSize_, device);
        ocl::Event done = detail::launchPipelined(
            runtime.queue(chunk.deviceIndex), kernel, chunk.count, wg, deps,
            {&leftPieces, &rightPieces});
        output.state().recordEventOn(chunk.deviceIndex, done);
        args.recordEvent(done, chunk.deviceIndex);
      } catch (ocl::ClError& e) {
        e.prependContext("Zip skeleton on device " +
                         std::to_string(chunk.deviceIndex));
        throw;
      }
    }
    output.state().markDevicesModified();
  }

  ocl::Program& program_(const Arguments& args) {
    const std::string source =
        detail::registeredTypeDefinitions() + source_ +
        "\n__kernel void skelcl_zip(__global const " + typeName<Tin>() +
        "* skelcl_left, __global const " + typeName<Tin>() +
        "* skelcl_right, __global " + typeName<Tout>() +
        "* skelcl_out, uint skelcl_n" + args.declSuffix() +
        ") {\n"
        "  size_t skelcl_i = get_global_id(0);\n"
        "  if (skelcl_i < skelcl_n) {\n"
        "    skelcl_out[skelcl_i] = " +
        funcName_ + "(skelcl_left[skelcl_i], skelcl_right[skelcl_i]" +
        args.callSuffix() +
        ");\n"
        "  }\n"
        "}\n";
    return memo_.get(source);
  }

  std::string source_;
  std::string funcName_;
  std::size_t workGroupSize_ = 0;
  detail::ProgramMemo memo_;
};

} // namespace skelcl
