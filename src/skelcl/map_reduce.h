// MapReduce — a fused skeleton (extension beyond the IPDPS 2011 paper;
// later SkelCL work added composed skeletons along these lines).
//
//   mapreduce f (+) [x0 .. xn-1]  =  f(x0) + f(x1) + ... + f(xn-1)
//
// Fusing the map into the reduction's accumulation loop removes the
// intermediate vector entirely: no extra buffer, no extra kernel launch,
// and one global-memory pass instead of two. bench_skeletons shows the
// effect; tests/skelcl/map_reduce_test.cpp checks the semantics.
#pragma once

#include <string>

#include "skelcl/detail/skeleton_common.h"
#include "skelcl/scalar.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename Tin, typename Tout = Tin>
class MapReduce {
public:
  /// `mapSource` defines a unary function Tin -> Tout; `reduceSource` an
  /// associative binary operator on Tout. `identity` is the reduce
  /// operator's identity element, returned for an empty input (no
  /// launch happens then).
  MapReduce(std::string mapSource, std::string reduceSource,
            Tout identity = Tout{})
      : mapSource_(std::move(mapSource)),
        reduceSource_(std::move(reduceSource)),
        identity_(identity),
        mapName_(detail::userFunctionName(mapSource_)),
        reduceName_(detail::userFunctionName(reduceSource_)) {}

  Scalar<Tout> operator()(const Vector<Tin>& input) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "MapReduce",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (input.size() == 0) {
      return Scalar<Tout>(identity_);
    }

    input.state().ensureOnDevices();
    ocl::Program& fused = memo_.get(fusedSource());
    ocl::Program& combine = memo_.get(combineSource());

    struct Partial {
      ocl::Buffer buffer;
      ocl::Event ready;
      std::size_t deviceIndex;
    };
    std::vector<Partial> partials;
    const bool copyDist =
        input.state().distribution() == Distribution::Copy;
    for (const detail::Chunk& chunk : input.state().chunks()) {
      if (chunk.count == 0) {
        continue;
      }
      // First pass applies f and reduces to per-group partials; it
      // starts as soon as this device's upload lands (chunk ready
      // event) and runs concurrently with the other devices' passes.
      const auto& device = runtime.devices()[chunk.deviceIndex];
      auto& queue = runtime.queue(chunk.deviceIndex);
      const std::size_t groups =
          std::min<std::size_t>(kMaxGroups, (chunk.count + kWg - 1) / kWg);
      ocl::Buffer stage =
          runtime.context().createBuffer(device, groups * sizeof(Tout));
      ocl::Kernel kernel = fused.createKernel("skelcl_mapreduce");
      kernel.setArg(0, chunk.buffer);
      kernel.setArg(1, stage);
      kernel.setArg(2, std::uint32_t(chunk.count));
      ocl::Event last =
          queue.enqueueNDRange(kernel, ocl::NDRange1D{groups * kWg, kWg},
                               detail::VectorState<Tin>::depsOf(chunk));
      // ...then plain reduction passes finish the device.
      std::size_t count = groups;
      ocl::Buffer buffer = stage;
      while (count > 1) {
        const std::size_t g =
            std::min<std::size_t>(kMaxGroups, (count + kWg - 1) / kWg);
        ocl::Buffer next =
            runtime.context().createBuffer(device, g * sizeof(Tout));
        ocl::Kernel reduce = combine.createKernel("skelcl_reduce_only");
        reduce.setArg(0, buffer);
        reduce.setArg(1, next);
        reduce.setArg(2, std::uint32_t(count));
        last = queue.enqueueNDRange(reduce, ocl::NDRange1D{g * kWg, kWg},
                                    {last});
        buffer = std::move(next);
        count = g;
      }
      partials.push_back(
          Partial{std::move(buffer), std::move(last), chunk.deviceIndex});
      if (copyDist) {
        break;
      }
    }
    COMMON_CHECK(!partials.empty());

    if (partials.size() == 1) {
      Vector<Tout> holder;
      holder.state().adoptDeviceBuffer(partials[0].buffer, 1,
                                       partials[0].deviceIndex,
                                       partials[0].ready);
      return Scalar<Tout>(std::move(holder));
    }
    // Cross-device combine on device 0 (device order = element order).
    // Non-blocking downloads overlap on the devices' D2H links; the
    // staging upload and final kernel chain on them through events.
    std::vector<Tout> values(partials.size());
    std::vector<ocl::Event> reads;
    for (std::size_t i = 0; i < partials.size(); ++i) {
      reads.push_back(
          runtime.queue(partials[i].deviceIndex)
              .enqueueReadBuffer(partials[i].buffer, 0, sizeof(Tout),
                                 &values[i], /*blocking=*/false,
                                 {partials[i].ready}));
    }
    ocl::Buffer staging = runtime.context().createBuffer(
        runtime.devices()[0], values.size() * sizeof(Tout));
    ocl::Event staged = runtime.queue(0).enqueueWriteBuffer(
        staging, 0, values.size() * sizeof(Tout), values.data(), reads);
    ocl::Kernel reduce = combine.createKernel("skelcl_reduce_only");
    ocl::Buffer result =
        runtime.context().createBuffer(runtime.devices()[0], sizeof(Tout));
    reduce.setArg(0, staging);
    reduce.setArg(1, result);
    reduce.setArg(2, std::uint32_t(values.size()));
    ocl::Event done = runtime.queue(0).enqueueNDRange(
        reduce, ocl::NDRange1D{kWg, kWg}, {staged});
    Vector<Tout> holder;
    holder.state().adoptDeviceBuffer(std::move(result), 1, 0,
                                     std::move(done));
    return Scalar<Tout>(std::move(holder));
  }

private:
  static constexpr std::size_t kWg = 256;
  static constexpr std::size_t kMaxGroups = 64;

  /// Shared body: group-span partition + adjacent-pair flag tree. The
  /// `loadExpr` hook is where the fused map is applied.
  std::string reduceBody(const std::string& loadExpr) const {
    const std::string t = typeName<Tout>();
    const std::string wg = std::to_string(kWg);
    return
        "  __local " + t + " skelcl_scratch[" + wg + "];\n"
        "  __local int skelcl_flags[" + wg + "];\n"
        "  uint skelcl_lid = (uint)get_local_id(0);\n"
        "  size_t skelcl_groups = get_num_groups(0);\n"
        "  size_t skelcl_span = (skelcl_n + skelcl_groups - 1) /"
        " skelcl_groups;\n"
        "  size_t skelcl_gstart = get_group_id(0) * skelcl_span;\n"
        "  size_t skelcl_gend = min(skelcl_gstart + skelcl_span,"
        " (size_t)skelcl_n);\n"
        "  size_t skelcl_chunk = (skelcl_span + " + wg + " - 1) / " + wg +
        ";\n"
        "  size_t skelcl_start = skelcl_gstart + skelcl_lid *"
        " skelcl_chunk;\n"
        "  size_t skelcl_end = min(skelcl_start + skelcl_chunk,"
        " skelcl_gend);\n"
        "  int skelcl_have = 0;\n"
        "  " + t + " skelcl_acc;\n"
        "  for (size_t i = skelcl_start; i < skelcl_end; ++i) {\n"
        "    " + t + " skelcl_v = " + loadExpr + ";\n"
        "    if (skelcl_have) {\n"
        "      skelcl_acc = " + reduceName_ + "(skelcl_acc, skelcl_v);\n"
        "    } else {\n"
        "      skelcl_acc = skelcl_v;\n"
        "      skelcl_have = 1;\n"
        "    }\n"
        "  }\n"
        "  skelcl_flags[skelcl_lid] = skelcl_have;\n"
        "  if (skelcl_have) skelcl_scratch[skelcl_lid] = skelcl_acc;\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  for (uint s = 1; s < " + wg + "; s <<= 1) {\n"
        "    if (skelcl_lid % (2 * s) == 0 && skelcl_lid + s < " + wg +
        ") {\n"
        "      if (skelcl_flags[skelcl_lid + s]) {\n"
        "        if (skelcl_flags[skelcl_lid]) {\n"
        "          skelcl_scratch[skelcl_lid] = " + reduceName_ +
        "(skelcl_scratch[skelcl_lid], skelcl_scratch[skelcl_lid + s]);\n"
        "        } else {\n"
        "          skelcl_scratch[skelcl_lid] ="
        " skelcl_scratch[skelcl_lid + s];\n"
        "          skelcl_flags[skelcl_lid] = 1;\n"
        "        }\n"
        "      }\n"
        "    }\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  }\n"
        "  if (skelcl_lid == 0) {\n"
        "    skelcl_out[get_group_id(0)] = skelcl_scratch[0];\n"
        "  }\n";
  }

  std::string fusedSource() const {
    return detail::registeredTypeDefinitions() + mapSource_ + "\n" +
           reduceSource_ +
           "\n__kernel void skelcl_mapreduce(__global const " +
           typeName<Tin>() + "* skelcl_in, __global " + typeName<Tout>() +
           "* skelcl_out, uint skelcl_n) {\n" +
           reduceBody(mapName_ + "(skelcl_in[i])") + "}\n";
  }

  std::string combineSource() const {
    return detail::registeredTypeDefinitions() + reduceSource_ +
           "\n__kernel void skelcl_reduce_only(__global const " +
           typeName<Tout>() + "* skelcl_in, __global " + typeName<Tout>() +
           "* skelcl_out, uint skelcl_n) {\n" +
           reduceBody("skelcl_in[i]") + "}\n";
  }

  std::string mapSource_;
  std::string reduceSource_;
  Tout identity_{};
  std::string mapName_;
  std::string reduceName_;
  detail::ProgramMemo memo_;
};

} // namespace skelcl
