// The Reduce skeleton (paper Sec. III-B, Eq. 3):
//
//   reduce (+) [x0, ..., xn-1] = x0 + ... + xn-1
//
// "SkelCL requires the operator to be associative, such that it can be
//  applied to arbitrarily sized subranges of the input vector in
//  parallel. [...] To improve the performance, SkelCL saves the
//  intermediate results in the device's fast local memory."
//
// The execution (detail/expr.cpp) is associativity-only (no
// commutativity needed): every work-item reduces a *contiguous*
// subrange, and the local-memory tree combines adjacent partial results
// in element order. On a block-distributed vector each device reduces
// its block; the per-device results are combined with one final launch
// on device 0.
//
// Invocation is lazy: the call builds an expression-DAG node and the
// reduction runs when the Scalar is read. A deferred element-wise
// producer feeding the reduce is absorbed into the first reduction pass
// (reduce f . map g -> mapReduce — the rewrite the hand-written
// MapReduce skeleton is the special case of).
#pragma once

#include <string>

#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/scalar.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename T>
class Reduce {
public:
  /// `identity` is the operator's identity element, returned when the
  /// input is empty (e.g. 0 for +, 1 for *). Reducing an empty vector
  /// launches nothing.
  explicit Reduce(std::string source, T identity = T{})
      : source_(std::move(source)),
        identity_(identity),
        funcName_(detail::userFunctionName(source_)) {}

  Scalar<T> operator()(const Vector<T>& input) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Reduce",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (input.size() == 0) {
      return Scalar<T>(identity_);
    }
    auto node = detail::makeExprNode(
        detail::ExprNode::Op::Reduce, source_, funcName_, Arguments{},
        /*workGroupSize=*/0, {input.stateHandle()}, typeName<T>(),
        sizeof(T), /*outCount=*/1);
    Vector<T> holder;
    detail::deferNode(node, holder.stateHandle());
    return Scalar<T>(std::move(holder));
  }

private:
  std::string source_;
  T identity_{};
  std::string funcName_;
};

} // namespace skelcl
