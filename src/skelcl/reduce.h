// The Reduce skeleton (paper Sec. III-B, Eq. 3):
//
//   reduce (+) [x0, ..., xn-1] = x0 + ... + xn-1
//
// "SkelCL requires the operator to be associative, such that it can be
//  applied to arbitrarily sized subranges of the input vector in
//  parallel. [...] To improve the performance, SkelCL saves the
//  intermediate results in the device's fast local memory."
//
// The implementation is associativity-only (no commutativity needed):
// every work-item reduces a *contiguous* subrange, and the local-memory
// tree combines adjacent partial results in element order. On a block-
// distributed vector each device reduces its block; the per-device
// results are combined with one final launch on device 0.
#pragma once

#include <string>

#include "skelcl/detail/skeleton_common.h"
#include "skelcl/scalar.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename T>
class Reduce {
public:
  /// `identity` is the operator's identity element, returned when the
  /// input is empty (e.g. 0 for +, 1 for *). Reducing an empty vector
  /// launches nothing.
  explicit Reduce(std::string source, T identity = T{})
      : source_(std::move(source)),
        identity_(identity),
        funcName_(detail::userFunctionName(source_)) {}

  Scalar<T> operator()(const Vector<T>& input) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Reduce",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (input.size() == 0) {
      return Scalar<T>(identity_);
    }

    input.state().ensureOnDevices();
    ocl::Program& program = memo_.get(generateSource());

    // Per-device partial reduction. Under the copy distribution every
    // device holds the whole vector, so reducing one copy suffices.
    // Each device's pass starts as soon as that device's upload lands
    // (its chunk's ready event); nothing blocks the host in between.
    struct Partial {
      ocl::Buffer buffer;
      ocl::Event ready;
      std::size_t deviceIndex;
    };
    std::vector<Partial> partials;
    const auto& chunks = input.state().chunks();
    const bool copyDist =
        input.state().distribution() == Distribution::Copy;
    // Partials stay in canonical chunk order (device order = element
    // order), so the combine below needs associativity only.
    for (const detail::Chunk& chunk : chunks) {
      if (chunk.count == 0) {
        continue;
      }
      try {
        auto reduced =
            reduceOnDevice(program, chunk.buffer, chunk.count,
                           chunk.deviceIndex,
                           detail::VectorState<T>::depsOf(chunk));
        partials.push_back(Partial{std::move(reduced.first),
                                   std::move(reduced.second),
                                   chunk.deviceIndex});
      } catch (ocl::ClError& e) {
        e.prependContext("Reduce skeleton on device " +
                         std::to_string(chunk.deviceIndex));
        throw;
      }
      if (copyDist) {
        break;
      }
    }
    COMMON_CHECK(!partials.empty());

    if (partials.size() == 1) {
      Vector<T> holder;
      holder.state().adoptDeviceBuffer(partials[0].buffer, 1,
                                       partials[0].deviceIndex,
                                       partials[0].ready);
      return Scalar<T>(std::move(holder));
    }

    // Combine the per-device results on device 0. Device order equals
    // element order, so associativity is still all we need. All reads
    // are non-blocking (each depending on its device's reduction) and
    // overlap across the devices' D2H links; the staging upload waits on
    // them through events, never by stalling the host. The result is
    // consumed at the Scalar's getValue(), which waits on the final
    // event — the true consumption point.
    std::vector<T> values(partials.size());
    std::vector<ocl::Event> reads;
    for (std::size_t i = 0; i < partials.size(); ++i) {
      reads.push_back(
          runtime.queue(partials[i].deviceIndex)
              .enqueueReadBuffer(partials[i].buffer, 0, sizeof(T),
                                 &values[i], /*blocking=*/false,
                                 {partials[i].ready}));
    }
    const auto& device0 = runtime.devices()[0];
    ocl::Buffer staging = runtime.context().createBuffer(
        device0, values.size() * sizeof(T));
    ocl::Event staged = runtime.queue(0).enqueueWriteBuffer(
        staging, 0, values.size() * sizeof(T), values.data(), reads);
    auto finalReduce =
        reduceOnDevice(program, staging, values.size(), 0, {staged});
    Vector<T> holder;
    holder.state().adoptDeviceBuffer(std::move(finalReduce.first), 1, 0,
                                     std::move(finalReduce.second));
    return Scalar<T>(std::move(holder));
  }

private:
  static constexpr std::size_t kWg = 256;     // power of two for the tree
  static constexpr std::size_t kMaxGroups = 64;

  /// Reduces `count` elements of `buffer` (on device `deviceIndex`) down
  /// to a single element; the first pass waits on `deps`. Returns the
  /// one-element result buffer and the event of the last pass.
  std::pair<ocl::Buffer, ocl::Event> reduceOnDevice(
      ocl::Program& program, ocl::Buffer buffer, std::size_t count,
      std::size_t deviceIndex, std::vector<ocl::Event> deps) {
    auto& runtime = detail::Runtime::instance();
    auto& queue = runtime.queue(deviceIndex);
    const auto& device = runtime.devices()[deviceIndex];

    ocl::Buffer in = std::move(buffer);
    ocl::Event last;
    if (!deps.empty()) {
      last = deps.front();
    }
    while (count > 1) {
      const std::size_t groups =
          std::min(kMaxGroups, (count + kWg - 1) / kWg);
      ocl::Buffer out =
          runtime.context().createBuffer(device, groups * sizeof(T));
      ocl::Kernel kernel = program.createKernel("skelcl_reduce");
      kernel.setArg(0, in);
      kernel.setArg(1, out);
      kernel.setArg(2, std::uint32_t(count));
      last = queue.enqueueNDRange(kernel,
                                  ocl::NDRange1D{groups * kWg, kWg}, deps);
      deps = {last};
      in = std::move(out);
      count = groups;
    }
    return {std::move(in), std::move(last)};
  }

  std::string generateSource() const {
    const std::string t = typeName<T>();
    const std::string wg = std::to_string(kWg);
    return detail::registeredTypeDefinitions() + source_ +
           "\n__kernel void skelcl_reduce(__global const " + t +
           "* skelcl_in, __global " + t +
           "* skelcl_out, uint skelcl_n) {\n"
           "  __local " + t + " skelcl_scratch[" + wg + "];\n"
           "  __local int skelcl_flags[" + wg + "];\n"
           "  uint skelcl_lid = (uint)get_local_id(0);\n"
           // Contiguous span per group, contiguous sub-chunk per item:
           // ranges combine strictly in element order (associativity
           // suffices). The group count is chosen host-side so that no
           // group's span is empty.
           "  size_t skelcl_groups = get_num_groups(0);\n"
           "  size_t skelcl_span =\n"
           "      (skelcl_n + skelcl_groups - 1) / skelcl_groups;\n"
           "  size_t skelcl_gstart = get_group_id(0) * skelcl_span;\n"
           "  size_t skelcl_gend = min(skelcl_gstart + skelcl_span,\n"
           "                           (size_t)skelcl_n);\n"
           "  size_t skelcl_chunk = (skelcl_span + " + wg + " - 1) / " + wg +
           ";\n"
           "  size_t skelcl_start = skelcl_gstart + skelcl_lid * skelcl_chunk;\n"
           "  size_t skelcl_end = min(skelcl_start + skelcl_chunk,\n"
           "                          skelcl_gend);\n"
           "  int skelcl_have = 0;\n"
           "  " + t + " skelcl_acc;\n"
           "  for (size_t i = skelcl_start; i < skelcl_end; ++i) {\n"
           "    if (skelcl_have) {\n"
           "      skelcl_acc = " + funcName_ + "(skelcl_acc, skelcl_in[i]);\n"
           "    } else {\n"
           "      skelcl_acc = skelcl_in[i];\n"
           "      skelcl_have = 1;\n"
           "    }\n"
           "  }\n"
           "  skelcl_flags[skelcl_lid] = skelcl_have;\n"
           "  if (skelcl_have) skelcl_scratch[skelcl_lid] = skelcl_acc;\n"
           "  barrier(CLK_LOCAL_MEM_FENCE);\n"
           // Adjacent-pair tree: associativity-only combination.
           "  for (uint s = 1; s < " + wg + "; s <<= 1) {\n"
           "    if (skelcl_lid % (2 * s) == 0 &&\n"
           "        skelcl_lid + s < " + wg + ") {\n"
           "      if (skelcl_flags[skelcl_lid + s]) {\n"
           "        if (skelcl_flags[skelcl_lid]) {\n"
           "          skelcl_scratch[skelcl_lid] = " + funcName_ +
           "(skelcl_scratch[skelcl_lid], skelcl_scratch[skelcl_lid + s]);\n"
           "        } else {\n"
           "          skelcl_scratch[skelcl_lid] =\n"
           "              skelcl_scratch[skelcl_lid + s];\n"
           "          skelcl_flags[skelcl_lid] = 1;\n"
           "        }\n"
           "      }\n"
           "    }\n"
           "    barrier(CLK_LOCAL_MEM_FENCE);\n"
           "  }\n"
           "  if (skelcl_lid == 0) {\n"
           "    skelcl_out[get_group_id(0)] = skelcl_scratch[0];\n"
           "  }\n"
           "}\n";
  }

  std::string source_;
  T identity_{};
  std::string funcName_;
  detail::ProgramMemo memo_;
};

} // namespace skelcl
