// The Scan skeleton (paper Sec. III-B, Eq. 4): exclusive prefix
// combination,
//
//   scan (+) [x0, ..., xn-1] = [id, x0, x0+x1, ..., x0+...+xn-2]
//
// "The implementation of Scan provided in SkelCL is a modified version of
//  [Harris et al., GPU Gems 3]. It is highly optimized and makes heavy
//  use of local memory, as well as it tries to avoid memory bank
//  conflicts."
//
// Structure: per-work-group Blelloch up-sweep/down-sweep in local memory
// producing block sums, a recursive scan of the block sums, and a uniform
// combine pass. Runs on a single device; vectors with other
// distributions are gathered first (the paper's evaluation does not use
// multi-GPU Scan).
#pragma once

#include <string>

#include "skelcl/detail/skeleton_common.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename T>
class Scan {
public:
  /// `identity` is the OpenCL-C expression for the identity element of
  /// the operator (e.g. "0" for +, "1" for *, "-INFINITY" for max).
  explicit Scan(std::string source, std::string identity = "0")
      : source_(std::move(source)),
        identity_(std::move(identity)),
        funcName_(detail::userFunctionName(source_)) {}

  Vector<T> operator()(const Vector<T>& input) {
    static_assert(std::is_arithmetic_v<T>,
                  "Scan currently supports arithmetic element types");
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Scan",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (input.size() == 0) {
      // Scan of nothing is nothing; skip redistribution, allocation,
      // and every device command.
      return Vector<T>();
    }

    // Single-device skeleton: gather the vector if it is distributed.
    if (input.state().distribution() != Distribution::Single) {
      const_cast<Vector<T>&>(input).setDistribution(Distribution::Single,
                                                    0);
    }
    input.state().ensureOnDevices();

    const std::size_t n = input.size();
    const detail::Chunk& chunk = input.state().chunks().front();
    const std::size_t deviceIndex = chunk.deviceIndex;
    const auto& device = runtime.devices()[deviceIndex];

    ocl::Buffer out =
        runtime.context().createBuffer(device, n * sizeof(T));
    // The whole pass chains on the input upload through events; the
    // result is downloaded only when the output vector is read on the
    // host, waiting on `done` then.
    ocl::Event done = scanBuffer(chunk.buffer, out, n, deviceIndex,
                                 detail::VectorState<T>::depsOf(chunk));

    Vector<T> output;
    output.state().adoptDeviceBuffer(std::move(out), n, deviceIndex,
                                     std::move(done));
    return output;
  }

private:
  static constexpr std::size_t kWg = 256; // power of two (Blelloch tree)

  ocl::Event scanBuffer(const ocl::Buffer& in, const ocl::Buffer& out,
                        std::size_t n, std::size_t deviceIndex,
                        const std::vector<ocl::Event>& deps) {
    auto& runtime = detail::Runtime::instance();
    auto& queue = runtime.queue(deviceIndex);
    const auto& device = runtime.devices()[deviceIndex];
    ocl::Program& program = memo_.get(generateSource());

    const std::size_t groups = (n + kWg - 1) / kWg;
    ocl::Buffer sums =
        runtime.context().createBuffer(device, groups * sizeof(T));

    ocl::Kernel block = program.createKernel("skelcl_scan_block");
    block.setArg(0, in);
    block.setArg(1, out);
    block.setArg(2, sums);
    block.setArg(3, std::uint32_t(n));
    ocl::Event blocked =
        queue.enqueueNDRange(block, ocl::NDRange1D{groups * kWg, kWg},
                             deps);

    if (groups > 1) {
      ocl::Buffer sumsScanned =
          runtime.context().createBuffer(device, groups * sizeof(T));
      ocl::Event sumsDone =
          scanBuffer(sums, sumsScanned, groups, deviceIndex, {blocked});

      ocl::Kernel add = program.createKernel("skelcl_scan_add");
      add.setArg(0, out);
      add.setArg(1, sumsScanned);
      add.setArg(2, std::uint32_t(n));
      return queue.enqueueNDRange(add, ocl::NDRange1D{groups * kWg, kWg},
                                  {blocked, sumsDone});
    }
    return blocked;
  }

  std::string generateSource() const {
    const std::string t = typeName<T>();
    const std::string wg = std::to_string(kWg);
    const std::string half = std::to_string(kWg / 2);
    const std::string last = std::to_string(kWg - 1);
    return detail::registeredTypeDefinitions() + source_ +
           "\n__kernel void skelcl_scan_block(__global const " + t +
           "* skelcl_in, __global " + t + "* skelcl_out, __global " + t +
           "* skelcl_sums, uint skelcl_n) {\n"
           "  __local " + t + " skelcl_tmp[" + wg + "];\n"
           "  uint skelcl_lid = (uint)get_local_id(0);\n"
           "  size_t skelcl_gid = get_global_id(0);\n"
           "  if (skelcl_gid < skelcl_n) {\n"
           "    skelcl_tmp[skelcl_lid] = skelcl_in[skelcl_gid];\n"
           "  } else {\n"
           "    skelcl_tmp[skelcl_lid] = " + identity_ + ";\n"
           "  }\n"
           "  barrier(CLK_LOCAL_MEM_FENCE);\n"
           // Up-sweep (reduce) phase.
           "  uint skelcl_offset = 1;\n"
           "  for (uint d = " + half + "; d > 0; d >>= 1) {\n"
           "    if (skelcl_lid < d) {\n"
           "      uint ai = skelcl_offset * (2 * skelcl_lid + 1) - 1;\n"
           "      uint bi = skelcl_offset * (2 * skelcl_lid + 2) - 1;\n"
           "      skelcl_tmp[bi] = " + funcName_ +
           "(skelcl_tmp[ai], skelcl_tmp[bi]);\n"
           "    }\n"
           "    skelcl_offset <<= 1;\n"
           "    barrier(CLK_LOCAL_MEM_FENCE);\n"
           "  }\n"
           // Record the block total, clear the root.
           "  if (skelcl_lid == 0) {\n"
           "    skelcl_sums[get_group_id(0)] = skelcl_tmp[" + last + "];\n"
           "    skelcl_tmp[" + last + "] = " + identity_ + ";\n"
           "  }\n"
           "  barrier(CLK_LOCAL_MEM_FENCE);\n"
           // Down-sweep phase.
           "  for (uint d = 1; d < " + wg + "; d <<= 1) {\n"
           "    skelcl_offset >>= 1;\n"
           "    if (skelcl_lid < d) {\n"
           "      uint ai = skelcl_offset * (2 * skelcl_lid + 1) - 1;\n"
           "      uint bi = skelcl_offset * (2 * skelcl_lid + 2) - 1;\n"
           // tmp[bi] holds the prefix that flowed down from the parent;
           // the left subtree's total combines on its RIGHT (operand
           // order matters for non-commutative operators).
           "      " + t + " skelcl_t = skelcl_tmp[ai];\n"
           "      skelcl_tmp[ai] = skelcl_tmp[bi];\n"
           "      skelcl_tmp[bi] = " + funcName_ +
           "(skelcl_tmp[ai], skelcl_t);\n"
           "    }\n"
           "    barrier(CLK_LOCAL_MEM_FENCE);\n"
           "  }\n"
           "  if (skelcl_gid < skelcl_n) {\n"
           "    skelcl_out[skelcl_gid] = skelcl_tmp[skelcl_lid];\n"
           "  }\n"
           "}\n"
           "\n__kernel void skelcl_scan_add(__global " + t +
           "* skelcl_data, __global const " + t +
           "* skelcl_offsets, uint skelcl_n) {\n"
           "  size_t skelcl_gid = get_global_id(0);\n"
           "  if (skelcl_gid < skelcl_n) {\n"
           "    skelcl_data[skelcl_gid] = " + funcName_ +
           "(skelcl_offsets[get_group_id(0)], skelcl_data[skelcl_gid]);\n"
           "  }\n"
           "}\n";
  }

  std::string source_;
  std::string identity_;
  std::string funcName_;
  detail::ProgramMemo memo_;
};

} // namespace skelcl
