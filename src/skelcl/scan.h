// The Scan skeleton (paper Sec. III-B, Eq. 4): exclusive prefix
// combination,
//
//   scan (+) [x0, ..., xn-1] = [id, x0, x0+x1, ..., x0+...+xn-2]
//
// "The implementation of Scan provided in SkelCL is a modified version of
//  [Harris et al., GPU Gems 3]. It is highly optimized and makes heavy
//  use of local memory, as well as it tries to avoid memory bank
//  conflicts."
//
// Structure (detail/expr.cpp): per-work-group Blelloch up-sweep/down-
// sweep in local memory producing block sums, a recursive scan of the
// block sums, and a uniform combine pass. Runs on a single device;
// vectors with other distributions are gathered first (the paper's
// evaluation does not use multi-GPU Scan).
//
// Invocation is lazy: a deferred element-wise producer is absorbed into
// the first Blelloch level (scan f . map g), evaluating the chain while
// the tree loads — no intermediate vector.
#pragma once

#include <string>
#include <type_traits>

#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename T>
class Scan {
public:
  /// `identity` is the OpenCL-C expression for the identity element of
  /// the operator (e.g. "0" for +, "1" for *, "-INFINITY" for max).
  explicit Scan(std::string source, std::string identity = "0")
      : source_(std::move(source)),
        identity_(std::move(identity)),
        funcName_(detail::userFunctionName(source_)) {}

  Vector<T> operator()(const Vector<T>& input) {
    static_assert(std::is_arithmetic_v<T>,
                  "Scan currently supports arithmetic element types");
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Scan",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (input.size() == 0) {
      // Scan of nothing is nothing; skip redistribution, allocation,
      // and every device command.
      return Vector<T>();
    }
    auto node = detail::makeExprNode(
        detail::ExprNode::Op::Scan, source_, funcName_, Arguments{},
        /*workGroupSize=*/0, {input.stateHandle()}, typeName<T>(),
        sizeof(T), input.size(), identity_);
    Vector<T> output;
    detail::deferNode(node, output.stateHandle());
    return output;
  }

private:
  std::string source_;
  std::string identity_;
  std::string funcName_;
};

} // namespace skelcl
