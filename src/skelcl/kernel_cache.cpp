#include "skelcl/kernel_cache.h"

#include <cstdlib>
#include <filesystem>

#include "clc/bytecode.h"
#include "common/byte_stream.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace skelcl {

namespace {

std::string defaultDirectory() {
  if (const char* env = std::getenv("SKELCL_CACHE_DIR")) {
    return env;
  }
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.skelcl/cache";
  }
  return (std::filesystem::temp_directory_path() / "skelcl-cache").string();
}

} // namespace

KernelCache::KernelCache(std::string directory)
    : directory_(directory.empty() ? defaultDirectory()
                                   : std::move(directory)) {}

std::string KernelCache::entryPath(const std::string& source,
                                   const std::string& options) const {
  // Key = source digest + bytecode format version + options digest, so a
  // format bump or a different optimization level can never resolve to a
  // stale entry.
  return directory_ + "/" + common::Sha256::hexDigest(source) + "-v" +
         std::to_string(clc::Program::kSerialVersion) + "-" +
         common::Sha256::hexDigest(options).substr(0, 8) + ".clcbin";
}

ocl::Program KernelCache::getOrBuild(const ocl::Context& context,
                                     const std::string& source,
                                     const std::string& options) {
  const std::string path = entryPath(source, options);
  if (enabled_ && common::fileExists(path)) {
    try {
      common::Stopwatch timer;
      ocl::Program program =
          context.createProgramFromBinary(common::readFile(path));
      stats_.loadSeconds += timer.elapsedSeconds();
      ++stats_.hits;
      return program;
    } catch (const common::Error& e) {
      // Corrupted or version-mismatched entry: rebuild below.
      LOG_WARN("kernel cache entry unusable (" << e.what()
                                               << "); rebuilding");
    }
  }

  common::Stopwatch timer;
  ocl::Program program = context.createProgram(source);
  program.build(options);
  stats_.buildSeconds += timer.elapsedSeconds();
  ++stats_.misses;

  if (enabled_) {
    try {
      common::writeFile(path, program.binary());
    } catch (const common::IoError& e) {
      LOG_WARN("cannot store kernel cache entry: " << e.what());
    }
  }
  return program;
}

void KernelCache::clear() {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".clcbin") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

} // namespace skelcl
