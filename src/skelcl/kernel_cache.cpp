#include "skelcl/kernel_cache.h"

#include <filesystem>

#include "clc/bytecode.h"
#include "common/byte_stream.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "trace/recorder.h"

namespace skelcl {

namespace {

std::string defaultDirectory() {
  const std::string dir = common::envStr("SKELCL_CACHE_DIR");
  if (!dir.empty()) {
    return dir;
  }
  const std::string home = common::envStr("HOME");
  if (!home.empty()) {
    return home + "/.skelcl/cache";
  }
  return (std::filesystem::temp_directory_path() / "skelcl-cache").string();
}

} // namespace

KernelCache::KernelCache(std::string directory)
    : directory_(directory.empty() ? defaultDirectory()
                                   : std::move(directory)) {}

std::string KernelCache::entryPath(const std::string& source,
                                   const std::string& options) const {
  // Key = source digest + bytecode format version + options digest, so a
  // format bump or a different optimization level can never resolve to a
  // stale entry.
  return directory_ + "/" + common::Sha256::hexDigest(source) + "-v" +
         std::to_string(clc::Program::kSerialVersion) + "-" +
         common::Sha256::hexDigest(options).substr(0, 8) + ".clcbin";
}

ocl::Program KernelCache::getOrBuild(const ocl::Context& context,
                                     const std::string& source,
                                     const std::string& options) {
  const std::string path = entryPath(source, options);
  if (enabled_ && common::fileExists(path)) {
    try {
      trace::ScopedHostSpan span(trace::HostKind::CacheHit,
                                 "kernel_cache.hit", trace::kNoDevice,
                                 source.size());
      common::Stopwatch timer;
      ocl::Program program =
          context.createProgramFromBinary(common::readFile(path));
      stats_.loadSeconds += timer.elapsedSeconds();
      ++stats_.hits;
      if (trace::Recorder::enabled()) {
        trace::Recorder::instance().bumpCounter(
            "cache_hits", trace::kNoDevice, trace::now(), 1);
      }
      return program;
    } catch (const common::Error& e) {
      // Corrupted or version-mismatched entry: rebuild below.
      LOG_WARN("kernel cache entry unusable (" << e.what()
                                               << "); rebuilding");
    }
  }

  trace::ScopedHostSpan span(trace::HostKind::Build, "kernel_cache.build",
                             trace::kNoDevice, source.size());
  common::Stopwatch timer;
  ocl::Program program = context.createProgram(source);
  program.build(options);
  stats_.buildSeconds += timer.elapsedSeconds();
  ++stats_.misses;
  if (trace::Recorder::enabled()) {
    trace::Recorder::instance().bumpCounter(
        "cache_misses", trace::kNoDevice, trace::now(), 1);
  }

  if (enabled_) {
    try {
      common::writeFile(path, program.binary());
    } catch (const common::IoError& e) {
      LOG_WARN("cannot store kernel cache entry: " << e.what());
    }
  }
  return program;
}

void KernelCache::clear() {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".clcbin") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

} // namespace skelcl
