#include "skelcl/kernel_cache.h"

#include <algorithm>
#include <filesystem>
#include <string_view>

#include "clc/bytecode.h"
#include "common/byte_stream.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "trace/recorder.h"

namespace skelcl {

namespace {

// On-disk entry envelope (the v4 format): a magic, the payload length,
// and the payload's FNV-1a64 hex digest precede the serialized bytecode.
// Disk blobs are never trusted: a truncated or bit-flipped entry fails
// the length or digest check and triggers a silent rebuild instead of
// feeding corrupt bytes to the deserializer. FNV-1a64 (not SHA-256)
// because this digest guards against corruption, not adversaries, and it
// sits on the cache-hit path the paper requires to be >= 5x faster than
// a rebuild; SHA-256 stays where collision resistance matters (keying).
constexpr char kEntryMagic[4] = {'S', 'K', 'C', '1'};
constexpr std::size_t kDigestHexLen = 16;
constexpr std::size_t kEntryHeaderLen = sizeof(kEntryMagic) + 8 +
                                        kDigestHexLen;

std::string payloadDigest(const std::uint8_t* data, std::size_t size) {
  const std::uint64_t h = common::fnv1a64(data, size);
  std::uint8_t bytes[8];
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = std::uint8_t(h >> (8 * (7 - i)));
  }
  return common::toHex(bytes, 8);
}

std::vector<std::uint8_t> sealEntry(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> entry;
  entry.reserve(kEntryHeaderLen + payload.size());
  entry.insert(entry.end(), kEntryMagic, kEntryMagic + sizeof(kEntryMagic));
  const std::uint64_t length = payload.size();
  for (std::size_t i = 0; i < 8; ++i) {
    entry.push_back(std::uint8_t(length >> (8 * i)));
  }
  const std::string digest = payloadDigest(payload.data(), payload.size());
  entry.insert(entry.end(), digest.begin(), digest.end());
  entry.insert(entry.end(), payload.begin(), payload.end());
  return entry;
}

std::vector<std::uint8_t> openEntry(const std::vector<std::uint8_t>& entry) {
  if (entry.size() < kEntryHeaderLen ||
      !std::equal(kEntryMagic, kEntryMagic + sizeof(kEntryMagic),
                  entry.begin())) {
    throw common::IoError("cache entry has no valid header");
  }
  std::uint64_t length = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    length |= std::uint64_t(entry[sizeof(kEntryMagic) + i]) << (8 * i);
  }
  if (length != entry.size() - kEntryHeaderLen) {
    throw common::IoError("cache entry truncated: header says " +
                          std::to_string(length) + " payload bytes, file has " +
                          std::to_string(entry.size() - kEntryHeaderLen));
  }
  const std::string_view stored(
      reinterpret_cast<const char*>(entry.data() + sizeof(kEntryMagic) + 8),
      kDigestHexLen);
  const std::string actual =
      payloadDigest(entry.data() + kEntryHeaderLen, length);
  if (stored != actual) {
    throw common::IoError("cache entry digest mismatch (corrupt entry)");
  }
  return {entry.begin() + kEntryHeaderLen, entry.end()};
}

std::string defaultDirectory() {
  const std::string dir = common::envStr("SKELCL_CACHE_DIR");
  if (!dir.empty()) {
    return dir;
  }
  const std::string home = common::envStr("HOME");
  if (!home.empty()) {
    return home + "/.skelcl/cache";
  }
  return (std::filesystem::temp_directory_path() / "skelcl-cache").string();
}

} // namespace

KernelCache::KernelCache(std::string directory)
    : directory_(directory.empty() ? defaultDirectory()
                                   : std::move(directory)) {}

std::string KernelCache::entryPath(const std::string& source,
                                   const std::string& options,
                                   const std::string& salt) const {
  // Key = source digest + bytecode format version + key-schema version +
  // (options, salt) digest, so a format bump, a different optimization
  // level, or a different fusion configuration can never resolve to a
  // stale entry.
  return directory_ + "/" + common::Sha256::hexDigest(source) + "-v" +
         std::to_string(clc::Program::kSerialVersion) + "-k" +
         std::to_string(kKeySchemaVersion) + "-" +
         common::Sha256::hexDigest(options + "|" + salt).substr(0, 8) +
         ".clcbin";
}

ocl::Program KernelCache::getOrBuild(const ocl::Context& context,
                                     const std::string& source,
                                     const std::string& options,
                                     const std::string& salt) {
  const std::string path = entryPath(source, options, salt);
  if (enabled_ && common::fileExists(path)) {
    try {
      trace::ScopedHostSpan span(trace::HostKind::CacheHit,
                                 "kernel_cache.hit", trace::kNoDevice,
                                 source.size());
      common::Stopwatch timer;
      ocl::Program program =
          context.createProgramFromBinary(openEntry(common::readFile(path)));
      {
        std::lock_guard lock(statsMutex_);
        stats_.loadSeconds += timer.elapsedSeconds();
        ++stats_.hits;
      }
      if (trace::Recorder::enabled()) {
        trace::Recorder::instance().bumpCounter(
            "cache_hits", trace::kNoDevice, trace::now(), 1);
      }
      return program;
    } catch (const common::Error& e) {
      // Corrupted or version-mismatched entry: rebuild below.
      LOG_WARN("kernel cache entry unusable (" << e.what()
                                               << "); rebuilding");
    }
  }

  trace::ScopedHostSpan span(trace::HostKind::Build, "kernel_cache.build",
                             trace::kNoDevice, source.size());
  common::Stopwatch timer;
  ocl::Program program = context.createProgram(source);
  program.build(options);
  {
    std::lock_guard lock(statsMutex_);
    stats_.buildSeconds += timer.elapsedSeconds();
    ++stats_.misses;
  }
  if (trace::Recorder::enabled()) {
    trace::Recorder::instance().bumpCounter(
        "cache_misses", trace::kNoDevice, trace::now(), 1);
  }

  if (enabled_) {
    try {
      common::writeFile(path, sealEntry(program.binary()));
    } catch (const common::IoError& e) {
      LOG_WARN("cannot store kernel cache entry: " << e.what());
    }
  }
  return program;
}

void KernelCache::clear() {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".clcbin") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

} // namespace skelcl
