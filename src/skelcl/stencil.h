// The Stencil skeleton: out-of-place neighborhood computation over a 1D
// sequence or a row-major 2D grid,
//
//   stencil f [x0, ..., xn-1] = [f(w0), ..., f(wn-1)]
//
// where wi is the (2*radius+1)-wide window (or square, in 2D) centered
// on xi, with out-of-range cells resolved by a boundary policy. The
// customizing function receives a pointer to its window's *first* cell
// in a halo-padded buffer — center at offset `radius` — plus the padded
// row stride in 2D:
//
//   1D:  float f(__global const float* w)            // center w[R]
//   2D:  float f(__global const float* w, uint s)    // center w[R*s+R]
//
// Under the block distribution each device computes its rows after
// exchanging `radius` halo rows with its neighbors via peer buffer
// copies; the interior rows never wait for a halo, so the exchange
// overlaps interior compute (detail/irregular.cpp documents the event
// DAG). Invocation is lazy like every other skeleton, but the root is
// opaque to fusion — producers feeding a stencil materialize first.
//
// There is deliberately no explicit-output (in-place) form: a stencil
// reads each input cell from several work-items, so writing the result
// over the input would mix old and new neighborhoods.
#pragma once

#include <string>

#include "skelcl/arguments.h"
#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

/// Out-of-range resolution: clamp to the nearest edge cell, wrap around
/// (torus), or substitute a constant fill value.
enum class Boundary { Clamp, Wrap, Constant };

/// Window geometry. `width` > 0 interprets the input as a row-major 2D
/// grid with that row length (the vector size must divide evenly);
/// 0 keeps the 1D interpretation.
struct StencilShape {
  std::size_t radius = 1;
  Boundary boundary = Boundary::Clamp;
  std::size_t width = 0;
};

template <typename T>
class Stencil {
public:
  Stencil(std::string source, StencilShape shape, T constantValue = T{})
      : source_(std::move(source)),
        funcName_(detail::userFunctionName(source_)),
        shape_(shape) {
    if (shape_.radius == 0) {
      throw common::InvalidArgument("Stencil radius must be at least 1");
    }
    if (shape_.boundary == Boundary::Constant) {
      constArg_.push(constantValue);
    }
  }

  Stencil(std::string source, std::size_t radius,
          Boundary boundary = Boundary::Clamp, T constantValue = T{})
      : Stencil(std::move(source),
                StencilShape{radius, boundary, 0}, constantValue) {}

  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  Vector<T> operator()(const Vector<T>& input) {
    return (*this)(input, Arguments{});
  }

  Vector<T> operator()(const Vector<T>& input, const Arguments& args) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Stencil",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    validate(input.size());

    auto node = detail::makeExprNode(
        detail::ExprNode::Op::Stencil, source_, funcName_, args,
        workGroupSize_, {input.stateHandle()}, typeName<T>(), sizeof(T),
        input.size());
    auto params = std::make_shared<detail::StencilParams>();
    params->radius = shape_.radius;
    params->boundary = static_cast<int>(shape_.boundary);
    params->width = shape_.width;
    params->constArg = constArg_;
    node->stencil = std::move(params);

    Vector<T> output;
    if (detail::deferrable(args)) {
      detail::deferNode(node, output.stateHandle());
    } else {
      detail::evaluateNodeInto(node, output.stateHandle());
    }
    return output;
  }

private:
  void validate(std::size_t n) const {
    if (shape_.width > 0 && n % shape_.width != 0) {
      throw common::InvalidArgument(
          "Stencil input of " + std::to_string(n) +
          " element(s) is not a whole number of rows of width " +
          std::to_string(shape_.width));
    }
    if (n == 0 || shape_.boundary != Boundary::Wrap) {
      return;
    }
    // Wrap shifts indices by one period; a grid narrower than the
    // radius would need multiple wraps per cell.
    const std::size_t rows = shape_.width > 0 ? n / shape_.width : n;
    if (rows < shape_.radius ||
        (shape_.width > 0 && shape_.width < shape_.radius)) {
      throw common::InvalidArgument(
          "Stencil wrap boundary needs every grid extent >= radius " +
          std::to_string(shape_.radius));
    }
  }

  std::string source_;
  std::string funcName_;
  StencilShape shape_;
  Arguments constArg_;
  std::size_t workGroupSize_ = 0;
};

} // namespace skelcl
