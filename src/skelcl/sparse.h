// Sparse containers and the SparseGather skeleton for irregular
// workloads. A CsrMatrix holds an immutable compressed-sparse-row
// matrix; SparseGather is a gather-apply-scatter primitive over it:
//
//   out[i] = fold combine identity
//              [ gather(values[k], x[colIdx[k]]) | k in row i ]
//
// With gather = multiply and combine = plus this is SpMV; with gather =
// "x[j] saturating-plus 1" and combine = min it expands a BFS frontier;
// a PageRank iteration is SpMV over pre-scaled values followed by a Map
// (see examples/). Both customizing functions are binary OpenCL-C
// functions; `identityExpr` is the fold's start value, e.g. "0.0f":
//
//   SparseGather<float> spmv(
//       "float g(float a, float xj) { return a * xj; }",
//       "float c(float a, float b) { return a + b; }", "0.0f");
//
// Rows are block-partitioned across the devices with the runtime's
// current block weights (SKELCL_WEIGHTS=measured shapes sparse chunks
// like dense ones); the dense operand is replicated, so a gather can
// touch any column without inter-device traffic. One work-item folds
// one row — empty rows yield the identity, duplicate column entries
// simply contribute once per entry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "skelcl/arguments.h"
#include "skelcl/detail/csr_state.h"
#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

/// Typed device-side CSR state (see detail/csr_state.h for the chunk
/// geometry contract).
template <typename T>
class CsrState : public detail::CsrStateBase {
public:
  CsrState(std::size_t rows, std::size_t cols,
           std::vector<std::uint32_t> rowPtr,
           std::vector<std::uint32_t> colIdx, std::vector<T> values)
      : rows_(rows), cols_(cols), rowPtr_(std::move(rowPtr)),
        colIdx_(std::move(colIdx)), values_(std::move(values)) {}

  std::size_t rows() const override { return rows_; }
  std::size_t cols() const override { return cols_; }
  std::size_t nnz() const override { return colIdx_.size(); }
  std::string valueTypeName() const override { return typeName<T>(); }
  std::size_t valueSize() const override { return sizeof(T); }
  const std::vector<detail::CsrChunk>& chunks() const override {
    return chunks_;
  }

  void ensureOnDevices() override {
    if (!chunks_.empty()) {
      return;
    }
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    const std::vector<std::size_t> share = runtime.blockPartition(rows_);
    try {
      std::size_t row = 0;
      for (std::size_t d = 0; d < share.size(); ++d) {
        detail::CsrChunk chunk;
        chunk.deviceIndex = d;
        chunk.rowBegin = row;
        chunk.rowCount = share[d];
        chunk.nnzBegin = rowPtr_[row];
        chunk.nnzCount = rowPtr_[row + share[d]] - chunk.nnzBegin;
        row += share[d];

        const auto& device = runtime.devices()[d];
        auto& queue = runtime.queue(d);
        const std::size_t ptrBytes =
            (chunk.rowCount + 1) * sizeof(std::uint32_t);
        chunk.rowPtr = runtime.context().createBuffer(device, ptrBytes);
        chunk.colIdx = runtime.context().createBuffer(
            device, std::max<std::size_t>(
                        1, chunk.nnzCount * sizeof(std::uint32_t)));
        chunk.values = runtime.context().createBuffer(
            device,
            std::max<std::size_t>(1, chunk.nnzCount * sizeof(T)));
        // The three uploads chain on the H2D engine; the last event is
        // the chunk's single ready event.
        ocl::Event w = queue.enqueueWriteBuffer(
            chunk.rowPtr, 0, ptrBytes, rowPtr_.data() + chunk.rowBegin);
        if (chunk.nnzCount > 0) {
          w = queue.enqueueWriteBuffer(
              chunk.colIdx, 0, chunk.nnzCount * sizeof(std::uint32_t),
              colIdx_.data() + chunk.nnzBegin, {w});
          w = queue.enqueueWriteBuffer(
              chunk.values, 0, chunk.nnzCount * sizeof(T),
              values_.data() + chunk.nnzBegin, {w});
        }
        chunk.ready = std::move(w);
        chunks_.push_back(std::move(chunk));
      }
    } catch (ocl::ClError& e) {
      // Failure atomicity: drop every chunk so a later retry re-uploads
      // from the intact host arrays.
      chunks_.clear();
      e.prependContext("CSR upload of " + std::to_string(nnz()) +
                       " nonzero(s)");
      throw;
    }
  }

  const std::vector<std::uint32_t>& rowPtr() const { return rowPtr_; }
  const std::vector<std::uint32_t>& colIdx() const { return colIdx_; }
  const std::vector<T>& values() const { return values_; }

private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint32_t> rowPtr_;
  std::vector<std::uint32_t> colIdx_;
  std::vector<T> values_;
  std::vector<detail::CsrChunk> chunks_;
};

/// Immutable CSR matrix handle (cheap to copy — shared state). The
/// constructor validates the structure up front so device code can index
/// unchecked; duplicate columns within a row are legal.
template <typename T>
class CsrMatrix {
public:
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::uint32_t> rowPtr,
            std::vector<std::uint32_t> colIdx, std::vector<T> values) {
    if (rowPtr.size() != rows + 1) {
      throw common::InvalidArgument(
          "CsrMatrix rowPtr has " + std::to_string(rowPtr.size()) +
          " entries; want rows + 1 = " + std::to_string(rows + 1));
    }
    if (!rowPtr.empty() && rowPtr.front() != 0) {
      throw common::InvalidArgument("CsrMatrix rowPtr must start at 0");
    }
    for (std::size_t i = 0; i + 1 < rowPtr.size(); ++i) {
      if (rowPtr[i] > rowPtr[i + 1]) {
        throw common::InvalidArgument(
            "CsrMatrix rowPtr decreases at row " + std::to_string(i));
      }
    }
    if (rowPtr.back() != colIdx.size() || values.size() != colIdx.size()) {
      throw common::InvalidArgument(
          "CsrMatrix index/value arrays disagree: rowPtr ends at " +
          std::to_string(rowPtr.back()) + ", " +
          std::to_string(colIdx.size()) + " column(s), " +
          std::to_string(values.size()) + " value(s)");
    }
    for (std::uint32_t col : colIdx) {
      if (col >= cols) {
        throw common::InvalidArgument(
            "CsrMatrix column index " + std::to_string(col) +
            " out of range for " + std::to_string(cols) + " column(s)");
      }
    }
    // Kernels index rows/nonzeros with uint.
    if (rows > 0xFFFFFFFFull || cols > 0xFFFFFFFFull) {
      throw common::InvalidArgument("CsrMatrix dimensions exceed 2^32");
    }
    state_ = std::make_shared<CsrState<T>>(rows, cols, std::move(rowPtr),
                                           std::move(colIdx),
                                           std::move(values));
  }

  std::size_t rows() const { return state_->rows(); }
  std::size_t cols() const { return state_->cols(); }
  std::size_t nnz() const { return state_->nnz(); }

  CsrState<T>& state() const { return *state_; }
  const std::shared_ptr<CsrState<T>>& stateHandle() const { return state_; }

private:
  std::shared_ptr<CsrState<T>> state_;
};

template <typename T>
class SparseGather {
public:
  /// `gatherSource`: binary function (matrix value, gathered operand
  /// element); `combineSource`: associative binary fold; `identityExpr`:
  /// OpenCL-C expression for the fold's start value.
  SparseGather(std::string gatherSource, std::string combineSource,
               std::string identityExpr)
      : gatherName_(detail::userFunctionName(gatherSource)),
        combineName_(detail::userFunctionName(combineSource)),
        source_(std::move(gatherSource) + "\n" + std::move(combineSource)),
        identity_(std::move(identityExpr)) {}

  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  Vector<T> operator()(const CsrMatrix<T>& matrix, const Vector<T>& x,
                       const Arguments& args = Arguments{}) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "SparseGather",
                               trace::kNoDevice, matrix.nnz());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    if (x.size() != matrix.cols()) {
      throw common::InvalidArgument(
          "SparseGather operand has " + std::to_string(x.size()) +
          " element(s); matrix has " + std::to_string(matrix.cols()) +
          " column(s)");
    }
    // Upload eagerly: faults surface at the call site, and the row
    // partition is fixed before any deferred evaluation observes it.
    matrix.state().ensureOnDevices();

    auto node = detail::makeExprNode(
        detail::ExprNode::Op::SparseGather, source_, gatherName_, args,
        workGroupSize_, {x.stateHandle()}, typeName<T>(), sizeof(T),
        matrix.rows(), identity_);
    auto params = std::make_shared<detail::SparseParams>();
    params->csr = matrix.stateHandle();
    params->combineName = combineName_;
    node->sparse = std::move(params);

    Vector<T> output;
    if (detail::deferrable(args)) {
      detail::deferNode(node, output.stateHandle());
    } else {
      detail::evaluateNodeInto(node, output.stateHandle());
    }
    return output;
  }

private:
  std::string gatherName_;
  std::string combineName_;
  std::string source_;
  std::string identity_;
  std::size_t workGroupSize_ = 0;
};

} // namespace skelcl
