// On-disk kernel cache (paper, Sec. III-B):
//
//   "Compiling the source code every time from source is a time-consuming
//    task [...] Therefore, SkelCL saves already compiled kernels on disk.
//    They can be loaded later if the same kernel is used again."
//
// Entries are keyed by the SHA-256 of the kernel source, the bytecode
// format version, and the build options (optimization level): bumping the
// format or changing the options makes old entries unfindable, and a
// version check in the deserializer rejects stale or hand-patched files
// that are found anyway, falling back to a rebuild. On-disk blobs are
// additionally wrapped in an integrity envelope (magic, payload length,
// FNV-1a64 digest), so a truncated or bit-flipped entry is detected up
// front and silently rebuilt instead of reaching the deserializer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "ocl/ocl.h"

namespace skelcl {

/// Build options every skeleton passes by default: full bytecode
/// optimization (see clc/opt.h).
inline constexpr const char* kDefaultBuildOptions = "-cl-opt-level=2";

class KernelCache {
public:
  /// Version of the cache *keying scheme* (the entry filename layout),
  /// distinct from the bytecode serialization version inside the entry.
  /// v2: keys additionally fold in a caller salt — the fusion flag and
  /// the fused-function composition — so a fused kernel can never
  /// resolve to an entry built for a different composition (or by a
  /// pre-fusion library version).
  static constexpr unsigned kKeySchemaVersion = 2;

  /// `directory`: cache location; empty selects $SKELCL_CACHE_DIR or
  /// $HOME/.skelcl/cache (created on first store).
  explicit KernelCache(std::string directory = "");

  /// Returns a *built* program for `source`: loaded from disk when a
  /// valid entry exists, compiled with `options` (and stored) otherwise.
  /// `salt` joins the key without joining the compile: callers use it to
  /// separate entries whose sources could collide across configurations
  /// (fusion on/off, fused composition).
  ocl::Program getOrBuild(const ocl::Context& context,
                          const std::string& source,
                          const std::string& options = kDefaultBuildOptions,
                          const std::string& salt = "");

  void setEnabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }
  const std::string& directory() const noexcept { return directory_; }

  /// Removes every cache entry in the directory.
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double loadSeconds = 0;  // time spent loading cached binaries
    double buildSeconds = 0; // time spent building from source

    /// What happened between two snapshots (`later - earlier`); the
    /// scoped-accounting primitive per-tenant bench scenarios use so
    /// back-to-back runs don't bleed into each other.
    friend Stats operator-(const Stats& later, const Stats& earlier) {
      Stats delta;
      delta.hits = later.hits - earlier.hits;
      delta.misses = later.misses - earlier.misses;
      delta.loadSeconds = later.loadSeconds - earlier.loadSeconds;
      delta.buildSeconds = later.buildSeconds - earlier.buildSeconds;
      return delta;
    }
  };
  /// Snapshot: getOrBuild may run concurrently from the async
  /// scheduler's prepare workers, so counters live under a mutex and
  /// callers get a copy.
  Stats stats() const {
    std::lock_guard lock(statsMutex_);
    return stats_;
  }
  void resetStats() {
    std::lock_guard lock(statsMutex_);
    stats_ = Stats{};
  }

private:
  std::string entryPath(const std::string& source,
                        const std::string& options,
                        const std::string& salt) const;

  std::string directory_;
  bool enabled_ = true;
  mutable std::mutex statsMutex_;
  Stats stats_;
};

} // namespace skelcl
