// SkelCL — umbrella header.
//
// A reproduction of the library from:
//   M. Steuwer, P. Kegel, S. Gorlatch,
//   "SkelCL — A Portable Skeleton Library for High-Level GPU
//    Programming", IPDPS 2011.
//
// Quick start (paper Listing 1):
//
//   skelcl::init();
//   skelcl::Reduce<float> sum("float sum(float x,float y){return x+y;}");
//   skelcl::Zip<float> mult("float mult(float x,float y){return x*y;}");
//   skelcl::Vector<float> A(a_ptr, n), B(b_ptr, n);
//   skelcl::Scalar<float> C = sum(mult(A, B));
//   float c = C.getValue();
//
// The namespace alias `SkelCL` matches the paper's spelling.
#pragma once

#include "skelcl/arguments.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/distribution.h"
#include "skelcl/error.h"
#include "skelcl/index_vector.h"
#include "skelcl/kernel_cache.h"
#include "skelcl/map.h"
#include "skelcl/map_reduce.h"
#include "skelcl/reduce.h"
#include "skelcl/scalar.h"
#include "skelcl/scan.h"
#include "skelcl/sparse.h"
#include "skelcl/stencil.h"
#include "skelcl/type_name.h"
#include "skelcl/vector.h"
#include "skelcl/zip.h"

namespace SkelCL = skelcl;
