// IndexVector — a convenience container of [0, n) indices.
//
// The list-mode OSEM implementation maps over "a vector of 512 indices"
// referring to disjoint sub-subsets of events (paper Sec. IV-B). Later
// SkelCL publications promoted this pattern into a first-class index
// container; this reproduction provides it as a thin helper.
#pragma once

#include <numeric>

#include "skelcl/vector.h"

namespace skelcl {

/// Builds a Vector<int> holding 0, 1, ..., n-1.
inline Vector<int> indexVector(std::size_t n) {
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  return Vector<int>(std::move(indices));
}

} // namespace skelcl
