// Typed SkelCL-level errors. The OpenCL layer throws ocl::ClError
// subtypes for device-side failures; the errors here are *usage* errors
// the library detects before anything reaches a device, carrying the
// offending values so callers can recover programmatically instead of
// parsing message strings.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"
#include "skelcl/distribution.h"

namespace skelcl {

/// Zip requires equally sized operands (paper Eq. 2 zips element-wise;
/// there is no meaningful result for the unmatched tail). Thrown before
/// any transfer or launch; names both sizes and both distributions. A
/// mere distribution mismatch is NOT an error — Zip redistributes the
/// right operand to match the left automatically.
class ZipSizeMismatch : public common::InvalidArgument {
public:
  ZipSizeMismatch(std::size_t leftSize, std::size_t rightSize,
                  Distribution leftDistribution,
                  Distribution rightDistribution)
      : common::InvalidArgument(
            "Zip size mismatch: left operand has " +
            std::to_string(leftSize) + " element(s) (" +
            distributionName(leftDistribution) +
            " distribution), right operand has " +
            std::to_string(rightSize) + " element(s) (" +
            distributionName(rightDistribution) + " distribution)"),
        leftSize_(leftSize),
        rightSize_(rightSize),
        leftDistribution_(leftDistribution),
        rightDistribution_(rightDistribution) {}

  std::size_t leftSize() const noexcept { return leftSize_; }
  std::size_t rightSize() const noexcept { return rightSize_; }
  Distribution leftDistribution() const noexcept {
    return leftDistribution_;
  }
  Distribution rightDistribution() const noexcept {
    return rightDistribution_;
  }

private:
  std::size_t leftSize_;
  std::size_t rightSize_;
  Distribution leftDistribution_;
  Distribution rightDistribution_;
};

} // namespace skelcl
