// Vector data distributions across the devices of a multi-GPU system
// (paper, Sec. III-D): a vector is either on one device (single), fully
// copied to every device (copy), or evenly divided into one part per
// device (block).
#pragma once

namespace skelcl {

enum class Distribution {
  Single, // whole vector on one device (the default before any setting)
  Copy,   // full copy on every device
  Block,  // contiguous, evenly sized part per device
};

const char* distributionName(Distribution d) noexcept;

} // namespace skelcl
