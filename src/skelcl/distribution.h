// Vector data distributions across the devices of a multi-GPU system
// (paper, Sec. III-D): a vector is either on one device (single), fully
// copied to every device (copy), or divided into one contiguous part per
// device (block).
//
// The paper assumes identical devices and splits block-distributed
// vectors evenly. On heterogeneous platforms (SKELCL_DEVICES) block
// parts are instead sized proportionally to per-device *weights*; the
// WeightMode selects where the weights come from. Partition math lives
// in detail/partition.h (deterministic largest-remainder); with Even
// weights it reproduces the historical even split bit-for-bit.
#pragma once

namespace skelcl {

enum class Distribution {
  Single, // whole vector on one device (the default before any setting)
  Copy,   // full copy on every device
  Block,  // contiguous, weight-proportional part per device
};

const char* distributionName(Distribution d) noexcept;

/// How block-distribution weights are derived (SKELCL_WEIGHTS).
enum class WeightMode {
  Even,     // equal weights — the paper's even split (default)
  Static,   // DeviceSpec peak compute throughput (CUs x PEs x clock)
  Measured, // observed cycles-per-busy-ns from the live load monitor,
            // applied at the next (re)distribution; falls back to Even
            // until every device has executed at least one kernel
};

const char* weightModeName(WeightMode m) noexcept;

} // namespace skelcl
