// skelcl::Arguments — additional skeleton arguments (paper Sec. III-C).
//
// "SkelCL allows the user to pass an arbitrary number of arguments to the
//  function called inside of a skeleton. [...] The arguments will be
//  passed to the skeleton in the same order in which they are added to
//  the Arguments object."
//
// Scalars, registered structs, and whole Vectors can be pushed. A pushed
// Vector arrives in the kernel as a __global pointer to the portion that
// lives on the executing device (its full copy under the copy
// distribution, its block under the block distribution). pushSizeOf()
// passes that portion's element count as a uint.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "skelcl/vector.h"

namespace skelcl {

class Arguments {
public:
  std::size_t count() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Scalar or registered-struct argument.
  template <typename T>
  void push(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Entry entry;
    entry.typeName = typeName<T>();
    if constexpr (std::is_arithmetic_v<T>) {
      entry.kind = Kind::Scalar;
      entry.scalarTag = scalarTagFor<T>();
      entry.bytes.resize(sizeof(T));
      std::memcpy(entry.bytes.data(), &value, sizeof(T));
    } else {
      entry.kind = Kind::Struct;
      entry.bytes.resize(sizeof(T));
      std::memcpy(entry.bytes.data(), &value, sizeof(T));
    }
    entries_.push_back(std::move(entry));
  }

  /// Vector argument: the kernel sees "__global T* argN".
  template <typename T>
  void push(const Vector<T>& vector) {
    Entry entry;
    entry.kind = Kind::VectorArg;
    entry.typeName = typeName<T>();
    entry.vector = vector.stateHandle();
    entries_.push_back(std::move(entry));
  }

  /// Per-device element count of a previously conceived vector argument:
  /// the kernel sees "uint argN" holding the executing device's portion
  /// size. (With a block distribution the devices' counts differ, so a
  /// plain scalar size would be wrong on all but one device.)
  template <typename T>
  void pushSizeOf(const Vector<T>& vector) {
    Entry entry;
    entry.kind = Kind::VectorSize;
    entry.typeName = "uint";
    entry.vector = vector.stateHandle();
    entries_.push_back(std::move(entry));
  }

  // --- used by the skeleton implementations -------------------------------

  /// True when any entry references a Vector (as pointer or size). Such
  /// argument lists pin a skeleton call to eager evaluation: the call's
  /// result depends on (and may mutate) external state that later host
  /// code is free to change.
  bool hasVectorEntries() const noexcept {
    for (const Entry& e : entries_) {
      if (e.vector != nullptr) {
        return true;
      }
    }
    return false;
  }

  /// ", float a3, __global Event* a4, uint a5" — appended to the
  /// generated kernel's parameter list. `prefix` disambiguates the
  /// argument names of multiple fused stages sharing one kernel.
  std::string declSuffix(const std::string& prefix = "") const {
    std::string out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out += ", ";
      if (e.kind == Kind::VectorArg) {
        out += "__global " + e.typeName + "* ";
      } else {
        out += e.typeName + " ";
      }
      out += argName(i, prefix);
    }
    return out;
  }

  /// ", a3, a4, a5" — appended to the user-function call.
  std::string callSuffix(const std::string& prefix = "") const {
    std::string out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += ", " + argName(i, prefix);
    }
    return out;
  }

  /// Uploads every vector argument according to its distribution. Lazy
  /// skeletons still reading an argument vector are forced first: the
  /// upcoming launch may overwrite any __global pointer it is handed, so
  /// deferred readers must snapshot the pre-launch values.
  void prepare() const {
    for (const Entry& e : entries_) {
      if (e.vector != nullptr) {
        e.vector->forceConsumers();
        e.vector->ensureOnDevices();
      }
    }
  }

  /// Appends the ready events of every vector argument's chunk on
  /// `deviceIndex` to `deps`, so a skeleton launch that binds them waits
  /// for their uploads without a finish(). Arguments without data on the
  /// device (e.g. index vectors under other distributions) contribute
  /// nothing.
  void collectDeps(std::vector<ocl::Event>& deps,
                   std::size_t deviceIndex) const {
    for (const Entry& e : entries_) {
      if (e.kind == Kind::VectorArg && e.vector != nullptr) {
        ocl::Event ready = e.vector->readyEventOn(deviceIndex);
        if (ready.valid()) {
          deps.push_back(std::move(ready));
        }
      }
    }
  }

  /// Records `event` as the last writer of every vector argument's chunk
  /// on `deviceIndex`. Conservative: a kernel may write any __global
  /// pointer it was handed, so all vector arguments are treated as
  /// potentially modified — later consumers then order after the launch.
  void recordEvent(const ocl::Event& event, std::size_t deviceIndex) const {
    for (const Entry& e : entries_) {
      if (e.kind == Kind::VectorArg && e.vector != nullptr) {
        e.vector->recordEventOn(deviceIndex, event);
      }
    }
  }

  /// Binds the extra arguments to a kernel for one device's launch.
  void apply(ocl::Kernel& kernel, std::size_t firstIndex,
             std::size_t deviceIndex) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const std::size_t at = firstIndex + i;
      switch (e.kind) {
        case Kind::Scalar:
          applyScalar(kernel, at, e);
          break;
        case Kind::Struct:
          kernel.setArgBytes(at, e.bytes.data(), e.bytes.size());
          break;
        case Kind::VectorArg:
          kernel.setArg(at, bufferCast(e, deviceIndex));
          break;
        case Kind::VectorSize:
          kernel.setArg(
              at, std::uint32_t(e.vector->chunkForDevice(deviceIndex).count));
          break;
      }
    }
  }

private:
  enum class Kind { Scalar, Struct, VectorArg, VectorSize };
  enum class ScalarTag { F32, F64, I32, U32, I64, U64 };

  struct Entry {
    Kind kind = Kind::Scalar;
    ScalarTag scalarTag = ScalarTag::I32;
    std::string typeName;
    std::vector<std::uint8_t> bytes;
    std::shared_ptr<detail::VectorStateBase> vector;
  };

  static std::string argName(std::size_t i, const std::string& prefix = "") {
    return "skelcl_" + prefix + "arg" + std::to_string(i);
  }

  template <typename T>
  static ScalarTag scalarTagFor() {
    if constexpr (std::is_same_v<T, float>) return ScalarTag::F32;
    else if constexpr (std::is_same_v<T, double>) return ScalarTag::F64;
    else if constexpr (std::is_signed_v<T> && sizeof(T) <= 4) return ScalarTag::I32;
    else if constexpr (!std::is_signed_v<T> && sizeof(T) <= 4) return ScalarTag::U32;
    else if constexpr (std::is_signed_v<T>) return ScalarTag::I64;
    else return ScalarTag::U64;
  }

  static ocl::Buffer bufferCast(const Entry& e, std::size_t deviceIndex) {
    return e.vector->chunkForDevice(deviceIndex).buffer;
  }

  static void applyScalar(ocl::Kernel& kernel, std::size_t at,
                          const Entry& e) {
    switch (e.scalarTag) {
      case ScalarTag::F32: {
        float v;
        std::memcpy(&v, e.bytes.data(), 4);
        kernel.setArg(at, v);
        break;
      }
      case ScalarTag::F64: {
        double v;
        std::memcpy(&v, e.bytes.data(), 8);
        kernel.setArg(at, v);
        break;
      }
      case ScalarTag::I32: {
        std::int32_t v = 0;
        std::memcpy(&v, e.bytes.data(), std::min<std::size_t>(4, e.bytes.size()));
        if (e.bytes.size() == 1) v = std::int8_t(e.bytes[0]);
        if (e.bytes.size() == 2) {
          std::int16_t s;
          std::memcpy(&s, e.bytes.data(), 2);
          v = s;
        }
        kernel.setArg(at, v);
        break;
      }
      case ScalarTag::U32: {
        std::uint32_t v = 0;
        std::memcpy(&v, e.bytes.data(), std::min<std::size_t>(4, e.bytes.size()));
        kernel.setArg(at, v);
        break;
      }
      case ScalarTag::I64: {
        std::int64_t v;
        std::memcpy(&v, e.bytes.data(), 8);
        kernel.setArg(at, v);
        break;
      }
      case ScalarTag::U64: {
        std::uint64_t v;
        std::memcpy(&v, e.bytes.data(), 8);
        kernel.setArg(at, v);
        break;
      }
    }
  }

  std::vector<Entry> entries_;
};

} // namespace skelcl
