// skelcl::Scalar<T> — the result of a Reduce skeleton (paper Listing 1):
//
//   SkelCL::Scalar<float> C = sum( mult( A, B ) );
//   float c = C.getValue();
//
// The value stays on the device until getValue() forces the download —
// the same lazy-copying rule Vector follows. The wrapped chunk carries
// the reduction's completion event, so the skeleton call itself never
// blocks: chained skeletons keep enqueueing while earlier reductions are
// still in flight, and only getValue() waits (on the event-ordered
// download) — the true consumption point.
//
// getValue() is therefore a future: under the async task-graph scheduler
// it first drains every outstanding skeleton job (so independent chains
// pipeline on the devices), then blocks only on its own subgraph's
// completion. If this reduction failed during an asynchronous dispatch,
// getValue() rethrows the original typed error; other jobs' results are
// unaffected.
#pragma once

#include "skelcl/vector.h"

namespace skelcl {

template <typename T>
class Scalar {
public:
  Scalar() = default;

  /// Wraps a one-element vector whose data lives on a device.
  explicit Scalar(Vector<T> holder) : holder_(std::move(holder)) {
    COMMON_EXPECTS(holder_.size() == 1,
                   "Scalar requires a one-element vector");
  }

  /// Wraps a host-side value — no device involved. Reduce/MapReduce of
  /// an empty vector return their identity this way instead of
  /// launching anything.
  explicit Scalar(const T& value) : holder_(std::vector<T>{value}) {}

  /// Downloads (if necessary) and returns the value.
  T getValue() const { return holder_[0]; }

  operator T() const { return getValue(); } // NOLINT(google-explicit-*)

private:
  Vector<T> holder_;
};

} // namespace skelcl
