// Asynchronous task-graph scheduler over the lazy expression DAG
// (ROADMAP: "concurrent evaluation of independent skeleton jobs").
//
// Every deferred skeleton call registers its root node here; the first
// true consumption point (a host read, Scalar::getValue, an explicit
// redistribution) then *drains* the registry: every outstanding
// independent job's commands are enqueued on the per-device command
// queues before the consumer issues its blocking wait. Two independent
// skeleton chains therefore pipeline on the simulated engines — the
// consumer of chain A no longer serializes chain B behind A's download.
// Jobs downstream of the value being consumed are NOT dispatched (they
// would speculatively evaluate work the synchronous force defers), so
// dependent chains keep their synchronous schedule exactly.
//
// Determinism contract (what the async differential suite asserts):
//  * jobs dispatch in registration order on the *calling* thread, so the
//    enqueue sequence — and with it the virtual-time schedule — is a
//    pure function of the program;
//  * a drain of exactly one job degenerates to the synchronous force:
//    single-job programs keep bit-identical outputs and virtual time
//    under SKELCL_ASYNC=0 and =1;
//  * the only wall-clock parallelism is the *prepare* phase, which warms
//    the generated kernel programs over the shared thread pool — pure
//    host work that never touches the virtual clock; its trace emissions
//    are captured per program and replayed in a deterministic order
//    (trace::Recorder::replay).
//
// Failure isolation: a job that throws during dispatch poisons its own
// output state (VectorStateBase::poisonPending); the error resurfaces as
// the original typed exception at that job's consumption point while
// every other job's result stays intact.
//
// Thread-safety contract for external (cross-thread) submitters: the
// registry belongs to exactly one *owner thread* at a time — the thread
// running the skeleton program. Ownership transfers implicitly when a
// thread defers into an EMPTY registry (a sequential handoff, e.g. the
// job service's dispatcher picking up after init() ran on main), or
// explicitly via adoptCallingThread(). A thread that defers or drains
// while ANOTHER thread's jobs are pending violates the contract — jobs
// dispatch in registration order on the calling thread, so the violator
// would run the victim's jobs on the wrong thread — and gets a typed
// common::Error instead of a silent race. The registry itself is guarded
// by a mutex (the same discipline as Runtime::programFor) so the checks
// and the handoff are race-free; stats() may be read from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace common {
class ThreadPool;
}

namespace skelcl::detail {

class ExprNode;

class Scheduler {
public:
  static Scheduler& instance();

  /// Applies one init() cycle's configuration (SKELCL_ASYNC,
  /// SKELCL_SCHED_THREADS) and clears any leftover registry.
  void configure(bool asyncEnabled, std::size_t threads);

  /// Drops every outstanding job without dispatching it (terminate():
  /// results that can no longer be read are dead code, exactly as under
  /// synchronous evaluation).
  void reset();

  /// Registers a freshly deferred root job. No-op when async is off.
  /// Throws common::Error when called from a thread other than the
  /// current owner while that owner's jobs are pending (see the
  /// thread-safety contract above); an empty registry hands ownership
  /// to the caller instead.
  void noteDeferred(const std::shared_ptr<ExprNode>& node);

  /// Makes the calling thread the registry owner. The handoff
  /// precondition is an empty registry (no other thread's jobs may be
  /// pending); a violation throws common::Error. The job service's
  /// dispatcher calls this before executing a batch submitted by client
  /// threads.
  void adoptCallingThread();

  /// Dispatch suppression for an external driver (the job service): while
  /// a scope is alive, consumption points neither drain nor register new
  /// jobs — the driver forces each job's roots itself, in its own order,
  /// so per-tenant device-time attribution stays exact. Construction
  /// adopts the calling thread (same precondition as
  /// adoptCallingThread()).
  class ExternalDispatchScope {
  public:
    ExternalDispatchScope();
    ~ExternalDispatchScope();
    ExternalDispatchScope(const ExternalDispatchScope&) = delete;
    ExternalDispatchScope& operator=(const ExternalDispatchScope&) = delete;
  };

  /// Whether this init() cycle runs with the async scheduler at all
  /// (SKELCL_ASYNC; off means consumption-ordered evaluation).
  bool asyncEnabled() const noexcept { return asyncEnabled_; }

  /// True when a top-of-stack consumption point should drain() first.
  /// Owner-thread state (draining_) plus a relaxed flag mirror of the
  /// registry, so the check stays one load on the hot path.
  bool shouldDrain() const noexcept {
    return asyncEnabled_ && !draining_ &&
           hasJobs_.load(std::memory_order_relaxed);
  }

  /// Dispatches outstanding root jobs in registration order: filters
  /// dead/absorbed entries, warms the generated programs in parallel,
  /// then enqueues each job's commands. Failures poison the failing
  /// job's output and dispatch continues. `requested` is the node the
  /// consumption point is about to force: a job whose subgraph contains
  /// it (other than the requested job itself) is a *downstream consumer*
  /// of the value being read — it stays queued rather than dispatching,
  /// so reading an intermediate of a dependent chain keeps exactly the
  /// synchronous schedule instead of speculatively evaluating the rest
  /// of the chain.
  void drain(const std::shared_ptr<ExprNode>& requested);

  /// What the scheduler did this init()..terminate() cycle.
  struct Stats {
    std::uint64_t drains = 0;         // non-empty drain() calls
    std::uint64_t jobsDispatched = 0; // root jobs enqueued by drains
    std::uint64_t maxConcurrent = 0;  // most jobs live in one drain
  };
  Stats stats() const {
    std::lock_guard lock(registryMutex_);
    return stats_;
  }

private:
  Scheduler() = default;

  struct PendingJob {
    std::weak_ptr<ExprNode> node;
    std::uint64_t registeredNs = 0; // virtual time of the skeleton call
  };
  struct LiveJob;

  void prepare(const std::vector<LiveJob>& live);
  common::ThreadPool& pool();
  /// Precondition check under registryMutex_: the caller must own the
  /// registry unless it is empty (which transfers ownership). Throws
  /// common::Error naming `op` on a violation.
  void claimOwnershipLocked(const char* op);

  // The registry (jobs_, stats_, owner_) is guarded by registryMutex_ so
  // cross-thread handoffs are race-free and violations are detectable
  // rather than UB; draining_ is owner-thread-only state and hasJobs_
  // mirrors jobs_.empty() for the lock-free shouldDrain() fast path.
  bool asyncEnabled_ = false;
  bool draining_ = false;
  std::size_t threads_ = 0;
  mutable std::mutex registryMutex_;
  std::thread::id owner_;
  std::atomic<bool> hasJobs_{false};
  std::vector<PendingJob> jobs_;
  Stats stats_;
  std::unique_ptr<common::ThreadPool> pool_;
};

} // namespace skelcl::detail
