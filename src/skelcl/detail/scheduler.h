// Asynchronous task-graph scheduler over the lazy expression DAG
// (ROADMAP: "concurrent evaluation of independent skeleton jobs").
//
// Every deferred skeleton call registers its root node here; the first
// true consumption point (a host read, Scalar::getValue, an explicit
// redistribution) then *drains* the registry: every outstanding
// independent job's commands are enqueued on the per-device command
// queues before the consumer issues its blocking wait. Two independent
// skeleton chains therefore pipeline on the simulated engines — the
// consumer of chain A no longer serializes chain B behind A's download.
// Jobs downstream of the value being consumed are NOT dispatched (they
// would speculatively evaluate work the synchronous force defers), so
// dependent chains keep their synchronous schedule exactly.
//
// Determinism contract (what the async differential suite asserts):
//  * jobs dispatch in registration order on the *calling* thread, so the
//    enqueue sequence — and with it the virtual-time schedule — is a
//    pure function of the program;
//  * a drain of exactly one job degenerates to the synchronous force:
//    single-job programs keep bit-identical outputs and virtual time
//    under SKELCL_ASYNC=0 and =1;
//  * the only wall-clock parallelism is the *prepare* phase, which warms
//    the generated kernel programs over the shared thread pool — pure
//    host work that never touches the virtual clock; its trace emissions
//    are captured per program and replayed in a deterministic order
//    (trace::Recorder::replay).
//
// Failure isolation: a job that throws during dispatch poisons its own
// output state (VectorStateBase::poisonPending); the error resurfaces as
// the original typed exception at that job's consumption point while
// every other job's result stays intact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace common {
class ThreadPool;
}

namespace skelcl::detail {

class ExprNode;

class Scheduler {
public:
  static Scheduler& instance();

  /// Applies one init() cycle's configuration (SKELCL_ASYNC,
  /// SKELCL_SCHED_THREADS) and clears any leftover registry.
  void configure(bool asyncEnabled, std::size_t threads);

  /// Drops every outstanding job without dispatching it (terminate():
  /// results that can no longer be read are dead code, exactly as under
  /// synchronous evaluation).
  void reset();

  /// Registers a freshly deferred root job. No-op when async is off.
  void noteDeferred(const std::shared_ptr<ExprNode>& node);

  /// True when a top-of-stack consumption point should drain() first.
  bool shouldDrain() const noexcept {
    return asyncEnabled_ && !draining_ && !jobs_.empty();
  }

  /// Dispatches outstanding root jobs in registration order: filters
  /// dead/absorbed entries, warms the generated programs in parallel,
  /// then enqueues each job's commands. Failures poison the failing
  /// job's output and dispatch continues. `requested` is the node the
  /// consumption point is about to force: a job whose subgraph contains
  /// it (other than the requested job itself) is a *downstream consumer*
  /// of the value being read — it stays queued rather than dispatching,
  /// so reading an intermediate of a dependent chain keeps exactly the
  /// synchronous schedule instead of speculatively evaluating the rest
  /// of the chain.
  void drain(const std::shared_ptr<ExprNode>& requested);

  /// What the scheduler did this init()..terminate() cycle.
  struct Stats {
    std::uint64_t drains = 0;         // non-empty drain() calls
    std::uint64_t jobsDispatched = 0; // root jobs enqueued by drains
    std::uint64_t maxConcurrent = 0;  // most jobs live in one drain
  };
  Stats stats() const noexcept { return stats_; }

private:
  Scheduler() = default;

  struct PendingJob {
    std::weak_ptr<ExprNode> node;
    std::uint64_t registeredNs = 0; // virtual time of the skeleton call
  };
  struct LiveJob;

  void prepare(const std::vector<LiveJob>& live);
  common::ThreadPool& pool();

  // All registry state is confined to the thread running the skeleton
  // program (prepare workers only build programs); no mutex needed.
  bool asyncEnabled_ = false;
  bool draining_ = false;
  std::size_t threads_ = 0;
  std::vector<PendingJob> jobs_;
  Stats stats_;
  std::unique_ptr<common::ThreadPool> pool_;
};

} // namespace skelcl::detail
