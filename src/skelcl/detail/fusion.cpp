#include "skelcl/detail/fusion.h"

#include "skelcl/detail/source_utils.h"

namespace skelcl::detail {

namespace {

/// Transitive absorption stops here. Chains this deep are pathological;
/// the cap bounds generated-source size and the argument list length.
constexpr std::size_t kMaxStages = 16;

const char* opName(ExprNode::Op op) {
  switch (op) {
    case ExprNode::Op::Map: return "Map";
    case ExprNode::Op::Zip: return "Zip";
    case ExprNode::Op::Reduce: return "Reduce";
    case ExprNode::Op::Scan: return "Scan";
    case ExprNode::Op::Stencil: return "Stencil";
    case ExprNode::Op::SparseGather: return "SparseGather";
  }
  return "?";
}

/// True for ops whose generated kernel can evaluate an absorbed child
/// chain inline. Stencil/SparseGather roots read their input through a
/// packed/gathered access pattern the load-splice rewrite cannot
/// express, so they are opaque: children always materialize first.
bool fusableRoot(ExprNode::Op op) {
  return op == ExprNode::Op::Map || op == ExprNode::Op::Zip ||
         op == ExprNode::Op::Reduce || op == ExprNode::Op::Scan;
}

class Emitter {
public:
  Emitter(FusionPlan& plan, bool fusionEnabled, bool rename)
      : plan_(plan), fusionEnabled_(fusionEnabled), rename_(rename) {}

  /// Emits `node` as stage k (= current stage count): splices its
  /// (renamed) functions and argument declarations into the plan, then
  /// recurses into its inputs. Returns the node's value expression at
  /// %IDX% for element-wise ops; Reduce/Scan roots instead deposit
  /// their element-load expression in plan.loadExpr.
  std::string emitStage(const std::shared_ptr<ExprNode>& node) {
    const std::size_t k = plan_.stages.size();
    const std::string fnPrefix =
        rename_ ? "skelcl_f" + std::to_string(k) + "_" : "";
    FusionStage stage;
    stage.node = node;
    stage.argPrefix = rename_ ? "f" + std::to_string(k) + "_" : "";
    stage.funcName = fnPrefix + node->funcName;
    plan_.stages.push_back(stage);
    plan_.functionsSource +=
        renameUserFunctions(node->source, fnPrefix) + "\n";
    plan_.argDecls += node->args.declSuffix(stage.argPrefix);
    names_.push_back(node->funcName);

    std::vector<std::string> loads;
    loads.reserve(node->inputs.size());
    for (const ExprNode::Input& input : node->inputs) {
      loads.push_back(emitLoad(input, node->op));
    }

    switch (node->op) {
      case ExprNode::Op::Map:
        return stage.funcName + "(" + loads[0] +
               node->args.callSuffix(stage.argPrefix) + ")";
      case ExprNode::Op::Zip:
        return stage.funcName + "(" + loads[0] + ", " + loads[1] +
               node->args.callSuffix(stage.argPrefix) + ")";
      case ExprNode::Op::Reduce:
      case ExprNode::Op::Scan:
      case ExprNode::Op::Stencil:
      case ExprNode::Op::SparseGather:
        plan_.rootFuncName = stage.funcName;
        plan_.loadExpr = loads[0];
        return "";
    }
    return "";
  }

  void finish(const std::shared_ptr<ExprNode>& root) {
    if (plan_.stages.size() == 1) {
      plan_.label = opName(root->op);
    } else {
      plan_.label = "Fused(";
      for (std::size_t i = 0; i < names_.size(); ++i) {
        if (i != 0) {
          plan_.label += "∘"; // ∘ — root first: f∘g applies g first
        }
        plan_.label += names_[i];
      }
      plan_.label += ")";
    }
    plan_.compositionKey = opName(root->op);
    for (const FusionStage& stage : plan_.stages) {
      plan_.compositionKey += ";" +
                              std::string(opName(stage.node->op)) + ":" +
                              stage.node->funcName;
    }
    plan_.compositionKey +=
        ";leaves=" + std::to_string(plan_.leaves.size());
  }

private:
  std::string emitLoad(const ExprNode::Input& input, ExprNode::Op parentOp) {
    const std::shared_ptr<ExprNode>& child = input.node;
    const bool deferredChild =
        child != nullptr && !child->evaluated && !child->evaluating;
    const bool absorbable =
        fusionEnabled_ && fusableRoot(parentOp) && deferredChild &&
        (child->op == ExprNode::Op::Map ||
         child->op == ExprNode::Op::Zip) &&
        child->fanout == 1 && plan_.stages.size() < kMaxStages;
    if (absorbable) {
      ++plan_.fusedStages;
      return emitStage(child);
    }
    if (deferredChild) {
      // The child stays a separate launch (rewrites off, non-element-
      // wise, or other readers need its vector anyway).
      plan_.materializeFirst.push_back(child);
    }
    const std::size_t idx = plan_.leaves.size();
    plan_.leaves.push_back(input.state);
    plan_.leafTypes.push_back(input.state->elementTypeName());
    return "skelcl_in" + std::to_string(idx) + "[%IDX%]";
  }

  FusionPlan& plan_;
  bool fusionEnabled_;
  bool rename_;
  std::vector<std::string> names_;
};

FusionPlan emitPlan(const std::shared_ptr<ExprNode>& root,
                    bool fusionEnabled, bool rename) {
  FusionPlan plan;
  Emitter emitter(plan, fusionEnabled, rename);
  const std::string rootExpr = emitter.emitStage(root);
  if (root->op == ExprNode::Op::Map || root->op == ExprNode::Op::Zip) {
    plan.loadExpr = rootExpr;
  }
  emitter.finish(root);
  return plan;
}

} // namespace

FusionPlan buildFusionPlan(const std::shared_ptr<ExprNode>& root,
                           bool fusionEnabled) {
  // Two-pass: emit with capture-safe renaming first; when nothing was
  // absorbed the renaming is pure noise (and would perturb cache keys
  // between "fusion found nothing" and "fusion disabled"), so re-emit
  // the single stage with the names untouched.
  FusionPlan plan = emitPlan(root, fusionEnabled, /*rename=*/true);
  if (plan.fusedStages == 0) {
    plan = emitPlan(root, fusionEnabled, /*rename=*/false);
  }
  return plan;
}

std::string substituteIndex(const std::string& expr,
                            const std::string& idx) {
  static const std::string kPlaceholder = "%IDX%";
  std::string out;
  out.reserve(expr.size());
  std::size_t pos = 0;
  while (pos < expr.size()) {
    const std::size_t found = expr.find(kPlaceholder, pos);
    if (found == std::string::npos) {
      out.append(expr, pos, expr.size() - pos);
      break;
    }
    out.append(expr, pos, found - pos);
    out += idx;
    pos = found + kPlaceholder.size();
  }
  return out;
}

} // namespace skelcl::detail
