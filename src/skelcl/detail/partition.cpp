#include "skelcl/detail/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace skelcl::detail {

std::vector<std::size_t> weightedPartition(
    std::size_t n, const std::vector<double>& weights) {
  const std::size_t devices = weights.size();
  COMMON_EXPECTS(devices > 0, "weightedPartition: no devices");

  std::vector<double> w(devices);
  double total = 0.0;
  for (std::size_t d = 0; d < devices; ++d) {
    const double v = weights[d];
    COMMON_EXPECTS(std::isfinite(v) && v >= 0.0,
                   "weightedPartition: weights must be finite and >= 0");
    w[d] = v;
    total += v;
  }
  if (total <= 0.0) {
    // All-zero weights carry no information; fall back to even.
    std::fill(w.begin(), w.end(), 1.0);
    total = double(devices);
  }

  std::vector<std::size_t> counts(devices, 0);
  std::vector<double> remainder(devices, 0.0);
  std::size_t assigned = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    const double ideal = double(n) * (w[d] / total);
    double floorPart = std::floor(ideal);
    // FP safety: the floor may not exceed what is left to assign.
    floorPart = std::min(floorPart, double(n - assigned));
    counts[d] = std::size_t(floorPart);
    remainder[d] = ideal - floorPart;
    assigned += counts[d];
  }

  // Hand the leftover elements to the largest fractional remainders,
  // lowest device index first on ties — with equal weights every
  // remainder ties, so the first n%D devices get the extra element,
  // exactly the historical even split.
  std::vector<std::size_t> order(devices);
  std::iota(order.begin(), order.end(), std::size_t(0));
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t i = 0; assigned < n; i = (i + 1) % devices) {
    ++counts[order[i]];
    ++assigned;
  }
  return counts;
}

} // namespace skelcl::detail
