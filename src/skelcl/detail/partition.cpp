#include "skelcl/detail/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace skelcl::detail {

std::vector<std::size_t> weightedPartition(
    std::size_t n, const std::vector<double>& weights) {
  const std::size_t devices = weights.size();
  COMMON_EXPECTS(devices > 0, "weightedPartition: no devices");

  std::vector<double> w(devices);
  double total = 0.0;
  for (std::size_t d = 0; d < devices; ++d) {
    const double v = weights[d];
    COMMON_EXPECTS(std::isfinite(v) && v >= 0.0,
                   "weightedPartition: weights must be finite and >= 0");
    w[d] = v;
    total += v;
  }
  if (total <= 0.0) {
    // All-zero weights carry no information; fall back to even.
    std::fill(w.begin(), w.end(), 1.0);
    total = double(devices);
  }

  std::vector<std::size_t> counts(devices, 0);
  std::vector<double> remainder(devices, 0.0);
  std::size_t assigned = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    const double ideal = double(n) * (w[d] / total);
    double floorPart = std::floor(ideal);
    // FP safety: the floor may not exceed what is left to assign.
    floorPart = std::min(floorPart, double(n - assigned));
    counts[d] = std::size_t(floorPart);
    remainder[d] = ideal - floorPart;
    assigned += counts[d];
  }

  // Hand the leftover elements to the largest fractional remainders,
  // lowest device index first on ties — with equal weights every
  // remainder ties, so the first n%D devices get the extra element,
  // exactly the historical even split.
  std::vector<std::size_t> order(devices);
  std::iota(order.begin(), order.end(), std::size_t(0));
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t i = 0; assigned < n; i = (i + 1) % devices) {
    ++counts[order[i]];
    ++assigned;
  }
  return counts;
}

std::vector<std::size_t> nodeBlockPartition(
    std::size_t n, const std::vector<double>& weights,
    const std::vector<std::uint32_t>& nodeOf) {
  const std::size_t devices = weights.size();
  COMMON_EXPECTS(devices > 0, "nodeBlockPartition: no devices");
  COMMON_EXPECTS(nodeOf.empty() || nodeOf.size() == devices,
                 "nodeBlockPartition: nodeOf must be empty or parallel to "
                 "weights");

  // Group devices by node, preserving first-appearance order (devices of
  // one node are contiguous in config order, so chunks stay contiguous).
  std::vector<std::uint32_t> nodes;
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t d = 0; d < devices; ++d) {
    const std::uint32_t node = d < nodeOf.size() ? nodeOf[d] : 0;
    if (nodes.empty() || nodes.back() != node) {
      const auto seen = std::find(nodes.begin(), nodes.end(), node);
      COMMON_EXPECTS(seen == nodes.end(),
                     "nodeBlockPartition: a node's devices must be "
                     "contiguous");
      nodes.push_back(node);
      members.emplace_back();
    }
    members.back().push_back(d);
  }
  if (nodes.size() <= 1) {
    // Single node: exactly the flat split, so single-node machines stay
    // bit-identical to the pre-cluster partitioner.
    return weightedPartition(n, weights);
  }

  // Level 1: split n across nodes by summed member weight; level 2:
  // split each node's share across its devices. Both levels use the same
  // largest-remainder method, so the LoadMonitor-driven weight modes
  // carry over per node unchanged.
  std::vector<double> nodeWeights(nodes.size(), 0.0);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    for (std::size_t d : members[k]) {
      nodeWeights[k] += weights[d];
    }
  }
  const std::vector<std::size_t> nodeShares =
      weightedPartition(n, nodeWeights);

  std::vector<std::size_t> counts(devices, 0);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    std::vector<double> memberWeights;
    memberWeights.reserve(members[k].size());
    for (std::size_t d : members[k]) {
      memberWeights.push_back(weights[d]);
    }
    const std::vector<std::size_t> split =
        weightedPartition(nodeShares[k], memberWeights);
    for (std::size_t i = 0; i < members[k].size(); ++i) {
      counts[members[k][i]] = split[i];
    }
  }
  return counts;
}

} // namespace skelcl::detail
