// Evaluator for the lazy expression DAG. forceExprNode() is the single
// entry point every consumption site funnels into; it builds the fusion
// plan for the forced node *at force time* — children already
// materialized (extra readers, host mutations) are simply leaves — and
// executes it with exactly the launch geometry, event plumbing, and
// failure atomicity the eager skeletons had. A single-stage plan is the
// old eager execution; a fused plan runs one kernel where the chain ran
// several, with no intermediate vectors.
#include "skelcl/detail/expr.h"

#include <cstdint>
#include <unordered_map>

#include "skelcl/detail/fusion.h"
#include "skelcl/detail/irregular.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/detail/scheduler.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/detail/source_utils.h"
#include "trace/recorder.h"

namespace skelcl::detail {

namespace {

/// Work-group size of the Reduce/Scan trees (powers of two; matches the
/// eager implementations so fused and unfused runs group elements — and
/// therefore round floating point — identically).
constexpr std::size_t kTreeWg = 256;
constexpr std::size_t kReduceMaxGroups = 64;

struct EvalGuard {
  explicit EvalGuard(bool& flag) : flag_(flag) { flag_ = true; }
  ~EvalGuard() { flag_ = false; }
  bool& flag_;
};

/// Depth of nested evaluations on this thread. Only a force at depth 0
/// is a true consumption point: forces issued from inside an evaluation
/// (materializing an unabsorbed child) must not re-enter the scheduler.
thread_local int t_evalDepth = 0;

struct DepthGuard {
  DepthGuard() { ++t_evalDepth; }
  ~DepthGuard() { --t_evalDepth; }
};

void evaluateNode(const std::shared_ptr<ExprNode>& node,
                  const std::shared_ptr<VectorStateBase>& out);

std::string saltFor(const FusionPlan& plan, bool fusionEnabled) {
  return std::string("fusion=") + (fusionEnabled ? "1" : "0") + ";" +
         plan.compositionKey;
}

/// Distinct leaf states in first-occurrence order. Binding happens per
/// occurrence; upload-piece consumption and dependency collection happen
/// once per distinct state (zip(a, a) must not double-consume a's
/// pieces — exactly the eager Zip's sameState special case).
std::vector<VectorStateBase*> distinctLeaves(const FusionPlan& plan) {
  std::vector<VectorStateBase*> distinct;
  for (const auto& leaf : plan.leaves) {
    bool seen = false;
    for (VectorStateBase* d : distinct) {
      if (d == leaf.get()) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      distinct.push_back(leaf.get());
    }
  }
  return distinct;
}

/// Stages every leaf on the devices, aligned to leaf 0's layout.
void alignLeaves(const FusionPlan& plan) {
  VectorStateBase& leaf0 = *plan.leaves.front();
  leaf0.ensureOnDevices();
  for (VectorStateBase* leaf : distinctLeaves(plan)) {
    if (leaf != &leaf0) {
      leaf->matchLayout(leaf0.distribution(), leaf0.singleDeviceIndex(),
                        leaf0.chunks());
    }
  }
}

void prepareStageArguments(const FusionPlan& plan) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.prepare();
  }
}

std::size_t bindStageArguments(const FusionPlan& plan, ocl::Kernel& kernel,
                               std::size_t firstIndex,
                               std::size_t deviceIndex) {
  std::size_t at = firstIndex;
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.apply(kernel, at, deviceIndex);
    at += stage.node->args.count();
  }
  return at;
}

void collectStageDeps(const FusionPlan& plan, std::vector<ocl::Event>& deps,
                      std::size_t deviceIndex) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.collectDeps(deps, deviceIndex);
  }
}

void recordStageEvents(const FusionPlan& plan, const ocl::Event& event,
                       std::size_t deviceIndex) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.recordEvent(event, deviceIndex);
  }
}

// --- element-wise plans (Map/Zip roots) ---------------------------------

std::string elementwiseKernelName(const FusionPlan& plan) {
  if (plan.stages.size() > 1) {
    return "skelcl_fused";
  }
  return plan.leaves.size() == 1 ? "skelcl_map" : "skelcl_zip";
}

std::string elementwiseSource(const FusionPlan& plan,
                              const std::string& outType) {
  std::string src =
      registeredTypeDefinitions() + plan.functionsSource +
      "\n__kernel void " + elementwiseKernelName(plan) + "(";
  for (std::size_t i = 0; i < plan.leaves.size(); ++i) {
    src += "__global const " + plan.leafTypes[i] + "* skelcl_in" +
           std::to_string(i) + ", ";
  }
  src += "__global " + outType + "* skelcl_out, uint skelcl_n" +
         plan.argDecls +
         ") {\n"
         "  size_t skelcl_i = get_global_id(0);\n"
         "  if (skelcl_i < skelcl_n) {\n"
         "    skelcl_out[skelcl_i] = " +
         substituteIndex(plan.loadExpr, "skelcl_i") +
         ";\n"
         "  }\n"
         "}\n";
  return src;
}

void runElementwise(const std::shared_ptr<ExprNode>& node,
                    const std::shared_ptr<VectorStateBase>& out,
                    const FusionPlan& plan, Runtime& runtime,
                    const std::string& salt) {
  alignLeaves(plan);
  prepareStageArguments(plan);

  VectorStateBase& leaf0 = *plan.leaves.front();
  const std::vector<VectorStateBase*> distinct = distinctLeaves(plan);
  bool aliased = false;
  for (VectorStateBase* leaf : distinct) {
    if (leaf == out.get()) {
      aliased = true;
      break;
    }
  }
  if (!aliased) {
    out->allocateLikeBase(leaf0);
  }

  ocl::Program& program =
      runtime.programFor(elementwiseSource(plan, node->outType), salt);
  const std::string kernelName = elementwiseKernelName(plan);

  // Per-device chunks are disjoint, so any visit order is legal (the
  // schedule fuzzer shuffles it); a fault on one device reports which.
  const auto& chunks = leaf0.chunks();
  for (std::size_t idx : runtime.chunkVisitOrder(chunks.size())) {
    const Chunk& chunk = chunks[idx];
    if (chunk.count == 0) {
      continue;
    }
    try {
      const auto& device = runtime.devices()[chunk.deviceIndex];
      ocl::Kernel kernel = program.createKernel(kernelName);
      std::size_t arg = 0;
      for (const auto& leaf : plan.leaves) {
        kernel.setArg(arg++,
                      leaf->chunkForDevice(chunk.deviceIndex).buffer);
      }
      kernel.setArg(arg++,
                    out->chunkForDevice(chunk.deviceIndex).buffer);
      kernel.setArg(arg++, std::uint32_t(chunk.count));
      bindStageArguments(plan, kernel, arg, chunk.deviceIndex);

      // The launch depends on every distinct operand's upload — piecewise
      // where split, so sub-launches pipeline against whichever transfer
      // streams last — plus any stage argument vectors.
      std::vector<UploadPieces> pieces;
      pieces.reserve(distinct.size());
      std::vector<ocl::Event> deps;
      for (VectorStateBase* leaf : distinct) {
        pieces.push_back(leaf->takeUploadPieces(chunk.deviceIndex));
        if (pieces.back().empty()) {
          appendEvent(deps, leaf->readyEventOn(chunk.deviceIndex));
        }
      }
      collectStageDeps(plan, deps, chunk.deviceIndex);

      std::vector<const UploadPieces*> pieceLists;
      pieceLists.reserve(pieces.size());
      for (const UploadPieces& list : pieces) {
        pieceLists.push_back(&list);
      }
      const std::size_t wg =
          effectiveWorkGroupSize(node->workGroupSize, device);
      ocl::Event done =
          launchPipelined(runtime.queue(chunk.deviceIndex), kernel,
                          chunk.count, wg, deps, pieceLists);
      out->recordEventOn(chunk.deviceIndex, done);
      recordStageEvents(plan, done, chunk.deviceIndex);
    } catch (ocl::ClError& e) {
      e.prependContext(plan.label + " skeleton on device " +
                       std::to_string(chunk.deviceIndex));
      throw;
    }
  }
  out->markDevicesModified();
}

// --- Reduce plans --------------------------------------------------------

/// The associativity-only tree reduction kernel (see reduce.h for the
/// algorithm notes). `loadExpr` is the element expression at %IDX%; the
/// plain variant loads skelcl_in[i], the fused first pass evaluates the
/// absorbed chain inline.
///
/// `pipelined` emits the variant used for piecewise-pipelined first
/// passes: the logical group count arrives as an explicit argument and
/// the group index derives from the global id, so the kernel can be
/// enqueued as offset sub-ranges covering contiguous group spans while
/// computing exactly the same per-group partials.
std::string reduceKernelSource(const std::string& kernelName,
                               const std::string& leafParams,
                               const std::string& argDecls,
                               const std::string& t,
                               const std::string& combineName,
                               const std::string& loadExpr,
                               bool pipelined) {
  const std::string wg = std::to_string(kTreeWg);
  const std::string load = substituteIndex(loadExpr, "i");
  return "\n__kernel void " + kernelName + "(" + leafParams + "__global " +
         t + "* skelcl_out, uint skelcl_n" +
         (pipelined ? ", uint skelcl_num_groups" : "") + argDecls + ") {\n"
         "  __local " + t + " skelcl_scratch[" + wg + "];\n"
         "  __local int skelcl_flags[" + wg + "];\n"
         "  uint skelcl_lid = (uint)get_local_id(0);\n" +
         (pipelined
              ? "  size_t skelcl_group = get_global_id(0) / " + wg + ";\n"
                "  size_t skelcl_groups = (size_t)skelcl_num_groups;\n"
              : "  size_t skelcl_group = get_group_id(0);\n"
                "  size_t skelcl_groups = get_num_groups(0);\n") +
         "  size_t skelcl_span =\n"
         "      (skelcl_n + skelcl_groups - 1) / skelcl_groups;\n"
         "  size_t skelcl_gstart = skelcl_group * skelcl_span;\n"
         "  size_t skelcl_gend = min(skelcl_gstart + skelcl_span,\n"
         "                           (size_t)skelcl_n);\n"
         "  size_t skelcl_chunk = (skelcl_span + " + wg + " - 1) / " + wg +
         ";\n"
         "  size_t skelcl_start = skelcl_gstart + skelcl_lid * skelcl_chunk;\n"
         "  size_t skelcl_end = min(skelcl_start + skelcl_chunk,\n"
         "                          skelcl_gend);\n"
         "  int skelcl_have = 0;\n"
         "  " + t + " skelcl_acc;\n"
         "  for (size_t i = skelcl_start; i < skelcl_end; ++i) {\n"
         "    if (skelcl_have) {\n"
         "      skelcl_acc = " + combineName + "(skelcl_acc, " + load +
         ");\n"
         "    } else {\n"
         "      skelcl_acc = " + load + ";\n"
         "      skelcl_have = 1;\n"
         "    }\n"
         "  }\n"
         "  skelcl_flags[skelcl_lid] = skelcl_have;\n"
         "  if (skelcl_have) skelcl_scratch[skelcl_lid] = skelcl_acc;\n"
         "  barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  for (uint s = 1; s < " + wg + "; s <<= 1) {\n"
         "    if (skelcl_lid % (2 * s) == 0 &&\n"
         "        skelcl_lid + s < " + wg + ") {\n"
         "      if (skelcl_flags[skelcl_lid + s]) {\n"
         "        if (skelcl_flags[skelcl_lid]) {\n"
         "          skelcl_scratch[skelcl_lid] = " + combineName +
         "(skelcl_scratch[skelcl_lid], skelcl_scratch[skelcl_lid + s]);\n"
         "        } else {\n"
         "          skelcl_scratch[skelcl_lid] =\n"
         "              skelcl_scratch[skelcl_lid + s];\n"
         "          skelcl_flags[skelcl_lid] = 1;\n"
         "        }\n"
         "      }\n"
         "    }\n"
         "    barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  }\n"
         "  if (skelcl_lid == 0) {\n"
         "    skelcl_out[skelcl_group] = skelcl_scratch[0];\n"
         "  }\n"
         "}\n";
}

std::string plainReduceSource(const std::shared_ptr<ExprNode>& node) {
  const std::string& t = node->outType;
  return registeredTypeDefinitions() + node->source +
         reduceKernelSource("skelcl_reduce",
                            "__global const " + t + "* skelcl_in, ", "", t,
                            node->funcName, "skelcl_in[%IDX%]",
                            /*pipelined=*/false);
}

std::string fusedReduceSource(const std::shared_ptr<ExprNode>& node,
                              const FusionPlan& plan) {
  std::string leafParams;
  for (std::size_t i = 0; i < plan.leaves.size(); ++i) {
    leafParams += "__global const " + plan.leafTypes[i] + "* skelcl_in" +
                  std::to_string(i) + ", ";
  }
  return registeredTypeDefinitions() + plan.functionsSource +
         reduceKernelSource("skelcl_mapreduce", leafParams, plan.argDecls,
                            node->outType, plan.rootFuncName,
                            plan.loadExpr, /*pipelined=*/true);
}

/// Tree-reduces `count` elements of `in` (element size `elem`) down to
/// one with the plain kernel; the first pass waits on `deps`. Mirrors
/// the eager Reduce::reduceOnDevice, including the count==1 passthrough.
std::pair<ocl::Buffer, ocl::Event> reducePlain(
    Runtime& runtime, ocl::Program& program, ocl::Buffer in,
    std::size_t count, std::size_t elem, std::size_t deviceIndex,
    std::vector<ocl::Event> deps) {
  auto& queue = runtime.queue(deviceIndex);
  const auto& device = runtime.devices()[deviceIndex];
  ocl::Event last;
  if (!deps.empty()) {
    last = deps.front();
  }
  while (count > 1) {
    const std::size_t groups =
        std::min(kReduceMaxGroups, (count + kTreeWg - 1) / kTreeWg);
    ocl::Buffer out =
        runtime.context().createBuffer(device, groups * elem);
    ocl::Kernel kernel = program.createKernel("skelcl_reduce");
    kernel.setArg(0, in);
    kernel.setArg(1, out);
    kernel.setArg(2, std::uint32_t(count));
    last = queue.enqueueNDRange(
        kernel, ocl::NDRange1D{groups * kTreeWg, kTreeWg}, deps);
    deps = {last};
    in = std::move(out);
    count = groups;
  }
  return {std::move(in), std::move(last)};
}

/// Enqueues the fused first pass, pipelined against split upload pieces
/// at group granularity. Tree group g reads the contiguous element span
/// [g*span, (g+1)*span), so a sub-launch covering groups [g0, g1) only
/// needs the pieces covering its last element: early groups reduce
/// while later pieces still stream over PCIe — the same double
/// buffering launchPipelined gives element-wise kernels. The pipelined
/// kernel derives its group index from the global id, so offset
/// sub-ranges compute bit-identical partials to one full launch.
ocl::Event launchReduceFirstPass(
    ocl::CommandQueue& queue, ocl::Kernel& kernel, std::size_t groups,
    std::size_t count, const std::vector<ocl::Event>& baseDeps,
    const std::vector<const UploadPieces*>& pieceLists) {
  const UploadPieces* driver = nullptr;
  for (const UploadPieces* list : pieceLists) {
    if (list->size() > 1 &&
        (driver == nullptr || list->size() > driver->size())) {
      driver = list;
    }
  }
  // Pipelining pays only when each piece unlocks whole groups; with
  // fewer than ~2 groups per piece, run the classic single launch.
  if (driver == nullptr || groups < 2 * driver->size()) {
    std::vector<ocl::Event> deps = baseDeps;
    for (const UploadPieces* list : pieceLists) {
      if (!list->empty()) {
        appendEvent(deps, list->back().second);
      }
    }
    return queue.enqueueNDRange(
        kernel, ocl::NDRange1D{groups * kTreeWg, kTreeWg}, deps);
  }
  const std::size_t span = (count + groups - 1) / groups;
  ocl::Event last;
  std::size_t gBegin = 0;
  for (std::size_t p = 0; p < driver->size() && gBegin < groups; ++p) {
    // Groups fully covered by pieces [0, p]; the final piece flushes
    // the remainder.
    const std::size_t gEnd =
        (p + 1 == driver->size())
            ? groups
            : std::min(groups, (*driver)[p].first / span);
    if (gEnd <= gBegin) {
      continue;
    }
    std::vector<ocl::Event> deps = baseDeps;
    const std::size_t elemEnd = std::min(gEnd * span, count);
    for (const UploadPieces* list : pieceLists) {
      if (!list->empty()) {
        appendEvent(deps, pieceCovering(*list, elemEnd));
      }
    }
    last = queue.enqueueNDRange(
        kernel,
        ocl::NDRange1D{(gEnd - gBegin) * kTreeWg, kTreeWg,
                       gBegin * kTreeWg},
        deps);
    gBegin = gEnd;
  }
  return last;
}

void runReduce(const std::shared_ptr<ExprNode>& node,
               const std::shared_ptr<VectorStateBase>& out,
               const FusionPlan& plan, Runtime& runtime,
               const std::string& salt) {
  alignLeaves(plan);
  prepareStageArguments(plan);

  VectorStateBase& leaf0 = *plan.leaves.front();
  const std::vector<VectorStateBase*> distinct = distinctLeaves(plan);
  const std::size_t elem = node->outElemSize;
  const bool fused = plan.fusedStages > 0;

  ocl::Program& plainProgram =
      runtime.programFor(plainReduceSource(node), salt);
  ocl::Program* fusedProgram =
      fused ? &runtime.programFor(fusedReduceSource(node, plan), salt)
            : nullptr;

  // Per-device partial reduction; under the copy distribution one copy
  // suffices. Partials stay in canonical chunk order (device order =
  // element order), so the combine below needs associativity only.
  struct Partial {
    ocl::Buffer buffer;
    ocl::Event ready;
    std::size_t deviceIndex;
  };
  std::vector<Partial> partials;
  const auto& chunks = leaf0.chunks();
  const bool copyDist = leaf0.distribution() == Distribution::Copy;
  for (const Chunk& chunk : chunks) {
    if (chunk.count == 0) {
      continue;
    }
    try {
      std::vector<ocl::Event> deps;
      ocl::Buffer in = chunk.buffer;
      std::size_t count = chunk.count;
      if (fused) {
        // Fused first pass: the absorbed chain evaluates inline while
        // the tree reduces — the reduce.map rewrite. Harvest any split
        // upload pieces so the tree groups can start on the prefix of
        // the input while its tail still streams.
        auto& queue = runtime.queue(chunk.deviceIndex);
        const auto& device = runtime.devices()[chunk.deviceIndex];
        collectStageDeps(plan, deps, chunk.deviceIndex);
        std::vector<UploadPieces> pieces;
        pieces.reserve(distinct.size());
        for (VectorStateBase* leaf : distinct) {
          pieces.push_back(leaf->takeUploadPieces(chunk.deviceIndex));
          if (pieces.back().empty()) {
            appendEvent(deps, leaf->readyEventOn(chunk.deviceIndex));
          }
        }
        std::vector<const UploadPieces*> pieceLists;
        pieceLists.reserve(pieces.size());
        for (const UploadPieces& list : pieces) {
          pieceLists.push_back(&list);
        }
        const std::size_t groups =
            std::min(kReduceMaxGroups, (count + kTreeWg - 1) / kTreeWg);
        ocl::Buffer mapped =
            runtime.context().createBuffer(device, groups * elem);
        ocl::Kernel kernel =
            fusedProgram->createKernel("skelcl_mapreduce");
        std::size_t arg = 0;
        for (const auto& leaf : plan.leaves) {
          kernel.setArg(arg++,
                        leaf->chunkForDevice(chunk.deviceIndex).buffer);
        }
        kernel.setArg(arg++, mapped);
        kernel.setArg(arg++, std::uint32_t(count));
        kernel.setArg(arg++, std::uint32_t(groups));
        bindStageArguments(plan, kernel, arg, chunk.deviceIndex);
        ocl::Event first = launchReduceFirstPass(queue, kernel, groups,
                                                 count, deps, pieceLists);
        recordStageEvents(plan, first, chunk.deviceIndex);
        deps = {first};
        in = std::move(mapped);
        count = groups;
      } else {
        appendEvent(deps, chunk.ready);
        for (VectorStateBase* leaf : distinct) {
          if (leaf != &leaf0) {
            appendEvent(deps, leaf->readyEventOn(chunk.deviceIndex));
          }
        }
        collectStageDeps(plan, deps, chunk.deviceIndex);
      }
      auto reduced = reducePlain(runtime, plainProgram, std::move(in),
                                 count, elem, chunk.deviceIndex,
                                 std::move(deps));
      partials.push_back(Partial{std::move(reduced.first),
                                 std::move(reduced.second),
                                 chunk.deviceIndex});
    } catch (ocl::ClError& e) {
      e.prependContext(plan.label + " skeleton on device " +
                       std::to_string(chunk.deviceIndex));
      throw;
    }
    if (copyDist) {
      break;
    }
  }
  COMMON_CHECK(!partials.empty());

  if (partials.size() == 1) {
    out->adoptDeviceBufferBase(std::move(partials[0].buffer), 1,
                               partials[0].deviceIndex,
                               std::move(partials[0].ready));
    return;
  }

  // Combine the per-device results on device 0 (see reduce.h): all reads
  // non-blocking, the staging upload waits on them through events, the
  // final value is consumed at the Scalar's getValue().
  std::vector<std::uint8_t> values(partials.size() * elem);
  std::vector<ocl::Event> reads;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    reads.push_back(
        runtime.queue(partials[i].deviceIndex)
            .enqueueReadBuffer(partials[i].buffer, 0, elem,
                               values.data() + i * elem,
                               /*blocking=*/false, {partials[i].ready}));
  }
  try {
    const auto& device0 = runtime.devices()[0];
    ocl::Buffer staging =
        runtime.context().createBuffer(device0, values.size());
    ocl::Event staged = runtime.queue(0).enqueueWriteBuffer(
        staging, 0, values.size(), values.data(), reads);
    auto finalReduce =
        reducePlain(runtime, plainProgram, std::move(staging),
                    partials.size(), elem, 0, {staged});
    out->adoptDeviceBufferBase(std::move(finalReduce.first), 1, 0,
                               std::move(finalReduce.second));
  } catch (ocl::ClError& e) {
    e.prependContext(plan.label + " skeleton on device 0");
    throw;
  }
}

// --- Scan plans ----------------------------------------------------------

/// The per-work-group Blelloch block kernel plus the uniform add pass
/// (see scan.h for the algorithm notes). `loadExpr` is the element
/// expression at %IDX% feeding the up-sweep.
std::string scanBlockKernelSource(const std::string& leafParams,
                                  const std::string& argDecls,
                                  const std::string& t,
                                  const std::string& combineName,
                                  const std::string& identity,
                                  const std::string& loadExpr) {
  const std::string wg = std::to_string(kTreeWg);
  const std::string half = std::to_string(kTreeWg / 2);
  const std::string last = std::to_string(kTreeWg - 1);
  return "\n__kernel void skelcl_scan_block(" + leafParams + "__global " +
         t + "* skelcl_out, __global " + t +
         "* skelcl_sums, uint skelcl_n" + argDecls + ") {\n"
         "  __local " + t + " skelcl_tmp[" + wg + "];\n"
         "  uint skelcl_lid = (uint)get_local_id(0);\n"
         "  size_t skelcl_gid = get_global_id(0);\n"
         "  if (skelcl_gid < skelcl_n) {\n"
         "    skelcl_tmp[skelcl_lid] = " +
         substituteIndex(loadExpr, "skelcl_gid") +
         ";\n"
         "  } else {\n"
         "    skelcl_tmp[skelcl_lid] = " + identity + ";\n"
         "  }\n"
         "  barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  uint skelcl_offset = 1;\n"
         "  for (uint d = " + half + "; d > 0; d >>= 1) {\n"
         "    if (skelcl_lid < d) {\n"
         "      uint ai = skelcl_offset * (2 * skelcl_lid + 1) - 1;\n"
         "      uint bi = skelcl_offset * (2 * skelcl_lid + 2) - 1;\n"
         "      skelcl_tmp[bi] = " + combineName +
         "(skelcl_tmp[ai], skelcl_tmp[bi]);\n"
         "    }\n"
         "    skelcl_offset <<= 1;\n"
         "    barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  }\n"
         "  if (skelcl_lid == 0) {\n"
         "    skelcl_sums[get_group_id(0)] = skelcl_tmp[" + last + "];\n"
         "    skelcl_tmp[" + last + "] = " + identity + ";\n"
         "  }\n"
         "  barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  for (uint d = 1; d < " + wg + "; d <<= 1) {\n"
         "    skelcl_offset >>= 1;\n"
         "    if (skelcl_lid < d) {\n"
         "      uint ai = skelcl_offset * (2 * skelcl_lid + 1) - 1;\n"
         "      uint bi = skelcl_offset * (2 * skelcl_lid + 2) - 1;\n"
         "      " + t + " skelcl_t = skelcl_tmp[ai];\n"
         "      skelcl_tmp[ai] = skelcl_tmp[bi];\n"
         "      skelcl_tmp[bi] = " + combineName +
         "(skelcl_tmp[ai], skelcl_t);\n"
         "    }\n"
         "    barrier(CLK_LOCAL_MEM_FENCE);\n"
         "  }\n"
         "  if (skelcl_gid < skelcl_n) {\n"
         "    skelcl_out[skelcl_gid] = skelcl_tmp[skelcl_lid];\n"
         "  }\n"
         "}\n";
}

std::string scanAddKernelSource(const std::string& t,
                                const std::string& combineName) {
  return "\n__kernel void skelcl_scan_add(__global " + t +
         "* skelcl_data, __global const " + t +
         "* skelcl_offsets, uint skelcl_n) {\n"
         "  size_t skelcl_gid = get_global_id(0);\n"
         "  if (skelcl_gid < skelcl_n) {\n"
         "    skelcl_data[skelcl_gid] = " + combineName +
         "(skelcl_offsets[get_group_id(0)], skelcl_data[skelcl_gid]);\n"
         "  }\n"
         "}\n";
}

std::string plainScanSource(const std::shared_ptr<ExprNode>& node) {
  const std::string& t = node->outType;
  return registeredTypeDefinitions() + node->source +
         scanBlockKernelSource("__global const " + t + "* skelcl_in, ", "",
                               t, node->funcName, node->identityExpr,
                               "skelcl_in[%IDX%]") +
         scanAddKernelSource(t, node->funcName);
}

std::string fusedScanSource(const std::shared_ptr<ExprNode>& node,
                            const FusionPlan& plan) {
  std::string leafParams;
  for (std::size_t i = 0; i < plan.leaves.size(); ++i) {
    leafParams += "__global const " + plan.leafTypes[i] + "* skelcl_in" +
                  std::to_string(i) + ", ";
  }
  return registeredTypeDefinitions() + plan.functionsSource +
         scanBlockKernelSource(leafParams, plan.argDecls, node->outType,
                               plan.rootFuncName, node->identityExpr,
                               plan.loadExpr);
}

/// Recursive plain scan over a device buffer — the eager
/// Scan::scanBuffer, parameterized on element size.
ocl::Event scanPlain(Runtime& runtime, ocl::Program& program,
                     const ocl::Buffer& in, const ocl::Buffer& out,
                     std::size_t n, std::size_t elem,
                     std::size_t deviceIndex,
                     const std::vector<ocl::Event>& deps) {
  auto& queue = runtime.queue(deviceIndex);
  const auto& device = runtime.devices()[deviceIndex];
  const std::size_t groups = (n + kTreeWg - 1) / kTreeWg;
  ocl::Buffer sums =
      runtime.context().createBuffer(device, groups * elem);

  ocl::Kernel block = program.createKernel("skelcl_scan_block");
  block.setArg(0, in);
  block.setArg(1, out);
  block.setArg(2, sums);
  block.setArg(3, std::uint32_t(n));
  ocl::Event blocked = queue.enqueueNDRange(
      block, ocl::NDRange1D{groups * kTreeWg, kTreeWg}, deps);

  if (groups > 1) {
    ocl::Buffer sumsScanned =
        runtime.context().createBuffer(device, groups * elem);
    ocl::Event sumsDone = scanPlain(runtime, program, sums, sumsScanned,
                                    groups, elem, deviceIndex, {blocked});

    ocl::Kernel add = program.createKernel("skelcl_scan_add");
    add.setArg(0, out);
    add.setArg(1, sumsScanned);
    add.setArg(2, std::uint32_t(n));
    return queue.enqueueNDRange(
        add, ocl::NDRange1D{groups * kTreeWg, kTreeWg},
        {blocked, sumsDone});
  }
  return blocked;
}

void runScan(const std::shared_ptr<ExprNode>& node,
             const std::shared_ptr<VectorStateBase>& out,
             const FusionPlan& plan, Runtime& runtime,
             const std::string& salt) {
  // Single-device skeleton: gather the primary operand, align the rest.
  VectorStateBase& leaf0 = *plan.leaves.front();
  if (leaf0.distribution() != Distribution::Single) {
    leaf0.setDistribution(Distribution::Single, 0);
  }
  leaf0.ensureOnDevices();
  for (VectorStateBase* leaf : distinctLeaves(plan)) {
    if (leaf != &leaf0) {
      leaf->matchLayout(Distribution::Single, leaf0.singleDeviceIndex(),
                        leaf0.chunks());
    }
  }
  prepareStageArguments(plan);

  const std::size_t n = node->outCount;
  const std::size_t elem = node->outElemSize;
  const Chunk& chunk = leaf0.chunks().front();
  const std::size_t deviceIndex = chunk.deviceIndex;
  const auto& device = runtime.devices()[deviceIndex];
  const bool fused = plan.fusedStages > 0;

  ocl::Program& plainProgram =
      runtime.programFor(plainScanSource(node), salt);
  ocl::Program* fusedProgram =
      fused ? &runtime.programFor(fusedScanSource(node, plan), salt)
            : nullptr;

  try {
    ocl::Buffer outBuf =
        runtime.context().createBuffer(device, n * elem);
    const std::size_t groups = (n + kTreeWg - 1) / kTreeWg;
    ocl::Buffer sums =
        runtime.context().createBuffer(device, groups * elem);

    std::vector<ocl::Event> deps;
    appendEvent(deps, chunk.ready);
    for (VectorStateBase* leaf : distinctLeaves(plan)) {
      if (leaf != &leaf0) {
        appendEvent(deps, leaf->readyEventOn(deviceIndex));
      }
    }
    collectStageDeps(plan, deps, deviceIndex);

    // Level 0: fused plans evaluate the absorbed chain while loading
    // the Blelloch tree; the recursion over block sums and the uniform
    // add pass read plain buffers either way.
    ocl::Event blocked;
    if (fused) {
      ocl::Kernel block = fusedProgram->createKernel("skelcl_scan_block");
      std::size_t arg = 0;
      for (const auto& leaf : plan.leaves) {
        block.setArg(arg++, leaf->chunkForDevice(deviceIndex).buffer);
      }
      block.setArg(arg++, outBuf);
      block.setArg(arg++, sums);
      block.setArg(arg++, std::uint32_t(n));
      bindStageArguments(plan, block, arg, deviceIndex);
      blocked = runtime.queue(deviceIndex)
                    .enqueueNDRange(
                        block, ocl::NDRange1D{groups * kTreeWg, kTreeWg},
                        deps);
      recordStageEvents(plan, blocked, deviceIndex);
    } else {
      ocl::Kernel block = plainProgram.createKernel("skelcl_scan_block");
      block.setArg(0, chunk.buffer);
      block.setArg(1, outBuf);
      block.setArg(2, sums);
      block.setArg(3, std::uint32_t(n));
      blocked = runtime.queue(deviceIndex)
                    .enqueueNDRange(
                        block, ocl::NDRange1D{groups * kTreeWg, kTreeWg},
                        deps);
    }

    ocl::Event done = blocked;
    if (groups > 1) {
      ocl::Buffer sumsScanned =
          runtime.context().createBuffer(device, groups * elem);
      ocl::Event sumsDone =
          scanPlain(runtime, plainProgram, sums, sumsScanned, groups,
                    elem, deviceIndex, {blocked});
      ocl::Kernel add = plainProgram.createKernel("skelcl_scan_add");
      add.setArg(0, outBuf);
      add.setArg(1, sumsScanned);
      add.setArg(2, std::uint32_t(n));
      done = runtime.queue(deviceIndex)
                 .enqueueNDRange(
                     add, ocl::NDRange1D{groups * kTreeWg, kTreeWg},
                     {blocked, sumsDone});
    }
    out->adoptDeviceBufferBase(std::move(outBuf), n, deviceIndex,
                               std::move(done));
  } catch (ocl::ClError& e) {
    e.prependContext(plan.label + " skeleton on device " +
                     std::to_string(deviceIndex));
    throw;
  }
}

void evaluateNode(const std::shared_ptr<ExprNode>& node,
                  const std::shared_ptr<VectorStateBase>& out) {
  EvalGuard guard(node->evaluating);
  DepthGuard depth;
  auto& runtime = Runtime::instance();
  runtime.requireInit();

  FusionPlan plan = buildFusionPlan(node, runtime.fusionEnabled());

  // Children the rewrite pass could not absorb run first, materializing
  // their intermediate vectors — the cost fusion exists to avoid, so it
  // is what the fusion counters measure.
  for (const auto& child : plan.materializeFirst) {
    if (child->evaluated) {
      continue;
    }
    forceExprNode(child);
    const std::uint64_t bytes =
        std::uint64_t(child->outCount) * child->outElemSize;
    runtime.noteIntermediate(bytes);
    if (trace::Recorder::enabled()) {
      trace::Recorder::instance().bumpCounter(
          "intermediate_bytes", trace::kNoDevice, trace::now(), bytes);
    }
  }
  if (plan.fusedStages > 0) {
    runtime.noteFusedEvaluation(plan.fusedStages);
  }

  const std::size_t spanSize =
      node->inputs.empty() ? 0 : node->inputs.front().state->size();
  trace::ScopedHostSpan span(trace::HostKind::Skeleton, plan.label.c_str(),
                             trace::kNoDevice, spanSize);
  const std::string salt = saltFor(plan, runtime.fusionEnabled());
  try {
    switch (node->op) {
      case ExprNode::Op::Map:
      case ExprNode::Op::Zip:
        runElementwise(node, out, plan, runtime, salt);
        break;
      case ExprNode::Op::Reduce:
        runReduce(node, out, plan, runtime, salt);
        break;
      case ExprNode::Op::Scan:
        runScan(node, out, plan, runtime, salt);
        break;
      case ExprNode::Op::Stencil:
        runStencil(node, out, plan, runtime, salt);
        break;
      case ExprNode::Op::SparseGather:
        runSparseGather(node, out, plan, runtime, salt);
        break;
    }
  } catch (...) {
    // A failed evaluation is never retried: the error already surfaced
    // to whoever forced the node, and a rerun could double-apply work.
    // Poison the node so later consumer flushes skip it, and detach it
    // from the output so reads do not force it again.
    node->evaluated = true;
    out->clearPending();
    throw;
  }
  node->evaluated = true;
  out->clearPending();
}

} // namespace

void forceExprNode(const std::shared_ptr<ExprNode>& node) {
  if (node == nullptr || node->evaluated || node->evaluating) {
    return;
  }
  // `node` may alias the output state's own pending_ member, which an
  // evaluation clears (adoptDeviceBuffer does so mid-flight, and a
  // scheduler drain clears it from underneath us) — pin the node first
  // so it outlives that reset.
  std::shared_ptr<ExprNode> keep = node;
  // A force at the top of the evaluation stack is a true consumption
  // point: drain the async scheduler first, so every outstanding
  // independent job's commands are enqueued before this consumer's
  // blocking wait (the drain may evaluate `keep` itself — recheck).
  // Forces nested inside an evaluation, and forces issued *by* the
  // drain, fall through to the direct path.
  if (t_evalDepth == 0) {
    Scheduler& scheduler = Scheduler::instance();
    if (scheduler.shouldDrain()) {
      scheduler.drain(keep);
      if (keep->evaluated || keep->evaluating) {
        return;
      }
    }
  }
  std::shared_ptr<VectorStateBase> out = keep->output.lock();
  if (out == nullptr) {
    // The result vector died unread; the computation is dead code.
    keep->evaluated = true;
    return;
  }
  evaluateNode(keep, out);
}

bool deferrable(const Arguments& args) { return !args.hasVectorEntries(); }

std::shared_ptr<ExprNode> makeExprNode(
    ExprNode::Op op, std::string source, std::string funcName,
    const Arguments& args, std::size_t workGroupSize,
    std::vector<std::shared_ptr<VectorStateBase>> inputs,
    std::string outType, std::size_t outElemSize, std::size_t outCount,
    std::string identityExpr) {
  auto node = std::make_shared<ExprNode>();
  node->op = op;
  node->source = std::move(source);
  node->funcName = std::move(funcName);
  node->identityExpr = std::move(identityExpr);
  node->args = args;
  node->workGroupSize = workGroupSize;
  node->outType = std::move(outType);
  node->outElemSize = outElemSize;
  node->outCount = outCount;

  node->inputs.reserve(inputs.size());
  for (auto& state : inputs) {
    ExprNode::Input input;
    input.node = state->pendingNode();
    input.state = std::move(state);
    if (input.node != nullptr && !input.node->evaluated) {
      input.node->fanout += 1;
    }
    node->inputs.push_back(std::move(input));
  }
  // Host mutations of an input must snapshot this node's value first.
  for (const ExprNode::Input& input : node->inputs) {
    input.state->addConsumer(node);
  }

  // Concrete inputs stage eagerly: upload faults surface at the call
  // site and Zip's geometry alignment (and Scan's gather) stay
  // observable right after the call — exactly as under eager execution.
  switch (op) {
    case ExprNode::Op::Map:
    case ExprNode::Op::Reduce: {
      const auto& in0 = node->inputs.front().state;
      if (!in0->hasPending()) {
        in0->ensureOnDevices();
      }
      break;
    }
    case ExprNode::Op::Zip: {
      const auto& left = node->inputs[0].state;
      const auto& right = node->inputs[1].state;
      if (!left->hasPending()) {
        left->ensureOnDevices();
        if (!right->hasPending() && right.get() != left.get()) {
          right->matchLayout(left->distribution(),
                            left->singleDeviceIndex(), left->chunks());
        }
      } else if (!right->hasPending() && right.get() != left.get()) {
        right->ensureOnDevices();
      }
      break;
    }
    case ExprNode::Op::Scan: {
      const auto& in0 = node->inputs.front().state;
      if (!in0->hasPending()) {
        if (in0->distribution() != Distribution::Single) {
          in0->setDistribution(Distribution::Single, 0);
        }
        in0->ensureOnDevices();
      }
      break;
    }
    case ExprNode::Op::Stencil: {
      // Layout (row-aligned block vs. single-device fallback) is picked
      // at evaluation time; staging here would only guess. Upload faults
      // still surface at the call site for concrete inputs.
      const auto& in0 = node->inputs.front().state;
      if (!in0->hasPending()) {
        in0->ensureOnDevices();
      }
      break;
    }
    case ExprNode::Op::SparseGather: {
      // The gather reads arbitrary columns: the dense operand is
      // replicated on every device, like a vector argument would be.
      const auto& in0 = node->inputs.front().state;
      if (!in0->hasPending()) {
        if (in0->distribution() != Distribution::Copy) {
          in0->setDistribution(Distribution::Copy, 0);
        }
        in0->ensureOnDevices();
      }
      break;
    }
  }
  return node;
}

void deferNode(const std::shared_ptr<ExprNode>& node,
               const std::shared_ptr<VectorStateBase>& out) {
  node->output = out;
  out->installPending(node, node->outCount);
  // Register the job with the async scheduler: the next top-of-stack
  // consumption point dispatches every outstanding job, not just the
  // one being consumed. No-op under SKELCL_ASYNC=0.
  Scheduler::instance().noteDeferred(node);
}

void evaluateNodeInto(const std::shared_ptr<ExprNode>& node,
                      const std::shared_ptr<VectorStateBase>& out) {
  {
    // `out` may alias an input, in whose consumer list this very node
    // already sits; the guard keeps it from forcing itself while the
    // *old* value's deferred readers are snapshotted.
    EvalGuard guard(node->evaluating);
    out->forcePending();
    out->forceConsumers();
  }
  node->output = out;
  evaluateNode(node, out);
}

void collectNodePrograms(const std::shared_ptr<ExprNode>& node,
                         std::vector<PreparedProgram>& out) {
  if (node == nullptr || node->evaluated || node->evaluating) {
    return;
  }
  auto& runtime = Runtime::instance();
  FusionPlan plan = buildFusionPlan(node, runtime.fusionEnabled());
  for (const auto& child : plan.materializeFirst) {
    if (child->evaluated || child->output.expired()) {
      continue; // evaluated, or dead code the force will eliminate
    }
    collectNodePrograms(child, out);
  }
  const std::string salt = saltFor(plan, runtime.fusionEnabled());
  switch (node->op) {
    case ExprNode::Op::Map:
    case ExprNode::Op::Zip:
      out.push_back({elementwiseSource(plan, node->outType), salt});
      break;
    case ExprNode::Op::Reduce:
      out.push_back({plainReduceSource(node), salt});
      if (plan.fusedStages > 0) {
        out.push_back({fusedReduceSource(node, plan), salt});
      }
      break;
    case ExprNode::Op::Scan:
      out.push_back({plainScanSource(node), salt});
      if (plan.fusedStages > 0) {
        out.push_back({fusedScanSource(node, plan), salt});
      }
      break;
    case ExprNode::Op::Stencil:
      out.push_back({stencilProgramSource(node, plan), salt});
      break;
    case ExprNode::Op::SparseGather:
      out.push_back({sparseProgramSource(node, plan), salt});
      break;
  }
}

} // namespace skelcl::detail
