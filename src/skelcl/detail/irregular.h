// Evaluators and kernel-source generators for the irregular skeleton
// roots (Op::Stencil, Op::SparseGather). Split out of expr.cpp: these
// ops are opaque to the fusion rewriter (their input access patterns —
// halo-packed windows, CSR-indexed gathers — cannot be expressed as a
// load splice), so they share only the plan scaffolding with the dense
// evaluators, not the codegen.
#pragma once

#include <memory>
#include <string>

#include "skelcl/detail/expr.h"
#include "skelcl/detail/fusion.h"

namespace skelcl::detail {

class Runtime;

/// Generated program for a stencil node: a halo/boundary *pack* kernel
/// plus the windowed compute kernel, in one source so one programFor
/// covers both. Pure (usable from the scheduler's prepare phase).
std::string stencilProgramSource(const std::shared_ptr<ExprNode>& node,
                                 const FusionPlan& plan);

/// Generated program for a sparse-gather node: the one-row-per-work-item
/// gather/combine loop. Pure.
std::string sparseProgramSource(const std::shared_ptr<ExprNode>& node,
                                const FusionPlan& plan);

void runStencil(const std::shared_ptr<ExprNode>& node,
                const std::shared_ptr<VectorStateBase>& out,
                const FusionPlan& plan, Runtime& runtime,
                const std::string& salt);

void runSparseGather(const std::shared_ptr<ExprNode>& node,
                     const std::shared_ptr<VectorStateBase>& out,
                     const FusionPlan& plan, Runtime& runtime,
                     const std::string& salt);

} // namespace skelcl::detail
