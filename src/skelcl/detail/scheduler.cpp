#include "skelcl/detail/scheduler.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"
#include "ocl/ocl.h"
#include "skelcl/detail/expr.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl::detail {

/// One job that survived the liveness filter: the pinned node, its
/// (still-alive) output state, and when the skeleton call deferred it.
struct Scheduler::LiveJob {
  std::shared_ptr<ExprNode> node;
  std::shared_ptr<VectorStateBase> out;
  std::uint64_t registeredNs = 0;
};

namespace {

/// True when `target` lies inside the unevaluated part of `root`'s
/// subgraph — i.e. dispatching `root` would evaluate `target`.
bool subgraphContains(const ExprNode* root, const ExprNode* target,
                      std::unordered_set<const ExprNode*>& visited) {
  if (root == nullptr) {
    return false;
  }
  if (root == target) {
    return true;
  }
  if (root->evaluated || !visited.insert(root).second) {
    return false;
  }
  for (const ExprNode::Input& input : root->inputs) {
    if (subgraphContains(input.node.get(), target, visited)) {
      return true;
    }
  }
  return false;
}

} // namespace

Scheduler& Scheduler::instance() {
  static Scheduler scheduler;
  return scheduler;
}

void Scheduler::configure(bool asyncEnabled, std::size_t threads) {
  std::lock_guard lock(registryMutex_);
  asyncEnabled_ = asyncEnabled;
  jobs_.clear();
  hasJobs_.store(false, std::memory_order_relaxed);
  stats_ = Stats{};
  owner_ = std::this_thread::get_id();
  if (threads != threads_) {
    pool_.reset();
    threads_ = threads;
  }
}

void Scheduler::reset() {
  std::lock_guard lock(registryMutex_);
  jobs_.clear();
  hasJobs_.store(false, std::memory_order_relaxed);
  stats_ = Stats{};
}

void Scheduler::claimOwnershipLocked(const char* op) {
  const std::thread::id self = std::this_thread::get_id();
  if (jobs_.empty()) {
    owner_ = self; // sequential handoff: nothing of anyone else's pending
    return;
  }
  if (owner_ != self) {
    throw common::Error(
        std::string("Scheduler::") + op + ": called from a thread that "
        "does not own the job registry while " +
        std::to_string(jobs_.size()) + " job(s) from the owning thread "
        "are pending. Deferred jobs dispatch in registration order on "
        "the calling thread; external submitters must serialize through "
        "one thread (or adoptCallingThread() after the owner drained).");
  }
}

void Scheduler::noteDeferred(const std::shared_ptr<ExprNode>& node) {
  if (!asyncEnabled_ || draining_) {
    // draining_ also covers an ExternalDispatchScope: the job service
    // forces each job's roots itself, so registration would only leave
    // stale entries behind.
    return;
  }
  std::lock_guard lock(registryMutex_);
  claimOwnershipLocked("noteDeferred");
  jobs_.push_back(PendingJob{node, ocl::hostTimeNs()});
  hasJobs_.store(true, std::memory_order_relaxed);
}

void Scheduler::adoptCallingThread() {
  std::lock_guard lock(registryMutex_);
  if (!jobs_.empty() && owner_ != std::this_thread::get_id()) {
    throw common::Error(
        "Scheduler::adoptCallingThread: another thread still has " +
        std::to_string(jobs_.size()) +
        " pending job(s); the owner must drain (or the results must be "
        "consumed) before ownership can move");
  }
  owner_ = std::this_thread::get_id();
}

Scheduler::ExternalDispatchScope::ExternalDispatchScope() {
  Scheduler& scheduler = Scheduler::instance();
  scheduler.adoptCallingThread();
  COMMON_CHECK_MSG(!scheduler.draining_,
                   "nested external dispatch scope / drain");
  scheduler.draining_ = true;
}

Scheduler::ExternalDispatchScope::~ExternalDispatchScope() {
  Scheduler::instance().draining_ = false;
}

common::ThreadPool& Scheduler::pool() {
  if (threads_ == 0) {
    return common::ThreadPool::global();
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(threads_);
  }
  return *pool_;
}

void Scheduler::prepare(const std::vector<LiveJob>& live) {
  // Serial collection in registration order makes the set of distinct
  // programs — and their first-needed order — a deterministic function
  // of the program, independent of worker timing.
  std::vector<PreparedProgram> requested;
  for (const LiveJob& job : live) {
    collectNodePrograms(job.node, requested);
  }
  std::vector<PreparedProgram> unique;
  std::unordered_set<std::string> seen;
  for (PreparedProgram& program : requested) {
    if (seen.insert(program.salt + "\x1f" + program.source).second) {
      unique.push_back(std::move(program));
    }
  }
  if (unique.empty()) {
    return;
  }
  // Build in parallel; each worker's trace emissions (Build/CacheHit
  // spans, cache counters) land in its program's buffer, replayed below
  // in first-needed order so traces stay byte-identical run to run. A
  // failing build is ignored here: dispatch retries it inline (failed
  // builds are not memoized) and the error surfaces on the job that
  // actually needs the program.
  auto& runtime = Runtime::instance();
  std::vector<trace::Recorder::CaptureBuffer> buffers(unique.size());
  pool().parallelFor(unique.size(), [&](std::size_t i) {
    trace::Recorder::redirectThreadToBuffer(&buffers[i]);
    try {
      runtime.programFor(unique[i].source, unique[i].salt);
    } catch (...) { // NOLINT(bugprone-empty-catch)
    }
    trace::Recorder::redirectThreadToBuffer(nullptr);
  });
  for (trace::Recorder::CaptureBuffer& buffer : buffers) {
    trace::Recorder::instance().replay(buffer);
  }
}

void Scheduler::drain(const std::shared_ptr<ExprNode>& requested) {
  struct DrainGuard {
    bool& flag;
    ~DrainGuard() { flag = false; }
  };
  draining_ = true;
  DrainGuard guard{draining_};

  std::vector<PendingJob> taken;
  {
    std::lock_guard lock(registryMutex_);
    claimOwnershipLocked("drain");
    taken.swap(jobs_);
    hasJobs_.store(false, std::memory_order_relaxed);
  }

  std::vector<LiveJob> live;
  std::vector<PendingJob> kept;
  live.reserve(taken.size());
  for (const PendingJob& job : taken) {
    std::shared_ptr<ExprNode> node = job.node.lock();
    if (node == nullptr || node->evaluated || node->evaluating) {
      continue;
    }
    if (node->fanout > 0) {
      // A deferred parent reads this node: the parent's dispatch fuses
      // or forces it. If the parent dies unread instead, the node's own
      // consumption point still forces it — nothing is lost.
      continue;
    }
    if (node != requested) {
      std::unordered_set<const ExprNode*> visited;
      if (subgraphContains(node.get(), requested.get(), visited)) {
        // This job consumes the value being read right now: dispatching
        // it would speculatively run work the synchronous force defers
        // until the job's own consumption point. Keep it queued.
        kept.push_back(job);
        continue;
      }
    }
    std::shared_ptr<VectorStateBase> out = node->output.lock();
    if (out == nullptr) {
      // The result died unread; the computation is dead code (the same
      // elimination the synchronous force applies).
      node->evaluated = true;
      continue;
    }
    live.push_back(LiveJob{std::move(node), std::move(out),
                           job.registeredNs});
  }
  if (!kept.empty()) {
    std::lock_guard lock(registryMutex_);
    // jobs_ emptied above and nothing registers during a drain, so the
    // prepend keeps registration order.
    jobs_.insert(jobs_.begin(), kept.begin(), kept.end());
    hasJobs_.store(true, std::memory_order_relaxed);
  }
  if (live.empty()) {
    return;
  }

  std::uint64_t concurrentDelta = 0;
  {
    std::lock_guard lock(registryMutex_);
    ++stats_.drains;
    if (live.size() > stats_.maxConcurrent) {
      concurrentDelta = live.size() - stats_.maxConcurrent;
      stats_.maxConcurrent = live.size();
    }
  }
  if (concurrentDelta > 0 && trace::Recorder::enabled()) {
    // Cumulative counter whose final value is the max: bump by the
    // increase only.
    trace::Recorder::instance().bumpCounter("sched_concurrent_jobs",
                                            trace::kNoDevice, trace::now(),
                                            concurrentDelta);
  }

  // With a single live job the drain IS the synchronous force — skip
  // the prepare phase so even trace timestamps match the sync baseline.
  // With fault injection armed, prepare could consume a build@N trigger
  // that the inline retry would then sail past, so builds stay inline
  // and hit the injector in exactly the synchronous order.
  if (live.size() > 1 && !ocl::FaultInjector::enabled()) {
    prepare(live);
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    const LiveJob& job = live[i];
    const std::uint64_t dispatchNs = ocl::hostTimeNs();
    try {
      forceExprNode(job.node);
    } catch (...) {
      // Per-subgraph isolation: the error waits, as the original typed
      // exception, at this job's own consumption point; the remaining
      // jobs still dispatch.
      job.out->poisonPending(std::current_exception());
    }
    {
      std::lock_guard lock(registryMutex_);
      ++stats_.jobsDispatched;
    }
    const std::uint64_t queueWaitNs = dispatchNs - job.registeredNs;
    if (trace::Recorder::enabled()) {
      auto& recorder = trace::Recorder::instance();
      recorder.recordHostSpan(trace::HostKind::Scheduler, "sched.job",
                              trace::kNoDevice, job.registeredNs,
                              ocl::hostTimeNs(), queueWaitNs,
                              std::uint32_t(1 + i));
      recorder.bumpCounter("sched_queue_wait_ns", trace::kNoDevice,
                           trace::now(), queueWaitNs);
    }
  }
}

} // namespace skelcl::detail
