// Evaluators for the irregular skeleton roots. Both follow the plan
// scaffolding of expr.cpp's dense evaluators (argument binding, chunk
// visit order, per-device event chains, failure atomicity via the
// caller's poison-on-throw) but own their launch geometry:
//
// Stencil — block-distributes the input on *row-aligned* chunk
// boundaries, copies each chunk's halo rows from its neighbors with
// cross-device buffer copies (D2H+H2D engines), packs a per-chunk
// padded buffer resolving the boundary policy device-side, and runs the
// windowed compute kernel in three slices: the interior slice depends
// only on the chunk's own data, so it overlaps the halo transfers; the
// two R-row border slices wait for their halo. Degenerate geometry
// (fewer rows than the radius on any device, a single device, an empty
// vector) falls back to the Single distribution — the same gather rule
// Scan uses — where no halo exists at all.
//
// SparseGather — the matrix rows are block-partitioned (CsrState fixed
// that geometry at upload), the dense operand is copy-distributed, and
// one work-item folds one row's gathered values with the combine
// function. No inter-device traffic: the gather indexes the full
// replicated operand.
#include "skelcl/detail/irregular.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "skelcl/detail/csr_state.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/detail/source_utils.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl::detail {

namespace {

enum Boundary { kClamp = 0, kWrap = 1, kConstant = 2 };

/// Name Arguments::declSuffix("cv_") gives the constant fill value.
constexpr const char* kConstValue = "skelcl_cv_arg0";

void noteHaloBytes(std::uint64_t bytes) {
  if (trace::Recorder::enabled()) {
    trace::Recorder::instance().bumpCounter("halo_bytes", trace::kNoDevice,
                                            trace::now(), bytes);
  }
}

// Stage-argument plumbing; these mirror expr.cpp's file-local helpers
// (an irregular plan holds exactly one stage — the opaque root).

void prepareStageArguments(const FusionPlan& plan) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.prepare();
  }
}

std::size_t bindStageArguments(const FusionPlan& plan, ocl::Kernel& kernel,
                               std::size_t firstIndex,
                               std::size_t deviceIndex) {
  std::size_t at = firstIndex;
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.apply(kernel, at, deviceIndex);
    at += stage.node->args.count();
  }
  return at;
}

void collectStageDeps(const FusionPlan& plan, std::vector<ocl::Event>& deps,
                      std::size_t deviceIndex) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.collectDeps(deps, deviceIndex);
  }
}

void recordStageEvents(const FusionPlan& plan, const ocl::Event& event,
                       std::size_t deviceIndex) {
  for (const FusionStage& stage : plan.stages) {
    stage.node->args.recordEvent(event, deviceIndex);
  }
}

// --- stencil codegen -----------------------------------------------------

/// Statements resolving `skelcl_g` (a signed row — or 1D element — index
/// that may lie outside [0, total)) per the boundary policy and
/// assigning `skelcl_v` from `load`. Constant loads the fill argument on
/// the out-of-range side instead.
std::string resolveEdge(int boundary, const std::string& load,
                        const std::string& indent) {
  switch (boundary) {
    case kWrap:
      return indent + "if (skelcl_g < 0) skelcl_g += (int)skelcl_total;\n" +
             indent +
             "if (skelcl_g >= (int)skelcl_total) skelcl_g -= "
             "(int)skelcl_total;\n" +
             indent + "skelcl_v = " + load + ";\n";
    case kConstant:
      return indent +
             "if (skelcl_g < 0 || skelcl_g >= (int)skelcl_total) {\n" +
             indent + "  skelcl_v = " + std::string(kConstValue) + ";\n" +
             indent + "} else {\n" + indent + "  skelcl_v = " + load +
             ";\n" + indent + "}\n";
    default: // clamp
      return indent + "if (skelcl_g < 0) skelcl_g = 0;\n" + indent +
             "if (skelcl_g >= (int)skelcl_total) skelcl_g = "
             "(int)skelcl_total - 1;\n" +
             indent + "skelcl_v = " + load + ";\n";
  }
}

/// The pack kernel fills padded element range [p0, p0+pn) of the chunk's
/// halo-padded buffer. Each padded cell is either a halo row shipped
/// from a neighbor chunk (`skelcl_top`/`skelcl_bot`, present when the
/// matching `hastop`/`hasbot` flag is set), a plain local element, or a
/// boundary-policy resolve against the chunk's own data (single-device
/// wrap, the clamp/constant edges). It branches on the *padded* row, so
/// halo buffer row k always holds exactly the value padded row k needs —
/// under every policy, including wrap pulling the last rows of the grid
/// into device 0's top halo.
std::string packKernelSource(const StencilParams& P, const std::string& t) {
  const std::size_t W = P.width == 0 ? 1 : P.width;
  const bool is2D = P.width > 0;
  const std::string R = std::to_string(P.radius);
  const std::string Ru = R + "u";
  const std::string Wu = std::to_string(W) + "u";
  const std::string PWu = std::to_string(is2D ? W + 2 * P.radius : 1) + "u";

  std::string src =
      "\n__kernel void skelcl_stencil_pack(__global const " + t +
      "* skelcl_in, __global const " + t +
      "* skelcl_top, __global const " + t + "* skelcl_bot, __global " + t +
      "* skelcl_pad, uint skelcl_p0, uint skelcl_pn, uint skelcl_lrows, "
      "uint skelcl_base, uint skelcl_total, uint skelcl_hastop, "
      "uint skelcl_hasbot" +
      P.constArg.declSuffix("cv_") +
      ") {\n"
      "  size_t skelcl_gid = get_global_id(0);\n"
      "  if (skelcl_gid < skelcl_pn) {\n"
      "    uint skelcl_idx = skelcl_p0 + (uint)skelcl_gid;\n"
      "    " + t + " skelcl_v;\n";

  if (!is2D) {
    const std::string load = "skelcl_in[(uint)skelcl_g - skelcl_base]";
    src +=
        "    uint skelcl_p = skelcl_idx;\n"
        "    if (skelcl_p < " + Ru + " && skelcl_hastop != 0u) {\n"
        "      skelcl_v = skelcl_top[skelcl_p];\n"
        "    } else if (skelcl_p >= skelcl_lrows + " + Ru +
        " && skelcl_hasbot != 0u) {\n"
        "      skelcl_v = skelcl_bot[skelcl_p - skelcl_lrows - " + Ru +
        "];\n"
        "    } else {\n"
        "      int skelcl_g = (int)(skelcl_base + skelcl_p) - " + R +
        ";\n" +
        resolveEdge(P.boundary, load, "      ") +
        "    }\n";
  } else {
    const std::string load =
        "skelcl_in[((uint)skelcl_g - skelcl_base) * " + Wu +
        " + (uint)skelcl_c]";
    const std::string rowPart =
        "    if (skelcl_p < " + Ru + " && skelcl_hastop != 0u) {\n"
        "      skelcl_v = skelcl_top[skelcl_p * " + Wu +
        " + (uint)skelcl_c];\n"
        "    } else if (skelcl_p >= skelcl_lrows + " + Ru +
        " && skelcl_hasbot != 0u) {\n"
        "      skelcl_v = skelcl_bot[(skelcl_p - skelcl_lrows - " + Ru +
        ") * " + Wu + " + (uint)skelcl_c];\n"
        "    } else {\n"
        "      int skelcl_g = (int)(skelcl_base + skelcl_p) - " + R +
        ";\n" +
        resolveEdge(P.boundary, load, "      ") +
        "    }\n";
    src +=
        "    uint skelcl_p = skelcl_idx / " + PWu + ";\n"
        "    uint skelcl_q = skelcl_idx - skelcl_p * " + PWu + ";\n"
        "    int skelcl_c = (int)skelcl_q - " + R + ";\n";
    const std::string Wi = std::to_string(W);
    switch (P.boundary) {
      case kWrap:
        src += "    if (skelcl_c < 0) skelcl_c += " + Wi +
               ";\n"
               "    if (skelcl_c >= " + Wi + ") skelcl_c -= " + Wi +
               ";\n" +
               rowPart;
        break;
      case kConstant:
        src += "    if (skelcl_c < 0 || skelcl_c >= " + Wi +
               ") {\n"
               "      skelcl_v = " + std::string(kConstValue) +
               ";\n"
               "    } else {\n" +
               rowPart + "    }\n";
        break;
      default: // clamp
        src += "    if (skelcl_c < 0) skelcl_c = 0;\n"
               "    if (skelcl_c >= " + Wi + ") skelcl_c = " + Wi +
               " - 1;\n" +
               rowPart;
        break;
    }
  }
  src +=
      "    skelcl_pad[skelcl_idx] = skelcl_v;\n"
      "  }\n"
      "}\n";
  return src;
}

/// The compute kernel applies the user function to local output rows
/// [r0, r0 + rn): it receives a pointer to the window's top-left corner
/// in the padded buffer (plus the padded row stride in 2D), so the
/// function indexes the window relative to its own position — the
/// classic out-of-place stencil contract, center at offset R (1D) or
/// (R, R) (2D).
std::string computeKernelSource(const StencilParams& P, const std::string& t,
                                const std::string& funcName,
                                const std::string& argDecls,
                                const std::string& callSuffix) {
  const bool is2D = P.width > 0;
  std::string src = "\n__kernel void skelcl_stencil(__global const " + t +
                    "* skelcl_pad, __global " + t +
                    "* skelcl_out, uint skelcl_r0, uint skelcl_en" +
                    argDecls +
                    ") {\n"
                    "  size_t skelcl_gid = get_global_id(0);\n"
                    "  if (skelcl_gid < skelcl_en) {\n";
  if (!is2D) {
    src += "    size_t skelcl_i = (size_t)skelcl_r0 + skelcl_gid;\n"
           "    skelcl_out[skelcl_i] = " + funcName +
           "(skelcl_pad + skelcl_i" + callSuffix + ");\n";
  } else {
    const std::string Wu = std::to_string(P.width) + "u";
    const std::string PWu = std::to_string(P.width + 2 * P.radius) + "u";
    src += "    uint skelcl_j = skelcl_r0 + (uint)skelcl_gid / " + Wu +
           ";\n"
           "    uint skelcl_c = (uint)skelcl_gid % " + Wu +
           ";\n"
           "    skelcl_out[(size_t)skelcl_j * " + Wu +
           " + skelcl_c] = " + funcName + "(skelcl_pad + ((size_t)skelcl_j * " +
           PWu + " + skelcl_c), " + PWu + callSuffix + ");\n";
  }
  src += "  }\n"
         "}\n";
  return src;
}

/// The chunk whose rows cover `row` (chunks are ascending and disjoint).
const Chunk* chunkContainingRow(const std::vector<Chunk>& chunks,
                                std::size_t row, std::size_t W) {
  for (const Chunk& c : chunks) {
    const std::size_t r0 = c.offset / W;
    if (row >= r0 && row < r0 + c.count / W) {
      return &c;
    }
  }
  return nullptr;
}

} // namespace

std::string stencilProgramSource(const std::shared_ptr<ExprNode>& node,
                                 const FusionPlan& plan) {
  const StencilParams& P = *node->stencil;
  const FusionStage& stage = plan.stages.front();
  return registeredTypeDefinitions() + plan.functionsSource +
         packKernelSource(P, node->outType) +
         computeKernelSource(P, node->outType, plan.rootFuncName,
                             plan.argDecls,
                             node->args.callSuffix(stage.argPrefix));
}

std::string sparseProgramSource(const std::shared_ptr<ExprNode>& node,
                                const FusionPlan& plan) {
  const std::string& t = node->outType;
  const FusionStage& stage = plan.stages.front();
  return registeredTypeDefinitions() + plan.functionsSource +
         "\n__kernel void skelcl_spgather(__global const uint* "
         "skelcl_rowptr, __global const uint* skelcl_colidx, "
         "__global const " + t + "* skelcl_vals, __global const " + t +
         "* skelcl_x, __global " + t +
         "* skelcl_out, uint skelcl_rows, uint skelcl_nnzbase" +
         plan.argDecls +
         ") {\n"
         "  size_t skelcl_i = get_global_id(0);\n"
         "  if (skelcl_i < skelcl_rows) {\n"
         "    " + t + " skelcl_acc = " + node->identityExpr +
         ";\n"
         "    uint skelcl_b = skelcl_rowptr[skelcl_i] - skelcl_nnzbase;\n"
         "    uint skelcl_e = skelcl_rowptr[skelcl_i + 1] - "
         "skelcl_nnzbase;\n"
         "    for (uint skelcl_k = skelcl_b; skelcl_k < skelcl_e; "
         "++skelcl_k) {\n"
         "      skelcl_acc = " + node->sparse->combineName +
         "(skelcl_acc, " + plan.rootFuncName +
         "(skelcl_vals[skelcl_k], skelcl_x[skelcl_colidx[skelcl_k]]" +
         node->args.callSuffix(stage.argPrefix) +
         "));\n"
         "    }\n"
         "    skelcl_out[skelcl_i] = skelcl_acc;\n"
         "  }\n"
         "}\n";
}

void runStencil(const std::shared_ptr<ExprNode>& node,
                const std::shared_ptr<VectorStateBase>& out,
                const FusionPlan& plan, Runtime& runtime,
                const std::string& salt) {
  const StencilParams& P = *node->stencil;
  const std::size_t R = P.radius;
  const bool is2D = P.width > 0;
  const std::size_t W = is2D ? P.width : 1;
  const std::size_t elem = node->outElemSize;
  const bool wrap = P.boundary == kWrap;
  VectorStateBase& in = *plan.leaves.front();

  const std::size_t n = in.size();
  COMMON_CHECK(n % W == 0); // validated at the call site
  const std::size_t totalRows = n / W;

  // Geometry: a multi-device run needs every device's row share to
  // cover the radius, so each halo is one contiguous copy from exactly
  // one neighbor chunk. Degenerate shares fall back to a single device.
  const std::size_t devices = runtime.deviceCount();
  bool multi = devices > 1 && totalRows > 0;
  std::vector<std::size_t> rowCounts;
  if (multi) {
    rowCounts = runtime.blockPartition(totalRows);
    for (std::size_t rows : rowCounts) {
      if (rows < R) {
        multi = false;
        break;
      }
    }
  }
  if (multi) {
    // Row-aligned block layout (blockPartition splits elements; a 2D
    // stencil must not cut a grid row across devices). An iterated
    // stencil hits matchLayout's same-layout fast path after the first
    // step and stays resident.
    std::vector<Chunk> layout;
    std::size_t row = 0;
    for (std::size_t d = 0; d < devices; ++d) {
      Chunk c;
      c.deviceIndex = d;
      c.offset = row * W;
      c.count = rowCounts[d] * W;
      row += rowCounts[d];
      layout.push_back(std::move(c));
    }
    in.matchLayout(Distribution::Block, 0, layout);
  } else {
    if (in.distribution() != Distribution::Single) {
      in.setDistribution(Distribution::Single, 0);
    }
    in.ensureOnDevices();
  }
  prepareStageArguments(plan);
  out->allocateLikeBase(in);

  ocl::Program& program =
      runtime.programFor(stencilProgramSource(node, plan), salt);
  const auto& chunks = in.chunks();
  const std::size_t pw = is2D ? W + 2 * R : 1; // padded row length
  const std::size_t haloBytes = R * W * elem;

  for (std::size_t idx : runtime.chunkVisitOrder(chunks.size())) {
    const Chunk& chunk = chunks[idx];
    if (chunk.count == 0) {
      continue;
    }
    try {
      const std::size_t d = chunk.deviceIndex;
      const auto& device = runtime.devices()[d];
      auto& queue = runtime.queue(d);
      const std::size_t rows = chunk.count / W;
      const std::size_t rowBase = chunk.offset / W;
      ocl::Buffer pad =
          runtime.context().createBuffer(device, (rows + 2 * R) * pw * elem);

      // Halo transfers, enqueued on the *destination* queue: the copy
      // occupies the source's D2H and this device's H2D engine, leaving
      // the compute engine free for the interior slice below.
      const bool hasTop = multi && (rowBase > 0 || wrap);
      const bool hasBot = multi && (rowBase + rows < totalRows || wrap);
      ocl::Buffer top;
      ocl::Buffer bot;
      ocl::Event topReady;
      ocl::Event botReady;
      if (hasTop) {
        const std::size_t srcRow =
            rowBase > 0 ? rowBase - R : totalRows - R;
        const Chunk& src = *chunkContainingRow(chunks, srcRow, W);
        top = runtime.context().createBuffer(device, haloBytes);
        std::vector<ocl::Event> deps;
        appendEvent(deps, src.ready);
        topReady = queue.enqueueCopyBuffer(
            src.buffer, (srcRow - src.offset / W) * W * elem, top, 0,
            haloBytes, deps);
        noteHaloBytes(haloBytes);
      }
      if (hasBot) {
        const std::size_t next = rowBase + rows;
        const std::size_t srcRow = next < totalRows ? next : 0;
        const Chunk& src = *chunkContainingRow(chunks, srcRow, W);
        bot = runtime.context().createBuffer(device, haloBytes);
        std::vector<ocl::Event> deps;
        appendEvent(deps, src.ready);
        botReady = queue.enqueueCopyBuffer(
            src.buffer, (srcRow - src.offset / W) * W * elem, bot, 0,
            haloBytes, deps);
        noteHaloBytes(haloBytes);
      }

      const std::size_t wg = effectiveWorkGroupSize(node->workGroupSize,
                                                    device);
      auto pack = [&](std::size_t pBegin, std::size_t pCount,
                      std::vector<ocl::Event> deps) {
        ocl::Kernel kernel = program.createKernel("skelcl_stencil_pack");
        std::size_t arg = 0;
        kernel.setArg(arg++, chunk.buffer);
        kernel.setArg(arg++, hasTop ? top : chunk.buffer);
        kernel.setArg(arg++, hasBot ? bot : chunk.buffer);
        kernel.setArg(arg++, pad);
        kernel.setArg(arg++, std::uint32_t(pBegin));
        kernel.setArg(arg++, std::uint32_t(pCount));
        kernel.setArg(arg++, std::uint32_t(rows));
        kernel.setArg(arg++, std::uint32_t(rowBase));
        kernel.setArg(arg++, std::uint32_t(totalRows));
        kernel.setArg(arg++, std::uint32_t(hasTop ? 1 : 0));
        kernel.setArg(arg++, std::uint32_t(hasBot ? 1 : 0));
        if (!P.constArg.empty()) {
          P.constArg.apply(kernel, arg, d);
        }
        return queue.enqueueNDRange(
            kernel, ocl::NDRange1D{roundUp(pCount, wg), wg}, deps);
      };
      auto compute = [&](std::size_t r0, std::size_t rn,
                         std::vector<ocl::Event> deps) {
        ocl::Kernel kernel = program.createKernel("skelcl_stencil");
        std::size_t arg = 0;
        kernel.setArg(arg++, pad);
        kernel.setArg(arg++, out->chunkForDevice(d).buffer);
        kernel.setArg(arg++, std::uint32_t(r0));
        kernel.setArg(arg++, std::uint32_t(rn * W));
        bindStageArguments(plan, kernel, arg, d);
        collectStageDeps(plan, deps, d);
        return queue.enqueueNDRange(
            kernel, ocl::NDRange1D{roundUp(rn * W, wg), wg}, deps);
      };

      // The interior pack needs only the chunk's own upload; the border
      // packs additionally wait for their halo copy (and still read the
      // chunk for the policy-resolved cells).
      std::vector<ocl::Event> own;
      appendEvent(own, chunk.ready);
      ocl::Event interiorPacked = pack(R * pw, rows * pw, own);
      std::vector<ocl::Event> topDeps = own;
      appendEvent(topDeps, topReady);
      ocl::Event topPacked = pack(0, R * pw, topDeps);
      std::vector<ocl::Event> botDeps = own;
      appendEvent(botDeps, botReady);
      ocl::Event botPacked = pack((rows + R) * pw, R * pw, botDeps);

      // Compute in three slices chained into one final event: the
      // interior rows [R, rows-R) depend only on the interior pack, so
      // they overlap the halo exchanges still in flight; the two R-row
      // borders wait for their halo pack.
      ocl::Event done;
      if (rows >= 2 * R) {
        ocl::Event mid;
        if (rows > 2 * R) {
          mid = compute(R, rows - 2 * R, {interiorPacked});
        }
        std::vector<ocl::Event> tDeps{topPacked, interiorPacked};
        appendEvent(tDeps, mid);
        ocl::Event topDone = compute(0, R, tDeps);
        done = compute(rows - R, R, {botPacked, interiorPacked, topDone});
      } else {
        // Chunk narrower than two radii (single-device fallback only):
        // every output row touches both edges; one slice.
        done = compute(0, rows, {topPacked, interiorPacked, botPacked});
      }
      out->recordEventOn(d, done);
      recordStageEvents(plan, done, d);
    } catch (ocl::ClError& e) {
      e.prependContext(plan.label + " skeleton on device " +
                       std::to_string(chunk.deviceIndex));
      throw;
    }
  }
  out->markDevicesModified();
}

void runSparseGather(const std::shared_ptr<ExprNode>& node,
                     const std::shared_ptr<VectorStateBase>& out,
                     const FusionPlan& plan, Runtime& runtime,
                     const std::string& salt) {
  CsrStateBase& csr = *node->sparse->csr;
  VectorStateBase& x = *plan.leaves.front();

  // The gather may touch any column on any device: replicate the dense
  // operand. The matrix's row partition (fixed at its first upload)
  // dictates the output layout.
  if (x.distribution() != Distribution::Copy) {
    x.setDistribution(Distribution::Copy, 0);
  }
  x.ensureOnDevices();
  csr.ensureOnDevices();
  prepareStageArguments(plan);

  const std::vector<CsrChunk>& cchunks = csr.chunks();
  std::vector<Chunk> layout;
  layout.reserve(cchunks.size());
  for (const CsrChunk& cc : cchunks) {
    Chunk c;
    c.deviceIndex = cc.deviceIndex;
    c.offset = cc.rowBegin;
    c.count = cc.rowCount;
    layout.push_back(std::move(c));
  }
  out->allocateBlockLayoutBase(layout);

  ocl::Program& program =
      runtime.programFor(sparseProgramSource(node, plan), salt);
  for (std::size_t idx : runtime.chunkVisitOrder(cchunks.size())) {
    const CsrChunk& cc = cchunks[idx];
    if (cc.rowCount == 0) {
      continue; // zero-row share (more devices than rows): no launch
    }
    try {
      const std::size_t d = cc.deviceIndex;
      const auto& device = runtime.devices()[d];
      ocl::Kernel kernel = program.createKernel("skelcl_spgather");
      std::size_t arg = 0;
      kernel.setArg(arg++, cc.rowPtr);
      kernel.setArg(arg++, cc.colIdx);
      kernel.setArg(arg++, cc.values);
      kernel.setArg(arg++, x.chunkForDevice(d).buffer);
      kernel.setArg(arg++, out->chunkForDevice(d).buffer);
      kernel.setArg(arg++, std::uint32_t(cc.rowCount));
      kernel.setArg(arg++, std::uint32_t(cc.nnzBegin));
      bindStageArguments(plan, kernel, arg, d);

      std::vector<ocl::Event> deps;
      appendEvent(deps, cc.ready);
      appendEvent(deps, x.readyEventOn(d));
      collectStageDeps(plan, deps, d);
      const std::size_t wg = effectiveWorkGroupSize(node->workGroupSize,
                                                    device);
      ocl::Event done = runtime.queue(d).enqueueNDRange(
          kernel, ocl::NDRange1D{roundUp(cc.rowCount, wg), wg}, deps);
      out->recordEventOn(d, done);
      recordStageEvents(plan, done, d);
    } catch (ocl::ClError& e) {
      e.prependContext(plan.label + " skeleton on device " +
                       std::to_string(cc.deviceIndex));
      throw;
    }
  }
  out->markDevicesModified();
}

} // namespace skelcl::detail
