#include "skelcl/detail/runtime.h"

#include "common/env.h"
#include "common/logging.h"
#include "skelcl/detail/partition.h"
#include "skelcl/detail/scheduler.h"
#include "skelcl/distribution.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"
#include "trace/serialize.h"

namespace skelcl {

const char* distributionName(Distribution d) noexcept {
  switch (d) {
    case Distribution::Single: return "single";
    case Distribution::Copy: return "copy";
    case Distribution::Block: return "block";
  }
  return "?";
}

const char* weightModeName(WeightMode m) noexcept {
  switch (m) {
    case WeightMode::Even: return "even";
    case WeightMode::Static: return "static";
    case WeightMode::Measured: return "measured";
  }
  return "?";
}

namespace detail {

Runtime& Runtime::instance() {
  static Runtime runtime;
  return runtime;
}

void Runtime::init(const DeviceSelection& selection) {
  if (initialized_) {
    terminate();
  }
  // SKELCL_DEVICES replaces the simulated machine wholesale with the
  // spec'd (possibly heterogeneous) platform, and the selection widens
  // to every spec'd device — the spec already says exactly which devices
  // the user wants, including CPU entries a GPU-only selection would
  // silently drop.
  DeviceSelection effective = selection;
  const std::string deviceSpec = envStr("SKELCL_DEVICES");
  if (!deviceSpec.empty()) {
    ocl::configureSystem(ocl::SystemConfig::parse(deviceSpec));
    effective = DeviceSelection::allDevices();
    LOG_INFO("SKELCL_DEVICES=" << deviceSpec
                               << ": configured heterogeneous platform");
  }
  // SKELCL_WEIGHTS picks how block-distribution weights are derived;
  // unknown values fall back to even rather than fail, matching the
  // other scheduling knobs.
  const std::string weights = envStr("SKELCL_WEIGHTS", "even");
  if (weights == "static") {
    weightMode_ = WeightMode::Static;
  } else if (weights == "measured") {
    weightMode_ = WeightMode::Measured;
  } else {
    if (weights != "even" && !weights.empty()) {
      LOG_WARN("unknown SKELCL_WEIGHTS '" << weights << "'; using even");
    }
    weightMode_ = WeightMode::Even;
  }
  devices_.clear();
  for (const auto& platform : ocl::getPlatforms()) {
    for (const auto& device : platform.devices(effective.type)) {
      devices_.push_back(device);
      if (effective.count != 0 && devices_.size() == effective.count) {
        break;
      }
    }
    if (effective.count != 0 && devices_.size() == effective.count) {
      break;
    }
  }
  COMMON_EXPECTS(!devices_.empty(),
                 "SkelCL init: no matching devices available");
  if (effective.count != 0 && devices_.size() < effective.count) {
    throw common::InvalidArgument(
        "SkelCL init: requested " + std::to_string(effective.count) +
        " devices, only " + std::to_string(devices_.size()) + " available");
  }
  context_ = std::make_unique<ocl::Context>(devices_);
  // Out-of-order queues let transfers overlap compute on each device's
  // engine timelines; the skeletons express ordering through event
  // dependencies. SKELCL_SERIALIZE=1 restores the pre-overlap behavior
  // (in-order queues) without changing which commands are enqueued.
  serializedQueues_ = envFlag("SKELCL_SERIALIZE");
  // SKELCL_FUSION=0 turns the rewrite rules off: the expression DAG is
  // still built, but every node evaluates as its own kernel — the
  // differential baseline the fusion suite compares against.
  fusionEnabled_ = envFlag("SKELCL_FUSION", true);
  fusionStats_.fusedStages.store(0);
  fusionStats_.fusedLaunches.store(0);
  fusionStats_.intermediateBuffers.store(0);
  fusionStats_.intermediateBytes.store(0);
  {
    std::lock_guard lock(programMutex_);
    programMemo_.clear();
  }
  // SKELCL_ASYNC=0 turns the task-graph scheduler off: every deferred
  // job evaluates at its own consumption point, exactly the pre-async
  // behavior — the differential baseline the async suite compares
  // against. SKELCL_SCHED_THREADS sizes the scheduler's prepare pool.
  asyncEnabled_ = envFlag("SKELCL_ASYNC", true);
  const long long schedThreads = envInt("SKELCL_SCHED_THREADS", 0);
  schedulerThreads_ = schedThreads < 0 ? 0 : std::size_t(schedThreads);
  Scheduler::instance().configure(asyncEnabled_, schedulerThreads_);
  const long long pieces = envInt("SKELCL_TRANSFER_CHUNKS", 4);
  transferPieces_ = pieces < 1 ? 1 : std::size_t(pieces);
  // SKELCL_SCHEDULE=shuffle explores an alternative legal schedule per
  // SKELCL_SCHEDULE_SEED (see Runtime::schedulePolicy); the default is
  // the single deterministic FIFO tie-break order.
  const std::string schedule = envStr("SKELCL_SCHEDULE", "fifo");
  if (schedule == "shuffle") {
    schedulePolicy_ = ocl::SchedulePolicy::seededShuffle(
        std::uint64_t(envInt("SKELCL_SCHEDULE_SEED", 1)));
  } else {
    if (schedule != "fifo" && !schedule.empty()) {
      LOG_WARN("unknown SKELCL_SCHEDULE '" << schedule
                                           << "'; using fifo");
    }
    schedulePolicy_ = ocl::SchedulePolicy::fifo();
  }
  orderRng_ = common::Xoshiro256(schedulePolicy_.seed ^
                                 0xd1b54a32d192ed03ULL);
  // SKELCL_FAULT_PLAN/SKELCL_FAULT_SEED arm deterministic fault
  // injection for this init()..terminate() cycle; reconfiguring here
  // resets the injector's counters and PRNG, so two identical runs
  // replay the exact same failure sequence.
  ocl::FaultInjector::instance().configureFromEnv();
  // SKELCL_TRACE=<path> records this init()..terminate() cycle and
  // writes the trace at terminate() — Chrome trace-event JSON when the
  // path ends in ".json", the skeltrace binary format otherwise. Each
  // cycle overwrites the file (the virtual clock restarts with the
  // simulated machine, so concatenating cycles would be meaningless).
  tracePath_ = envStr("SKELCL_TRACE");
  if (!tracePath_.empty()) {
    trace::Recorder::instance().start();
  }
  queues_.clear();
  for (const auto& device : devices_) {
    queues_.emplace_back(device, ocl::Backend::OpenCL,
                         serializedQueues_ ? ocl::QueueOrder::InOrder
                                           : ocl::QueueOrder::OutOfOrder,
                         schedulePolicy_);
  }
  if (cache_ == nullptr) {
    cache_ = std::make_unique<KernelCache>();
  }
  initialized_ = true;
  LOG_INFO("SkelCL initialized with " << devices_.size() << " device(s)");
}

void Runtime::terminate() {
  // Outstanding deferred jobs are dead code at terminate (their outputs
  // can never be read afterwards), exactly as under synchronous
  // evaluation — drop them instead of dispatching.
  Scheduler::instance().reset();
  if (!tracePath_.empty() && trace::Recorder::enabled()) {
    const trace::Trace collected = trace::Recorder::instance().stop();
    try {
      trace::writeTraceFile(tracePath_, collected);
      LOG_INFO("trace written to " << tracePath_ << " ("
                                   << collected.commands.size()
                                   << " command spans)");
    } catch (const common::Error& e) {
      LOG_WARN("cannot write trace to " << tracePath_ << ": " << e.what());
    }
  }
  tracePath_.clear();
  queues_.clear();
  {
    std::lock_guard lock(programMutex_);
    programMemo_.clear();
  }
  context_.reset();
  devices_.clear();
  initialized_ = false;
}

ocl::Program& Runtime::programFor(const std::string& source,
                                  const std::string& salt) {
  requireInit();
  const std::string key = salt + "\x1f" + source;
  std::shared_ptr<ProgramEntry> entry;
  {
    std::lock_guard lock(programMutex_);
    std::shared_ptr<ProgramEntry>& slot = programMemo_[key];
    if (slot == nullptr) {
      slot = std::make_shared<ProgramEntry>();
    }
    entry = slot;
  }
  // Build outside the map lock so distinct keys compile in parallel
  // (the scheduler's prepare workers); call_once makes concurrent
  // requests for the same key share one build. A throwing build leaves
  // the flag unset, so the next request retries — the same "failed
  // builds are not memoized" semantics the synchronous path had.
  std::call_once(entry->once, [&] {
    entry->program.emplace(kernelCache().getOrBuild(
        *context_, source, kDefaultBuildOptions, salt));
  });
  return *entry->program;
}

void Runtime::requireInit() const {
  if (!initialized_) {
    throw common::Error(
        "SkelCL is not initialized; call skelcl::init() first");
  }
}

const std::vector<ocl::Device>& Runtime::devices() const {
  requireInit();
  return devices_;
}

ocl::Context& Runtime::context() {
  requireInit();
  return *context_;
}

ocl::CommandQueue& Runtime::queue(std::size_t deviceIndex) {
  requireInit();
  COMMON_CHECK(deviceIndex < queues_.size());
  return queues_[deviceIndex];
}

std::vector<std::size_t> Runtime::chunkVisitOrder(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  if (schedulePolicy_.kind == ocl::SchedulePolicy::Kind::SeededShuffle) {
    // Fisher-Yates with the runtime's seeded stream: deterministic per
    // (seed, call sequence), different per call.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[orderRng_.nextBelow(i)]);
    }
  }
  return order;
}

std::vector<double> Runtime::blockWeights() const {
  requireInit();
  std::vector<double> weights(devices_.size(), 1.0);
  switch (weightMode_) {
    case WeightMode::Even:
      break;
    case WeightMode::Static:
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        weights[i] = devices_[i].spec().peakCyclesPerNs();
      }
      break;
    case WeightMode::Measured: {
      // Weigh by observed throughput (cycles retired per busy ns). Until
      // every claimed device has a compute sample the measurements say
      // nothing about the unsampled ones, so stay even — the first
      // skeleton call runs even, the next redistribution adapts.
      const std::vector<trace::DeviceLoad> loads =
          trace::LoadMonitor::instance().snapshot();
      std::vector<double> measured(devices_.size(), 0.0);
      bool complete = true;
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        const std::uint32_t index = devices_[i].index();
        if (index >= loads.size() || loads[index].launches == 0) {
          complete = false;
          break;
        }
        measured[i] = loads[index].cyclesPerBusyNs();
      }
      if (complete) {
        weights = std::move(measured);
      }
      break;
    }
  }
  return weights;
}

std::vector<std::uint32_t> Runtime::deviceNodes() const {
  requireInit();
  std::vector<std::uint32_t> nodes;
  nodes.reserve(devices_.size());
  for (const auto& device : devices_) {
    nodes.push_back(device.node());
  }
  return nodes;
}

std::vector<std::size_t> Runtime::blockPartition(std::size_t n) const {
  return nodeBlockPartition(n, blockWeights(), deviceNodes());
}

KernelCache& Runtime::kernelCache() {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<KernelCache>();
  }
  return *cache_;
}

} // namespace detail

void init(const DeviceSelection& selection) {
  detail::Runtime::instance().init(selection);
}

void terminate() { detail::Runtime::instance().terminate(); }

std::size_t deviceCount() {
  return detail::Runtime::instance().deviceCount();
}

} // namespace skelcl
