#include "skelcl/detail/runtime.h"

#include <cstdlib>

#include "common/logging.h"
#include "skelcl/distribution.h"

namespace skelcl {

const char* distributionName(Distribution d) noexcept {
  switch (d) {
    case Distribution::Single: return "single";
    case Distribution::Copy: return "copy";
    case Distribution::Block: return "block";
  }
  return "?";
}

namespace detail {

Runtime& Runtime::instance() {
  static Runtime runtime;
  return runtime;
}

void Runtime::init(const DeviceSelection& selection) {
  if (initialized_) {
    terminate();
  }
  devices_.clear();
  for (const auto& platform : ocl::getPlatforms()) {
    for (const auto& device : platform.devices(selection.type)) {
      devices_.push_back(device);
      if (selection.count != 0 && devices_.size() == selection.count) {
        break;
      }
    }
    if (selection.count != 0 && devices_.size() == selection.count) {
      break;
    }
  }
  COMMON_EXPECTS(!devices_.empty(),
                 "SkelCL init: no matching devices available");
  if (selection.count != 0 && devices_.size() < selection.count) {
    throw common::InvalidArgument(
        "SkelCL init: requested " + std::to_string(selection.count) +
        " devices, only " + std::to_string(devices_.size()) + " available");
  }
  context_ = std::make_unique<ocl::Context>(devices_);
  // Out-of-order queues let transfers overlap compute on each device's
  // engine timelines; the skeletons express ordering through event
  // dependencies. SKELCL_SERIALIZE=1 restores the pre-overlap behavior
  // (in-order queues) without changing which commands are enqueued.
  const char* serialize = std::getenv("SKELCL_SERIALIZE");
  serializedQueues_ =
      serialize != nullptr && serialize[0] != '\0' && serialize[0] != '0';
  transferPieces_ = 4;
  if (const char* pieces = std::getenv("SKELCL_TRANSFER_CHUNKS")) {
    const long n = std::atol(pieces);
    transferPieces_ = n < 1 ? 1 : std::size_t(n);
  }
  queues_.clear();
  for (const auto& device : devices_) {
    queues_.emplace_back(device, ocl::Backend::OpenCL,
                         serializedQueues_ ? ocl::QueueOrder::InOrder
                                           : ocl::QueueOrder::OutOfOrder);
  }
  if (cache_ == nullptr) {
    cache_ = std::make_unique<KernelCache>();
  }
  initialized_ = true;
  LOG_INFO("SkelCL initialized with " << devices_.size() << " device(s)");
}

void Runtime::terminate() {
  queues_.clear();
  context_.reset();
  devices_.clear();
  initialized_ = false;
}

void Runtime::requireInit() const {
  if (!initialized_) {
    throw common::Error(
        "SkelCL is not initialized; call skelcl::init() first");
  }
}

const std::vector<ocl::Device>& Runtime::devices() const {
  requireInit();
  return devices_;
}

ocl::Context& Runtime::context() {
  requireInit();
  return *context_;
}

ocl::CommandQueue& Runtime::queue(std::size_t deviceIndex) {
  requireInit();
  COMMON_CHECK(deviceIndex < queues_.size());
  return queues_[deviceIndex];
}

KernelCache& Runtime::kernelCache() {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<KernelCache>();
  }
  return *cache_;
}

} // namespace detail

void init(const DeviceSelection& selection) {
  detail::Runtime::instance().init(selection);
}

void terminate() { detail::Runtime::instance().terminate(); }

std::size_t deviceCount() {
  return detail::Runtime::instance().deviceCount();
}

} // namespace skelcl
