// Shared machinery for the skeleton implementations: generated-program
// memoization on top of the on-disk kernel cache, and launch geometry.
#pragma once

#include <string>
#include <unordered_map>

#include "skelcl/detail/runtime.h"
#include "skelcl/detail/source_utils.h"

namespace skelcl::detail {

/// Per-skeleton-instance memo: the same generated source is built once
/// per process (the disk cache then makes *cross-process* reuse cheap,
/// which is the effect the paper measures).
class ProgramMemo {
public:
  ocl::Program& get(const std::string& source) {
    auto it = programs_.find(source);
    if (it == programs_.end()) {
      auto& runtime = Runtime::instance();
      ocl::Program program = runtime.kernelCache().getOrBuild(
          runtime.context(), source, kDefaultBuildOptions);
      it = programs_.emplace(source, std::move(program)).first;
    }
    return it->second;
  }

private:
  std::unordered_map<std::string, ocl::Program> programs_;
};

inline std::size_t roundUp(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

/// Resolves the effective work-group size for a launch: the user's
/// explicit choice if set, otherwise SkelCL's default (256), clamped to
/// the device limit.
inline std::size_t effectiveWorkGroupSize(std::size_t userChoice,
                                          const ocl::Device& device) {
  auto& runtime = Runtime::instance();
  const std::size_t wanted =
      userChoice != 0 ? userChoice : runtime.defaultWorkGroupSize();
  return std::min<std::size_t>(wanted, device.maxWorkGroupSize());
}

} // namespace skelcl::detail
