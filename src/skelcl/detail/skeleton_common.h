// Shared machinery for the skeleton implementations: generated-program
// memoization on top of the on-disk kernel cache, launch geometry, and
// the event plumbing that lets skeleton launches pipeline against split
// uploads instead of serializing behind a finish().
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "skelcl/detail/runtime.h"
#include "skelcl/detail/source_utils.h"

namespace skelcl::detail {

/// Per-skeleton-instance memo: the same generated source is built once
/// per process (the disk cache then makes *cross-process* reuse cheap,
/// which is the effect the paper measures).
class ProgramMemo {
public:
  ocl::Program& get(const std::string& source) {
    auto it = programs_.find(source);
    if (it == programs_.end()) {
      auto& runtime = Runtime::instance();
      ocl::Program program = runtime.kernelCache().getOrBuild(
          runtime.context(), source, kDefaultBuildOptions);
      it = programs_.emplace(source, std::move(program)).first;
    }
    return it->second;
  }

private:
  std::unordered_map<std::string, ocl::Program> programs_;
};

inline std::size_t roundUp(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

/// Resolves the effective work-group size for a launch: the user's
/// explicit choice if set, otherwise SkelCL's default (256), clamped to
/// the device limit.
inline std::size_t effectiveWorkGroupSize(std::size_t userChoice,
                                          const ocl::Device& device) {
  auto& runtime = Runtime::instance();
  const std::size_t wanted =
      userChoice != 0 ? userChoice : runtime.defaultWorkGroupSize();
  return std::min<std::size_t>(wanted, device.maxWorkGroupSize());
}

/// (end element, event) list of a split upload, ascending by end.
using UploadPieces = std::vector<std::pair<std::size_t, ocl::Event>>;

inline void appendEvent(std::vector<ocl::Event>& deps,
                        const ocl::Event& event) {
  if (event.valid()) {
    deps.push_back(event);
  }
}

/// Event of the upload piece that covers host elements [0, elemEnd).
/// Pieces run FIFO on the H2D engine, so the first piece whose end
/// reaches elemEnd completes after every earlier piece.
inline ocl::Event pieceCovering(const UploadPieces& pieces,
                                std::size_t elemEnd) {
  for (const auto& piece : pieces) {
    if (piece.first >= elemEnd) {
      return piece.second;
    }
  }
  return pieces.empty() ? ocl::Event() : pieces.back().second;
}

/// Enqueues one logical data-parallel launch of `count` elements with
/// work-group size `wg`, split into wg-aligned sub-launches pipelined
/// against split upload pieces: slice i starts as soon as the pieces
/// covering its elements have landed, while later pieces still stream
/// over PCIe (double buffering). Slice boundaries are piece ends rounded
/// *down* to `wg` (last slice absorbs the rest), so the slices partition
/// the unsplit ND-range exactly — every work item runs once with the
/// same global id, keeping total kernel cycles invariant; no slice reads
/// elements its dependency pieces have not delivered. With no multi-
/// piece list this degenerates to the plain single launch.
///
/// `baseDeps` must NOT contain the ready events of chunks whose piece
/// lists are passed here (that event is the *last* piece — depending on
/// it from every slice would serialize the pipeline).
///
/// Splitting is skipped when a slice would hold fewer than a few waves
/// of work-groups per compute unit: small launches suffer wave
/// quantization (the tail effect — a launch of ~1 group per CU runs as
/// long as its slowest CU with nothing to backfill), which costs a
/// compute-bound kernel far more than transfer overlap can win back.
/// Memory-bound launches — where overlap pays — have their duration set
/// by bytes moved, which splits exactly linearly.
inline ocl::Event launchPipelined(
    ocl::CommandQueue& queue, ocl::Kernel& kernel, std::size_t count,
    std::size_t wg, const std::vector<ocl::Event>& baseDeps,
    const std::vector<const UploadPieces*>& pieceLists) {
  constexpr std::size_t kMinWavesPerSlice = 4;
  const std::size_t total = roundUp(count, wg);
  const UploadPieces* driver = nullptr;
  for (const UploadPieces* list : pieceLists) {
    if (list != nullptr && list->size() > 1 &&
        (driver == nullptr || list->size() > driver->size())) {
      driver = list;
    }
  }
  if (driver != nullptr) {
    const std::size_t cus = std::max<std::size_t>(
        1, queue.device().spec().computeUnits);
    const std::size_t minGroupsPerSlice = kMinWavesPerSlice * cus;
    if (total / wg < driver->size() * minGroupsPerSlice) {
      driver = nullptr;
    }
  }
  if (driver == nullptr || total <= wg) {
    std::vector<ocl::Event> deps = baseDeps;
    for (const UploadPieces* list : pieceLists) {
      if (list != nullptr && !list->empty()) {
        appendEvent(deps, list->back().second);
      }
    }
    return queue.enqueueNDRange(kernel, ocl::NDRange1D{total, wg}, deps);
  }
  ocl::Event last;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < driver->size(); ++i) {
    const bool isLast = i + 1 == driver->size();
    const std::size_t end =
        isLast ? total : std::min((*driver)[i].first / wg * wg, total);
    if (end <= begin) {
      continue; // piece smaller than a work-group: next slice absorbs it
    }
    std::vector<ocl::Event> deps = baseDeps;
    for (const UploadPieces* list : pieceLists) {
      if (list != nullptr) {
        appendEvent(deps, pieceCovering(*list, std::min(end, count)));
      }
    }
    last = queue.enqueueNDRange(kernel,
                                ocl::NDRange1D{end - begin, wg, begin}, deps);
    begin = end;
  }
  return last;
}

} // namespace skelcl::detail
