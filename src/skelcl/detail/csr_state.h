// Device-side state of a CSR matrix (skelcl/sparse.h). A CsrMatrix is
// not a Vector: its per-device rowPtr slices *overlap* — the cut row's
// pointer appears on both neighbors — so the chunk machinery of
// VectorState does not fit. The matrix is immutable after construction,
// which keeps the staging logic one-way: partition the rows with the
// runtime's current block weights (largest-remainder, weight-aware —
// the same partitioner Vector blocks use, so SKELCL_WEIGHTS=measured
// shapes sparse row chunks exactly like dense element chunks), slice
// rowPtr/colIdx/values per device, upload once, and keep that geometry
// for the matrix's lifetime. Row-pointer slices stay absolute; kernels
// subtract the slice's base nnz (CsrChunk::nnzBegin) instead, so the
// host never rewrites the index arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ocl/buffer.h"
#include "ocl/event.h"

namespace skelcl::detail {

/// One device's share of a CSR matrix: rows [rowBegin, rowBegin +
/// rowCount) with their index/value slices. `rowPtr` holds rowCount + 1
/// *absolute* entries; `colIdx`/`values` hold the nnzCount entries
/// starting at absolute nonzero nnzBegin.
struct CsrChunk {
  std::size_t deviceIndex = 0;
  std::size_t rowBegin = 0;
  std::size_t rowCount = 0;
  std::size_t nnzBegin = 0;
  std::size_t nnzCount = 0;
  ocl::Buffer rowPtr;
  ocl::Buffer colIdx;
  ocl::Buffer values;
  /// Event of the last upload into this chunk's buffers; consumers pass
  /// it as a dependency instead of calling finish().
  ocl::Event ready;
};

/// Type-erased interface the expression-DAG evaluator works against
/// (detail/irregular.cpp); the typed CsrState<T> lives in
/// skelcl/sparse.h.
class CsrStateBase {
public:
  virtual ~CsrStateBase() = default;
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;
  virtual std::size_t nnz() const = 0;
  virtual std::string valueTypeName() const = 0;
  virtual std::size_t valueSize() const = 0;
  /// Partitions the rows with the runtime's current block weights and
  /// uploads each device's slices. Idempotent: the first call fixes the
  /// geometry (like a Vector, the matrix keeps the partition it was
  /// uploaded with even if measured weights move later).
  virtual void ensureOnDevices() = 0;
  virtual const std::vector<CsrChunk>& chunks() const = 0;
};

} // namespace skelcl::detail
