// Global SkelCL runtime: the devices selected at init(), one command
// queue per device, and the shared on-disk kernel cache.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/prng.h"
#include "ocl/ocl.h"
#include "skelcl/distribution.h"
#include "skelcl/kernel_cache.h"

namespace skelcl {

namespace detail {
// The runtime's environment knobs (SKELCL_SERIALIZE, SKELCL_TRANSFER_
// CHUNKS, SKELCL_TRACE, SKELCL_CACHE_DIR, ...) all parse through these
// helpers so 0/1/true/false handling is consistent everywhere.
using common::envDouble;
using common::envFlag;
using common::envInt;
using common::envStr;
} // namespace detail

/// Which devices init() should claim.
struct DeviceSelection {
  ocl::DeviceType type = ocl::DeviceType::GPU;
  std::size_t count = 0; // 0 = all matching devices

  static DeviceSelection allGPUs() { return {ocl::DeviceType::GPU, 0}; }
  static DeviceSelection nGPUs(std::size_t n) {
    return {ocl::DeviceType::GPU, n};
  }
  static DeviceSelection allDevices() { return {ocl::DeviceType::All, 0}; }
};

namespace detail {

class Runtime {
public:
  static Runtime& instance();

  void init(const DeviceSelection& selection);
  void terminate();
  bool initialized() const noexcept { return initialized_; }

  /// Throws unless init() ran; every public entry point calls this.
  void requireInit() const;

  const std::vector<ocl::Device>& devices() const;
  std::size_t deviceCount() const { return devices().size(); }
  ocl::Context& context();
  ocl::CommandQueue& queue(std::size_t deviceIndex);
  KernelCache& kernelCache();

  /// SkelCL's default work-group size (the paper: "SkelCL uses its
  /// default work-group size of 256").
  std::size_t defaultWorkGroupSize() const noexcept { return 256; }

  /// True when SKELCL_SERIALIZE=1 forced in-order queues at init():
  /// identical commands are enqueued, but every command serializes after
  /// the previous one instead of scheduling from the event DAG. Escape
  /// hatch and the baseline for the transfer/compute-overlap ablation.
  bool serializedQueues() const noexcept { return serializedQueues_; }

  /// Number of pieces large host->device uploads are split into so the
  /// compute engine can start on early pieces while later ones stream in
  /// (double buffering). SKELCL_TRANSFER_CHUNKS overrides; values <= 1
  /// disable splitting.
  std::size_t transferPieces() const noexcept { return transferPieces_; }

  /// Ready-queue tie-breaking of the out-of-order scheduler, set at
  /// init() from SKELCL_SCHEDULE=fifo|shuffle and SKELCL_SCHEDULE_SEED.
  /// Under SeededShuffle the queues add seeded dispatch jitter and the
  /// skeletons visit per-device chunks in a seeded order — together they
  /// explore alternative legal schedules of the same command DAG. The
  /// schedule-fuzzing suite asserts outputs are invariant across seeds.
  const ocl::SchedulePolicy& schedulePolicy() const noexcept {
    return schedulePolicy_;
  }

  /// Visit order for a set of `n` per-device chunks: the identity under
  /// Fifo, a seeded permutation under SeededShuffle. Only used where the
  /// result is order-independent by construction (disjoint chunks);
  /// order-sensitive combines (Reduce partials, combine folds) keep
  /// their canonical element order so outputs stay bit-identical.
  std::vector<std::size_t> chunkVisitOrder(std::size_t n);

  /// Destination of the trace the current init()..terminate() cycle
  /// records (set from SKELCL_TRACE at init; empty = not tracing).
  const std::string& tracePath() const noexcept { return tracePath_; }

  /// True unless SKELCL_FUSION=0 disabled the expression-DAG rewrite
  /// rules at init(). With fusion off, every lazily built node still
  /// flows through the DAG evaluator, but each stage compiles and
  /// launches its own kernel and materializes its intermediate vector —
  /// the differential baseline fused execution must match bit-for-bit.
  bool fusionEnabled() const noexcept { return fusionEnabled_; }

  /// True unless SKELCL_ASYNC=0 disabled the asynchronous task-graph
  /// scheduler at init(). With async on (the default), deferred skeleton
  /// jobs accumulate until a consumption point, then every outstanding
  /// job's commands are dispatched before the consumer blocks — so
  /// independent jobs overlap on the device engines. SKELCL_ASYNC=0 is
  /// the differential baseline: each job evaluates at its own
  /// consumption point, nothing else changes.
  bool asyncEnabled() const noexcept { return asyncEnabled_; }

  /// Worker threads for the scheduler's parallel prepare phase
  /// (SKELCL_SCHED_THREADS; 0 = one per hardware thread).
  std::size_t schedulerThreads() const noexcept { return schedulerThreads_; }

  /// What the rewrite pass achieved this init()..terminate() cycle.
  struct FusionStats {
    std::uint64_t fusedStages = 0;        // stages absorbed into parents
    std::uint64_t fusedLaunches = 0;      // evaluations of fused plans
    std::uint64_t intermediateBuffers = 0; // materialized DAG-internal
    std::uint64_t intermediateBytes = 0;   //   vectors, and their bytes

    /// Delta between two snapshots — see KernelCache::Stats::operator-.
    friend FusionStats operator-(const FusionStats& later,
                                 const FusionStats& earlier) {
      FusionStats delta;
      delta.fusedStages = later.fusedStages - earlier.fusedStages;
      delta.fusedLaunches = later.fusedLaunches - earlier.fusedLaunches;
      delta.intermediateBuffers =
          later.intermediateBuffers - earlier.intermediateBuffers;
      delta.intermediateBytes =
          later.intermediateBytes - earlier.intermediateBytes;
      return delta;
    }
  };
  /// Snapshot of the counters. Internally atomic: the async scheduler's
  /// prepare workers run concurrently with accounting on the dispatch
  /// thread, so plain fields would race under TSan.
  FusionStats fusionStats() const noexcept {
    FusionStats out;
    out.fusedStages = fusionStats_.fusedStages.load();
    out.fusedLaunches = fusionStats_.fusedLaunches.load();
    out.intermediateBuffers = fusionStats_.intermediateBuffers.load();
    out.intermediateBytes = fusionStats_.intermediateBytes.load();
    return out;
  }
  /// One fused plan evaluated, absorbing `stagesAbsorbed` children.
  void noteFusedEvaluation(std::uint64_t stagesAbsorbed) noexcept {
    fusionStats_.fusedStages.fetch_add(stagesAbsorbed);
    fusionStats_.fusedLaunches.fetch_add(1);
  }
  /// One DAG-internal intermediate vector of `bytes` materialized.
  void noteIntermediate(std::uint64_t bytes) noexcept {
    fusionStats_.intermediateBuffers.fetch_add(1);
    fusionStats_.intermediateBytes.fetch_add(bytes);
  }
  /// Zeroes the fusion counters. Together with KernelCache::resetStats
  /// this gives back-to-back bench scenarios (and per-tenant scopes) a
  /// clean slate without an init() cycle.
  void resetFusionStats() noexcept {
    fusionStats_.fusedStages.store(0);
    fusionStats_.fusedLaunches.store(0);
    fusionStats_.intermediateBuffers.store(0);
    fusionStats_.intermediateBytes.store(0);
  }

  /// Drops the per-init program memo (the disk cache underneath stays).
  /// The job service's "per-tenant isolation" baseline uses this to make
  /// each tenant pay its own program load, as separate processes would.
  void clearProgramMemo() {
    std::lock_guard lock(programMutex_);
    programMemo_.clear();
  }

  /// Process-wide memo for generated skeleton programs: one build per
  /// (source, salt) pair per init() cycle, the disk cache underneath
  /// making cross-process reuse cheap. The salt carries the fusion
  /// configuration into the cache key. Thread-safe: the async
  /// scheduler's prepare workers warm programs concurrently — distinct
  /// keys build in parallel, concurrent requests for the same key block
  /// on one build (a failed build is not memoized; the next request
  /// retries, preserving the synchronous retry semantics).
  ocl::Program& programFor(const std::string& source,
                           const std::string& salt);

  /// Where block-distribution weights come from. Set at init() from
  /// SKELCL_WEIGHTS=even|static|measured; tests may override at runtime
  /// (takes effect at the next partition/redistribution).
  WeightMode weightMode() const noexcept { return weightMode_; }
  void setWeightMode(WeightMode mode) noexcept { weightMode_ = mode; }

  /// Current per-device block weights under weightMode() — one entry per
  /// claimed device, order matching devices(). Even: all ones. Static:
  /// DeviceSpec::peakCyclesPerNs. Measured: cycles-per-busy-ns from the
  /// load monitor, falling back to even until every claimed device
  /// has retired a kernel.
  std::vector<double> blockWeights() const;

  /// Node index per claimed device, order matching devices(). All zero
  /// on single-node machines.
  std::vector<std::uint32_t> deviceNodes() const;

  /// Chunk sizes of a block-distributed vector of n elements: the
  /// deterministic two-level (node, then device) largest-remainder split
  /// of n by blockWeights(). Single-node machines get exactly the flat
  /// split, so pre-cluster behavior is unchanged.
  std::vector<std::size_t> blockPartition(std::size_t n) const;

private:
  Runtime() = default;

  struct AtomicFusionStats {
    std::atomic<std::uint64_t> fusedStages{0};
    std::atomic<std::uint64_t> fusedLaunches{0};
    std::atomic<std::uint64_t> intermediateBuffers{0};
    std::atomic<std::uint64_t> intermediateBytes{0};
  };
  /// One memoized program. Entries are pinned by shared_ptr so the map
  /// can rehash while another thread builds; call_once serializes
  /// concurrent builders of the same key.
  struct ProgramEntry {
    std::once_flag once;
    std::optional<ocl::Program> program;
  };

  bool initialized_ = false;
  bool serializedQueues_ = false;
  bool fusionEnabled_ = true;
  bool asyncEnabled_ = true;
  std::size_t schedulerThreads_ = 0;
  AtomicFusionStats fusionStats_;
  std::mutex programMutex_;
  std::unordered_map<std::string, std::shared_ptr<ProgramEntry>>
      programMemo_;
  WeightMode weightMode_ = WeightMode::Even;
  std::size_t transferPieces_ = 4;
  ocl::SchedulePolicy schedulePolicy_;
  common::Xoshiro256 orderRng_;
  std::string tracePath_;
  std::vector<ocl::Device> devices_;
  std::unique_ptr<ocl::Context> context_;
  std::vector<ocl::CommandQueue> queues_;
  std::unique_ptr<KernelCache> cache_;
};

/// Scoped snapshot over the process-global fusion and kernel-cache
/// counters: captures both at construction, `fusionDelta()` /
/// `cacheDelta()` report what happened since. The counters themselves
/// stay cumulative — concurrent scopes each see their own window, so
/// per-tenant accounting and back-to-back bench scenarios don't bleed
/// into each other. Requires init().
class StatsScope {
public:
  StatsScope()
      : fusion0_(Runtime::instance().fusionStats()),
        cache0_(Runtime::instance().kernelCache().stats()) {}

  Runtime::FusionStats fusionDelta() const {
    return Runtime::instance().fusionStats() - fusion0_;
  }
  KernelCache::Stats cacheDelta() const {
    return Runtime::instance().kernelCache().stats() - cache0_;
  }

private:
  Runtime::FusionStats fusion0_;
  KernelCache::Stats cache0_;
};

} // namespace detail

/// Initializes SkelCL (paper Listing 1: "SkelCL::init();"). Claims the
/// selected devices — by default every GPU in the system.
void init(const DeviceSelection& selection = DeviceSelection::allGPUs());

/// Releases all devices. Vectors created before terminate() must not be
/// used afterwards.
void terminate();

/// Number of devices SkelCL is using.
std::size_t deviceCount();

} // namespace skelcl
