// Rewrite-rule fusion pass over the lazy expression DAG (detail/expr.h).
//
// buildFusionPlan() walks a node's producer chain at force time and
// decides, per input edge, whether the child stage is *absorbed* into
// the parent's kernel or *materialized* as its own launch first. A child
// is absorbed when rewriting is enabled, the child is a still-deferred
// element-wise stage (Map or Zip), and this parent is its only reader —
// the classic rules map f . map g -> map (f.g), zip absorption, and
// reduce/scan-of-map, applied transitively up to a stage cap.
//
// Fusion happens at the OpenCL-C source level: every absorbed stage's
// customizing function is spliced into one translation unit, renamed
// with a per-stage prefix (skelcl_f<k>_) to avoid capture between
// stages, and the chain becomes a single load *expression* evaluated in
// the consumer's kernel — no intermediate buffer, no extra launch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "skelcl/detail/expr.h"

namespace skelcl::detail {

/// One stage of a (possibly fused) kernel: the node it came from plus
/// the capture-safe names its functions and arguments got.
struct FusionStage {
  std::shared_ptr<ExprNode> node;
  std::string funcName;  // possibly prefix-renamed customizing function
  std::string argPrefix; // prefix its Arguments use in the kernel
};

/// The executable shape of one forced node after rewriting.
struct FusionPlan {
  /// Concrete input vectors, one entry per *occurrence* in the fused
  /// expression, in load order: occurrence i is kernel parameter
  /// skelcl_in<i>.
  std::vector<std::shared_ptr<VectorStateBase>> leaves;
  std::vector<std::string> leafTypes;

  /// Still-deferred children that were NOT absorbed (extra readers, or
  /// rewriting disabled): they must be forced — materializing their
  /// intermediate vectors — before this plan launches.
  std::vector<std::shared_ptr<ExprNode>> materializeFirst;

  /// Absorbed stages, root first. Their Arguments are bound in this
  /// order after the fixed kernel parameters.
  std::vector<FusionStage> stages;

  std::string functionsSource; // renamed user sources, concatenated
  /// Expression producing the (element-wise part of the) result for the
  /// element at index %IDX%. For Map/Zip roots this is the full result;
  /// for Reduce/Scan roots it is the element feeding the root operator.
  std::string loadExpr;
  std::string rootFuncName; // Reduce/Scan: root operator after renaming
  std::string argDecls;     // concatenated declSuffix of all stages

  std::size_t fusedStages = 0; // children absorbed (0 = single stage)
  std::string label;           // trace/error label, e.g. "Fused(f∘g)"
  std::string compositionKey;  // cache-key component naming the shape
};

/// Builds the plan for `root`. With `fusionEnabled` false no child is
/// ever absorbed — every stage launches separately, the differential
/// baseline — but the same evaluator runs the plan either way.
FusionPlan buildFusionPlan(const std::shared_ptr<ExprNode>& root,
                           bool fusionEnabled);

/// Replaces every %IDX% in `expr` with `idx`.
std::string substituteIndex(const std::string& expr, const std::string& idx);

} // namespace skelcl::detail
