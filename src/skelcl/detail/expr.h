// Lazy expression DAG (ROADMAP: "lazy expression graph with rewrite-rule
// fusion"). A skeleton call no longer launches kernels: it builds an
// ExprNode describing the computation and installs it on the result
// vector's state as a *pending producer*. Nothing runs until a true
// consumption point forces the node — a host read (operator[], iteration,
// download), a Scalar read, an explicit redistribution, or a side-
// effecting skeleton that may observe or overwrite the data. At force
// time a rewrite pass (detail/fusion.h) walks the DAG and fuses chains
// of element-wise stages into single kernels:
//
//   map f . map g        ->  map (f . g)
//   zip f . map g        ->  zip with the g-load spliced in
//   reduce f . map g     ->  mapReduce (the hand-written MapReduce
//                             skeleton is the special case this
//                             generalizes)
//   scan f . map g       ->  scan with a fused first level
//
// Eager-evaluation rule: a call whose Arguments reference Vectors is
// evaluated immediately at the call site (its semantics depend on — and
// may mutate — external state the host is free to change afterwards), as
// are explicit-output forms. Laziness and fusion apply to pure chains.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "skelcl/arguments.h"

namespace skelcl::detail {

class CsrStateBase;

/// Stencil root descriptor (see skelcl/stencil.h). Irregular roots are
/// opaque to the fusion rewriter; the evaluator in detail/irregular.cpp
/// consumes this verbatim. `boundary` mirrors skelcl::Boundary (0 =
/// clamp, 1 = wrap, 2 = constant); `constArg` carries the out-of-range
/// fill value as a ready-made kernel argument (bound with prefix "cv_")
/// when the policy is constant.
struct StencilParams {
  std::size_t radius = 1;
  int boundary = 0;
  std::size_t width = 0; // row length of a row-major 2D grid; 0 = 1D
  Arguments constArg;
};

/// SparseGather root descriptor: the CSR operand (not a VectorState —
/// its per-device rowPtr slices overlap at the cut rows) plus the name
/// of the combine function inside ExprNode::source.
struct SparseParams {
  std::shared_ptr<CsrStateBase> csr;
  std::string combineName;
};

/// One deferred skeleton invocation. Nodes are immutable once built;
/// `evaluated`/`output` are the evaluation bookkeeping.
class ExprNode {
public:
  enum class Op { Map, Zip, Reduce, Scan, Stencil, SparseGather };

  /// One input operand: the vector state read, plus the node that was
  /// pending on it at *build* time (null for concrete data). The child
  /// link is what the fusion pass follows; the state is the fallback
  /// leaf when the child is not absorbed (or was forced meanwhile).
  struct Input {
    std::shared_ptr<VectorStateBase> state;
    std::shared_ptr<ExprNode> node;
  };

  Op op = Op::Map;
  std::string source;       // user customizing function(s), verbatim
  std::string funcName;     // name of the customizing function
  std::string identityExpr; // Scan only: identity element expression
  Arguments args;           // additional arguments (scalars/structs only
                            // when the node is deferred)
  std::size_t workGroupSize = 0; // user override; 0 = SkelCL default
  std::vector<Input> inputs;

  std::string outType;          // result element type name
  std::size_t outElemSize = 0;  // sizeof(result element)
  std::size_t outCount = 0;     // result element count
  std::size_t fanout = 0;       // deferred parents reading this node

  /// Irregular-root descriptors; set by the skeleton right after
  /// makeExprNode, before the node is deferred or evaluated.
  std::shared_ptr<StencilParams> stencil; // Op::Stencil only
  std::shared_ptr<SparseParams> sparse;   // Op::SparseGather only

  bool evaluated = false;
  bool evaluating = false; // re-entrancy guard during evaluation
  std::weak_ptr<VectorStateBase> output;
};

/// True when `args` allows deferring the call: vector (and vector-size)
/// arguments pin a call to eager evaluation.
bool deferrable(const Arguments& args);

/// Builds a DAG node. Records each input's currently-pending producer as
/// the child edge, registers the node as a consumer on every input state
/// (so host mutations snapshot it first), and eagerly stages concrete
/// inputs on the devices — upload faults and Zip geometry alignment stay
/// observable at the call site, exactly as under eager execution.
std::shared_ptr<ExprNode> makeExprNode(
    ExprNode::Op op, std::string source, std::string funcName,
    const Arguments& args, std::size_t workGroupSize,
    std::vector<std::shared_ptr<VectorStateBase>> inputs,
    std::string outType, std::size_t outElemSize, std::size_t outCount,
    std::string identityExpr = "");

/// Defers `node`: installs it as `out`'s pending producer. The node
/// materializes when `out` (or a mutation of its inputs) forces it.
void deferNode(const std::shared_ptr<ExprNode>& node,
               const std::shared_ptr<VectorStateBase>& out);

/// Evaluates `node` into `out` immediately (eager call sites: explicit
/// outputs, vector-argument calls). `out`'s old value is snapshotted for
/// any deferred readers first.
void evaluateNodeInto(const std::shared_ptr<ExprNode>& node,
                      const std::shared_ptr<VectorStateBase>& out);

/// One generated kernel program an evaluation will request, as the
/// (source, salt) pair Runtime::programFor is keyed on. The async
/// scheduler warms these in parallel before dispatching a drain.
struct PreparedProgram {
  std::string source;
  std::string salt;
};

/// Appends the programs forcing `node` would request — unabsorbed
/// children first, then the root's own kernels — in exactly the order
/// the evaluator requests them. Pure: builds the same fusion plan the
/// later evaluation will, without running anything.
void collectNodePrograms(const std::shared_ptr<ExprNode>& node,
                         std::vector<PreparedProgram>& out);

} // namespace skelcl::detail
