#include "skelcl/detail/source_utils.h"

#include "clc/lexer.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/type_name.h"

namespace skelcl::detail {

namespace {

/// Names of every function defined at the top level of `source`, in
/// definition order. The shared walk behind userFunctionName() and
/// collectTopLevelFunctionNames().
std::vector<std::string> topLevelFunctionNames(const std::string& source) {
  std::vector<clc::Token> tokens;
  try {
    tokens = clc::lexAndPreprocess(source);
  } catch (const clc::CompileError& e) {
    throw common::InvalidArgument(
        std::string("cannot parse user function: ") + e.what());
  }
  std::vector<std::string> names;
  int depth = 0;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const clc::Token& tok = tokens[i];
    if (tok.kind == clc::TokKind::LBrace) ++depth;
    if (tok.kind == clc::TokKind::RBrace) --depth;
    if (depth == 0 && tok.kind == clc::TokKind::Identifier &&
        tokens[i + 1].kind == clc::TokKind::LParen) {
      // A *definition* has '{' after its parameter list's closing ')'.
      int parens = 0;
      std::size_t j = i + 1;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].kind == clc::TokKind::LParen) ++parens;
        if (tokens[j].kind == clc::TokKind::RParen && --parens == 0) {
          break;
        }
      }
      if (j + 1 < tokens.size() &&
          tokens[j + 1].kind == clc::TokKind::LBrace) {
        names.push_back(tok.text);
      }
    }
  }
  return names;
}

bool isIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

} // namespace

std::string userFunctionName(const std::string& source) {
  // The customizing function is the *last* function defined at the top
  // level; earlier definitions are helpers it may call.
  const std::vector<std::string> names = topLevelFunctionNames(source);
  if (names.empty()) {
    throw common::InvalidArgument(
        "no function definition found in user source: " + source);
  }
  return names.back();
}

std::vector<std::string> collectTopLevelFunctionNames(
    const std::string& source) {
  return topLevelFunctionNames(source);
}

std::string renameUserFunctions(const std::string& source,
                                const std::string& prefix) {
  if (prefix.empty()) {
    return source;
  }
  const std::vector<std::string> names = topLevelFunctionNames(source);
  std::string out = source;
  for (const std::string& name : names) {
    std::string replaced;
    replaced.reserve(out.size());
    std::size_t pos = 0;
    while (pos < out.size()) {
      const std::size_t found = out.find(name, pos);
      if (found == std::string::npos) {
        replaced.append(out, pos, out.size() - pos);
        break;
      }
      replaced.append(out, pos, found - pos);
      const bool startsWord =
          found == 0 || !isIdentChar(out[found - 1]);
      const std::size_t after = found + name.size();
      const bool endsWord = after >= out.size() || !isIdentChar(out[after]);
      // Member accesses keep their names: `s.name` / `p->name` refer to
      // struct fields, not the function being renamed.
      const bool memberAccess =
          (found >= 1 && out[found - 1] == '.') ||
          (found >= 2 && out[found - 2] == '-' && out[found - 1] == '>');
      if (startsWord && endsWord && !memberAccess) {
        replaced += prefix + name;
      } else {
        replaced.append(name);
      }
      pos = after;
    }
    out = std::move(replaced);
  }
  return out;
}

std::string registeredTypeDefinitions() {
  return TypeRegistry::instance().definitions();
}

ocl::Program buildCombineProgram(const std::string& elementType,
                                 const std::string& combineSource) {
  const std::string name = userFunctionName(combineSource);
  std::string source = registeredTypeDefinitions();
  source += combineSource;
  source += "\n__kernel void skelcl_combine(__global " + elementType +
            "* dst, __global const " + elementType +
            "* src, uint n) {\n"
            "  size_t i = get_global_id(0);\n"
            "  if (i < n) dst[i] = " +
            name +
            "(dst[i], src[i]);\n"
            "}\n";
  auto& runtime = Runtime::instance();
  return runtime.kernelCache().getOrBuild(runtime.context(), source,
                                          kDefaultBuildOptions);
}

} // namespace skelcl::detail
