#include "skelcl/detail/source_utils.h"

#include "clc/lexer.h"
#include "skelcl/detail/runtime.h"
#include "skelcl/type_name.h"

namespace skelcl::detail {

std::string userFunctionName(const std::string& source) {
  std::vector<clc::Token> tokens;
  try {
    tokens = clc::lexAndPreprocess(source);
  } catch (const clc::CompileError& e) {
    throw common::InvalidArgument(
        std::string("cannot parse user function: ") + e.what());
  }
  // The customizing function is the *last* function defined at the top
  // level; earlier definitions are helpers it may call.
  std::string last;
  int depth = 0;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const clc::Token& tok = tokens[i];
    if (tok.kind == clc::TokKind::LBrace) ++depth;
    if (tok.kind == clc::TokKind::RBrace) --depth;
    if (depth == 0 && tok.kind == clc::TokKind::Identifier &&
        tokens[i + 1].kind == clc::TokKind::LParen) {
      // A *definition* has '{' after its parameter list's closing ')'.
      int parens = 0;
      std::size_t j = i + 1;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].kind == clc::TokKind::LParen) ++parens;
        if (tokens[j].kind == clc::TokKind::RParen && --parens == 0) {
          break;
        }
      }
      if (j + 1 < tokens.size() &&
          tokens[j + 1].kind == clc::TokKind::LBrace) {
        last = tok.text;
      }
    }
  }
  if (last.empty()) {
    throw common::InvalidArgument(
        "no function definition found in user source: " + source);
  }
  return last;
}

std::string registeredTypeDefinitions() {
  return TypeRegistry::instance().definitions();
}

ocl::Program buildCombineProgram(const std::string& elementType,
                                 const std::string& combineSource) {
  const std::string name = userFunctionName(combineSource);
  std::string source = registeredTypeDefinitions();
  source += combineSource;
  source += "\n__kernel void skelcl_combine(__global " + elementType +
            "* dst, __global const " + elementType +
            "* src, uint n) {\n"
            "  size_t i = get_global_id(0);\n"
            "  if (i < n) dst[i] = " +
            name +
            "(dst[i], src[i]);\n"
            "}\n";
  auto& runtime = Runtime::instance();
  return runtime.kernelCache().getOrBuild(runtime.context(), source,
                                          kDefaultBuildOptions);
}

} // namespace skelcl::detail
