// Helpers for handling user-supplied OpenCL-C function strings.
#pragma once

#include <string>

#include "ocl/ocl.h"

namespace skelcl::detail {

/// Extracts the name of the (first) function defined in `source` — the
/// identifier directly before the first top-level '('. SkelCL users pass
/// customizing functions as plain strings (paper Listing 1); the code
/// generator needs the name to call it from the skeleton kernel.
/// Throws common::InvalidArgument when no function definition is found.
std::string userFunctionName(const std::string& source);

/// Builds (with kernel-cache support) the element-wise combine program
///   __kernel void skelcl_combine(__global T* dst, __global const T* src,
///                                uint n) { dst[i] = f(dst[i], src[i]); }
/// used when collapsing a copy-distribution into a block-distribution
/// with a user combine operator (paper Sec. IV-B: "reduce (element-wise
/// add) all copies of error image").
ocl::Program buildCombineProgram(const std::string& elementType,
                                 const std::string& combineSource);

/// The concatenated OpenCL-side definitions of every registered user
/// struct type, prepended to all generated kernels.
std::string registeredTypeDefinitions();

} // namespace skelcl::detail
