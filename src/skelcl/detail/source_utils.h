// Helpers for handling user-supplied OpenCL-C function strings.
#pragma once

#include <string>
#include <vector>

#include "ocl/ocl.h"

namespace skelcl::detail {

/// Extracts the name of the (first) function defined in `source` — the
/// identifier directly before the first top-level '('. SkelCL users pass
/// customizing functions as plain strings (paper Listing 1); the code
/// generator needs the name to call it from the skeleton kernel.
/// Throws common::InvalidArgument when no function definition is found.
std::string userFunctionName(const std::string& source);

/// Every function *defined* at the top level of `source`, in definition
/// order (the customizing function plus any helpers it carries along).
/// Throws common::InvalidArgument when the source does not lex.
std::vector<std::string> collectTopLevelFunctionNames(
    const std::string& source);

/// Returns `source` with every top-level-defined function (and every
/// call to it) renamed to `prefix` + its original name. Used by kernel
/// fusion to splice several customizing functions into one translation
/// unit without name capture: two stages may both define "func" or share
/// helper names. Whole-word textual replacement; member accesses
/// (`x.name`, `p->name`) are left alone.
std::string renameUserFunctions(const std::string& source,
                                const std::string& prefix);

/// Builds (with kernel-cache support) the element-wise combine program
///   __kernel void skelcl_combine(__global T* dst, __global const T* src,
///                                uint n) { dst[i] = f(dst[i], src[i]); }
/// used when collapsing a copy-distribution into a block-distribution
/// with a user combine operator (paper Sec. IV-B: "reduce (element-wise
/// add) all copies of error image").
ocl::Program buildCombineProgram(const std::string& elementType,
                                 const std::string& combineSource);

/// The concatenated OpenCL-side definitions of every registered user
/// struct type, prepended to all generated kernels.
std::string registeredTypeDefinitions();

} // namespace skelcl::detail
