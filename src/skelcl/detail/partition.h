// Deterministic weighted block partitioning (largest-remainder method).
//
// Splits n elements into one contiguous chunk per device, proportional
// to per-device weights: chunk d gets floor(n*w_d/W) elements, and the
// leftover (< device count) goes one element at a time to the chunks
// with the largest fractional remainders, ties broken by lowest device
// index. Properties the tests pin:
//  * sum of chunk sizes == n, always;
//  * equal weights reproduce the historical even split exactly —
//    base = n/D everywhere plus one extra element on each of the first
//    n%D devices — so uniform platforms stay bit-identical to the seed;
//  * the remainder spreads across devices instead of piling onto one;
//  * zero-weight devices get zero elements (they still appear in the
//    result so chunk index == device index);
//  * pure function of (n, weights): same inputs, same split, any run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skelcl::detail {

/// Chunk sizes per device. Weights must be non-negative; all-zero (or
/// empty-after-sanitizing) weight sets degrade to an even split.
std::vector<std::size_t> weightedPartition(std::size_t n,
                                           const std::vector<double>& weights);

/// Two-level node-aware block partition: n first splits across nodes by
/// each node's summed device weight, then each node's share splits
/// across its devices — both by the largest-remainder method above. On
/// a single node (nodeOf empty or constant) this degenerates to the
/// flat weightedPartition exactly, so pre-cluster machines keep their
/// historical splits bit-for-bit. Devices of one node must be
/// contiguous (the SKELCL_DEVICES cluster grammar guarantees it).
std::vector<std::size_t> nodeBlockPartition(
    std::size_t n, const std::vector<double>& weights,
    const std::vector<std::uint32_t>& nodeOf);

} // namespace skelcl::detail
