// The Map skeleton (paper Sec. III-B, Eq. 1):
//
//   map f [x0, ..., xn-1] = [f(x0), ..., f(xn-1)]
//
// Customized by a unary function given as OpenCL-C source. Additional
// arguments (Sec. III-C) extend the function's parameter list; a
// Map<T, void> produces no output vector and works purely through
// side-effects on vector arguments — the form list-mode OSEM uses.
//
// Invocation is lazy: a call builds an expression-DAG node
// (detail/expr.h) and nothing launches until the result is consumed, so
// chains of element-wise skeletons fuse into single kernels
// (detail/fusion.h). Calls with vector arguments and explicit-output
// forms evaluate eagerly, as does Map<T, void> (pure side effects).
#pragma once

#include <string>

#include "skelcl/arguments.h"
#include "skelcl/detail/expr.h"
#include "skelcl/detail/skeleton_common.h"
#include "skelcl/vector.h"
#include "trace/recorder.h"

namespace skelcl {

template <typename Tin, typename Tout = Tin>
class Map {
public:
  /// `source` is the customizing function, e.g.
  ///   Map<float> dbl("float f(float x) { return 2.0f * x; }");
  explicit Map(std::string source)
      : source_(std::move(source)),
        funcName_(detail::userFunctionName(source_)) {}

  /// Optional tuning knob; the paper notes the work-group size "can have
  /// a considerable impact on performance". 0 = SkelCL default (256).
  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  Vector<Tout> operator()(const Vector<Tin>& input) {
    return (*this)(input, Arguments{});
  }

  Vector<Tout> operator()(const Vector<Tin>& input, const Arguments& args) {
    Vector<Tout> output;
    run(input, args, output, /*explicitOutput=*/false);
    return output;
  }

  /// Explicit-output form; `output` may alias `input`.
  void operator()(const Vector<Tin>& input, const Arguments& args,
                  Vector<Tout>& output) {
    run(input, args, output, /*explicitOutput=*/true);
  }

private:
  void run(const Vector<Tin>& input, const Arguments& args,
           Vector<Tout>& output, bool explicitOutput) {
    // The call-site span: covers node construction (and, on the eager
    // paths, the whole launch). Fused evaluation emits its own span.
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Map",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();
    auto node = detail::makeExprNode(
        detail::ExprNode::Op::Map, source_, funcName_, args,
        workGroupSize_, {input.stateHandle()}, typeName<Tout>(),
        sizeof(Tout), input.size());
    if (!explicitOutput && detail::deferrable(args)) {
      detail::deferNode(node, output.stateHandle());
    } else {
      detail::evaluateNodeInto(node, output.stateHandle());
    }
  }

  std::string source_;
  std::string funcName_;
  std::size_t workGroupSize_ = 0;
};

/// Map without an output vector: the user function returns void and works
/// through side effects on Arguments vectors (paper Sec. IV-B). Always
/// eager — there is no result vector whose read could force it later.
template <typename Tin>
class Map<Tin, void> {
public:
  explicit Map(std::string source)
      : source_(std::move(source)),
        funcName_(detail::userFunctionName(source_)) {}

  void setWorkGroupSize(std::size_t size) { workGroupSize_ = size; }

  void operator()(const Vector<Tin>& input, const Arguments& args) {
    trace::ScopedHostSpan span(trace::HostKind::Skeleton, "Map<void>",
                               trace::kNoDevice, input.size());
    auto& runtime = detail::Runtime::instance();
    runtime.requireInit();

    input.state().ensureOnDevices();
    args.prepare();

    ocl::Program& program = program_(args);
    const auto& chunks = input.state().chunks();
    for (std::size_t idx : runtime.chunkVisitOrder(chunks.size())) {
      const detail::Chunk& chunk = chunks[idx];
      if (chunk.count == 0) {
        continue;
      }
      try {
        const auto& device = runtime.devices()[chunk.deviceIndex];
        ocl::Kernel kernel = program.createKernel("skelcl_map");
        std::size_t arg = 0;
        kernel.setArg(arg++, chunk.buffer);
        kernel.setArg(arg++, std::uint32_t(chunk.count));
        args.apply(kernel, arg, chunk.deviceIndex);

        // No sub-launch splitting here: a side-effect map may scatter to
        // arbitrary indices of its argument vectors, so the whole launch
        // waits for the whole input upload and every argument's writer.
        std::vector<ocl::Event> deps;
        detail::appendEvent(deps, chunk.ready);
        args.collectDeps(deps, chunk.deviceIndex);

        const std::size_t wg =
            detail::effectiveWorkGroupSize(workGroupSize_, device);
        ocl::Event done =
            runtime.queue(chunk.deviceIndex)
                .enqueueNDRange(
                    kernel,
                    ocl::NDRange1D{detail::roundUp(chunk.count, wg), wg},
                    deps);
        args.recordEvent(done, chunk.deviceIndex);
      } catch (ocl::ClError& e) {
        e.prependContext("Map<void> skeleton on device " +
                         std::to_string(chunk.deviceIndex));
        throw;
      }
    }
  }

private:
  ocl::Program& program_(const Arguments& args) {
    const std::string source =
        detail::registeredTypeDefinitions() + source_ +
        "\n__kernel void skelcl_map(__global const " + typeName<Tin>() +
        "* skelcl_in, uint skelcl_n" + args.declSuffix() +
        ") {\n"
        "  size_t skelcl_i = get_global_id(0);\n"
        "  if (skelcl_i < skelcl_n) {\n"
        "    " +
        funcName_ + "(skelcl_in[skelcl_i]" + args.callSuffix() +
        ");\n"
        "  }\n"
        "}\n";
    return memo_.get(source);
  }

  std::string source_;
  std::string funcName_;
  std::size_t workGroupSize_ = 0;
  detail::ProgramMemo memo_;
};

} // namespace skelcl
