// Mapping from C++ element types to OpenCL-C type names.
//
// SkelCL's Vector is "a generic container class that is capable of storing
// data items of any primitive C/C++ data type as well as user-defined data
// structures (structs)" (paper, Sec. III-A). Primitive types map directly;
// user structs are registered once with their OpenCL-side definition,
// which the code generator prepends to every kernel.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace skelcl {

namespace detail {

struct TypeRegistryEntry {
  std::string name;       // OpenCL-side type name
  std::string definition; // e.g. "typedef struct { ... } Event;"
};

class TypeRegistry {
public:
  static TypeRegistry& instance() {
    static TypeRegistry registry;
    return registry;
  }

  void add(std::type_index type, std::string name, std::string definition) {
    std::lock_guard lock(mutex_);
    const auto it = byType_.find(type);
    if (it != byType_.end()) {
      COMMON_EXPECTS(it->second.name == name,
                     "type registered twice with different names");
      return;
    }
    byType_.emplace(type, TypeRegistryEntry{name, definition});
    order_.push_back(type);
  }

  const TypeRegistryEntry* find(std::type_index type) const {
    std::lock_guard lock(mutex_);
    const auto it = byType_.find(type);
    return it == byType_.end() ? nullptr : &it->second;
  }

  /// All struct definitions, in registration order, concatenated — the
  /// prelude the code generator puts in front of generated kernels.
  std::string definitions() const {
    std::lock_guard lock(mutex_);
    std::string out;
    for (const auto& type : order_) {
      const auto& entry = byType_.at(type);
      if (!entry.definition.empty()) {
        out += entry.definition;
        out += "\n";
      }
    }
    return out;
  }

private:
  mutable std::mutex mutex_;
  std::unordered_map<std::type_index, TypeRegistryEntry> byType_;
  std::vector<std::type_index> order_;
};

template <typename T>
struct BuiltinTypeName;

#define SKELCL_BUILTIN_TYPE(cxxType, clName)                                  \
  template <>                                                                 \
  struct BuiltinTypeName<cxxType> {                                           \
    static constexpr const char* value = clName;                              \
  }

SKELCL_BUILTIN_TYPE(float, "float");
SKELCL_BUILTIN_TYPE(double, "double");
SKELCL_BUILTIN_TYPE(std::int8_t, "char");
SKELCL_BUILTIN_TYPE(std::uint8_t, "uchar");
SKELCL_BUILTIN_TYPE(std::int16_t, "short");
SKELCL_BUILTIN_TYPE(std::uint16_t, "ushort");
SKELCL_BUILTIN_TYPE(std::int32_t, "int");
SKELCL_BUILTIN_TYPE(std::uint32_t, "uint");
SKELCL_BUILTIN_TYPE(std::int64_t, "long");
SKELCL_BUILTIN_TYPE(std::uint64_t, "ulong");
// `long long` is a distinct type from int64_t (= long) on LP64 targets.
SKELCL_BUILTIN_TYPE(long long, "long");
SKELCL_BUILTIN_TYPE(unsigned long long, "ulong");

#undef SKELCL_BUILTIN_TYPE

template <typename T, typename = void>
struct HasBuiltinName : std::false_type {};
template <typename T>
struct HasBuiltinName<T, std::void_t<decltype(BuiltinTypeName<T>::value)>>
    : std::true_type {};

} // namespace detail

/// Registers a user-defined struct for use as a Vector element or kernel
/// argument type. `definition` is the OpenCL-side declaration; its layout
/// must match the host struct byte-for-byte (same field order and types).
template <typename T>
void registerType(const std::string& name, const std::string& definition) {
  static_assert(std::is_trivially_copyable_v<T>,
                "SkelCL element types must be trivially copyable");
  detail::TypeRegistry::instance().add(std::type_index(typeid(T)), name,
                                       definition);
}

/// OpenCL-side name of T; throws for unregistered non-primitive types.
template <typename T>
std::string typeName() {
  if constexpr (detail::HasBuiltinName<T>::value) {
    return detail::BuiltinTypeName<T>::value;
  } else {
    const auto* entry =
        detail::TypeRegistry::instance().find(std::type_index(typeid(T)));
    if (entry == nullptr) {
      throw common::InvalidArgument(
          std::string("type '") + typeid(T).name() +
          "' is not registered; call skelcl::registerType<T>() first");
    }
    return entry->name;
  }
}

} // namespace skelcl
