// skelcl::Vector<T> — the paper's abstract vector data type (Sec. III-A):
//
//  * a unified abstraction for memory accessible by both CPU and GPU(s);
//  * implicit, *lazy* data transfers: data moves only when the side that
//    reads it holds a stale copy ("Before every data transfer, the vector
//    implementation checks whether the data transfer is necessary; only
//    then the data is actually transferred");
//  * multi-device distributions (single / copy / block) with automatic
//    redistribution, including a user combine function when collapsing
//    copies into blocks (Sec. III-D, used by list-mode OSEM).
//
// Copying a Vector is shallow: handles share the underlying state, which
// is what makes `update(f, c, f)`-style aliased skeleton calls work.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "skelcl/detail/runtime.h"
#include "skelcl/detail/source_utils.h"
#include "skelcl/distribution.h"
#include "skelcl/type_name.h"

namespace skelcl {

namespace detail {

/// One device's share of a vector.
struct Chunk {
  ocl::Buffer buffer;
  std::size_t deviceIndex = 0;
  std::size_t offset = 0; // element offset into the full vector
  std::size_t count = 0;  // element count on this device
};

/// Type-erased interface so Arguments can hold vectors of any element
/// type (paper Sec. III-C: "It is particularly easy to pass vectors as
/// arguments").
class VectorStateBase {
public:
  virtual ~VectorStateBase() = default;
  virtual std::size_t size() const = 0;
  virtual Distribution distribution() const = 0;
  virtual void ensureOnDevices() = 0;
  virtual const Chunk& chunkForDevice(std::size_t deviceIndex) const = 0;
  virtual void markDevicesModified() = 0;
  virtual std::string elementTypeName() const = 0;
};

template <typename T>
class VectorState final : public VectorStateBase {
public:
  static_assert(std::is_trivially_copyable_v<T>,
                "Vector element types must be trivially copyable");

  VectorState() = default;
  explicit VectorState(std::vector<T> data) : host_(std::move(data)) {}

  // --- host access ------------------------------------------------------

  std::size_t size() const override { return host_.size(); }

  std::vector<T>& hostForWrite() {
    ensureOnHost();
    hostDirty_ = true;
    devicesDirty_ = false;
    return host_;
  }

  const std::vector<T>& hostForRead() {
    ensureOnHost();
    return host_;
  }

  /// Host storage without any synchronization (size queries etc.).
  const std::vector<T>& rawHost() const { return host_; }

  void resizeHost(std::size_t n) {
    ensureOnHost();
    host_.resize(n);
    dropChunks();
    hostDirty_ = true;
  }

  /// Overwrites every element on the host side without downloading any
  /// stale device data first (unlike hostForWrite, which preserves it).
  void fillHost(const T& value) {
    host_.assign(host_.size(), value);
    hostDirty_ = true;
    devicesDirty_ = false;
  }

  // --- distribution -----------------------------------------------------

  Distribution distribution() const override { return dist_; }
  std::size_t singleDeviceIndex() const { return singleDevice_; }

  void setDistribution(Distribution dist, std::size_t singleDevice = 0) {
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    if (dist == dist_ &&
        (dist != Distribution::Single || singleDevice == singleDevice_)) {
      return;
    }
    // Generic path: stage through the host lazily. The data currently on
    // the devices is downloaded only if it is newer than the host copy.
    ensureOnHost();
    dropChunks();
    dist_ = dist;
    singleDevice_ = singleDevice;
    hostDirty_ = true;
  }

  /// Redistribution copy -> block with a user combine function: device i
  /// keeps its own portion and element-wise combines every other
  /// device's portion into it — entirely device-side (paper Sec. IV-B).
  void setDistributionCombine(const std::string& combineSource) {
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    COMMON_EXPECTS(dist_ == Distribution::Copy,
                   "combine redistribution requires a copy distribution");
    if (chunks_.empty() || !devicesDirty_) {
      // Copies are not newer than the host: plain redistribution.
      setDistribution(Distribution::Block);
      return;
    }
    const std::size_t devices = runtime.deviceCount();
    if (devices == 1) {
      // Single device: the copy already is the (whole) block.
      chunks_[0].offset = 0;
      dist_ = Distribution::Block;
      return;
    }

    ocl::Program program =
        buildCombineProgram(typeName<T>(), combineSource);

    std::vector<Chunk> blocks = blockLayout(devices);
    for (Chunk& block : blocks) {
      const std::size_t d = block.deviceIndex;
      auto& queue = runtime.queue(d);
      const auto& device = runtime.devices()[d];
      block.buffer = runtime.context().createBuffer(
          device, std::max<std::size_t>(1, block.count * sizeof(T)));
      // Own portion seeds the block.
      queue.enqueueCopyBuffer(chunks_[d].buffer, block.offset * sizeof(T),
                              block.buffer, 0, block.count * sizeof(T));
      // Fold in every other device's copy of the same region.
      ocl::Buffer temp = runtime.context().createBuffer(
          device, std::max<std::size_t>(1, block.count * sizeof(T)));
      for (std::size_t j = 0; j < devices; ++j) {
        if (j == d || block.count == 0) {
          continue;
        }
        queue.enqueueCopyBuffer(chunks_[j].buffer,
                                block.offset * sizeof(T), temp, 0,
                                block.count * sizeof(T));
        ocl::Kernel kernel = program.createKernel("skelcl_combine");
        kernel.setArg(0, block.buffer);
        kernel.setArg(1, temp);
        kernel.setArg(2, std::uint32_t(block.count));
        const std::size_t wg = std::min<std::size_t>(
            runtime.defaultWorkGroupSize(), device.maxWorkGroupSize());
        const std::size_t global = (block.count + wg - 1) / wg * wg;
        queue.enqueueNDRange(kernel, ocl::NDRange1D{global, wg});
      }
    }
    chunks_ = std::move(blocks);
    dist_ = Distribution::Block;
    devicesDirty_ = true;
  }

  // --- device access ----------------------------------------------------

  void ensureOnDevices() override {
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    if (chunks_.empty()) {
      allocateChunks();
      upload();
      hostDirty_ = false;
      return;
    }
    if (hostDirty_) {
      upload();
      hostDirty_ = false;
    }
  }

  const Chunk& chunkForDevice(std::size_t deviceIndex) const override {
    for (const Chunk& chunk : chunks_) {
      if (chunk.deviceIndex == deviceIndex) {
        return chunk;
      }
    }
    throw common::InvalidArgument(
        "vector has no data on device " + std::to_string(deviceIndex) +
        " (distribution: " + distributionName(dist_) + ")");
  }

  const std::vector<Chunk>& chunks() const { return chunks_; }

  void markDevicesModified() override {
    COMMON_EXPECTS(!chunks_.empty(),
                   "dataOnDevicesModified: vector has no device data");
    devicesDirty_ = true;
  }

  void markHostModified() {
    hostDirty_ = true;
    devicesDirty_ = false;
  }

  bool devicesDirty() const { return devicesDirty_; }
  bool hostDirty() const { return hostDirty_; }
  bool hasDeviceData() const { return !chunks_.empty(); }

  std::string elementTypeName() const override { return typeName<T>(); }

  /// Adopts an existing device buffer as this vector's single-device
  /// contents (used by Reduce/Scan to wrap their result buffers without
  /// a round-trip through the host).
  void adoptDeviceBuffer(ocl::Buffer buffer, std::size_t count,
                         std::size_t deviceIndex) {
    host_.assign(count, T{});
    Chunk chunk;
    chunk.buffer = std::move(buffer);
    chunk.deviceIndex = deviceIndex;
    chunk.offset = 0;
    chunk.count = count;
    chunks_ = {std::move(chunk)};
    dist_ = Distribution::Single;
    singleDevice_ = deviceIndex;
    hostDirty_ = false;
    devicesDirty_ = true;
  }

  /// Allocates device chunks for an *output* vector mirroring the chunk
  /// geometry of an input (same distribution and size, fresh buffers).
  /// The input's element type may differ (Map<Tin, Tout>).
  template <typename U>
  void allocateLike(const VectorState<U>& input) {
    dropChunks();
    dist_ = input.distribution();
    singleDevice_ = input.singleDeviceIndex();
    host_.resize(input.size());
    allocateChunks();
    hostDirty_ = false;
  }

  void ensureOnHost() {
    if (!devicesDirty_ || chunks_.empty()) {
      return;
    }
    auto& runtime = Runtime::instance();
    // Enqueue every download non-blocking so transfers from different
    // devices overlap on their own PCIe links; wait on all at the end.
    std::vector<ocl::Event> pending;
    switch (dist_) {
      case Distribution::Single:
      case Distribution::Block:
        for (const Chunk& chunk : chunks_) {
          if (chunk.count == 0) continue;
          pending.push_back(
              runtime.queue(chunk.deviceIndex)
                  .enqueueReadBuffer(chunk.buffer, 0,
                                     chunk.count * sizeof(T),
                                     host_.data() + chunk.offset,
                                     /*blocking=*/false));
        }
        break;
      case Distribution::Copy:
        // All copies are equal by definition; read the first.
        if (!host_.empty()) {
          const Chunk& chunk = chunks_.front();
          pending.push_back(
              runtime.queue(chunk.deviceIndex)
                  .enqueueReadBuffer(chunk.buffer, 0,
                                     chunk.count * sizeof(T), host_.data(),
                                     /*blocking=*/false));
        }
        break;
    }
    for (const ocl::Event& event : pending) {
      event.wait();
    }
    devicesDirty_ = false;
  }

private:
  std::vector<Chunk> blockLayout(std::size_t devices) const {
    std::vector<Chunk> layout;
    const std::size_t n = host_.size();
    const std::size_t base = n / devices;
    const std::size_t extra = n % devices;
    std::size_t offset = 0;
    for (std::size_t d = 0; d < devices; ++d) {
      Chunk chunk;
      chunk.deviceIndex = d;
      chunk.offset = offset;
      chunk.count = base + (d < extra ? 1 : 0);
      offset += chunk.count;
      layout.push_back(chunk);
    }
    return layout;
  }

  void allocateChunks() {
    auto& runtime = Runtime::instance();
    const std::size_t devices = runtime.deviceCount();
    const std::size_t n = host_.size();
    switch (dist_) {
      case Distribution::Single: {
        Chunk chunk;
        chunk.deviceIndex = singleDevice_;
        chunk.offset = 0;
        chunk.count = n;
        chunk.buffer = runtime.context().createBuffer(
            runtime.devices()[singleDevice_],
            std::max<std::size_t>(1, n * sizeof(T)));
        chunks_ = {std::move(chunk)};
        break;
      }
      case Distribution::Copy: {
        chunks_.clear();
        for (std::size_t d = 0; d < devices; ++d) {
          Chunk chunk;
          chunk.deviceIndex = d;
          chunk.offset = 0;
          chunk.count = n;
          chunk.buffer = runtime.context().createBuffer(
              runtime.devices()[d], std::max<std::size_t>(1, n * sizeof(T)));
          chunks_.push_back(std::move(chunk));
        }
        break;
      }
      case Distribution::Block: {
        chunks_ = blockLayout(devices);
        for (Chunk& chunk : chunks_) {
          chunk.buffer = runtime.context().createBuffer(
              runtime.devices()[chunk.deviceIndex],
              std::max<std::size_t>(1, chunk.count * sizeof(T)));
        }
        break;
      }
    }
  }

  void upload() {
    auto& runtime = Runtime::instance();
    for (const Chunk& chunk : chunks_) {
      if (chunk.count == 0) continue;
      runtime.queue(chunk.deviceIndex)
          .enqueueWriteBuffer(chunk.buffer, 0, chunk.count * sizeof(T),
                              host_.data() + chunk.offset);
    }
  }

  void dropChunks() { chunks_.clear(); }

  std::vector<T> host_;
  std::vector<Chunk> chunks_;
  Distribution dist_ = Distribution::Single;
  std::size_t singleDevice_ = 0;
  bool hostDirty_ = true;     // host copy newer than device copies
  bool devicesDirty_ = false; // device copies newer than host
};

} // namespace detail

template <typename T>
class Vector {
public:
  using value_type = T;

  Vector() : state_(std::make_shared<detail::VectorState<T>>()) {}

  explicit Vector(std::size_t n)
      : state_(std::make_shared<detail::VectorState<T>>(std::vector<T>(n))) {}

  Vector(std::size_t n, const T& value)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(n, value))) {}

  /// Paper Listing 1: Vector<float> A(a_ptr, ARRAY_SIZE);
  Vector(const T* data, std::size_t n)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(data, data + n))) {}

  explicit Vector(std::vector<T> data)
      : state_(std::make_shared<detail::VectorState<T>>(std::move(data))) {}

  template <typename InputIt>
  Vector(InputIt first, InputIt last)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(first, last))) {}

  // --- size & host element access ---------------------------------------

  std::size_t size() const { return state_->size(); }
  bool empty() const { return size() == 0; }
  void resize(std::size_t n) { state_->resizeHost(n); }

  /// Reading host access: downloads first when devices hold newer data.
  const T& operator[](std::size_t i) const {
    return state_->hostForRead()[i];
  }
  /// Writing host access: marks the host copy as the newest.
  T& operator[](std::size_t i) { return state_->hostForWrite()[i]; }

  /// Whole-vector host views.
  const std::vector<T>& hostData() const { return state_->hostForRead(); }
  std::vector<T>& hostDataForWriting() { return state_->hostForWrite(); }

  /// Sets every element to `value` (cheaper than writing through
  /// hostDataForWriting(): no download of stale device data happens).
  void fill(const T& value) { state_->fillHost(value); }

  auto begin() const { return state_->hostForRead().begin(); }
  auto end() const { return state_->hostForRead().end(); }

  // --- distribution & synchronization ------------------------------------

  Distribution distribution() const { return state_->distribution(); }

  void setDistribution(Distribution dist, std::size_t singleDevice = 0) {
    state_->setDistribution(dist, singleDevice);
  }

  /// Redistribution with a combine operator (copy -> block), e.g.
  ///   c.setDistribution(Distribution::Block, addSource);
  void setDistribution(Distribution dist, const std::string& combineSource) {
    COMMON_EXPECTS(dist == Distribution::Block,
                   "combine redistribution targets the block distribution");
    state_->setDistributionCombine(combineSource);
  }

  /// Paper Sec. IV-B: after a skeleton that updates a vector by
  /// side-effect (through Arguments), tell SkelCL the device data is
  /// newer than the host copy.
  void dataOnDevicesModified() { state_->markDevicesModified(); }
  void dataOnHostModified() { state_->markHostModified(); }

  /// Deep copy (the copy constructor shares state).
  Vector clone() const {
    return Vector(state_->hostForRead());
  }

  detail::VectorState<T>& state() const { return *state_; }
  std::shared_ptr<detail::VectorStateBase> stateHandle() const {
    return state_;
  }

private:
  std::shared_ptr<detail::VectorState<T>> state_;
};

} // namespace skelcl
